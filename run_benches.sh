#!/bin/sh
# Runs every benchmark binary in order (tables first, then ablations and
# the timing benchmarks). First run trains the model zoo (~1h on one core);
# cached runs take ~15 minutes.
#
# --regression: instead of the full sweep, run only the serving throughput
# benchmarks on a pinned config (WISDOM_THREADS=4), write the results to
# BENCH_PR6.json, and fail if tokens/s drops more than 10% against the
# committed baseline in bench/bench_baseline.json — or if the overload
# sweep's shed/degraded rates rise past the absolute tolerance. This is
# what the CI bench-regression job runs. The speculative sweep is also
# gated on an absolute floor: >= 1.3x tokens/s over non-speculative
# serving (MIN_COUNTERS in check_bench_regression.py).
set -e
cd "$(dirname "$0")"

if [ "$1" = "--regression" ]; then
  OUT="${BENCH_OUT:-BENCH_PR6.json}"
  BASELINE="${BENCH_BASELINE:-bench/bench_baseline.json}"
  WISDOM_THREADS=4 build/bench/bench_throughput \
    --benchmark_filter='BM_BatchedSuggest|BM_ContinuousBatchSweep|BM_OverloadSweep|BM_SpeculativeSweep' \
    --benchmark_repetitions=3 --benchmark_min_time=1 \
    --benchmark_format=json --benchmark_out="$OUT" \
    --benchmark_out_format=json >/dev/null
  echo "wrote $OUT"
  python3 bench/check_bench_regression.py "$OUT" "$BASELINE" \
    --threshold 0.10 --seed-if-missing
  exit $?
fi

for b in build/bench/bench_table1_datasets build/bench/bench_table2_model_matrix \
         build/bench/bench_table3_fewshot build/bench/bench_table4_finetune \
         build/bench/bench_table5_gentypes build/bench/bench_ablations \
         build/bench/bench_micro build/bench/bench_throughput; do
  echo "==================== $b ===================="
  "$b"
  echo
done
