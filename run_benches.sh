#!/bin/sh
# Runs every benchmark binary in order (tables first, then ablations and
# the timing benchmarks). First run trains the model zoo (~1h on one core);
# cached runs take ~15 minutes.
set -e
cd "$(dirname "$0")"
for b in build/bench/bench_table1_datasets build/bench/bench_table2_model_matrix \
         build/bench/bench_table3_fewshot build/bench/bench_table4_finetune \
         build/bench/bench_table5_gentypes build/bench/bench_ablations \
         build/bench/bench_micro build/bench/bench_throughput; do
  echo "==================== $b ===================="
  "$b"
  echo
done
