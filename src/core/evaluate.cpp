#include "core/evaluate.hpp"

#include "core/postprocess.hpp"
#include "util/strings.hpp"

namespace wisdom::core {

namespace {

// Column of the "- " item marker in the sample's name line.
std::size_t item_indent(const data::FtSample& sample) {
  return util::indent_width(sample.input_line);
}

}  // namespace

std::string predict_snippet(model::Transformer& model,
                            const text::BpeTokenizer& tokenizer,
                            const data::FtSample& sample,
                            const EvalOptions& options) {
  std::string input_text = data::format_input(sample, options.format);
  if (options.ansible_prefix && sample.context.empty()) {
    input_text = "Ansible\n" + input_text;
  }
  std::vector<std::int32_t> prompt_ids = tokenizer.encode(input_text);

  model::Transformer::GenerateOptions gen;
  gen.stop_token = text::BpeTokenizer::kEndOfText;
  gen.max_new_tokens =
      sample.type == data::GenerationType::NlToPlaybook
          ? options.max_new_tokens_playbook
          : options.max_new_tokens;
  std::vector<std::int32_t> out_ids = model.generate(prompt_ids, gen);
  std::string body = trim_generation(tokenizer.decode(out_ids));

  // "we truncated the models output predictions to keep only the first
  // generated task ... for playbook generation we did not apply any
  // truncation".
  if (sample.type != data::GenerationType::NlToPlaybook) {
    body = truncate_to_first_task(body, item_indent(sample));
  }
  return sample.input_line + body;
}

metrics::MetricsReport evaluate_model(model::Transformer& model,
                                      const text::BpeTokenizer& tokenizer,
                                      std::span<const data::FtSample> samples,
                                      const EvalOptions& options) {
  metrics::MetricsAccumulator acc;
  std::size_t limit = options.max_samples == 0
                          ? samples.size()
                          : std::min(options.max_samples, samples.size());
  for (std::size_t i = 0; i < limit; ++i) {
    std::string prediction =
        predict_snippet(model, tokenizer, samples[i], options);
    acc.add(prediction, samples[i].full_target());
  }
  return acc.report();
}

std::map<data::GenerationType, metrics::MetricsReport> evaluate_by_type(
    model::Transformer& model, const text::BpeTokenizer& tokenizer,
    std::span<const data::FtSample> samples, const EvalOptions& options) {
  std::map<data::GenerationType, metrics::MetricsAccumulator> accs;
  std::size_t limit = options.max_samples == 0
                          ? samples.size()
                          : std::min(options.max_samples, samples.size());
  for (std::size_t i = 0; i < limit; ++i) {
    std::string prediction =
        predict_snippet(model, tokenizer, samples[i], options);
    accs[samples[i].type].add(prediction, samples[i].full_target());
  }
  std::map<data::GenerationType, metrics::MetricsReport> out;
  for (auto& [type, acc] : accs) out[type] = acc.report();
  return out;
}

}  // namespace wisdom::core
