// Training loop shared by pre-training and fine-tuning.
//
// Mirrors the paper's recipe at reproduction scale: effective batch size 32
// via gradient accumulation, AdamW, warmup followed by a linear (pre-
// training) or cosine (fine-tuning) decay, gradient clipping at 1.0, and
// best-checkpoint selection on the validation set.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "data/packing.hpp"
#include "model/transformer.hpp"
#include "nn/schedule.hpp"

namespace wisdom::core {

struct TrainConfig {
  int epochs = 2;
  int micro_batch = 4;
  int grad_accum = 8;  // micro_batch * grad_accum = 32, the paper's batch
  // The paper fine-tunes a 350M model at 5e-5; the scaled-down models are
  // ~3 orders of magnitude smaller and need a proportionally larger rate.
  float lr = 2e-3f;
  nn::DecayKind decay = nn::DecayKind::Linear;
  float warmup_frac = 0.03f;
  float clip_norm = 1.0f;
  std::uint64_t shuffle_seed = 1234;
  // Called after each epoch with (epoch, train_loss, validation_score).
  // validation_score is the metric used for best-checkpoint selection
  // (higher is better); NaN when no validator is installed.
  std::function<void(int, float, float)> on_epoch;
  // Optional validation scorer (e.g. BLEU on the validation split, as in
  // the paper). When absent, the negated validation loss is used if a
  // validation set exists, else the final weights are kept.
  std::function<float(model::Transformer&)> validator;
};

struct TrainResult {
  float final_train_loss = 0.0f;
  float best_validation_score = 0.0f;
  int best_epoch = -1;
  std::int64_t steps = 0;
};

// Trains in place. When a validator (or validation set) is present the
// model ends holding the best-scoring epoch's weights, reproducing "we used
// the BLEU score on the validation set to determine the best checkpoint".
TrainResult train_model(model::Transformer& model,
                        const data::TokenBatchSet& train_set,
                        const data::TokenBatchSet* valid_set,
                        const TrainConfig& config);

// Mean loss of a model over a batch set (forward only).
float evaluate_loss(model::Transformer& model, const data::TokenBatchSet& set,
                    int micro_batch = 8);

}  // namespace wisdom::core
