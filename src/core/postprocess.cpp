#include "core/postprocess.hpp"

#include "util/strings.hpp"

namespace wisdom::core {

namespace util = wisdom::util;

std::string trim_generation(std::string_view generated) {
  // Keep only full lines; a trailing fragment without '\n' is an artifact
  // of the token budget running out mid-line.
  std::size_t last_nl = generated.rfind('\n');
  if (last_nl == std::string_view::npos) return {};
  return std::string(generated.substr(0, last_nl + 1));
}

std::string truncate_to_first_task(std::string_view generated,
                                   std::size_t item_indent) {
  std::string out;
  for (const std::string& line : util::split_lines(generated)) {
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) break;  // blank line ends the snippet
    std::size_t indent = util::indent_width(line);
    if (trimmed == "---" || trimmed == "...") break;
    // A new sequence item at (or above) the task's own indent starts the
    // next task.
    if (indent <= item_indent &&
        (trimmed == "-" || util::starts_with(trimmed, "- "))) {
      break;
    }
    // A dedent past the item body that is not a continuation ends it too.
    if (indent <= item_indent) break;
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace wisdom::core
