// The Wisdom pipeline: corpus assembly per pre-training mix, shared
// tokenizer, pre-training, fine-tuning, and a disk cache of checkpoints so
// the benchmark binaries can share the expensive stages.
//
// The model zoo mirrors Table II of the paper:
//
//   CodeGen-NL            : Pile (NL)
//   CodeGen-Multi         : Pile + BigQuery code
//   CodeGen-Mono          : Pile + BigQuery code + BigPython
//   Wisdom-Ansible        : Ansible YAML, from scratch
//   Wisdom-Yaml           : Ansible + generic YAML, from scratch
//   Wisdom-Ansible-Multi  : CodeGen-Multi checkpoint + Ansible YAML
//   Wisdom-Yaml-Multi     : CodeGen-Multi checkpoint + Ansible + generic
//   Codex (analog)        : Pile + code + generic YAML + a leaked slice of
//                           Galaxy-style Ansible (the paper observes Codex
//                           "likely saw large portions of our Galaxy
//                           dataset"; the analog reproduces that leakage)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/sources.hpp"
#include "model/config.hpp"
#include "model/transformer.hpp"
#include "text/bpe.hpp"

namespace wisdom::core {

enum class PretrainMix {
  CodeGenNL,
  CodeGenMulti,
  CodeGenMono,
  WisdomAnsible,
  WisdomYaml,
  WisdomAnsibleMulti,
  WisdomYamlMulti,
  CodexAnalog,
};

// Table-style display name ("CodeGen-Multi", "Wisdom-Ansible-Multi", ...).
std::string mix_label(PretrainMix mix);
// True for the mixes that start from the CodeGen-Multi checkpoint.
bool mix_extends_codegen_multi(PretrainMix mix);

struct PipelineConfig {
  std::uint64_t seed = 2023;      // the paper's year, and our global seed
  std::size_t vocab_size = 512;
  std::int32_t context_window = 96;  // simulated analog of 1024
  int pretrain_epochs = 3;
  // The paper fine-tunes for 8 epochs at 350M scale; the scaled-down models
  // need more passes over the (also scaled-down) Galaxy set to converge —
  // 12 epochs puts the fine-tuned metrics near the paper's range within
  // the single-core budget.
  int finetune_epochs = 12;
  // Directory for cached checkpoints; empty disables caching.
  std::string cache_dir;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config);

  const PipelineConfig& config() const { return config_; }

  // Shared BPE tokenizer, trained once over all corpus kinds (as the
  // GPT-2/CodeGen tokenizer is shared by every baseline in the paper).
  const text::BpeTokenizer& tokenizer();

  // The Galaxy fine-tuning dataset: extracted, deduplicated, split.
  const data::DatasetSplits& galaxy_splits();

  // Pre-trains (or loads from cache) the given mix at the given size.
  model::Transformer pretrained(PretrainMix mix,
                                model::SizeClass size = model::SizeClass::S350M);

  struct FinetuneOptions {
    data::PromptFormat format = data::PromptFormat::NameCompletion;
    // Fraction of the training split to use (data-size ablation).
    double data_fraction = 1.0;
    // Override context window (context-size ablation); 0 keeps the model's.
    std::int32_t context_window = 0;
    int epochs = 0;  // 0 = config default
  };
  // Fine-tunes a copy of `base` on the Galaxy training split with
  // validation-BLEU best-checkpoint selection.
  model::Transformer finetune(const model::Transformer& base,
                              const FinetuneOptions& options);
  // Cached wrapper keyed by (mix, size, options).
  model::Transformer finetuned(PretrainMix mix, model::SizeClass size,
                               const FinetuneOptions& options);

  // Training text of every file in a mix's pre-training corpus.
  std::vector<std::string> mix_corpus(PretrainMix mix);

 private:
  int pretrain_epochs_for(PretrainMix mix) const;
  std::string pretrain_key(PretrainMix mix, model::SizeClass size,
                           const std::vector<std::string>& corpus);
  std::string cache_path(const std::string& key) const;
  std::optional<model::Transformer> load_cached(const std::string& key);
  void store_cached(const std::string& key, const model::Transformer& model);

  PipelineConfig config_;
  std::optional<text::BpeTokenizer> tokenizer_;
  std::optional<data::DatasetSplits> splits_;
};

}  // namespace wisdom::core
