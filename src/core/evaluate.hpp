// Evaluation harness producing the rows of Tables IV-VI: greedy decoding
// over a test split, truncation to the first generated task (except for
// playbook generation), and the four metrics.
#pragma once

#include <map>
#include <span>
#include <string>

#include "data/dataset.hpp"
#include "metrics/aggregate.hpp"
#include "model/transformer.hpp"
#include "text/bpe.hpp"

namespace wisdom::core {

struct EvalOptions {
  data::PromptFormat format = data::PromptFormat::NameCompletion;
  // Prepend "Ansible\n" to context-free prompts — the paper found this
  // helps the CodeGen/Codex baselines but not the Wisdom models.
  bool ansible_prefix = false;
  // Token budget for task generation; playbooks get a larger one.
  int max_new_tokens = 56;
  int max_new_tokens_playbook = 72;
  // Evaluate only the first N samples (0 = all) — used to keep the
  // many-model benchmark tables tractable.
  std::size_t max_samples = 0;
};

// Runs one sample end to end and returns the prediction text comparable to
// sample.full_target(): the name line plus the (truncated) generated body.
std::string predict_snippet(model::Transformer& model,
                            const text::BpeTokenizer& tokenizer,
                            const data::FtSample& sample,
                            const EvalOptions& options);

// Aggregate metrics over a split.
metrics::MetricsReport evaluate_model(model::Transformer& model,
                                      const text::BpeTokenizer& tokenizer,
                                      std::span<const data::FtSample> samples,
                                      const EvalOptions& options);

// Per-generation-type breakdown (Table VI).
std::map<data::GenerationType, metrics::MetricsReport> evaluate_by_type(
    model::Transformer& model, const text::BpeTokenizer& tokenizer,
    std::span<const data::FtSample> samples, const EvalOptions& options);

}  // namespace wisdom::core
