#include "core/pipeline.hpp"

#include <algorithm>
#include <cstdio>

#include "core/evaluate.hpp"
#include "data/dedup.hpp"
#include "metrics/bleu.hpp"
#include "model/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/hashing.hpp"
#include "util/io.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace wisdom::core {

namespace data = wisdom::data;
namespace model = wisdom::model;
namespace util = wisdom::util;

namespace {

// Checkpoint/tokenizer cache effectiveness; a high miss rate on a warmed
// deployment means the cache directory is being invalidated.
obs::Counter& cache_counter(bool hit) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& hits = registry.counter(
      "wisdom_pipeline_cache_hits_total",
      "Model/tokenizer cache entries loaded instead of retrained.");
  static obs::Counter& misses = registry.counter(
      "wisdom_pipeline_cache_misses_total",
      "Cache lookups that fell through to training (absent or rejected).");
  return hit ? hits : misses;
}

}  // namespace

std::string mix_label(PretrainMix mix) {
  switch (mix) {
    case PretrainMix::CodeGenNL: return "CodeGen-NL";
    case PretrainMix::CodeGenMulti: return "CodeGen-Multi";
    case PretrainMix::CodeGenMono: return "CodeGen-Mono";
    case PretrainMix::WisdomAnsible: return "Wisdom-Ansible";
    case PretrainMix::WisdomYaml: return "Wisdom-Yaml";
    case PretrainMix::WisdomAnsibleMulti: return "Wisdom-Ansible-Multi";
    case PretrainMix::WisdomYamlMulti: return "Wisdom-Yaml-Multi";
    case PretrainMix::CodexAnalog: return "Codex-Davinci-002";
  }
  return "?";
}

bool mix_extends_codegen_multi(PretrainMix mix) {
  return mix == PretrainMix::WisdomAnsibleMulti ||
         mix == PretrainMix::WisdomYamlMulti;
}

Pipeline::Pipeline(PipelineConfig config) : config_(std::move(config)) {}

namespace {

void append_bundle(std::vector<std::string>& out,
                   const data::CorpusBundle& bundle, std::size_t limit = 0) {
  std::size_t n = limit == 0 ? bundle.files.size()
                             : std::min(limit, bundle.files.size());
  for (std::size_t i = 0; i < n; ++i) out.push_back(bundle.files[i].text);
}

}  // namespace

std::vector<std::string> Pipeline::mix_corpus(PretrainMix mix) {
  const std::uint64_t seed = config_.seed;
  std::vector<std::string> files;
  switch (mix) {
    case PretrainMix::CodeGenNL:
      // The Pile: mostly NL, with the small YAML admixture the paper notes
      // ("the Pile only includes around 25K Ansible and 600K generic YAML
      // files") — that sliver is what gives CodeGen-NL its partial YAML
      // syntax (Schema Correct 71 at Ansible Aware 6 in Table IV). The
      // sliver is proportionally larger here than in the real Pile because
      // the models are ~3000x smaller: it is sized to land CodeGen-NL in
      // the same qualitative regime (some YAML shape, little Ansible
      // semantics), not to match token ratios.
      append_bundle(files, data::nl_corpus(seed, 1400));
      append_bundle(files, data::generic_yaml_corpus(seed ^ 0xA1), 160);
      append_bundle(files, data::ansible_pretraining_corpus(seed ^ 0xA2), 45);
      break;
    case PretrainMix::CodeGenMulti:
      // BigQuery adds ~119B tokens of code plus config-adjacent files; the
      // larger structured-text share is what lifts Multi's Schema Correct
      // and Ansible Aware over NL in the paper.
      append_bundle(files, data::nl_corpus(seed, 800));
      append_bundle(files, data::code_corpus(seed, 1100));
      append_bundle(files, data::generic_yaml_corpus(seed ^ 0xA1), 300);
      append_bundle(files, data::ansible_pretraining_corpus(seed ^ 0xA2), 90);
      break;
    case PretrainMix::CodeGenMono:
      // BigPython on top of the Multi mix: more code, same YAML share ("the
      // addition of more Python code does not help" — Table IV).
      append_bundle(files, data::nl_corpus(seed, 700));
      append_bundle(files, data::code_corpus(seed, 1000));
      append_bundle(files, data::code_corpus(seed ^ 0xB1, 800));
      append_bundle(files, data::generic_yaml_corpus(seed ^ 0xA1), 300);
      append_bundle(files, data::ansible_pretraining_corpus(seed ^ 0xA2), 90);
      break;
    case PretrainMix::WisdomAnsible:
    case PretrainMix::WisdomAnsibleMulti:
      append_bundle(files, data::ansible_pretraining_corpus(seed));
      break;
    case PretrainMix::WisdomYaml:
    case PretrainMix::WisdomYamlMulti:
      append_bundle(files, data::ansible_pretraining_corpus(seed));
      append_bundle(files, data::generic_yaml_corpus(seed));
      break;
    case PretrainMix::CodexAnalog:
      // Very large heterogeneous corpus, including the Galaxy leakage the
      // paper deduces from Codex's exact-match rate ("Codex likely saw
      // large portions of our Galaxy dataset"). The leak is partial — a
      // slice of the Galaxy files — which reproduces Codex's placement:
      // best few-shot EM of all baselines, but still clearly below the
      // fine-tuned Wisdom models of Table V.
      append_bundle(files, data::nl_corpus(seed, 800));
      append_bundle(files, data::code_corpus(seed, 800));
      append_bundle(files, data::generic_yaml_corpus(seed ^ 0xC1), 800);
      append_bundle(files, data::ansible_pretraining_corpus(seed));
      append_bundle(files, data::galaxy_corpus(seed), 450);
      break;
  }
  // File-level exact-match dedup, as in the paper's pipeline.
  std::vector<data::CorpusFile> wrapped;
  wrapped.reserve(files.size());
  for (std::string& text : files)
    wrapped.push_back({std::move(text), data::SourceId::GitHubGbqAnsible,
                       true});
  wrapped = data::dedup_files(std::move(wrapped));
  files.clear();
  for (data::CorpusFile& file : wrapped) files.push_back(std::move(file.text));
  return files;
}

const text::BpeTokenizer& Pipeline::tokenizer() {
  if (tokenizer_) return *tokenizer_;
  std::string cache = cache_path("tokenizer.bin");
  if (!cache.empty()) {
    if (auto blob = util::read_file(cache)) {
      if (auto tok = text::BpeTokenizer::deserialize(*blob)) {
        if (obs::enabled()) cache_counter(true).inc();
        tokenizer_ = std::move(*tok);
        return *tokenizer_;
      }
    }
    if (obs::enabled()) cache_counter(false).inc();
  }
  // One shared vocabulary across every model, trained on a union sample of
  // all corpus kinds (NL, code, generic YAML, Ansible).
  std::string corpus;
  corpus += data::nl_corpus(config_.seed, 400).concatenated();
  corpus += data::code_corpus(config_.seed, 400).concatenated();
  corpus += data::generic_yaml_corpus(config_.seed ^ 0xF1).concatenated();
  corpus += data::ansible_pretraining_corpus(config_.seed).concatenated();
  corpus += data::galaxy_corpus(config_.seed ^ 0xF2).concatenated();
  util::log_info("training tokenizer on " + std::to_string(corpus.size()) +
                 " bytes");
  tokenizer_ = text::BpeTokenizer::train(corpus, config_.vocab_size);
  if (!cache.empty()) util::write_file(cache, tokenizer_->serialize());
  return *tokenizer_;
}

const data::DatasetSplits& Pipeline::galaxy_splits() {
  if (!splits_) {
    auto galaxy = data::galaxy_corpus(config_.seed ^ 0xF2);
    data::DedupStats stats;
    auto files = data::dedup_files(std::move(galaxy.files), &stats);
    auto samples = data::extract_corpus_samples(files);
    splits_ = data::split_dataset(std::move(samples), config_.seed ^ 0x5);
    util::log_info("galaxy: " + std::to_string(files.size()) + " files, " +
                   std::to_string(splits_->train.size()) + "/" +
                   std::to_string(splits_->valid.size()) + "/" +
                   std::to_string(splits_->test.size()) +
                   " train/valid/test samples");
  }
  return *splits_;
}

std::string Pipeline::cache_path(const std::string& key) const {
  if (config_.cache_dir.empty()) return {};
  return config_.cache_dir + "/" + key;
}

std::optional<model::Transformer> Pipeline::load_cached(
    const std::string& key) {
  std::string path = cache_path(key);
  if (path.empty()) return std::nullopt;
  model::LoadResult result = model::load_checkpoint_file_ex(path);
  if (!result.ok() && result.status != model::LoadStatus::FileNotFound) {
    // A present-but-unloadable cache entry (stale format, corruption) is
    // retrained from scratch, never served.
    util::log_warn("checkpoint cache '" + path + "' rejected (" +
                   std::string(model::load_status_name(result.status)) +
                   "): " + result.message + "; retraining");
  }
  if (obs::enabled()) cache_counter(result.model.has_value()).inc();
  return std::move(result.model);
}

void Pipeline::store_cached(const std::string& key,
                            const model::Transformer& m) {
  std::string path = cache_path(key);
  if (!path.empty()) model::save_checkpoint_file(path, m, "");
}

int Pipeline::pretrain_epochs_for(PretrainMix mix) const {
  // The paper trains every Wisdom variant on the YAML data for 9 epochs —
  // the *-Multi variants merely start from the CodeGen-Multi checkpoint
  // instead of random init. The CodeGen/Codex baselines are finished
  // checkpoints and keep the base schedule.
  switch (mix) {
    case PretrainMix::WisdomAnsible:
    case PretrainMix::WisdomYaml:
    case PretrainMix::WisdomAnsibleMulti:
    case PretrainMix::WisdomYamlMulti:
      return config_.pretrain_epochs * 3;  // 9 with the default of 3
    default:
      return config_.pretrain_epochs;
  }
}

std::string Pipeline::pretrain_key(PretrainMix mix, model::SizeClass size,
                                   const std::vector<std::string>& corpus) {
  // The corpus fingerprint is part of the key, so any change to the data
  // pipeline automatically invalidates stale checkpoints. Mixes that extend
  // the CodeGen-Multi checkpoint also fold in their base's key.
  std::uint64_t h = util::fnv1a64("wisdom-pt-v1");
  for (const std::string& file : corpus)
    h = util::hash_combine(h, util::fnv1a64(file));
  if (mix_extends_codegen_multi(mix)) {
    auto base_corpus = mix_corpus(PretrainMix::CodeGenMulti);
    h = util::hash_combine(
        h, util::fnv1a64(
               pretrain_key(PretrainMix::CodeGenMulti, size, base_corpus)));
  }
  char hash_hex[32];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(h));
  return "pt_" + mix_label(mix) + "_" + model::size_label(size) + "_v" +
         std::to_string(config_.vocab_size) + "_c" +
         std::to_string(config_.context_window) + "_e" +
         std::to_string(pretrain_epochs_for(mix)) + "_s" +
         std::to_string(config_.seed) + "_h" + hash_hex + ".ckpt";
}

model::Transformer Pipeline::pretrained(PretrainMix mix,
                                        model::SizeClass size) {
  std::vector<std::string> corpus = mix_corpus(mix);
  std::string key = pretrain_key(mix, size, corpus);
  if (auto cached = load_cached(key)) return std::move(*cached);

  const text::BpeTokenizer& tok = tokenizer();
  model::ModelConfig cfg = model::config_for(
      size, static_cast<std::int32_t>(tok.vocab_size()),
      config_.context_window);

  model::Transformer m =
      mix_extends_codegen_multi(mix)
          ? pretrained(PretrainMix::CodeGenMulti, size)
          : model::Transformer(cfg, config_.seed ^
                                        static_cast<std::uint64_t>(mix));

  data::TokenBatchSet train_set =
      data::pack_files(tok, corpus, config_.context_window);
  util::log_info("pretraining " + mix_label(mix) + " (" +
                 model::size_label(size) + "): " +
                 std::to_string(train_set.count()) + " windows");

  TrainConfig tc;
  tc.epochs = pretrain_epochs_for(mix);
  tc.lr = 2.5e-3f;
  tc.decay = nn::DecayKind::Linear;  // the paper's pre-training schedule
  tc.shuffle_seed = config_.seed ^ 0x77;
  train_model(m, train_set, nullptr, tc);
  store_cached(key, m);
  return m;
}

model::Transformer Pipeline::finetune(const model::Transformer& base,
                                      const FinetuneOptions& options) {
  const text::BpeTokenizer& tok = tokenizer();
  const data::DatasetSplits& splits = galaxy_splits();

  model::Transformer m = base;
  std::int32_t window = options.context_window > 0 ? options.context_window
                                                   : m.config().ctx;
  m.set_context_window(window);

  std::size_t take = static_cast<std::size_t>(
      options.data_fraction * static_cast<double>(splits.train.size()));
  take = std::min(std::max<std::size_t>(take, 1), splits.train.size());

  std::vector<std::string> texts;
  texts.reserve(take);
  for (std::size_t i = 0; i < take; ++i)
    texts.push_back(
        data::format_training_text(splits.train[i], options.format));
  data::TokenBatchSet train_set = data::pack_samples(tok, texts, window);

  TrainConfig tc;
  tc.epochs = options.epochs > 0 ? options.epochs : config_.finetune_epochs;
  tc.lr = 1.5e-3f;
  tc.decay = nn::DecayKind::Cosine;  // the paper's fine-tuning schedule
  tc.shuffle_seed = config_.seed ^ 0x99;
  // Best-checkpoint selection by validation BLEU, as in the paper.
  const std::size_t val_n = std::min<std::size_t>(splits.valid.size(), 32);
  tc.validator = [&](model::Transformer& candidate) {
    metrics::BleuAccumulator bleu;
    EvalOptions eval;
    eval.format = options.format;
    for (std::size_t i = 0; i < val_n; ++i) {
      std::string prediction =
          predict_snippet(candidate, tok, splits.valid[i], eval);
      bleu.add(prediction, splits.valid[i].full_target());
    }
    return static_cast<float>(bleu.score());
  };
  train_model(m, train_set, nullptr, tc);
  return m;
}

model::Transformer Pipeline::finetuned(PretrainMix mix,
                                       model::SizeClass size,
                                       const FinetuneOptions& options) {
  // The fine-tuned key embeds the base checkpoint's key hash so a
  // re-pre-trained base invalidates its fine-tunes. Defaulted options are
  // resolved first so equivalent configurations share one cache entry.
  std::uint64_t base_hash =
      util::fnv1a64(pretrain_key(mix, size, mix_corpus(mix)));
  char hash_hex[32];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(base_hash));
  std::int32_t effective_ctx = options.context_window > 0
                                   ? options.context_window
                                   : config_.context_window;
  int effective_epochs =
      options.epochs > 0 ? options.epochs : config_.finetune_epochs;
  std::string key =
      "ft_" + mix_label(mix) + "_" + model::size_label(size) + "_f" +
      std::to_string(static_cast<int>(options.data_fraction * 100)) + "_c" +
      std::to_string(effective_ctx) + "_p" +
      std::to_string(static_cast<int>(options.format)) + "_e" +
      std::to_string(effective_epochs) + "_fe" +
      std::to_string(config_.finetune_epochs) + "_s" +
      std::to_string(config_.seed) + "_b" + hash_hex + ".ckpt";
  if (auto cached = load_cached(key)) return std::move(*cached);
  model::Transformer base = pretrained(mix, size);
  model::Transformer m = finetune(base, options);
  store_cached(key, m);
  return m;
}

}  // namespace wisdom::core
