// Prediction post-processing: "in the case of Ansible task generations, we
// truncated the models output predictions to keep only the first generated
// task. For playbook generation we did not apply any truncation."
#pragma once

#include <string>
#include <string_view>

namespace wisdom::core {

// Truncates generated body text to the first task. `item_indent` is the
// column of the task's "- name:" line (0 for role tasks, 4 inside a
// playbook): generation stops at the next "- " item at that indent, any
// dedent past it, or a document marker.
std::string truncate_to_first_task(std::string_view generated,
                                   std::size_t item_indent);

// Trims decoder artifacts: anything after an end-of-text marker leak and
// trailing partial lines without a newline.
std::string trim_generation(std::string_view generated);

}  // namespace wisdom::core
