#include "core/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "model/checkpoint.hpp"
#include "nn/adamw.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace wisdom::core {

namespace {

// Training metrics in the global registry: per-optimizer-step wall time,
// cumulative token throughput, and the most recent epoch loss — the
// numbers an operator watches during a fine-tune run.
struct TrainMetrics {
  obs::Counter* steps;
  obs::Counter* tokens;
  obs::Histogram* step_ms;
  obs::Gauge* loss;
  obs::Gauge* tokens_per_sec;
};

TrainMetrics& train_metrics() {
  static TrainMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::global();
    return TrainMetrics{
        &registry.counter("wisdom_train_steps_total",
                          "Optimizer steps applied."),
        &registry.counter("wisdom_train_tokens_total",
                          "Training tokens consumed (micro-batch rows x "
                          "window)."),
        &registry.histogram("wisdom_train_step_ms", {},
                            "Per-optimizer-step wall time (forward + "
                            "backward + update)."),
        &registry.gauge("wisdom_train_loss", "Most recent epoch mean loss."),
        &registry.gauge("wisdom_train_tokens_per_sec",
                        "Throughput of the most recent optimizer step."),
    };
  }();
  return metrics;
}

// Assembles a micro-batch from window indices.
void gather(const data::TokenBatchSet& set,
            std::span<const std::size_t> indices,
            std::vector<std::int32_t>& x, std::vector<std::int32_t>& y) {
  const std::size_t w = static_cast<std::size_t>(set.window);
  x.resize(indices.size() * w);
  y.resize(indices.size() * w);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    auto in = set.input(indices[i]);
    auto tg = set.target(indices[i]);
    std::copy(in.begin(), in.end(), x.begin() + static_cast<std::ptrdiff_t>(i * w));
    std::copy(tg.begin(), tg.end(), y.begin() + static_cast<std::ptrdiff_t>(i * w));
  }
}

}  // namespace

float evaluate_loss(model::Transformer& model, const data::TokenBatchSet& set,
                    int micro_batch) {
  if (set.count() == 0) return 0.0f;
  double total = 0.0;
  std::size_t batches = 0;
  std::vector<std::int32_t> x, y;
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < set.count(); i += static_cast<std::size_t>(micro_batch)) {
    indices.clear();
    for (std::size_t j = i;
         j < std::min(set.count(), i + static_cast<std::size_t>(micro_batch));
         ++j) {
      indices.push_back(j);
    }
    gather(set, indices, x, y);
    total += model.evaluate(x, y, static_cast<int>(indices.size()),
                            set.window);
    ++batches;
  }
  return batches == 0 ? 0.0f : static_cast<float>(total / static_cast<double>(batches));
}

TrainResult train_model(model::Transformer& model,
                        const data::TokenBatchSet& train_set,
                        const data::TokenBatchSet* valid_set,
                        const TrainConfig& config) {
  TrainResult result;
  if (train_set.count() == 0) return result;

  const std::size_t windows = train_set.count();
  const std::size_t windows_per_step =
      static_cast<std::size_t>(config.micro_batch) *
      static_cast<std::size_t>(config.grad_accum);
  const std::int64_t steps_per_epoch = static_cast<std::int64_t>(
      (windows + windows_per_step - 1) / windows_per_step);
  const std::int64_t total_steps = steps_per_epoch * config.epochs;

  nn::LrSchedule schedule;
  schedule.base_lr = config.lr;
  schedule.total_steps = std::max<std::int64_t>(1, total_steps);
  schedule.warmup_steps = static_cast<std::int64_t>(
      config.warmup_frac * static_cast<float>(total_steps));
  schedule.decay = config.decay;
  schedule.min_ratio = 0.05f;

  nn::AdamW opt;
  util::Rng rng(config.shuffle_seed);
  std::vector<std::size_t> order(windows);
  std::iota(order.begin(), order.end(), 0);

  std::string best_weights;
  float best_score = -std::numeric_limits<float>::infinity();
  std::int64_t step = 0;
  std::vector<std::int32_t> x, y;
  float epoch_loss = 0.0f;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t loss_count = 0;
    std::size_t cursor = 0;
    while (cursor < windows) {
      const bool observe = obs::enabled();
      auto step_start = observe ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
      std::size_t step_tokens = 0;
      model.zero_grad();
      int micros = 0;
      for (int g = 0; g < config.grad_accum && cursor < windows; ++g) {
        std::size_t take = std::min<std::size_t>(
            static_cast<std::size_t>(config.micro_batch), windows - cursor);
        std::span<const std::size_t> slice(order.data() + cursor, take);
        gather(train_set, slice, x, y);
        float loss = model.forward_backward(
            x, y, static_cast<int>(take), train_set.window);
        loss_sum += loss;
        ++loss_count;
        ++micros;
        cursor += take;
        step_tokens += take * static_cast<std::size_t>(train_set.window);
      }
      model.optim_step(opt, schedule.at(step),
                       1.0f / static_cast<float>(std::max(1, micros)),
                       config.clip_norm);
      ++step;
      if (observe) {
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - step_start)
                        .count();
        TrainMetrics& tm = train_metrics();
        tm.steps->inc();
        tm.tokens->inc(static_cast<std::uint64_t>(step_tokens));
        tm.step_ms->observe(ms);
        if (ms > 0.0)
          tm.tokens_per_sec->set(static_cast<double>(step_tokens) /
                                 (ms / 1e3));
      }
    }
    epoch_loss = loss_count == 0
                     ? 0.0f
                     : static_cast<float>(loss_sum / static_cast<double>(loss_count));

    // Validation scoring for best-checkpoint selection.
    float score = std::numeric_limits<float>::quiet_NaN();
    if (config.validator) {
      score = config.validator(model);
    } else if (valid_set && valid_set->count() > 0) {
      score = -evaluate_loss(model, *valid_set, config.micro_batch);
    }
    if (!std::isnan(score) && score > best_score) {
      best_score = score;
      best_weights = model::save_checkpoint(model, "");
      result.best_epoch = epoch;
    }
    if (obs::enabled()) train_metrics().loss->set(epoch_loss);
    if (config.on_epoch) config.on_epoch(epoch, epoch_loss, score);
    util::log_info("epoch " + std::to_string(epoch) + " train_loss=" +
                   util::fmt_fixed(epoch_loss, 4) + " val_score=" +
                   (std::isnan(score) ? std::string("n/a")
                                      : util::fmt_fixed(score, 4)));
  }

  if (!best_weights.empty()) {
    auto best = model::load_checkpoint(best_weights, nullptr);
    if (best) {
      auto src = best->parameters();
      auto dst = model.parameters();
      for (std::size_t i = 0; i < dst.size(); ++i) dst[i]->w = src[i]->w;
    }
    result.best_validation_score = best_score;
  }
  result.final_train_loss = epoch_loss;
  result.steps = step;
  return result;
}

}  // namespace wisdom::core
