#include "obs/trace.hpp"

#include <cstdio>

#include "obs/obs.hpp"

namespace wisdom::obs {

double Trace::stage_ms(std::string_view name) const {
  double total = 0.0;
  for (const Span& span : spans)
    if (span.name == name) total += span.duration_ms;
  return total;
}

std::map<std::string, double> Trace::stage_totals() const {
  std::map<std::string, double> totals;
  for (const Span& span : spans) totals[span.name] += span.duration_ms;
  return totals;
}

std::string Trace::timeline() const {
  std::string out = "trace " + trace_id_hex(id) + "\n";
  for (const Span& span : spans) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%8.3f ms  %8.3f ms  ", span.start_ms,
                  span.duration_ms);
    out += buf;
    out += std::string(static_cast<std::size_t>(span.depth) * 2, ' ');
    out += span.name + "\n";
  }
  return out;
}

std::uint64_t trace_id(std::uint64_t seq, std::string_view payload) {
  // FNV-1a over the sequence number's bytes then the payload.
  std::uint64_t h = 14695981039346656037ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (seq >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
  for (unsigned char c : payload) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string trace_id_hex(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

TraceContext::TraceContext(Trace* sink, std::uint64_t id) {
  if (!sink || !enabled()) return;
  sink_ = sink;
  sink_->id = id;
  sink_->spans.clear();
  origin_ = std::chrono::steady_clock::now();
}

double TraceContext::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

TraceContext::Scope TraceContext::span(std::string_view name) {
  if (!sink_) return Scope();
  Span span;
  span.name = std::string(name);
  span.depth = depth_;
  span.start_ms = elapsed_ms();
  std::size_t index = sink_->spans.size();
  sink_->spans.push_back(std::move(span));
  ++depth_;
  return Scope(this, index);
}

void TraceContext::Scope::end() {
  if (!ctx_) return;
  Span& span = ctx_->sink_->spans[index_];
  span.duration_ms = ctx_->elapsed_ms() - span.start_ms;
  --ctx_->depth_;
  ctx_ = nullptr;
}

}  // namespace wisdom::obs
