// Request tracing: a TraceContext carried through the serving path records
// named, nested spans (tokenize, admission, prefill, per-token decode,
// postprocess, fallback) into a per-request Trace.
//
// Contract:
//   * One trace belongs to one request on one thread; no locking. Batched
//     serving gives every request its own Trace.
//   * A default-constructed (or obs-disabled) TraceContext is inert: span()
//     returns a scope whose open/close do nothing and read no clock, so
//     instrumentation points cost a null check when tracing is off.
//   * Spans are recorded in open order (pre-order), each with its nesting
//     depth and its start offset from the trace origin — the dump is a
//     deterministic timeline, and per-name stage totals feed the
//     Server-Timing wire field and per-stage histograms.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wisdom::obs {

struct Span {
  std::string name;
  int depth = 0;        // 0 = root
  double start_ms = 0;  // offset from the trace origin
  double duration_ms = 0;
};

struct Trace {
  std::uint64_t id = 0;
  std::vector<Span> spans;  // open order (pre-order)

  bool empty() const { return spans.empty(); }
  // Duration of the root span; 0 for an empty trace.
  double total_ms() const { return spans.empty() ? 0.0 : spans[0].duration_ms; }
  // Summed duration of every span with this name (e.g. all "decode"
  // steps).
  double stage_ms(std::string_view name) const;
  // name -> summed duration, every span name. Sorted (std::map), so wire
  // serialization and dumps are deterministic.
  std::map<std::string, double> stage_totals() const;
  // Human-readable indented timeline, one line per span.
  std::string timeline() const;
};

// Deterministic 64-bit trace id: FNV-1a over a sequence number and a
// payload (the request prompt). Stable across runs for the same inputs.
std::uint64_t trace_id(std::uint64_t seq, std::string_view payload);
// Lower-case 16-hex-digit rendering used on the wire.
std::string trace_id_hex(std::uint64_t id);

class TraceContext {
 public:
  TraceContext() = default;  // inert

  // Activates recording into `sink` (no-op context when sink is null or
  // observability is disabled at the obs::enabled() switch).
  TraceContext(Trace* sink, std::uint64_t id);

  bool active() const { return sink_ != nullptr; }

  // RAII span: opened by TraceContext::span(), closed at scope exit (or
  // an explicit end()).
  class Scope {
   public:
    Scope() = default;
    Scope(Scope&& other) noexcept : ctx_(other.ctx_), index_(other.index_) {
      other.ctx_ = nullptr;
    }
    Scope& operator=(Scope&& other) noexcept {
      if (this != &other) {
        end();
        ctx_ = other.ctx_;
        index_ = other.index_;
        other.ctx_ = nullptr;
      }
      return *this;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { end(); }

    void end();  // idempotent

   private:
    friend class TraceContext;
    Scope(TraceContext* ctx, std::size_t index) : ctx_(ctx), index_(index) {}
    TraceContext* ctx_ = nullptr;
    std::size_t index_ = 0;
  };

  // Opens a nested span; close it by letting the Scope die (or end()).
  Scope span(std::string_view name);

 private:
  friend class Scope;
  double elapsed_ms() const;

  Trace* sink_ = nullptr;
  std::chrono::steady_clock::time_point origin_{};
  int depth_ = 0;
};

}  // namespace wisdom::obs
