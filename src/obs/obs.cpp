#include "obs/obs.hpp"

#include <cstdlib>
#include <cstring>

namespace wisdom::obs {

namespace detail {

std::atomic<int> g_enabled{-1};

int init_enabled_from_env() {
  int on = 1;
  if (const char* env = std::getenv("WISDOM_OBS")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "false") == 0)
      on = 0;
  }
  // Another thread may have raced init; either wrote the same env-derived
  // value or an explicit set_enabled(), which wins.
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace wisdom::obs
