// Thread-safe metrics registry: named counters, gauges, and fixed-bucket
// histograms with lock-free hot-path updates.
//
// Design:
//   * Registration (name -> metric) takes a mutex once; the returned
//     reference is stable for the registry's lifetime, so instrumented
//     code caches it and the hot path is a relaxed atomic op — no lock,
//     no lookup.
//   * Histograms use fixed upper-bound buckets (Prometheus-style "le"
//     semantics: a sample lands in the first bucket whose bound is >= the
//     value, with an implicit +Inf overflow bucket). observe() is a
//     binary search plus two relaxed atomic adds.
//   * reset() zeroes values but never unregisters — cached references
//     stay valid across test cases and benchmark repetitions.
//   * Exposition: Prometheus text format and a JSON export, both with
//     deterministic (sorted-by-name) ordering so output is golden-stable.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wisdom::obs {

// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time double value (queue depth, last loss, accumulated wall
// time). add() is a CAS loop: atomic<double>::fetch_add is C++20 but not
// universally lock-free; the loop is portable and contention here is low.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. Bounds are upper bounds, strictly increasing;
// an implicit +Inf bucket catches the overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  // Finite bounds only; bucket i counts samples in
  // (bounds[i-1], bounds[i]], bucket bounds.size() is the +Inf overflow.
  const std::vector<double>& bounds() const { return bounds_; }
  // Non-cumulative per-bucket count, index in [0, bounds().size()].
  std::uint64_t bucket_value(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Nearest-rank percentile estimate, p in (0, 100]: the upper bound of
  // the bucket holding the sample at rank ceil(p/100 * count). For
  // samples that sit exactly on bucket bounds this equals the legacy
  // exact nearest-rank over the raw values. Rank in the +Inf bucket (or
  // an empty histogram) reports the largest finite bound (0 if none).
  double percentile(double p) const;

  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// The default bucket ladder for latency-in-milliseconds histograms:
// 1-2.5-5 decades from 5us to 10s.
const std::vector<double>& default_latency_buckets_ms();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name. The reference is stable for the registry's
  // lifetime. Re-requesting an existing name with a different kind throws
  // std::logic_error (a naming bug worth failing loudly on). `help` is
  // recorded on first registration only.
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  // Empty bounds select default_latency_buckets_ms().
  Histogram& histogram(std::string_view name,
                       std::vector<double> bounds = {},
                       std::string_view help = "");

  // Lookup without creating; nullptr when absent (or a different kind).
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  // Zeroes every value; registered metrics (and handed-out references)
  // survive.
  void reset();

  // Prometheus text exposition format, metrics sorted by name.
  std::string expose_prometheus() const;
  // {"counters": {...}, "gauges": {...}, "histograms": {...}}, keys
  // sorted; carries the same values as the Prometheus exposition.
  std::string expose_json() const;

  // Process-wide registry used by the library's built-in instrumentation
  // (thread pool, model decode, trainer, pipeline).
  static MetricsRegistry& global();

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

}  // namespace wisdom::obs
