#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wisdom::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_buckets_ms();
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1]))
      throw std::logic_error("histogram bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  // First bucket whose upper bound is >= v ("le" semantics); past the last
  // finite bound the sample lands in the +Inf overflow bucket.
  std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += bucket_value(i);
    if (cumulative >= rank) return bounds_[i];
  }
  return bounds_.empty() ? 0.0 : bounds_.back();  // rank in +Inf overflow
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& default_latency_buckets_ms() {
  static const std::vector<double> kBuckets = {
      0.005, 0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,
      10.0,  25.0, 50.0,  100., 250., 500., 1000., 2500.0, 5000.0, 10000.0};
  return kBuckets;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Kind::Counter;
    entry.help = std::string(help);
    entry.counter = std::make_unique<Counter>();
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  if (it->second.kind != Kind::Counter)
    throw std::logic_error("metric '" + std::string(name) +
                           "' registered with a different kind");
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Kind::Gauge;
    entry.help = std::string(help);
    entry.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  if (it->second.kind != Kind::Gauge)
    throw std::logic_error("metric '" + std::string(name) +
                           "' registered with a different kind");
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Kind::Histogram;
    entry.help = std::string(help);
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  if (it->second.kind != Kind::Histogram)
    throw std::logic_error("metric '" + std::string(name) +
                           "' registered with a different kind");
  return *it->second.histogram;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::Counter)
    return nullptr;
  return it->second.counter.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::Gauge) return nullptr;
  return it->second.gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::Histogram)
    return nullptr;
  return it->second.histogram.get();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::Counter: entry.counter->reset(); break;
      case Kind::Gauge: entry.gauge->reset(); break;
      case Kind::Histogram: entry.histogram->reset(); break;
    }
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never torn down
  return *registry;
}

}  // namespace wisdom::obs
