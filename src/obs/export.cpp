// Exposition formats for MetricsRegistry: Prometheus text and JSON.
//
// Both walk the same sorted metric map under the registry mutex, so the
// two exports of one quiesced registry carry identical values and the
// output ordering is deterministic (golden-stable in tests).
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.hpp"

namespace wisdom::obs {

namespace {

// Shortest round-trippable-enough form: integers print without a decimal
// point, everything else as %.6g. Deterministic for the values the
// library produces.
std::string format_double(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string format_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::expose_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : metrics_) {
    if (!entry.help.empty())
      out += "# HELP " + name + " " + entry.help + "\n";
    switch (entry.kind) {
      case Kind::Counter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + format_u64(entry.counter->value()) + "\n";
        break;
      case Kind::Gauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + format_double(entry.gauge->value()) + "\n";
        break;
      case Kind::Histogram: {
        const Histogram& h = *entry.histogram;
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_value(i);
          out += name + "_bucket{le=\"" + format_double(h.bounds()[i]) +
                 "\"} " + format_u64(cumulative) + "\n";
        }
        cumulative += h.bucket_value(h.bounds().size());
        out += name + "_bucket{le=\"+Inf\"} " + format_u64(cumulative) +
               "\n";
        out += name + "_sum " + format_double(h.sum()) + "\n";
        out += name + "_count " + format_u64(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::expose_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::Counter:
        if (!counters.empty()) counters += ", ";
        counters += "\"" + name + "\": " +
                    format_u64(entry.counter->value());
        break;
      case Kind::Gauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += "\"" + name + "\": " +
                  format_double(entry.gauge->value());
        break;
      case Kind::Histogram: {
        const Histogram& h = *entry.histogram;
        if (!histograms.empty()) histograms += ", ";
        std::string buckets;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_value(i);
          if (!buckets.empty()) buckets += ", ";
          buckets += "[" + format_double(h.bounds()[i]) + ", " +
                     format_u64(cumulative) + "]";
        }
        cumulative += h.bucket_value(h.bounds().size());
        if (!buckets.empty()) buckets += ", ";
        buckets += "[\"+Inf\", " + format_u64(cumulative) + "]";
        histograms += "\"" + name + "\": {\"buckets\": [" + buckets +
                      "], \"sum\": " + format_double(h.sum()) +
                      ", \"count\": " + format_u64(h.count()) + "}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

}  // namespace wisdom::obs
