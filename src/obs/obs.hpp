// Observability kill switch.
//
// Every instrumentation point in the library (metrics updates that read a
// clock, span recording) is guarded by obs::enabled(), which resolves to:
//
//   * compile time: building with -DWISDOM_OBS=OFF defines
//     WISDOM_OBS_DISABLED and enabled() becomes a constant false, so the
//     optimizer deletes the instrumentation outright — zero overhead,
//   * runtime: WISDOM_OBS=0 (or "off"/"false") in the environment, or
//     set_enabled(false), turns instrumentation off for the process; the
//     check is a single relaxed atomic load on the hot path.
//
// Pure counter bumps that back ServiceStats are NOT gated — they are the
// stats data model, cost one relaxed fetch_add, and predate this layer.
// The switch exists for the clock-reading instrumentation (histograms of
// stage/task latency, trace spans), which is what can show up in a
// profile.
#pragma once

#include <atomic>

namespace wisdom::obs {

#if defined(WISDOM_OBS_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
// -1 = uninitialized (read WISDOM_OBS on first use), 0 = off, 1 = on.
extern std::atomic<int> g_enabled;
int init_enabled_from_env();
}  // namespace detail

// True when instrumentation should record. Hot-path safe.
inline bool enabled() {
  if constexpr (!kCompiledIn) return false;
  int state = detail::g_enabled.load(std::memory_order_relaxed);
  if (state >= 0) return state != 0;
  return detail::init_enabled_from_env() != 0;
}

// Runtime override (tests, benchmarks measuring instrumentation cost).
// A no-op in WISDOM_OBS=OFF builds.
void set_enabled(bool on);

}  // namespace wisdom::obs
