// Indentation-based YAML parser for the Ansible subset.
//
// Supported: block mappings / sequences (including sequences at the same
// indent as their parent key, the dominant Ansible style), compact forms
// after "- ", flow sequences and mappings, plain / single-quoted /
// double-quoted scalars, literal (|) and folded (>) block scalars with
// chomping indicators, comments, directives, and multi-document streams.
// Unsupported (reported as parse errors where they would change meaning):
// anchors/aliases, tags, complex (non-scalar) mapping keys, tabs in
// indentation, plain multi-line scalars.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "yaml/node.hpp"

namespace wisdom::yaml {

struct ParseError {
  std::string message;
  std::size_t line = 0;  // 1-based source line
  std::string to_string() const;
};

struct ParseResult {
  std::vector<Node> documents;
  std::optional<ParseError> error;
  bool ok() const { return !error.has_value(); }
};

// Parses a full (possibly multi-document) stream.
ParseResult parse_stream(std::string_view text);

// Parses the first document; nullopt on error (error details via `err`).
std::optional<Node> parse_document(std::string_view text,
                                   ParseError* err = nullptr);

// True if the text parses cleanly (the pipeline's PyYAML-style validity
// check).
bool is_valid_yaml(std::string_view text);

}  // namespace wisdom::yaml
