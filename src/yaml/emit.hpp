// Block-style YAML emitter producing the Ansible-recommended layout: two
// space indentation, sequences indented under their parent key, compact
// mapping entries on sequence dashes ("- name: ..."), single-quoted strings
// when quoting is required, and literal blocks for multi-line strings. The
// fine-tuning pipeline normalizes every sample through parse+emit, exactly
// as the paper "standardized the formatting to match the style recommended
// by the Ansible team".
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "yaml/node.hpp"

namespace wisdom::yaml {

struct EmitOptions {
  // Prepend the "---" document start marker.
  bool document_start = false;
  // Number of spaces per indentation level.
  int indent = 2;
};

// Emits one document. A trailing newline is always present.
std::string emit(const Node& node, const EmitOptions& options = {});

// True if `text` needs quoting to survive as a plain scalar (it would
// resolve to a different type, collides with YAML syntax, or has leading or
// trailing whitespace).
bool scalar_needs_quotes(const std::string& text);

// Quotes `text` as a YAML scalar (single-quoted unless control characters
// force double quotes).
std::string quote_scalar(const std::string& text);

// parse + emit round trip; returns the canonicalized document or nullopt if
// the input does not parse.
std::optional<std::string> normalize(std::string_view text,
                                     const EmitOptions& options = {});

}  // namespace wisdom::yaml
