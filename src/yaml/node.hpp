// YAML document object model.
//
// The subset implemented is the one Ansible playbooks and tasks live in:
// block mappings with scalar string keys, block sequences, flow sequences
// and mappings, plain / single-quoted / double-quoted scalars, literal (|)
// and folded (>) block scalars, comments, and multi-document streams. This
// matches what the paper's pipeline needed from PyYAML: validity checking,
// structural access and style normalization.
//
// Scalars keep both a resolved type (for semantics, e.g. the Ansible-Aware
// metric compares `yes` and `true` as equal booleans) and the raw source
// text (so formatting survives round trips where it is meaningful, e.g.
// file modes like "0644").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wisdom::yaml {

enum class NodeType { Null, Bool, Int, Float, Str, Seq, Map };

// Source location of a node in the text it was parsed from: a half-open
// byte range [begin, end) into the original input plus the 1-based line and
// column of `begin`. A default-constructed span (line 0) means "no source"
// — nodes built programmatically have no span. Spans survive node copies,
// so an alias use-site carries the span of the alias itself while the
// copied children keep pointing at the anchor's definition.
struct Span {
  std::size_t begin = 0;  // byte offset of the first byte
  std::size_t end = 0;    // byte offset one past the last byte
  std::size_t line = 0;   // 1-based source line; 0 = no span
  std::size_t column = 0; // 1-based column on `line`

  bool valid() const { return line != 0; }
  std::size_t length() const { return end - begin; }
  // The exact source text the span covers.
  std::string_view slice(std::string_view source) const {
    return source.substr(begin, end - begin);
  }
};

class Node;
using MapEntry = std::pair<std::string, Node>;

class Node {
 public:
  // Constructs a Null node.
  Node() = default;

  // Factories. `str` never re-resolves: Node::str("yes") is the string
  // "yes", not a boolean. Plain-scalar resolution happens in the parser.
  static Node null();
  static Node boolean(bool value);
  static Node integer(std::int64_t value);
  static Node floating(double value);
  static Node str(std::string value);
  static Node seq();
  static Node seq(std::vector<Node> items);
  static Node map();
  static Node map(std::vector<MapEntry> entries);

  NodeType type() const { return type_; }
  bool is_null() const { return type_ == NodeType::Null; }
  bool is_bool() const { return type_ == NodeType::Bool; }
  bool is_int() const { return type_ == NodeType::Int; }
  bool is_float() const { return type_ == NodeType::Float; }
  bool is_str() const { return type_ == NodeType::Str; }
  bool is_seq() const { return type_ == NodeType::Seq; }
  bool is_map() const { return type_ == NodeType::Map; }
  bool is_scalar() const { return !is_seq() && !is_map(); }

  // Typed accessors; calling the wrong one is a precondition violation
  // (asserted in debug builds, value-initialized result otherwise).
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_float() const;
  const std::string& as_str() const;

  // Scalar rendered back to text (the raw source spelling when the node
  // came from the parser, a canonical spelling otherwise).
  std::string scalar_text() const;
  // Overrides the remembered source spelling (used by the parser).
  void set_raw(std::string raw);

  // Source location of this node's value text; invalid (line 0) for nodes
  // not built by the parser. Collections span from their first entry to
  // the end of their last one.
  const Span& span() const { return span_; }
  void set_span(Span span) { span_ = span; }
  // For a mapping value: the span of the key that introduced it (the
  // natural anchor for diagnostics about the key itself). Invalid when the
  // node is not a parsed mapping value.
  const Span& key_span() const { return key_span_; }
  void set_key_span(Span span) { key_span_ = span; }
  // key_span() when valid, else span() — the best diagnostic anchor.
  const Span& anchor_span() const {
    return key_span_.valid() ? key_span_ : span_;
  }

  // Sequence access.
  const std::vector<Node>& items() const;
  std::vector<Node>& items();
  void push_back(Node child);

  // Mapping access; insertion order is preserved (Ansible task key order is
  // name, module, keywords and the emitter must not sort it away).
  const std::vector<MapEntry>& entries() const;
  std::vector<MapEntry>& entries();
  // First value for `key`, or nullptr.
  const Node* find(std::string_view key) const;
  Node* find(std::string_view key);
  bool has(std::string_view key) const { return find(key) != nullptr; }
  // Appends or replaces.
  void set(std::string_view key, Node value);
  // Removes all entries with `key`; returns how many were removed.
  std::size_t erase(std::string_view key);

  std::size_t size() const;

  // Deep structural equality. Scalars compare by resolved type and value
  // (raw spelling is ignored: `yes` == `true`, `1.0` == `1.00`).
  bool operator==(const Node& other) const;

 private:
  NodeType type_ = NodeType::Null;
  bool bool_value_ = false;
  std::int64_t int_value_ = 0;
  double float_value_ = 0.0;
  std::string str_value_;
  std::string raw_;
  Span span_;
  Span key_span_;
  std::vector<Node> seq_;
  std::vector<MapEntry> map_;
};

// Resolves a plain (unquoted) scalar per the YAML core schema as Ansible
// uses it: null/Null/NULL/~/"" -> Null; true/false/yes/no/on/off (any case
// commonly written) -> Bool; integers; floats; otherwise Str. Multi-digit
// integers with a leading zero (file modes such as 0644) stay strings so
// they round-trip unmangled.
Node resolve_plain_scalar(std::string_view text);

}  // namespace wisdom::yaml
