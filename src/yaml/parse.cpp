#include "yaml/parse.hpp"

#include <cassert>
#include <cctype>
#include <map>

#include "util/strings.hpp"

namespace wisdom::yaml {

namespace util = wisdom::util;

std::string ParseError::to_string() const {
  return "line " + std::to_string(line) + ": " + message;
}

namespace {

// Strips a trailing comment respecting quote state. A '#' begins a comment
// when it is the first character or is preceded by whitespace and we are not
// inside a quoted scalar.
std::string_view strip_comment(std::string_view text) {
  bool in_single = false;
  bool in_double = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_double) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_double = false;
      }
    } else if (in_single) {
      if (c == '\'') {
        // '' is an escaped quote inside single-quoted scalars.
        if (i + 1 < text.size() && text[i + 1] == '\'') {
          ++i;
        } else {
          in_single = false;
        }
      }
    } else if (c == '"') {
      in_double = true;
    } else if (c == '\'') {
      in_single = true;
    } else if (c == '#') {
      if (i == 0 || text[i - 1] == ' ' || text[i - 1] == '\t') {
        return text.substr(0, i);
      }
    }
  }
  return text;
}

struct SignificantLine {
  std::size_t raw_index = 0;  // index into the raw line array
  std::size_t indent = 0;
  std::string content;  // comment-stripped, right-trimmed, indent removed
};

class Parser {
 public:
  explicit Parser(std::string_view text)
      : lines_(util::split_lines(text)), text_size_(text.size()) {
    // Byte offset of each line start in the original text, aligned with
    // lines_ (split_lines splits on '\n' and drops a trailing '\r').
    line_begin_.reserve(lines_.size() + 1);
    std::size_t start = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') {
        line_begin_.push_back(start);
        start = i + 1;
      }
    }
    if (start < text.size()) line_begin_.push_back(start);
    // Compact-entry / anchor / document-marker handling rewrites lines_ in
    // place; col_shift_ maps a column in the rewritten line back to the
    // original text (original_col = rewritten_col + shift).
    col_shift_.assign(lines_.size(), 0);
  }

  ParseResult run() {
    ParseResult result;
    pos_ = 0;
    for (;;) {
      // Skip directives and document markers before a document.
      bool saw_doc_start = false;
      while (auto line = peek()) {
        std::string_view c = line->content;
        if (!c.empty() && c[0] == '%' && line->indent == 0) {
          pos_ = line->raw_index + 1;
        } else if (line->indent == 0 && (c == "---" || c == "...")) {
          saw_doc_start = saw_doc_start || c == "---";
          pos_ = line->raw_index + 1;
        } else if (line->indent == 0 && util::starts_with(c, "--- ")) {
          // Document start with inline content: rewrite the line without
          // the marker and parse it as the document body.
          lines_[line->raw_index] =
              std::string(line->content.substr(4));
          note_rewrite(line->raw_index, /*old_col=*/4, /*new_col=*/0);
          pos_ = line->raw_index;
          break;
        } else {
          break;
        }
      }
      auto line = peek();
      if (!line) {
        if (saw_doc_start && result.documents.empty() && !failed_) {
          result.documents.push_back(Node::null());
        }
        break;
      }
      Node doc = parse_block(line->indent);
      if (failed_) {
        result.error = error_;
        return result;
      }
      result.documents.push_back(std::move(doc));
      // A following non-marker content line at this point means trailing
      // garbage unless it is a new document marker; loop handles markers.
      if (auto next = peek()) {
        std::string_view c = next->content;
        if (!(next->indent == 0 &&
              (c == "---" || c == "..." || util::starts_with(c, "--- ") ||
               (!c.empty() && c[0] == '%')))) {
          fail(next->raw_index, "content after end of document");
          result.error = error_;
          return result;
        }
      }
    }
    return result;
  }

 private:
  // --- line scanning -----------------------------------------------------

  // Next significant (non-blank, non-comment-only) line at or after pos_.
  std::optional<SignificantLine> peek() {
    for (std::size_t i = pos_; i < lines_.size(); ++i) {
      const std::string& raw = lines_[i];
      // Tabs in indentation are a hard error in YAML.
      std::size_t j = 0;
      while (j < raw.size() && raw[j] == ' ') ++j;
      if (j < raw.size() && raw[j] == '\t') {
        fail(i, "tab character in indentation");
        return std::nullopt;
      }
      std::string_view stripped = util::trim_right(strip_comment(raw));
      if (stripped.size() <= j) continue;  // blank or comment-only
      SignificantLine line;
      line.raw_index = i;
      line.indent = j;
      line.content = std::string(stripped.substr(j));
      return line;
    }
    return std::nullopt;
  }

  void consume(const SignificantLine& line) { pos_ = line.raw_index + 1; }

  // --- source spans ------------------------------------------------------

  // Span for `len` bytes starting at 0-based column `col` of (possibly
  // rewritten) line `raw_index`, mapped back to original-text coordinates.
  Span make_span(std::size_t raw_index, std::size_t col,
                 std::size_t len) const {
    Span span;
    if (raw_index >= line_begin_.size()) return span;
    std::ptrdiff_t shifted =
        static_cast<std::ptrdiff_t>(col) + col_shift_[raw_index];
    if (shifted < 0) shifted = 0;
    std::size_t original_col = static_cast<std::size_t>(shifted);
    span.line = raw_index + 1;
    span.column = original_col + 1;
    span.begin = std::min(line_begin_[raw_index] + original_col, text_size_);
    span.end = std::min(span.begin + len, text_size_);
    return span;
  }

  // 0-based column of a view into line.content (views produced by substr /
  // trim share the content buffer, so pointer arithmetic is valid).
  static std::size_t col_of(const SignificantLine& line,
                            std::string_view within) {
    return line.indent +
           static_cast<std::size_t>(within.data() - line.content.data());
  }

  // Records that line `raw_index` was rewritten, moving the content that
  // was at column `old_col` to column `new_col`.
  void note_rewrite(std::size_t raw_index, std::size_t old_col,
                    std::size_t new_col) {
    col_shift_[raw_index] += static_cast<std::ptrdiff_t>(old_col) -
                             static_cast<std::ptrdiff_t>(new_col);
  }

  // Widens a collection span to include another span / a child's spans.
  static void grow_span(Span& parent, const Span& s) {
    if (!s.valid()) return;
    if (!parent.valid()) {
      parent = s;
      return;
    }
    if (s.begin < parent.begin) {
      parent.line = s.line;
      parent.column = s.column;
      parent.begin = s.begin;
    }
    if (s.end > parent.end) parent.end = s.end;
  }
  static void grow_span(Span& parent, const Node& child) {
    grow_span(parent, child.key_span());
    grow_span(parent, child.span());
  }

  void fail(std::size_t raw_index, std::string message) {
    if (failed_) return;
    failed_ = true;
    error_ = ParseError{std::move(message), raw_index + 1};
  }

  // --- anchors / aliases ---------------------------------------------------

  // Extracts a leading "&name" from `text`; returns the anchor name and
  // leaves `text` holding the remainder (trimmed).
  static std::optional<std::string> take_anchor(std::string_view& text) {
    if (text.empty() || text[0] != '&') return std::nullopt;
    std::size_t i = 1;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i == 1) return std::nullopt;
    std::string name(text.substr(1, i - 1));
    text = util::trim(text.substr(i));
    return name;
  }

  Node resolve_alias(std::string_view name, std::size_t raw_index) {
    auto it = anchors_.find(std::string(name));
    if (it == anchors_.end()) {
      fail(raw_index, "unknown alias '*" + std::string(name) + "'");
      return Node::null();
    }
    return it->second;  // deep copy
  }

  // --- block structure ---------------------------------------------------

  Node parse_block(std::size_t indent) {
    auto line = peek();
    if (!line || failed_) return Node::null();
    if (line->indent != indent) {
      fail(line->raw_index, "unexpected indentation");
      return Node::null();
    }
    // Anchored block node: "&name" alone (collection follows) or "&name X".
    {
      std::string_view content = line->content;
      if (auto anchor = take_anchor(content)) {
        if (content.empty()) {
          consume(*line);
          // The anchored node follows; after a "- &name" rewrite it sits at
          // the same indent as the anchor, otherwise deeper.
          Node value = Node::null();
          if (auto next = peek();
              next && next->indent >= indent && !failed_ &&
              !is_document_marker(*next)) {
            value = parse_block(next->indent);
          }
          anchors_[*anchor] = value;
          return value;
        }
        note_rewrite(line->raw_index, col_of(*line, content), indent);
        lines_[line->raw_index] =
            std::string(indent, ' ') + std::string(content);
        pos_ = line->raw_index;
        Node value = parse_block(indent);
        anchors_[*anchor] = value;
        return value;
      }
    }
    if (is_sequence_entry(line->content)) return parse_sequence(indent);
    if (find_key_split(line->content)) return parse_mapping(indent);
    // Single scalar document / value.
    consume(*line);
    Node n = parse_scalar_value(line->content, line->raw_index, line->indent);
    if (auto next = peek();
        next && next->indent > indent && !failed_) {
      fail(next->raw_index,
           "unexpected indentation (plain multi-line scalars unsupported)");
    }
    return n;
  }

  static bool is_sequence_entry(std::string_view content) {
    return content == "-" || util::starts_with(content, "- ");
  }

  static bool is_document_marker(const SignificantLine& line) {
    return line.indent == 0 &&
           (line.content == "---" || line.content == "..." ||
            util::starts_with(line.content, "--- "));
  }

  Node parse_sequence(std::size_t indent) {
    Node out = Node::seq();
    Span span;
    for (;;) {
      auto line = peek();
      if (!line || failed_) break;
      if (is_document_marker(*line)) break;
      if (line->indent < indent) break;
      if (line->indent > indent) {
        fail(line->raw_index, "bad indentation in sequence");
        break;
      }
      if (!is_sequence_entry(line->content)) break;
      // The "- " marker anchors the sequence span even when an item is
      // empty or its content was rewritten to a deeper indent.
      Span marker = make_span(line->raw_index, line->indent, 1);
      if (line->content == "-") {
        consume(*line);
        // Item is the following more-indented block, or null.
        auto next = peek();
        if (next && next->indent > indent && !failed_) {
          out.push_back(parse_block(next->indent));
        } else {
          Node item = Node::null();
          item.set_span(marker);
          out.push_back(std::move(item));
        }
      } else {
        // "- X": rewrite the raw line as X indented two extra columns and
        // re-parse; compact mappings/sequences/scalars all fall out of this
        // uniformly because following keys of a compact mapping sit at
        // indent + 2. The rest keeps its column (the marker is exactly two
        // bytes), so no column shift is recorded.
        std::string rest(line->content.substr(2));
        lines_[line->raw_index] =
            std::string(indent + 2, ' ') + rest;
        pos_ = line->raw_index;
        out.push_back(parse_block(indent + 2));
      }
      if (!out.items().empty()) grow_span(span, out.items().back());
      grow_span(span, marker);
    }
    out.set_span(span);
    return out;
  }

  // Splits "key: value" / "key:" at the top level of the line. Returns the
  // byte offset of the ':' or nullopt if the line is not a mapping entry.
  static std::optional<std::size_t> find_key_split(std::string_view content) {
    bool in_single = false;
    bool in_double = false;
    int flow_depth = 0;
    for (std::size_t i = 0; i < content.size(); ++i) {
      char c = content[i];
      if (in_double) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_double = false;
        }
      } else if (in_single) {
        if (c == '\'') {
          if (i + 1 < content.size() && content[i + 1] == '\'')
            ++i;
          else
            in_single = false;
        }
      } else if (c == '"' && flow_depth == 0 && i == 0) {
        in_double = true;
      } else if (c == '\'' && flow_depth == 0 && i == 0) {
        in_single = true;
      } else if (c == '[' || c == '{') {
        ++flow_depth;
      } else if (c == ']' || c == '}') {
        --flow_depth;
      } else if (c == ':' && flow_depth == 0) {
        if (i + 1 == content.size() || content[i + 1] == ' ') return i;
      }
    }
    return std::nullopt;
  }

  Node parse_mapping(std::size_t indent) {
    Node out = Node::map();
    Span span;
    // "<<" merge values, applied after explicit keys (explicit keys win).
    std::vector<Node> merges;
    for (;;) {
      auto line = peek();
      if (!line || failed_) break;
      if (is_document_marker(*line)) break;
      if (line->indent < indent) break;
      if (line->indent > indent) {
        fail(line->raw_index, "bad indentation in mapping");
        break;
      }
      if (is_sequence_entry(line->content)) break;
      auto split = find_key_split(line->content);
      if (!split) {
        fail(line->raw_index, "expected 'key: value'");
        break;
      }
      std::string_view key_text =
          util::trim(std::string_view(line->content).substr(0, *split));
      Span key_span = make_span(line->raw_index, col_of(*line, key_text),
                                key_text.size());
      std::string key = parse_key(key_text, line->raw_index,
                                  col_of(*line, key_text));
      std::string_view rest =
          util::trim(std::string_view(line->content).substr(*split + 1));
      consume(*line);
      if (failed_) break;

      std::optional<std::string> anchor = take_anchor(rest);
      Node value;
      if (rest.empty()) {
        // Value is a nested block, a same-indent sequence, or null.
        auto next = peek();
        if (next && !failed_) {
          if (next->indent > indent) {
            value = parse_block(next->indent);
          } else if (next->indent == indent &&
                     is_sequence_entry(next->content)) {
            value = parse_sequence(indent);
          } else {
            value = Node::null();
          }
        } else {
          value = Node::null();
        }
        if (value.is_null() && !value.span().valid()) {
          // Implicit null: a zero-length span just after the ':'.
          value.set_span(
              make_span(line->raw_index, line->indent + *split + 1, 0));
        }
      } else if (rest[0] == '|' || rest[0] == '>') {
        value = parse_block_scalar(rest, indent, line->raw_index,
                                   col_of(*line, rest));
      } else {
        value = parse_scalar_value(rest, line->raw_index,
                                   col_of(*line, rest));
        if (auto next = peek(); next && next->indent > indent && !failed_) {
          fail(next->raw_index,
               "unexpected indentation after 'key: value'");
        }
      }
      if (failed_) break;
      value.set_key_span(key_span);
      if (anchor) anchors_[*anchor] = value;
      if (key == "<<") {
        merges.push_back(std::move(value));
        continue;
      }
      grow_span(span, value);
      out.entries().emplace_back(std::move(key), std::move(value));
    }
    // Apply merge keys: entries from merged mappings (or sequences of
    // mappings) are appended unless an explicit key already exists.
    for (const Node& merge : merges) {
      auto apply = [&out](const Node& m) {
        if (!m.is_map()) return false;
        for (const auto& [k, v] : m.entries()) {
          if (!out.has(k)) out.entries().emplace_back(k, v);
        }
        return true;
      };
      bool ok = true;
      if (merge.is_seq()) {
        for (const Node& m : merge.items()) ok = ok && apply(m);
      } else {
        ok = apply(merge);
      }
      if (!ok && !failed_) {
        fail(pos_ == 0 ? 0 : pos_ - 1,
             "'<<' merge value must be a mapping or list of mappings");
      }
    }
    out.set_span(span);
    return out;
  }

  std::string parse_key(std::string_view text, std::size_t raw_index,
                        std::size_t col) {
    if (text.empty()) {
      fail(raw_index, "empty mapping key");
      return {};
    }
    if (text[0] == '"' || text[0] == '\'') {
      std::size_t i = 0;
      Node n = parse_quoted(text, i, raw_index, col);
      if (!failed_ && i != text.size()) {
        fail(raw_index, "garbage after quoted key");
      }
      return failed_ ? std::string() : n.as_str();
    }
    if (text[0] == '?') {
      fail(raw_index, "complex mapping keys unsupported");
      return {};
    }
    return std::string(text);
  }

  // --- scalars -----------------------------------------------------------

  Node parse_scalar_value(std::string_view text, std::size_t raw_index,
                          std::size_t col) {
    assert(!text.empty());
    char c = text[0];
    if (c == '[' || c == '{') {
      std::size_t i = 0;
      Node n = parse_flow(text, i, raw_index, 0, col);
      if (!failed_) {
        while (i < text.size() && text[i] == ' ') ++i;
        if (i != text.size())
          fail(raw_index, "garbage after flow collection");
      }
      return n;
    }
    if (c == '"' || c == '\'') {
      std::size_t i = 0;
      Node n = parse_quoted(text, i, raw_index, col);
      if (!failed_ && i != text.size())
        fail(raw_index, "garbage after quoted scalar");
      return n;
    }
    if (c == '*') {
      std::string_view name = util::trim(text.substr(1));
      if (name.empty() ||
          name.find(' ') != std::string_view::npos) {
        fail(raw_index, "malformed alias");
        return Node::null();
      }
      Node n = resolve_alias(name, raw_index);
      // The use-site location, not the anchor definition's.
      n.set_span(make_span(raw_index, col, text.size()));
      n.set_key_span(Span{});
      return n;
    }
    if (c == '&') {
      // Anchors on plain values are handled by the callers; reaching here
      // means a bare "&" with nothing to attach to.
      fail(raw_index, "dangling anchor");
      return Node::null();
    }
    if (util::starts_with(text, "!!") || c == '!') {
      fail(raw_index, "tags unsupported");
      return Node::null();
    }
    Node n = resolve_plain_scalar(text);
    n.set_span(make_span(raw_index, col, text.size()));
    return n;
  }

  Node parse_quoted(std::string_view text, std::size_t& i,
                    std::size_t raw_index, std::size_t base_col) {
    const std::size_t start = i;
    char quote = text[i];
    ++i;
    std::string out;
    while (i < text.size()) {
      char c = text[i];
      if (quote == '"' && c == '\\') {
        if (i + 1 >= text.size()) break;
        char esc = text[i + 1];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '0': out += '\0'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          default: out += esc; break;
        }
        i += 2;
        continue;
      }
      if (c == quote) {
        if (quote == '\'' && i + 1 < text.size() && text[i + 1] == '\'') {
          out += '\'';
          i += 2;
          continue;
        }
        ++i;
        Node n = Node::str(std::move(out));
        // Span covers the quotes too: that is what a fix would replace.
        n.set_span(make_span(raw_index, base_col + start, i - start));
        return n;
      }
      out += c;
      ++i;
    }
    fail(raw_index, "unterminated quoted scalar");
    return Node::null();
  }

  Node parse_flow(std::string_view text, std::size_t& i,
                  std::size_t raw_index, int depth, std::size_t base_col) {
    if (depth > 32) {
      fail(raw_index, "flow nesting too deep");
      return Node::null();
    }
    auto skip_ws = [&] {
      while (i < text.size() && text[i] == ' ') ++i;
    };
    skip_ws();
    if (i >= text.size()) {
      fail(raw_index, "unexpected end of flow content");
      return Node::null();
    }
    char c = text[i];
    if (c == '[') {
      const std::size_t open = i;
      ++i;
      Node out = Node::seq();
      auto close = [&]() -> Node {
        out.set_span(make_span(raw_index, base_col + open, i - open));
        return std::move(out);
      };
      skip_ws();
      if (i < text.size() && text[i] == ']') {
        ++i;
        return close();
      }
      for (;;) {
        out.push_back(parse_flow(text, i, raw_index, depth + 1, base_col));
        if (failed_) return close();
        skip_ws();
        if (i < text.size() && text[i] == ',') {
          ++i;
          skip_ws();
          // allow trailing comma
          if (i < text.size() && text[i] == ']') {
            ++i;
            return close();
          }
          continue;
        }
        if (i < text.size() && text[i] == ']') {
          ++i;
          return close();
        }
        fail(raw_index, "expected ',' or ']' in flow sequence");
        return close();
      }
    }
    if (c == '{') {
      const std::size_t open = i;
      ++i;
      Node out = Node::map();
      auto close = [&]() -> Node {
        out.set_span(make_span(raw_index, base_col + open, i - open));
        return std::move(out);
      };
      skip_ws();
      if (i < text.size() && text[i] == '}') {
        ++i;
        return close();
      }
      for (;;) {
        skip_ws();
        Node key = parse_flow(text, i, raw_index, depth + 1, base_col);
        if (failed_) return close();
        if (!key.is_scalar()) {
          fail(raw_index, "non-scalar key in flow mapping");
          return close();
        }
        skip_ws();
        Node value = Node::null();
        if (i < text.size() && text[i] == ':') {
          ++i;
          skip_ws();
          if (i < text.size() && text[i] != ',' && text[i] != '}') {
            value = parse_flow(text, i, raw_index, depth + 1, base_col);
            if (failed_) return close();
          } else {
            // Implicit null: zero-length span after the ':'.
            value.set_span(make_span(raw_index, base_col + i, 0));
          }
        }
        value.set_key_span(key.span());
        out.entries().emplace_back(key.scalar_text(), std::move(value));
        skip_ws();
        if (i < text.size() && text[i] == ',') {
          ++i;
          continue;
        }
        if (i < text.size() && text[i] == '}') {
          ++i;
          return close();
        }
        fail(raw_index, "expected ',' or '}' in flow mapping");
        return close();
      }
    }
    if (c == '"' || c == '\'') return parse_quoted(text, i, raw_index, base_col);
    if (c == '*') {
      const std::size_t star = i;
      std::size_t start = ++i;
      while (i < text.size() && text[i] != ',' && text[i] != ']' &&
             text[i] != '}' && text[i] != ' ')
        ++i;
      Node n = resolve_alias(text.substr(start, i - start), raw_index);
      n.set_span(make_span(raw_index, base_col + star, i - star));
      n.set_key_span(Span{});
      return n;
    }
    // Plain flow scalar: up to an unquoted , ] } or :.
    std::size_t start = i;
    while (i < text.size()) {
      char p = text[i];
      if (p == ',' || p == ']' || p == '}') break;
      if (p == ':' && (i + 1 == text.size() || text[i + 1] == ' ' ||
                       text[i + 1] == ',' || text[i + 1] == '}'))
        break;
      ++i;
    }
    std::string_view plain = util::trim(text.substr(start, i - start));
    Node n = resolve_plain_scalar(plain);
    std::size_t plain_col =
        base_col + start +
        static_cast<std::size_t>(plain.data() - (text.data() + start));
    n.set_span(make_span(raw_index, plain_col, plain.size()));
    return n;
  }

  Node parse_block_scalar(std::string_view header, std::size_t parent_indent,
                          std::size_t header_index, std::size_t header_col) {
    assert(header[0] == '|' || header[0] == '>');
    bool folded = header[0] == '>';
    char chomp = 'c';  // clip
    int explicit_indent = -1;
    for (std::size_t i = 1; i < header.size(); ++i) {
      char c = header[i];
      if (c == '-' || c == '+') {
        chomp = c;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        explicit_indent = c - '0';
      } else {
        fail(header_index, "bad block scalar header");
        return Node::null();
      }
    }

    // Collect raw lines: everything blank or indented deeper than the key.
    std::vector<std::string> body;
    std::size_t block_indent =
        explicit_indent >= 0
            ? parent_indent + static_cast<std::size_t>(explicit_indent)
            : 0;  // determined by first non-blank line
    const std::size_t first_body = pos_;
    std::size_t scan = pos_;
    for (; scan < lines_.size(); ++scan) {
      const std::string& raw = lines_[scan];
      std::string_view trimmed = util::trim(raw);
      std::size_t ind = util::indent_width(raw);
      if (trimmed.empty()) {
        body.emplace_back("");
        continue;
      }
      if (block_indent == 0) {
        if (ind <= parent_indent) break;
        block_indent = ind;
      } else if (ind < block_indent) {
        break;
      }
      body.emplace_back(raw.substr(std::min(block_indent, raw.size())));
    }
    pos_ = scan;
    // Trailing blank lines participate only with keep chomping.
    std::size_t end = body.size();
    while (end > 0 && body[end - 1].empty()) --end;

    std::string text;
    if (!folded) {
      for (std::size_t i = 0; i < end; ++i) {
        text += body[i];
        text += '\n';
      }
    } else {
      bool prev_blank = true;  // suppress leading space
      bool prev_indented = false;
      for (std::size_t i = 0; i < end; ++i) {
        const std::string& line = body[i];
        bool blank = line.empty();
        bool indented = !blank && line[0] == ' ';
        if (blank) {
          text += '\n';
        } else {
          if (!prev_blank && !prev_indented && !indented) text += ' ';
          if ((prev_indented || indented) && !prev_blank) text += '\n';
          text += line;
        }
        prev_blank = blank;
        prev_indented = indented;
      }
      if (end > 0) text += '\n';
    }
    if (chomp == '-') {
      while (!text.empty() && text.back() == '\n') text.pop_back();
    } else if (chomp == '+') {
      for (std::size_t i = end; i < body.size(); ++i) text += '\n';
    }
    Node n = Node::str(std::move(text));
    // Span runs from the '|'/'>' header through the last body line (body
    // lines are never rewritten, so their raw coordinates are original).
    Span span = make_span(header_index, header_col, header.size());
    if (scan > first_body && scan - 1 < line_begin_.size()) {
      std::size_t last = scan - 1;
      std::size_t e =
          std::min(line_begin_[last] + lines_[last].size(), text_size_);
      if (e > span.end) span.end = e;
    }
    n.set_span(span);
    return n;
  }

  std::vector<std::string> lines_;
  // Original-text byte offset of each line start, and the per-line column
  // shift introduced by in-place line rewrites (see note_rewrite).
  std::vector<std::size_t> line_begin_;
  std::vector<std::ptrdiff_t> col_shift_;
  std::size_t text_size_ = 0;
  std::size_t pos_ = 0;
  bool failed_ = false;
  ParseError error_;
  // Anchored nodes, visible for the rest of the stream (aliases deep-copy).
  std::map<std::string, Node> anchors_;
};

}  // namespace

ParseResult parse_stream(std::string_view text) {
  return Parser(text).run();
}

std::optional<Node> parse_document(std::string_view text, ParseError* err) {
  ParseResult result = parse_stream(text);
  if (!result.ok()) {
    if (err) *err = *result.error;
    return std::nullopt;
  }
  if (result.documents.empty()) {
    if (err) *err = ParseError{"empty stream", 1};
    return std::nullopt;
  }
  return std::move(result.documents.front());
}

bool is_valid_yaml(std::string_view text) {
  return parse_stream(text).ok();
}

}  // namespace wisdom::yaml
