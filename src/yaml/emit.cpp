#include "yaml/emit.hpp"

#include <cassert>
#include <cctype>

#include "util/strings.hpp"
#include "yaml/parse.hpp"

namespace wisdom::yaml {

namespace util = wisdom::util;

namespace {

bool has_control_chars(const std::string& text) {
  for (unsigned char c : text) {
    if (c < 0x20 && c != '\n') return true;
  }
  return false;
}

constexpr std::string_view kIndicatorChars = "-?:#&*!|>'\"%@`[]{},";

}  // namespace

bool scalar_needs_quotes(const std::string& text) {
  if (text.empty()) return true;
  if (text.find('\n') != std::string::npos) return true;
  if (std::isspace(static_cast<unsigned char>(text.front())) ||
      std::isspace(static_cast<unsigned char>(text.back())))
    return true;
  char first = text.front();
  if (kIndicatorChars.find(first) != std::string_view::npos) {
    // '-' and ':' are only indicators when followed by a space or alone.
    if (first == '-' || first == ':' || first == '?') {
      if (text.size() == 1 || text[1] == ' ') return true;
    } else {
      return true;
    }
  }
  if (text.find(": ") != std::string::npos) return true;
  if (text.back() == ':') return true;
  if (text.find(" #") != std::string::npos) return true;
  // Would resolve away from a string (true/1/null/3.5/...).
  Node resolved = resolve_plain_scalar(text);
  return !resolved.is_str();
}

std::string quote_scalar(const std::string& text) {
  if (has_control_chars(text) || text.find('\n') != std::string::npos) {
    std::string out = "\"";
    for (char c : text) {
      switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default: out += c; break;
      }
    }
    out += '"';
    return out;
  }
  return "'" + util::replace_all(text, "'", "''") + "'";
}

namespace {

class Emitter {
 public:
  explicit Emitter(const EmitOptions& options) : options_(options) {}

  std::string run(const Node& node) {
    out_.clear();
    if (options_.document_start) out_ += "---\n";
    if (node.is_scalar()) {
      out_ += scalar_inline(node);
      out_ += '\n';
    } else if (node.size() == 0) {
      out_ += node.is_seq() ? "[]" : "{}";
      out_ += '\n';
    } else {
      write_block(node, 0);
    }
    return out_;
  }

 private:
  std::string pad(int level) const {
    return std::string(static_cast<std::size_t>(level) *
                           static_cast<std::size_t>(options_.indent),
                       ' ');
  }

  std::string scalar_inline(const Node& node) const {
    if (node.is_str()) {
      const std::string& s = node.as_str();
      return scalar_needs_quotes(s) ? quote_scalar(s) : s;
    }
    if (node.is_null()) return "null";
    return node.scalar_text();
  }

  static bool fits_literal_block(const std::string& s) {
    // Literal blocks cannot represent strings with control characters or
    // lines with trailing spaces (clip/strip ambiguity); those fall back to
    // double-quoted escapes.
    if (s.empty() || has_control_chars(s)) return false;
    for (const std::string& line : util::split_lines(s)) {
      if (!line.empty() && line.back() == ' ') return false;
    }
    return s.find('\n') != std::string::npos;
  }

  void write_literal_block(const std::string& s, int level) {
    bool ends_nl = !s.empty() && s.back() == '\n';
    out_ += ends_nl ? "|\n" : "|-\n";
    for (const std::string& line : util::split_lines(s)) {
      if (line.empty()) {
        out_ += '\n';
      } else {
        out_ += pad(level);
        out_ += line;
        out_ += '\n';
      }
    }
  }

  void write_block(const Node& node, int level) {
    assert(!node.is_scalar() && node.size() > 0);
    if (node.is_map()) {
      for (const auto& [key, value] : node.entries()) {
        out_ += pad(level);
        out_ += scalar_needs_quotes(key) ? quote_scalar(key) : key;
        out_ += ':';
        write_value(value, level);
      }
    } else {
      for (const Node& item : node.items()) {
        out_ += pad(level);
        out_ += '-';
        if (item.is_map() && item.size() > 0) {
          // Compact form: first entry on the dash line.
          const auto& entries = item.entries();
          out_ += ' ';
          out_ += scalar_needs_quotes(entries[0].first)
                      ? quote_scalar(entries[0].first)
                      : entries[0].first;
          out_ += ':';
          write_value(entries[0].second, level + 1);
          for (std::size_t i = 1; i < entries.size(); ++i) {
            out_ += pad(level + 1);
            out_ += scalar_needs_quotes(entries[i].first)
                        ? quote_scalar(entries[i].first)
                        : entries[i].first;
            out_ += ':';
            write_value(entries[i].second, level + 1);
          }
        } else {
          write_value(item, level);
        }
      }
    }
  }

  // Writes the value part after "key:" or "-", choosing inline vs nested.
  void write_value(const Node& value, int level) {
    if (value.is_scalar()) {
      if (value.is_str() && fits_literal_block(value.as_str())) {
        out_ += ' ';
        write_literal_block(value.as_str(), level + 1);
        return;
      }
      out_ += ' ';
      out_ += scalar_inline(value);
      out_ += '\n';
      return;
    }
    if (value.size() == 0) {
      out_ += value.is_seq() ? " []" : " {}";
      out_ += '\n';
      return;
    }
    out_ += '\n';
    write_block(value, level + 1);
  }

  EmitOptions options_;
  std::string out_;
};

}  // namespace

std::string emit(const Node& node, const EmitOptions& options) {
  return Emitter(options).run(node);
}

std::optional<std::string> normalize(std::string_view text,
                                     const EmitOptions& options) {
  auto doc = parse_document(text);
  if (!doc) return std::nullopt;
  return emit(*doc, options);
}

}  // namespace wisdom::yaml
