#include "yaml/node.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace wisdom::yaml {

Node Node::null() { return Node(); }

Node Node::boolean(bool value) {
  Node n;
  n.type_ = NodeType::Bool;
  n.bool_value_ = value;
  return n;
}

Node Node::integer(std::int64_t value) {
  Node n;
  n.type_ = NodeType::Int;
  n.int_value_ = value;
  return n;
}

Node Node::floating(double value) {
  Node n;
  n.type_ = NodeType::Float;
  n.float_value_ = value;
  return n;
}

Node Node::str(std::string value) {
  Node n;
  n.type_ = NodeType::Str;
  n.str_value_ = std::move(value);
  return n;
}

Node Node::seq() {
  Node n;
  n.type_ = NodeType::Seq;
  return n;
}

Node Node::seq(std::vector<Node> items) {
  Node n;
  n.type_ = NodeType::Seq;
  n.seq_ = std::move(items);
  return n;
}

Node Node::map() {
  Node n;
  n.type_ = NodeType::Map;
  return n;
}

Node Node::map(std::vector<MapEntry> entries) {
  Node n;
  n.type_ = NodeType::Map;
  n.map_ = std::move(entries);
  return n;
}

bool Node::as_bool() const {
  assert(is_bool());
  return bool_value_;
}

std::int64_t Node::as_int() const {
  assert(is_int());
  return int_value_;
}

double Node::as_float() const {
  assert(is_float() || is_int());
  return is_int() ? static_cast<double>(int_value_) : float_value_;
}

const std::string& Node::as_str() const {
  assert(is_str());
  return str_value_;
}

std::string Node::scalar_text() const {
  assert(is_scalar());
  if (!raw_.empty()) return raw_;
  switch (type_) {
    case NodeType::Null:
      return "null";
    case NodeType::Bool:
      return bool_value_ ? "true" : "false";
    case NodeType::Int: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_value_));
      return buf;
    }
    case NodeType::Float: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%g", float_value_);
      return buf;
    }
    case NodeType::Str:
      return str_value_;
    default:
      return {};
  }
}

void Node::set_raw(std::string raw) { raw_ = std::move(raw); }

const std::vector<Node>& Node::items() const {
  assert(is_seq());
  return seq_;
}

std::vector<Node>& Node::items() {
  assert(is_seq());
  return seq_;
}

void Node::push_back(Node child) {
  assert(is_seq());
  seq_.push_back(std::move(child));
}

const std::vector<MapEntry>& Node::entries() const {
  assert(is_map());
  return map_;
}

std::vector<MapEntry>& Node::entries() {
  assert(is_map());
  return map_;
}

const Node* Node::find(std::string_view key) const {
  if (!is_map()) return nullptr;
  for (const auto& [k, v] : map_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Node* Node::find(std::string_view key) {
  return const_cast<Node*>(static_cast<const Node*>(this)->find(key));
}

void Node::set(std::string_view key, Node value) {
  assert(is_map());
  for (auto& [k, v] : map_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  map_.emplace_back(std::string(key), std::move(value));
}

std::size_t Node::erase(std::string_view key) {
  assert(is_map());
  std::size_t removed = 0;
  for (std::size_t i = 0; i < map_.size();) {
    if (map_[i].first == key) {
      map_.erase(map_.begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    } else {
      ++i;
    }
  }
  return removed;
}

std::size_t Node::size() const {
  if (is_seq()) return seq_.size();
  if (is_map()) return map_.size();
  return 0;
}

bool Node::operator==(const Node& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case NodeType::Null:
      return true;
    case NodeType::Bool:
      return bool_value_ == other.bool_value_;
    case NodeType::Int:
      return int_value_ == other.int_value_;
    case NodeType::Float:
      return float_value_ == other.float_value_;
    case NodeType::Str:
      return str_value_ == other.str_value_;
    case NodeType::Seq:
      return seq_ == other.seq_;
    case NodeType::Map:
      return map_ == other.map_;
  }
  return false;
}

namespace {

bool parse_int(std::string_view text, std::int64_t& out) {
  if (text.empty()) return false;
  std::size_t start = (text[0] == '-' || text[0] == '+') ? 1 : 0;
  if (start == text.size()) return false;
  // Leading zeros (file modes) stay strings.
  if (text.size() - start > 1 && text[start] == '0') return false;
  for (std::size_t i = start; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
  }
  auto first = text.data() + (text[0] == '+' ? 1 : 0);
  auto [ptr, ec] = std::from_chars(first, text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_float(std::string_view text, double& out) {
  if (text.empty()) return false;
  bool has_digit = false;
  bool has_dot_or_exp = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      has_digit = true;
    } else if (c == '.' || c == 'e' || c == 'E') {
      has_dot_or_exp = true;
    } else if (c == '-' || c == '+') {
      // sign only at start or right after an exponent marker
      if (i != 0 && text[i - 1] != 'e' && text[i - 1] != 'E') return false;
    } else {
      return false;
    }
  }
  if (!has_digit || !has_dot_or_exp) return false;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

}  // namespace

Node resolve_plain_scalar(std::string_view text) {
  auto with_raw = [&](Node n) {
    n.set_raw(std::string(text));
    return n;
  };
  if (text.empty() || text == "~" || text == "null" || text == "Null" ||
      text == "NULL") {
    return with_raw(Node::null());
  }
  if (text == "true" || text == "True" || text == "TRUE" || text == "yes" ||
      text == "Yes" || text == "YES" || text == "on" || text == "On") {
    return with_raw(Node::boolean(true));
  }
  if (text == "false" || text == "False" || text == "FALSE" || text == "no" ||
      text == "No" || text == "NO" || text == "off" || text == "Off") {
    return with_raw(Node::boolean(false));
  }
  std::int64_t i = 0;
  if (parse_int(text, i)) return with_raw(Node::integer(i));
  double d = 0.0;
  if (parse_float(text, d)) return with_raw(Node::floating(d));
  return with_raw(Node::str(std::string(text)));
}

}  // namespace wisdom::yaml
