// Trainable byte-level BPE tokenizer.
//
// Mirrors the role of the CodeGen/GPT-2 tokenizer in the paper's pipeline:
// text becomes subword ids, files are packed into fixed context windows and
// separated by a special end-of-text token ("we used a special separator
// token to separate the files"). The base vocabulary is all 256 bytes plus
// the specials, so any input round-trips exactly; merges are learned from a
// training corpus with the classic greedy highest-frequency-pair rule.
//
// Pre-tokenization is whitespace-aware in a YAML-friendly way: newlines are
// standalone pre-tokens and leading spaces attach to the following word, so
// indentation levels ("    state:") become single learned tokens — the same
// property that makes byte-level BPE workable for YAML in the real system.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wisdom::text {

using TokenId = std::int32_t;

class BpeTokenizer {
 public:
  // Special token ids (fixed, precede the 256 byte tokens).
  static constexpr TokenId kPad = 0;
  static constexpr TokenId kEndOfText = 1;  // also the file separator
  static constexpr TokenId kSpecialCount = 2;

  // Learns `vocab_size - 258` merges from the corpus. vocab_size must be at
  // least 258 (specials + bytes).
  static BpeTokenizer train(std::string_view corpus, std::size_t vocab_size);

  std::vector<TokenId> encode(std::string_view text) const;
  // Decodes ids back to bytes; special tokens decode to nothing.
  std::string decode(std::span<const TokenId> ids) const;

  std::size_t vocab_size() const { return vocab_.size(); }
  std::size_t merge_count() const { return merges_.size(); }
  // Byte string for a token id (specials render as "<|pad|>"/"<|eot|>").
  std::string token_text(TokenId id) const;

  // Serialization for checkpointing alongside model weights.
  std::string serialize() const;
  static std::optional<BpeTokenizer> deserialize(std::string_view data);

 private:
  BpeTokenizer() = default;

  struct Merge {
    TokenId left;
    TokenId right;
    TokenId result;
  };

  std::vector<TokenId> encode_pretoken(std::string_view chunk) const;

  // vocab_[id] = byte string of the token ("" for specials).
  std::vector<std::string> vocab_;
  std::vector<Merge> merges_;
  // rank lookup: key = (left << 32) | right, value = merge index.
  std::vector<std::pair<std::uint64_t, std::size_t>> merge_rank_;

  std::size_t rank_of(TokenId left, TokenId right) const;
};

// Splits text into BPE pre-tokens: "\n" alone, or a run of spaces glued to
// the following non-space run. Exposed for testing.
std::vector<std::string_view> pretokenize(std::string_view text);

}  // namespace wisdom::text
