// N-gram counting over token sequences, shared by BLEU and corpus
// statistics.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace wisdom::text {

// Multiset of n-grams of exactly order `n`. Keys are the constituent tokens
// joined with '\x1f' (a separator that cannot appear inside tokens produced
// by bleu_tokenize).
using NgramCounts = std::unordered_map<std::string, std::int64_t>;

NgramCounts count_ngrams(std::span<const std::string> tokens, std::size_t n);

// Sum over min(candidate[g], reference[g]) — the clipped match count used
// by modified n-gram precision.
std::int64_t clipped_matches(const NgramCounts& candidate,
                             const NgramCounts& reference);

}  // namespace wisdom::text
