// Surface tokenization for the BLEU metric.
//
// BLEU over code needs a stable token stream, not model subwords: we split
// into identifier/number runs and individual punctuation characters, and
// keep one newline marker per line break so YAML's line structure counts in
// the n-gram overlap (an indentation-destroying prediction should not get
// full 4-gram credit).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wisdom::text {

// "name: openssh-server\n" -> {"name", ":", "openssh", "-", "server", "<nl>"}
std::vector<std::string> bleu_tokenize(std::string_view text);

}  // namespace wisdom::text
