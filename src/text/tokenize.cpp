#include "text/tokenize.hpp"

#include <cctype>

namespace wisdom::text {

std::vector<std::string> bleu_tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    if (c == '\n') {
      tokens.emplace_back("<nl>");
      ++i;
      continue;
    }
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    if (std::isalnum(c) || c == '_') {
      std::size_t start = i;
      while (i < text.size()) {
        unsigned char k = static_cast<unsigned char>(text[i]);
        if (!std::isalnum(k) && k != '_') break;
        ++i;
      }
      tokens.emplace_back(text.substr(start, i - start));
      continue;
    }
    tokens.emplace_back(text.substr(i, 1));
    ++i;
  }
  return tokens;
}

}  // namespace wisdom::text
