#include "text/ngram.hpp"

#include <algorithm>

namespace wisdom::text {

NgramCounts count_ngrams(std::span<const std::string> tokens, std::size_t n) {
  NgramCounts counts;
  if (n == 0 || tokens.size() < n) return counts;
  for (std::size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string key;
    for (std::size_t j = 0; j < n; ++j) {
      if (j) key += '\x1f';
      key += tokens[i + j];
    }
    counts[key]++;
  }
  return counts;
}

std::int64_t clipped_matches(const NgramCounts& candidate,
                             const NgramCounts& reference) {
  std::int64_t matches = 0;
  for (const auto& [gram, count] : candidate) {
    auto it = reference.find(gram);
    if (it != reference.end()) matches += std::min(count, it->second);
  }
  return matches;
}

}  // namespace wisdom::text
