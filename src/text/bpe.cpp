#include "text/bpe.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/io.hpp"

namespace wisdom::text {

namespace util = wisdom::util;

namespace {

constexpr TokenId byte_token(unsigned char b) {
  return BpeTokenizer::kSpecialCount + static_cast<TokenId>(b);
}

constexpr std::uint64_t pair_key(TokenId left, TokenId right) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(left)) << 32) |
         static_cast<std::uint32_t>(right);
}

}  // namespace

std::vector<std::string_view> pretokenize(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '\n' || c == '\t') {
      out.push_back(text.substr(i, 1));
      ++i;
      continue;
    }
    std::size_t start = i;
    while (i < text.size() && text[i] == ' ') ++i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\n' &&
           text[i] != '\t')
      ++i;
    out.push_back(text.substr(start, i - start));
  }
  return out;
}

BpeTokenizer BpeTokenizer::train(std::string_view corpus,
                                 std::size_t vocab_size) {
  BpeTokenizer tok;
  // Base vocabulary: specials then bytes.
  tok.vocab_.resize(kSpecialCount);
  for (int b = 0; b < 256; ++b)
    tok.vocab_.push_back(std::string(1, static_cast<char>(b)));
  assert(vocab_size >= tok.vocab_.size());

  // Unique pre-tokens with counts.
  std::unordered_map<std::string, std::int64_t> word_counts;
  for (std::string_view w : pretokenize(corpus)) word_counts[std::string(w)]++;

  struct Word {
    std::vector<TokenId> ids;
    std::int64_t count;
  };
  std::vector<Word> words;
  words.reserve(word_counts.size());
  for (const auto& [text, count] : word_counts) {
    Word w;
    w.count = count;
    w.ids.reserve(text.size());
    for (unsigned char c : text) w.ids.push_back(byte_token(c));
    words.push_back(std::move(w));
  }
  // Deterministic ordering regardless of hash-map iteration order.
  std::sort(words.begin(), words.end(), [](const Word& a, const Word& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.ids < b.ids;
  });

  while (tok.vocab_.size() < vocab_size) {
    // Count adjacent pairs.
    std::unordered_map<std::uint64_t, std::int64_t> pair_counts;
    for (const Word& w : words) {
      for (std::size_t i = 0; i + 1 < w.ids.size(); ++i)
        pair_counts[pair_key(w.ids[i], w.ids[i + 1])] += w.count;
    }
    // Best pair: highest count, ties broken by smallest key for determinism.
    std::uint64_t best_key = 0;
    std::int64_t best_count = 1;  // require count >= 2
    for (const auto& [key, count] : pair_counts) {
      if (count > best_count || (count == best_count && key < best_key)) {
        best_key = key;
        best_count = count;
      }
    }
    if (best_count < 2) break;

    TokenId left = static_cast<TokenId>(best_key >> 32);
    TokenId right = static_cast<TokenId>(best_key & 0xFFFFFFFF);
    TokenId result = static_cast<TokenId>(tok.vocab_.size());
    tok.vocab_.push_back(tok.vocab_[static_cast<std::size_t>(left)] +
                         tok.vocab_[static_cast<std::size_t>(right)]);
    tok.merges_.push_back({left, right, result});

    // Apply the merge in place.
    for (Word& w : words) {
      std::size_t write = 0;
      for (std::size_t read = 0; read < w.ids.size(); ++read) {
        if (read + 1 < w.ids.size() && w.ids[read] == left &&
            w.ids[read + 1] == right) {
          w.ids[write++] = result;
          ++read;
        } else {
          w.ids[write++] = w.ids[read];
        }
      }
      w.ids.resize(write);
    }
  }

  tok.merge_rank_.reserve(tok.merges_.size());
  for (std::size_t r = 0; r < tok.merges_.size(); ++r) {
    tok.merge_rank_.emplace_back(
        pair_key(tok.merges_[r].left, tok.merges_[r].right), r);
  }
  std::sort(tok.merge_rank_.begin(), tok.merge_rank_.end());
  return tok;
}

std::size_t BpeTokenizer::rank_of(TokenId left, TokenId right) const {
  std::uint64_t key = pair_key(left, right);
  auto it = std::lower_bound(
      merge_rank_.begin(), merge_rank_.end(), key,
      [](const auto& entry, std::uint64_t k) { return entry.first < k; });
  if (it != merge_rank_.end() && it->first == key) return it->second;
  return static_cast<std::size_t>(-1);
}

std::vector<TokenId> BpeTokenizer::encode_pretoken(
    std::string_view chunk) const {
  std::vector<TokenId> ids;
  ids.reserve(chunk.size());
  for (unsigned char c : chunk) ids.push_back(byte_token(c));
  // Repeatedly apply the lowest-rank merge present.
  for (;;) {
    std::size_t best_rank = static_cast<std::size_t>(-1);
    std::size_t best_pos = 0;
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      std::size_t rank = rank_of(ids[i], ids[i + 1]);
      if (rank < best_rank) {
        best_rank = rank;
        best_pos = i;
      }
    }
    if (best_rank == static_cast<std::size_t>(-1)) break;
    ids[best_pos] = merges_[best_rank].result;
    ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(best_pos) + 1);
  }
  return ids;
}

std::vector<TokenId> BpeTokenizer::encode(std::string_view text) const {
  std::vector<TokenId> out;
  out.reserve(text.size() / 3);
  for (std::string_view chunk : pretokenize(text)) {
    std::vector<TokenId> ids = encode_pretoken(chunk);
    out.insert(out.end(), ids.begin(), ids.end());
  }
  return out;
}

std::string BpeTokenizer::decode(std::span<const TokenId> ids) const {
  std::string out;
  for (TokenId id : ids) {
    if (id < kSpecialCount || static_cast<std::size_t>(id) >= vocab_.size())
      continue;
    out += vocab_[static_cast<std::size_t>(id)];
  }
  return out;
}

std::string BpeTokenizer::token_text(TokenId id) const {
  if (id == kPad) return "<|pad|>";
  if (id == kEndOfText) return "<|eot|>";
  if (id < 0 || static_cast<std::size_t>(id) >= vocab_.size()) return "<|?|>";
  return vocab_[static_cast<std::size_t>(id)];
}

std::string BpeTokenizer::serialize() const {
  std::string out;
  util::put_u32(out, 0x42504531);  // "BPE1"
  util::put_u64(out, merges_.size());
  for (const Merge& m : merges_) {
    util::put_u32(out, static_cast<std::uint32_t>(m.left));
    util::put_u32(out, static_cast<std::uint32_t>(m.right));
  }
  return out;
}

std::optional<BpeTokenizer> BpeTokenizer::deserialize(std::string_view data) {
  util::ByteReader reader(data);
  if (reader.get_u32() != 0x42504531) return std::nullopt;
  std::uint64_t merge_count = reader.get_u64();

  BpeTokenizer tok;
  tok.vocab_.resize(kSpecialCount);
  for (int b = 0; b < 256; ++b)
    tok.vocab_.push_back(std::string(1, static_cast<char>(b)));
  for (std::uint64_t i = 0; i < merge_count; ++i) {
    TokenId left = static_cast<TokenId>(reader.get_u32());
    TokenId right = static_cast<TokenId>(reader.get_u32());
    if (!reader.ok()) return std::nullopt;
    if (left < 0 || right < 0 ||
        static_cast<std::size_t>(left) >= tok.vocab_.size() ||
        static_cast<std::size_t>(right) >= tok.vocab_.size())
      return std::nullopt;
    TokenId result = static_cast<TokenId>(tok.vocab_.size());
    tok.vocab_.push_back(tok.vocab_[static_cast<std::size_t>(left)] +
                         tok.vocab_[static_cast<std::size_t>(right)]);
    tok.merges_.push_back({left, right, result});
  }
  if (!reader.ok() || !reader.at_end()) return std::nullopt;
  tok.merge_rank_.reserve(tok.merges_.size());
  for (std::size_t r = 0; r < tok.merges_.size(); ++r) {
    tok.merge_rank_.emplace_back(
        pair_key(tok.merges_[r].left, tok.merges_[r].right), r);
  }
  std::sort(tok.merge_rank_.begin(), tok.merge_rank_.end());
  return tok;
}

}  // namespace wisdom::text
