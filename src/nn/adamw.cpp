#include "nn/adamw.hpp"

#include <cmath>

namespace wisdom::nn {

void AdamW::step_param(Param& param, float lr, bool decay) {
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float bias1 =
      1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 =
      1.0f - std::pow(b2, static_cast<float>(t_));
  const float wd = decay ? config_.weight_decay : 0.0f;
  for (std::size_t i = 0; i < param.w.size(); ++i) {
    float g = param.g[i];
    param.m[i] = b1 * param.m[i] + (1.0f - b1) * g;
    param.v[i] = b2 * param.v[i] + (1.0f - b2) * g * g;
    float mhat = param.m[i] / bias1;
    float vhat = param.v[i] / bias2;
    param.w[i] -= lr * (mhat / (std::sqrt(vhat) + config_.eps) +
                        wd * param.w[i]);
  }
}

float clip_grad_norm(std::vector<Param*>& params, float max_norm) {
  double sq = 0.0;
  for (Param* p : params) {
    for (float g : p->g) sq += static_cast<double>(g) * g;
  }
  float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    float scale = max_norm / norm;
    for (Param* p : params) {
      for (float& g : p->g) g *= scale;
    }
  }
  return norm;
}

}  // namespace wisdom::nn
