#include "nn/schedule.hpp"

#include <algorithm>
#include <cmath>

namespace wisdom::nn {

float LrSchedule::at(std::int64_t step) const {
  if (warmup_steps > 0 && step < warmup_steps) {
    return base_lr * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps);
  }
  std::int64_t decay_total = std::max<std::int64_t>(1, total_steps - warmup_steps);
  std::int64_t decay_step = std::min(step - warmup_steps, decay_total);
  float progress =
      static_cast<float>(decay_step) / static_cast<float>(decay_total);
  float factor = 1.0f;
  switch (decay) {
    case DecayKind::Linear:
      factor = 1.0f - progress;
      break;
    case DecayKind::Cosine:
      factor = 0.5f * (1.0f + std::cos(3.14159265358979323846f * progress));
      break;
  }
  factor = min_ratio + (1.0f - min_ratio) * factor;
  return base_lr * factor;
}

}  // namespace wisdom::nn
