#include "nn/ops.hpp"

#include <cmath>
#include <cstring>

#include "util/thread_pool.hpp"

namespace wisdom::nn {

namespace {

// Ops below this many multiply-adds stay sequential: pool dispatch costs a
// few microseconds, which swamps small kernels (layernorm-sized matmuls,
// single decode rows on tiny models).
std::size_t g_parallel_threshold = 32 * 1024;

bool pool_worthwhile(std::size_t madds) {
  return madds >= g_parallel_threshold && !util::ThreadPool::in_worker();
}

// Each shard kernel below computes a contiguous slice of the output exactly
// as the full sequential loop would (same per-element accumulation order),
// so the sharded result is bit-identical to the sequential one.

void matmul_rows(const float* a, const float* b, float* c, int i0, int i1,
                 int k, int n) {
  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_cols(const float* a, const float* b, float* c, int m, int k,
                 int j0, int j1, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    std::memset(crow + j0, 0,
                static_cast<std::size_t>(j1 - j0) * sizeof(float));
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int j = j0; j < j1; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_bt_rows(const float* a, const float* b, float* c, int i0, int i1,
                    int k, int n) {
  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

void matmul_bt_cols(const float* a, const float* b, float* c, int m, int k,
                    int j0, int j1, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = j0; j < j1; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

// dA[i][p] += dot(dC row i, B row p): every (i, p) cell is an independent
// dot product, so both row (i) and column (p) sharding are exact.
void matmul_da_rows(const float* b, const float* dc, float* da, int i0,
                    int i1, int k, int n) {
  for (int i = i0; i < i1; ++i) {
    const float* dcrow = dc + static_cast<std::size_t>(i) * n;
    float* darow = da + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const float* brow = b + static_cast<std::size_t>(p) * n;
      float acc = 0.0f;
      for (int j = 0; j < n; ++j) acc += dcrow[j] * brow[j];
      darow[p] += acc;
    }
  }
}

void matmul_da_cols(const float* b, const float* dc, float* da, int m, int k,
                    int p0, int p1, int n) {
  for (int i = 0; i < m; ++i) {
    const float* dcrow = dc + static_cast<std::size_t>(i) * n;
    float* darow = da + static_cast<std::size_t>(i) * k;
    for (int p = p0; p < p1; ++p) {
      const float* brow = b + static_cast<std::size_t>(p) * n;
      float acc = 0.0f;
      for (int j = 0; j < n; ++j) acc += dcrow[j] * brow[j];
      darow[p] += acc;
    }
  }
}

// dB[p][j] += sum_i A[i][p] * dC[i][j], sharded over dB rows (p). The i
// loop stays innermost and ascending, so each dB cell accumulates in the
// same order as the sequential kernel — bit-identical, no atomics.
void matmul_db_rows(const float* a, const float* dc, float* db, int p0,
                    int p1, int m, int k, int n) {
  for (int p = p0; p < p1; ++p) {
    float* dbrow = db + static_cast<std::size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = a[static_cast<std::size_t>(i) * k + p];
      if (av == 0.0f) continue;
      const float* dcrow = dc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) dbrow[j] += av * dcrow[j];
    }
  }
}

}  // namespace

std::size_t parallel_threshold() { return g_parallel_threshold; }
void set_parallel_threshold(std::size_t madds) {
  g_parallel_threshold = madds;
}

void matmul(const float* a, const float* b, float* c, int m, int k, int n) {
  const std::size_t madds =
      static_cast<std::size_t>(m) * static_cast<std::size_t>(k) * n;
  if (pool_worthwhile(madds)) {
    util::ThreadPool& pool = util::ThreadPool::global();
    if (pool.size() > 1) {
      if (m > 1) {
        pool.parallel_for(0, m, [&](std::int64_t i0, std::int64_t i1) {
          matmul_rows(a, b, c, static_cast<int>(i0), static_cast<int>(i1), k,
                      n);
        });
      } else {
        pool.parallel_for(0, n, [&](std::int64_t j0, std::int64_t j1) {
          matmul_cols(a, b, c, m, k, static_cast<int>(j0),
                      static_cast<int>(j1), n);
        });
      }
      return;
    }
  }
  matmul_rows(a, b, c, 0, m, k, n);
}

void matmul_bt(const float* a, const float* b, float* c, int m, int k, int n) {
  const std::size_t madds =
      static_cast<std::size_t>(m) * static_cast<std::size_t>(k) * n;
  if (pool_worthwhile(madds)) {
    util::ThreadPool& pool = util::ThreadPool::global();
    if (pool.size() > 1) {
      if (m > 1) {
        pool.parallel_for(0, m, [&](std::int64_t i0, std::int64_t i1) {
          matmul_bt_rows(a, b, c, static_cast<int>(i0), static_cast<int>(i1),
                         k, n);
        });
      } else {
        pool.parallel_for(0, n, [&](std::int64_t j0, std::int64_t j1) {
          matmul_bt_cols(a, b, c, m, k, static_cast<int>(j0),
                         static_cast<int>(j1), n);
        });
      }
      return;
    }
  }
  matmul_bt_rows(a, b, c, 0, m, k, n);
}

void matmul_backward(const float* a, const float* b, const float* dc,
                     float* da, float* db, int m, int k, int n) {
  const std::size_t madds =
      static_cast<std::size_t>(m) * static_cast<std::size_t>(k) * n;
  const bool parallel = pool_worthwhile(madds);
  // dA += dC * B^T
  if (da) {
    bool done = false;
    if (parallel) {
      util::ThreadPool& pool = util::ThreadPool::global();
      if (pool.size() > 1) {
        if (m > 1) {
          pool.parallel_for(0, m, [&](std::int64_t i0, std::int64_t i1) {
            matmul_da_rows(b, dc, da, static_cast<int>(i0),
                           static_cast<int>(i1), k, n);
          });
        } else {
          pool.parallel_for(0, k, [&](std::int64_t p0, std::int64_t p1) {
            matmul_da_cols(b, dc, da, m, k, static_cast<int>(p0),
                           static_cast<int>(p1), n);
          });
        }
        done = true;
      }
    }
    if (!done) matmul_da_rows(b, dc, da, 0, m, k, n);
  }
  // dB += A^T * dC
  if (db) {
    bool done = false;
    if (parallel) {
      util::ThreadPool& pool = util::ThreadPool::global();
      if (pool.size() > 1) {
        pool.parallel_for(0, k, [&](std::int64_t p0, std::int64_t p1) {
          matmul_db_rows(a, dc, db, static_cast<int>(p0),
                         static_cast<int>(p1), m, k, n);
        });
        done = true;
      }
    }
    if (!done) matmul_db_rows(a, dc, db, 0, k, m, k, n);
  }
}

void add_bias(const float* x, const float* bias, float* y, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* xrow = x + static_cast<std::size_t>(i) * n;
    float* yrow = y + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) yrow[j] = xrow[j] + bias[j];
  }
}

void add_bias_backward(const float* dy, float* dbias, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* row = dy + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) dbias[j] += row[j];
  }
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}

void gelu(const float* x, float* y, int n) {
  for (int i = 0; i < n; ++i) {
    float v = x[i];
    float u = kGeluC * (v + 0.044715f * v * v * v);
    y[i] = 0.5f * v * (1.0f + std::tanh(u));
  }
}

void gelu_backward(const float* x, const float* dy, float* dx, int n) {
  for (int i = 0; i < n; ++i) {
    float v = x[i];
    float u = kGeluC * (v + 0.044715f * v * v * v);
    float t = std::tanh(u);
    float du = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
    float grad = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
    dx[i] += dy[i] * grad;
  }
}

void layernorm(const float* x, const float* gain, const float* bias, float* y,
               float* mean, float* rstd, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* xr = x + static_cast<std::size_t>(i) * n;
    float* yr = y + static_cast<std::size_t>(i) * n;
    float mu = 0.0f;
    for (int j = 0; j < n; ++j) mu += xr[j];
    mu /= static_cast<float>(n);
    float var = 0.0f;
    for (int j = 0; j < n; ++j) {
      float d = xr[j] - mu;
      var += d * d;
    }
    var /= static_cast<float>(n);
    float rs = 1.0f / std::sqrt(var + 1e-5f);
    mean[i] = mu;
    rstd[i] = rs;
    for (int j = 0; j < n; ++j)
      yr[j] = (xr[j] - mu) * rs * gain[j] + bias[j];
  }
}

void layernorm_backward(const float* x, const float* gain, const float* mean,
                        const float* rstd, const float* dy, float* dx,
                        float* dgain, float* dbias, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* xr = x + static_cast<std::size_t>(i) * n;
    const float* dyr = dy + static_cast<std::size_t>(i) * n;
    float* dxr = dx + static_cast<std::size_t>(i) * n;
    const float mu = mean[i];
    const float rs = rstd[i];

    float sum_dnorm = 0.0f;
    float sum_dnorm_xhat = 0.0f;
    for (int j = 0; j < n; ++j) {
      float xhat = (xr[j] - mu) * rs;
      float dnorm = dyr[j] * gain[j];
      sum_dnorm += dnorm;
      sum_dnorm_xhat += dnorm * xhat;
      dgain[j] += dyr[j] * xhat;
      dbias[j] += dyr[j];
    }
    const float inv_n = 1.0f / static_cast<float>(n);
    for (int j = 0; j < n; ++j) {
      float xhat = (xr[j] - mu) * rs;
      float dnorm = dyr[j] * gain[j];
      dxr[j] += rs * (dnorm - inv_n * sum_dnorm - xhat * inv_n * sum_dnorm_xhat);
    }
  }
}

void softmax(const float* x, float* y, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* xr = x + static_cast<std::size_t>(i) * n;
    float* yr = y + static_cast<std::size_t>(i) * n;
    float mx = xr[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, xr[j]);
    float sum = 0.0f;
    for (int j = 0; j < n; ++j) {
      yr[j] = std::exp(xr[j] - mx);
      sum += yr[j];
    }
    float inv = 1.0f / sum;
    for (int j = 0; j < n; ++j) yr[j] *= inv;
  }
}

void softmax_backward(const float* y, const float* dy, float* dx, int m,
                      int n) {
  for (int i = 0; i < m; ++i) {
    const float* yr = y + static_cast<std::size_t>(i) * n;
    const float* dyr = dy + static_cast<std::size_t>(i) * n;
    float* dxr = dx + static_cast<std::size_t>(i) * n;
    float dot = 0.0f;
    for (int j = 0; j < n; ++j) dot += yr[j] * dyr[j];
    for (int j = 0; j < n; ++j) dxr[j] += yr[j] * (dyr[j] - dot);
  }
}

void rotary(float* x, int t, int dim, int rot_dim, int pos0) {
  const int half = rot_dim / 2;
  for (int i = 0; i < t; ++i) {
    float* row = x + static_cast<std::size_t>(i) * dim;
    const float pos = static_cast<float>(pos0 + i);
    for (int j = 0; j < half; ++j) {
      // GPT-NeoX / CodeGen style: channel pairs (j, j + half).
      float theta =
          pos * std::pow(10000.0f, -2.0f * static_cast<float>(j) /
                                        static_cast<float>(rot_dim));
      float c = std::cos(theta);
      float s = std::sin(theta);
      float a = row[j];
      float b = row[j + half];
      row[j] = a * c - b * s;
      row[j + half] = a * s + b * c;
    }
  }
}

void rotary_backward(float* dx, int t, int dim, int rot_dim, int pos0) {
  // The rotation is orthogonal; the gradient transforms by the inverse
  // (negative-angle) rotation.
  const int half = rot_dim / 2;
  for (int i = 0; i < t; ++i) {
    float* row = dx + static_cast<std::size_t>(i) * dim;
    const float pos = static_cast<float>(pos0 + i);
    for (int j = 0; j < half; ++j) {
      float theta =
          pos * std::pow(10000.0f, -2.0f * static_cast<float>(j) /
                                        static_cast<float>(rot_dim));
      float c = std::cos(theta);
      float s = std::sin(theta);
      float a = row[j];
      float b = row[j + half];
      row[j] = a * c + b * s;
      row[j + half] = -a * s + b * c;
    }
  }
}

float cross_entropy(const float* logits, const std::int32_t* targets,
                    int rows, int vocab, int ignore_index, float* dlogits) {
  double loss = 0.0;
  int counted = 0;
  for (int i = 0; i < rows; ++i) {
    if (targets[i] != ignore_index) ++counted;
  }
  if (counted == 0) {
    std::memset(dlogits, 0,
                static_cast<std::size_t>(rows) * vocab * sizeof(float));
    return 0.0f;
  }
  const float inv_count = 1.0f / static_cast<float>(counted);
  for (int i = 0; i < rows; ++i) {
    const float* lr = logits + static_cast<std::size_t>(i) * vocab;
    float* dr = dlogits + static_cast<std::size_t>(i) * vocab;
    if (targets[i] == ignore_index) {
      std::memset(dr, 0, static_cast<std::size_t>(vocab) * sizeof(float));
      continue;
    }
    float mx = lr[0];
    for (int j = 1; j < vocab; ++j) mx = std::max(mx, lr[j]);
    float sum = 0.0f;
    for (int j = 0; j < vocab; ++j) {
      dr[j] = std::exp(lr[j] - mx);
      sum += dr[j];
    }
    const float inv_sum = 1.0f / sum;
    const int target = targets[i];
    loss -= std::log(static_cast<double>(dr[target]) * inv_sum);
    for (int j = 0; j < vocab; ++j) {
      float p = dr[j] * inv_sum;
      dr[j] = (p - (j == target ? 1.0f : 0.0f)) * inv_count;
    }
  }
  return static_cast<float>(loss / counted);
}

void embedding(const float* table, const std::int32_t* ids, float* out,
               int count, int dim) {
  for (int i = 0; i < count; ++i) {
    std::memcpy(out + static_cast<std::size_t>(i) * dim,
                table + static_cast<std::size_t>(ids[i]) * dim,
                static_cast<std::size_t>(dim) * sizeof(float));
  }
}

void embedding_backward(const std::int32_t* ids, const float* dout,
                        float* dtable, int count, int dim) {
  for (int i = 0; i < count; ++i) {
    const float* src = dout + static_cast<std::size_t>(i) * dim;
    float* dst = dtable + static_cast<std::size_t>(ids[i]) * dim;
    for (int j = 0; j < dim; ++j) dst[j] += src[j];
  }
}

}  // namespace wisdom::nn
