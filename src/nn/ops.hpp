// Forward and backward kernels for the decoder-only transformer.
//
// Conventions:
//   * all matrices are row-major; `rows x cols` given explicitly;
//   * forward functions write outputs, backward functions ACCUMULATE into
//     gradient buffers (callers zero them once per step), matching the
//     "+=" semantics gradients need when a tensor fans out;
//   * every backward takes the same geometry as its forward plus the
//     upstream gradient.
//
// Each kernel is unit-tested against finite differences (see
// tests/nn_test.cpp), which is what makes a hand-written backprop stack
// trustworthy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wisdom::nn {

// The matmul kernels below run on util::ThreadPool::global() when the op's
// multiply-add count reaches this threshold (and the pool has more than one
// lane); smaller ops run sequentially to avoid dispatch overhead. Sharding
// is deterministic, so parallel results are bit-identical to sequential
// ones at any thread count.
std::size_t parallel_threshold();
void set_parallel_threshold(std::size_t madds);

// C[m x n] = A[m x k] * B[k x n]
void matmul(const float* a, const float* b, float* c, int m, int k, int n);
// C[m x n] = A[m x k] * B^T  where B is [n x k]
void matmul_bt(const float* a, const float* b, float* c, int m, int k, int n);
// dA[m x k] += dC[m x n] * B^T ; dB[k x n] += A^T * dC
void matmul_backward(const float* a, const float* b, const float* dc,
                     float* da, float* db, int m, int k, int n);

// y[m x n] = x[m x n] + bias[n] (broadcast over rows); in-place allowed.
void add_bias(const float* x, const float* bias, float* y, int m, int n);
// dbias[n] += column sums of dy.
void add_bias_backward(const float* dy, float* dbias, int m, int n);

// GELU (tanh approximation, as in GPT/CodeGen).
void gelu(const float* x, float* y, int n);
void gelu_backward(const float* x, const float* dy, float* dx, int n);

// Row-wise layer normalization with gain/bias.
// mean/rstd are per-row caches of length m for the backward pass.
void layernorm(const float* x, const float* gain, const float* bias, float* y,
               float* mean, float* rstd, int m, int n);
void layernorm_backward(const float* x, const float* gain, const float* mean,
                        const float* rstd, const float* dy, float* dx,
                        float* dgain, float* dbias, int m, int n);

// Row-wise softmax; backward uses the forward output.
void softmax(const float* x, float* y, int m, int n);
void softmax_backward(const float* y, const float* dy, float* dx, int m,
                      int n);

// Rotary position embedding over the first `rot_dim` channels of each
// head-sized row (rot_dim even). x is [t x dim] for one head; position of
// row i is pos0 + i. In-place rotation; backward is the inverse rotation.
void rotary(float* x, int t, int dim, int rot_dim, int pos0);
void rotary_backward(float* dx, int t, int dim, int rot_dim, int pos0);

// Fused softmax + cross-entropy over logits [rows x vocab] against integer
// targets; targets equal to `ignore_index` contribute neither loss nor
// gradient. Returns mean loss over counted rows and writes dlogits
// (already divided by the count). probs is scratch of the same size as
// logits.
float cross_entropy(const float* logits, const std::int32_t* targets,
                    int rows, int vocab, int ignore_index, float* dlogits);

// Embedding lookup / scatter-add.
void embedding(const float* table, const std::int32_t* ids, float* out,
               int count, int dim);
void embedding_backward(const std::int32_t* ids, const float* dout,
                        float* dtable, int count, int dim);

}  // namespace wisdom::nn
