// Flat float buffers for the transformer. The model is small enough that a
// minimal representation — contiguous row-major data plus explicit
// dimensions at the call sites — is clearer and faster than a full tensor
// library, and keeps every backward pass auditable.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace wisdom::nn {

using Vec = std::vector<float>;

// A learnable parameter: weights, gradient accumulator, and AdamW moments.
struct Param {
  Vec w;
  Vec g;
  Vec m;
  Vec v;

  explicit Param(std::size_t n = 0) { resize(n); }
  void resize(std::size_t n);
  std::size_t size() const { return w.size(); }
  void zero_grad();
};

// Normal(0, std) initialization.
void init_normal(Vec& w, util::Rng& rng, float std);
// Ones / zeros (layernorm gain / biases).
void fill(Vec& w, float value);

}  // namespace wisdom::nn
