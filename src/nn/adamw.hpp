// AdamW optimizer (decoupled weight decay), the optimizer the paper's
// HuggingFace training stack uses by default.
#pragma once

#include "nn/tensor.hpp"

namespace wisdom::nn {

struct AdamWConfig {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
};

class AdamW {
 public:
  explicit AdamW(AdamWConfig config = {}) : config_(config) {}

  // Applies one update to `param` at learning rate `lr`, advancing the
  // bias-correction step only when `advance_step` (call with true on the
  // first param of each optimizer step).
  void step_param(Param& param, float lr, bool decay = true);
  void begin_step() { ++t_; }
  std::int64_t steps() const { return t_; }

 private:
  AdamWConfig config_;
  std::int64_t t_ = 0;
};

// Global-norm gradient clipping across a set of parameters; returns the
// pre-clip norm.
float clip_grad_norm(std::vector<Param*>& params, float max_norm);

}  // namespace wisdom::nn
