// Learning-rate schedules. The paper pre-trains with a linearly decreasing
// schedule and fine-tunes with a cosine decreasing schedule; both include a
// short warmup here.
#pragma once

#include <cstdint>

namespace wisdom::nn {

enum class DecayKind { Linear, Cosine };

struct LrSchedule {
  float base_lr = 5e-5f;  // the paper's value for both phases
  std::int64_t warmup_steps = 0;
  std::int64_t total_steps = 1;
  DecayKind decay = DecayKind::Linear;
  // Floor as a fraction of base_lr.
  float min_ratio = 0.0f;

  float at(std::int64_t step) const;
};

}  // namespace wisdom::nn
