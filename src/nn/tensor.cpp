#include "nn/tensor.hpp"

#include <algorithm>

namespace wisdom::nn {

void Param::resize(std::size_t n) {
  w.assign(n, 0.0f);
  g.assign(n, 0.0f);
  m.assign(n, 0.0f);
  v.assign(n, 0.0f);
}

void Param::zero_grad() { std::fill(g.begin(), g.end(), 0.0f); }

void init_normal(Vec& w, util::Rng& rng, float std) {
  for (float& x : w) x = static_cast<float>(rng.normal()) * std;
}

void fill(Vec& w, float value) { std::fill(w.begin(), w.end(), value); }

}  // namespace wisdom::nn
