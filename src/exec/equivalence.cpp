#include "exec/equivalence.hpp"

namespace wisdom::exec {

HostState baseline_host() {
  HostState host;
  host.hostname = "node-01";
  host.timezone = "UTC";
  host.packages = {"curl", "openssh-server", "python3"};
  host.services["sshd"] = {true, true, 0};
  host.services["crond"] = {true, true, 0};
  host.users = {"root", "deploy"};
  host.groups = {"root", "deploy", "wheel"};
  FileState sshd;
  sshd.content = "Port 22\nPermitRootLogin yes\n";
  sshd.mode = "0600";
  host.files["/etc/ssh/sshd_config"] = sshd;
  FileState motd;
  motd.content = "welcome\n";
  host.files["/etc/motd"] = motd;
  FileState www;
  www.is_directory = true;
  host.files["/var/www/html"] = www;
  host.open_ports = {"22"};
  return host;
}

Equivalence execution_equivalence(std::string_view prediction,
                                  std::string_view gold) {
  HostState gold_host = baseline_host();
  TaskResult gold_result = execute_text(gold, gold_host);
  if (!gold_result.ran()) return Equivalence::Unscorable;

  HostState pred_host = baseline_host();
  TaskResult pred_result = execute_text(prediction, pred_host);
  if (pred_result.status == TaskStatus::Unsupported)
    return Equivalence::Unscorable;
  if (!pred_result.ran()) return Equivalence::PredFailed;

  return gold_host == pred_host ? Equivalence::Equivalent
                                : Equivalence::Different;
}

void EquivalenceStats::add(Equivalence e) {
  switch (e) {
    case Equivalence::Equivalent: ++equivalent; break;
    case Equivalence::Different: ++different; break;
    case Equivalence::PredFailed: ++pred_failed; break;
    case Equivalence::Unscorable: ++unscorable; break;
  }
}

}  // namespace wisdom::exec
