// Execution-based equivalence: the evaluation the paper rules out on real
// infrastructure ("it would be impractical to evaluate a task that installs
// a package on a number of remote hosts by executing it"), made practical
// on the simulated node. Two snippets are execution-equivalent when,
// started from identical baseline hosts, both run to completion and leave
// the hosts in identical states.
#pragma once

#include <optional>
#include <string_view>

#include "exec/executor.hpp"

namespace wisdom::exec {

// Baseline host used by the metric: a plausible half-configured server, so
// that removals and idempotent re-runs are observable (an empty host would
// make `state: absent` a universal no-op).
HostState baseline_host();

enum class Equivalence {
  Equivalent,    // both ran; final states identical
  Different,     // both ran; final states differ
  PredFailed,    // gold ran, prediction failed to execute
  Unscorable,    // gold failed or touched unsimulated modules
};

Equivalence execution_equivalence(std::string_view prediction,
                                  std::string_view gold);

// Aggregate over samples: fraction of scorable samples that are
// equivalent (the execution analog of Exact Match — stricter than Ansible
// Aware on values, looser on key spelling).
struct EquivalenceStats {
  std::size_t equivalent = 0;
  std::size_t different = 0;
  std::size_t pred_failed = 0;
  std::size_t unscorable = 0;

  void add(Equivalence e);
  std::size_t scorable() const {
    return equivalent + different + pred_failed;
  }
  double rate() const {
    return scorable() == 0
               ? 0.0
               : static_cast<double>(equivalent) /
                     static_cast<double>(scorable());
  }
};

}  // namespace wisdom::exec
