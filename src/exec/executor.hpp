// Task execution against a simulated HostState.
//
// Implements the effective semantics of the high-frequency catalog modules
// (packaging, services, files, users, firewall, commands, facts). Modules
// outside the implemented set return Unsupported — the equivalence metric
// treats those samples as unscorable rather than wrong, mirroring how an
// execution-based harness would have to skip tasks touching resources it
// cannot provision.
#pragma once

#include <string>
#include <string_view>

#include "ansible/model.hpp"
#include "exec/host_state.hpp"

namespace wisdom::exec {

enum class TaskStatus {
  Ok,           // ran, no state change
  Changed,      // ran, state changed
  Failed,       // ran and failed (bad arguments, fail module, ...)
  Unsupported,  // module not modelled by the simulator
};

struct TaskResult {
  TaskStatus status = TaskStatus::Ok;
  std::string message;
  bool ran() const {
    return status == TaskStatus::Ok || status == TaskStatus::Changed;
  }
};

// Executes one structured task against the host.
TaskResult execute_task(const ansible::Task& task, HostState& host);

// Parses `yaml_text` (a task mapping, a task list, or a playbook) and
// executes every contained task in order. Returns Failed on the first
// failure (remaining tasks are not run, as Ansible would stop), Unsupported
// if any task was skipped, Changed if anything changed, Ok otherwise.
TaskResult execute_text(std::string_view yaml_text, HostState& host);

}  // namespace wisdom::exec
