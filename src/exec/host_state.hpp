// A simulated managed node.
//
// The paper's evaluation section opens with: "since the generated ansible
// task ... always has high dependency on external resources, it is not
// practical to evaluate the correctness of a task by executing it". That
// is true of real infrastructure — but a reproduction built on a synthetic
// substrate can close exactly this gap: HostState models the managed
// node's observable state (packages, services, files, users, firewall,
// ...) and the executor applies module semantics to it, enabling the
// execution-based equivalence metric in equivalence.hpp.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace wisdom::exec {

struct FileState {
  std::string content;  // literal content or a provenance tag such as
                        // "template:src.j2" / "download:https://..."
  std::string mode;
  std::string owner;
  std::string group;
  bool is_directory = false;

  bool operator==(const FileState&) const = default;
};

struct ServiceState {
  bool running = false;
  bool enabled = false;
  int restarts = 0;  // observable effect of `state: restarted`

  bool operator==(const ServiceState&) const = default;
};

struct HostState {
  std::set<std::string> packages;       // os packages; "pip:x"/"npm:x" for
                                        // language package managers
  std::map<std::string, ServiceState> services;
  std::map<std::string, FileState> files;
  std::set<std::string> users;
  std::set<std::string> groups;
  std::map<std::string, std::string> sysctl;
  std::map<std::string, std::string> facts;  // set_fact results
  std::set<std::string> open_ports;          // ufw/firewalld/iptables
  std::set<std::string> mounts;
  std::vector<std::string> command_journal;  // command/shell/raw/script
  std::string hostname;
  std::string timezone;
  bool rebooted = false;

  bool operator==(const HostState&) const = default;

  // Human-readable dump (tests, debugging).
  std::string to_string() const;
};

}  // namespace wisdom::exec
