#include "exec/executor.hpp"

#include <vector>

#include "ansible/catalog.hpp"
#include "ansible/freeform.hpp"
#include "util/strings.hpp"
#include "yaml/parse.hpp"

namespace wisdom::exec {

namespace ansible = wisdom::ansible;
namespace util = wisdom::util;
namespace yaml = wisdom::yaml;

namespace {

// Argument accessor over the (possibly legacy k=v) module args.
class Args {
 public:
  explicit Args(const yaml::Node& raw) {
    if (raw.is_str() && ansible::looks_like_kv_args(raw.as_str())) {
      parsed_ = ansible::parse_free_form(raw.as_str()).params;
      node_ = &parsed_;
    } else {
      node_ = &raw;
    }
  }

  bool is_map() const { return node_->is_map(); }
  bool is_string() const { return node_->is_str(); }
  std::string free_text() const {
    return node_->is_str() ? node_->as_str() : std::string();
  }

  std::string str(std::string_view key, std::string fallback = "") const {
    if (!node_->is_map()) return fallback;
    const yaml::Node* v = node_->find(key);
    if (!v || !v->is_scalar()) return fallback;
    return v->scalar_text();
  }

  bool boolean(std::string_view key, bool fallback = false) const {
    if (!node_->is_map()) return fallback;
    const yaml::Node* v = node_->find(key);
    if (!v) return fallback;
    if (v->is_bool()) return v->as_bool();
    return fallback;
  }

  bool has(std::string_view key) const {
    return node_->is_map() && node_->has(key);
  }

  // A parameter that accepts one name or a list of names (apt's `name`).
  std::vector<std::string> list(std::string_view key) const {
    std::vector<std::string> out;
    if (!node_->is_map()) return out;
    const yaml::Node* v = node_->find(key);
    if (!v) return out;
    if (v->is_seq()) {
      for (const yaml::Node& item : v->items()) {
        if (item.is_scalar()) out.push_back(item.scalar_text());
      }
    } else if (v->is_scalar()) {
      out.push_back(v->scalar_text());
    }
    return out;
  }

 private:
  const yaml::Node* node_ = nullptr;
  yaml::Node parsed_;
};

TaskResult ok_or_changed(bool changed, std::string message = "") {
  return {changed ? TaskStatus::Changed : TaskStatus::Ok,
          std::move(message)};
}

TaskResult failed(std::string message) {
  return {TaskStatus::Failed, std::move(message)};
}

TaskResult unsupported(const std::string& module) {
  return {TaskStatus::Unsupported, "module not simulated: " + module};
}

// --- module semantics -------------------------------------------------------

TaskResult run_package(const Args& args, HostState& host,
                       std::string_view prefix) {
  std::vector<std::string> names = args.list("name");
  if (names.empty()) return failed("package: missing name");
  std::string state = args.str("state", "present");
  bool changed = false;
  for (const std::string& raw : names) {
    std::string pkg = std::string(prefix) + raw;
    if (state == "absent" || state == "removed") {
      changed |= host.packages.erase(pkg) > 0;
    } else {  // present / latest / installed: ensure installed
      changed |= host.packages.insert(pkg).second;
      if (state == "latest") changed = true;  // upgrade counts as a change
    }
  }
  return ok_or_changed(changed);
}

TaskResult run_service(const Args& args, HostState& host) {
  std::string name = args.str("name");
  if (name.empty()) return failed("service: missing name");
  ServiceState& svc = host.services[name];
  bool changed = false;
  std::string state = args.str("state");
  if (state == "started") {
    changed |= !svc.running;
    svc.running = true;
  } else if (state == "stopped") {
    changed |= svc.running;
    svc.running = false;
  } else if (state == "restarted") {
    svc.running = true;
    ++svc.restarts;
    changed = true;
  } else if (state == "reloaded") {
    changed = true;
  } else if (!state.empty()) {
    return failed("service: bad state " + state);
  }
  if (args.has("enabled")) {
    bool enable = args.boolean("enabled");
    changed |= svc.enabled != enable;
    svc.enabled = enable;
  }
  return ok_or_changed(changed);
}

void apply_file_attrs(const Args& args, FileState& file) {
  if (args.has("mode")) file.mode = args.str("mode");
  if (args.has("owner")) file.owner = args.str("owner");
  if (args.has("group")) file.group = args.str("group");
}

TaskResult run_copy_like(const Args& args, HostState& host,
                         std::string_view tag) {
  std::string dest = args.str("dest");
  if (dest.empty()) return failed("copy/template: missing dest");
  FileState next;
  if (args.has("content")) {
    next.content = args.str("content");
  } else {
    next.content = std::string(tag) + ":" + args.str("src");
  }
  apply_file_attrs(args, next);
  FileState& current = host.files[dest];
  bool changed = !(current == next);
  current = next;
  return ok_or_changed(changed);
}

TaskResult run_file(const Args& args, HostState& host) {
  std::string path = args.str("path");
  if (path.empty()) return failed("file: missing path");
  std::string state = args.str("state", "file");
  bool changed = false;
  if (state == "absent") {
    changed = host.files.erase(path) > 0;
    return ok_or_changed(changed);
  }
  auto it = host.files.find(path);
  if (it == host.files.end()) {
    if (state == "file") {
      // `state: file` does not create; it asserts existence.
      return failed("file: path does not exist: " + path);
    }
    changed = true;
    it = host.files.emplace(path, FileState{}).first;
  }
  FileState before = it->second;
  it->second.is_directory = (state == "directory");
  apply_file_attrs(args, it->second);
  changed |= !(before == it->second);
  return ok_or_changed(changed);
}

TaskResult run_lineinfile(const Args& args, HostState& host) {
  std::string path = args.str("path");
  if (path.empty()) return failed("lineinfile: missing path");
  std::string line = args.str("line");
  std::string state = args.str("state", "present");
  FileState& file = host.files[path];
  bool present = util::contains(file.content, line);
  if (state == "present") {
    if (line.empty()) return failed("lineinfile: missing line");
    if (present) return ok_or_changed(false);
    if (!file.content.empty() && file.content.back() != '\n')
      file.content += '\n';
    file.content += line + "\n";
    return ok_or_changed(true);
  }
  if (!present || line.empty()) return ok_or_changed(false);
  file.content = util::replace_all(file.content, line + "\n", "");
  return ok_or_changed(true);
}

TaskResult run_blockinfile(const Args& args, HostState& host) {
  std::string path = args.str("path");
  if (path.empty()) return failed("blockinfile: missing path");
  std::string block = args.str("block");
  FileState& file = host.files[path];
  if (util::contains(file.content, block)) return ok_or_changed(false);
  file.content += block;
  return ok_or_changed(true);
}

TaskResult run_replace(const Args& args, HostState& host) {
  std::string path = args.str("path");
  std::string pattern = args.str("regexp");
  if (path.empty() || pattern.empty())
    return failed("replace: missing path/regexp");
  FileState& file = host.files[path];
  // Literal-substring semantics (the generator emits literal patterns).
  if (!util::contains(file.content, pattern)) return ok_or_changed(false);
  file.content =
      util::replace_all(file.content, pattern, args.str("replace"));
  return ok_or_changed(true);
}

TaskResult run_command(const Args& args, HostState& host,
                       std::string_view module) {
  std::string cmd =
      args.is_string() ? args.free_text() : args.str("cmd");
  if (cmd.empty() && module == "script") cmd = args.free_text();
  if (cmd.empty()) return failed(std::string(module) + ": missing command");
  // `creates:` idempotency guard.
  std::string creates = args.str("creates");
  if (!creates.empty() && host.files.count(creates))
    return ok_or_changed(false);
  host.command_journal.push_back(cmd);
  if (!creates.empty()) host.files[creates] = FileState{};
  return ok_or_changed(true);
}

TaskResult run_user_group(const Args& args, HostState& host, bool is_user) {
  std::string name = args.str("name");
  if (name.empty()) return failed("user/group: missing name");
  auto& set = is_user ? host.users : host.groups;
  bool changed;
  if (args.str("state", "present") == "absent") {
    changed = set.erase(name) > 0;
  } else {
    changed = set.insert(name).second;
  }
  return ok_or_changed(changed);
}

TaskResult run_firewall(const Args& args, HostState& host,
                        std::string_view module) {
  std::string port = args.str("port");
  std::string service = args.str("service");
  if (module == "iptables") port = args.str("destination_port");
  std::string key = !port.empty() ? port : service;
  if (key.empty()) return failed("firewall: missing port/service");
  std::string state = args.str("state", "enabled");
  std::string rule = args.str("rule", "allow");
  bool open = (module == "ufw") ? (rule == "allow" || rule == "limit")
                                : (state == "enabled" || state == "present");
  bool changed = open ? host.open_ports.insert(key).second
                      : host.open_ports.erase(key) > 0;
  return ok_or_changed(changed);
}

}  // namespace

TaskResult execute_task(const ansible::Task& task, HostState& host) {
  if (task.module.empty()) return failed("task has no module");
  const ansible::ModuleCatalog& catalog = ansible::ModuleCatalog::instance();
  const ansible::ModuleSpec* spec = catalog.resolve(task.module);
  if (!spec) return unsupported(task.module);
  const std::string& m = spec->short_name;
  Args args(task.args);

  if (m == "apt" || m == "yum" || m == "dnf" || m == "package")
    return run_package(args, host, "");
  if (m == "pip") return run_package(args, host, "pip:");
  if (m == "npm") return run_package(args, host, "npm:");
  if (m == "gem") return run_package(args, host, "gem:");
  if (m == "service" || m == "systemd") return run_service(args, host);
  if (m == "copy") return run_copy_like(args, host, "copy");
  if (m == "template") return run_copy_like(args, host, "template");
  if (m == "file") return run_file(args, host);
  if (m == "lineinfile") return run_lineinfile(args, host);
  if (m == "blockinfile") return run_blockinfile(args, host);
  if (m == "replace") return run_replace(args, host);
  if (m == "command" || m == "shell" || m == "raw" || m == "script")
    return run_command(args, host, m);
  if (m == "user") return run_user_group(args, host, true);
  if (m == "group") return run_user_group(args, host, false);
  if (m == "ufw" || m == "firewalld" || m == "iptables")
    return run_firewall(args, host, m);
  if (m == "hostname") {
    std::string name = args.str("name");
    if (name.empty()) return failed("hostname: missing name");
    bool changed = host.hostname != name;
    host.hostname = name;
    return ok_or_changed(changed);
  }
  if (m == "timezone") {
    std::string name = args.str("name");
    if (name.empty()) return failed("timezone: missing name");
    bool changed = host.timezone != name;
    host.timezone = name;
    return ok_or_changed(changed);
  }
  if (m == "sysctl") {
    std::string key = args.str("name");
    if (key.empty()) return failed("sysctl: missing name");
    std::string value = args.str("value");
    bool changed = host.sysctl[key] != value;
    host.sysctl[key] = value;
    return ok_or_changed(changed);
  }
  if (m == "mount") {
    std::string path = args.str("path");
    if (path.empty()) return failed("mount: missing path");
    std::string state = args.str("state", "mounted");
    bool changed = (state == "absent" || state == "unmounted")
                       ? host.mounts.erase(path) > 0
                       : host.mounts.insert(path).second;
    return ok_or_changed(changed);
  }
  if (m == "get_url") {
    std::string dest = args.str("dest");
    if (dest.empty()) return failed("get_url: missing dest");
    FileState next;
    next.content = "download:" + args.str("url");
    apply_file_attrs(args, next);
    bool changed = !(host.files[dest] == next);
    host.files[dest] = next;
    return ok_or_changed(changed);
  }
  if (m == "git") {
    std::string dest = args.str("dest");
    if (dest.empty()) return failed("git: missing dest");
    FileState next;
    next.is_directory = true;
    next.content = "git:" + args.str("repo");
    bool changed = !(host.files[dest] == next);
    host.files[dest] = next;
    return ok_or_changed(changed);
  }
  if (m == "unarchive") {
    std::string dest = args.str("dest");
    if (dest.empty()) return failed("unarchive: missing dest");
    FileState& dir = host.files[dest];
    bool changed = !dir.is_directory ||
                   dir.content != "archive:" + args.str("src");
    dir.is_directory = true;
    dir.content = "archive:" + args.str("src");
    return ok_or_changed(changed);
  }
  if (m == "set_fact") {
    bool changed = false;
    if (task.args.is_map()) {
      for (const auto& [key, value] : task.args.entries()) {
        if (key == "cacheable") continue;
        std::string rendered = value.is_scalar() ? value.scalar_text() : "";
        changed |= host.facts[key] != rendered;
        host.facts[key] = rendered;
      }
    }
    return ok_or_changed(changed);
  }
  if (m == "reboot") {
    host.rebooted = true;
    return ok_or_changed(true);
  }
  if (m == "fail") return failed(args.str("msg", "failed"));
  if (m == "debug" || m == "ping" || m == "setup" || m == "assert" ||
      m == "service_facts" || m == "package_facts" || m == "meta" ||
      m == "wait_for" || m == "wait_for_connection" || m == "pause" ||
      m == "stat" || m == "slurp") {
    return ok_or_changed(false);  // read-only / no-op on host state
  }
  return unsupported(task.module);
}

TaskResult execute_text(std::string_view yaml_text, HostState& host) {
  auto doc = yaml::parse_document(yaml_text);
  if (!doc) return failed("yaml parse error");

  std::vector<ansible::Task> tasks;
  if (doc->is_map()) {
    tasks.push_back(ansible::Task::from_node(*doc));
  } else if (doc->is_seq()) {
    if (ansible::looks_like_playbook(*doc)) {
      auto playbook = ansible::Playbook::from_node(*doc);
      if (!playbook) return failed("bad playbook");
      for (const auto& play : playbook->plays)
        for (const auto& task : play.tasks) tasks.push_back(task);
    } else {
      for (const yaml::Node& item : doc->items())
        tasks.push_back(ansible::Task::from_node(item));
    }
  } else {
    return failed("not a task, task list or playbook");
  }
  if (tasks.empty()) return failed("nothing to execute");

  bool changed = false;
  bool skipped = false;
  for (const ansible::Task& task : tasks) {
    TaskResult result = execute_task(task, host);
    switch (result.status) {
      case TaskStatus::Failed:
        return result;  // Ansible stops the play on failure
      case TaskStatus::Unsupported:
        skipped = true;
        break;
      case TaskStatus::Changed:
        changed = true;
        break;
      case TaskStatus::Ok:
        break;
    }
  }
  if (skipped) return {TaskStatus::Unsupported, "some tasks not simulated"};
  return ok_or_changed(changed);
}

}  // namespace wisdom::exec
