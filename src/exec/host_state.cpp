#include "exec/host_state.hpp"

namespace wisdom::exec {

std::string HostState::to_string() const {
  std::string out;
  out += "packages:";
  for (const auto& p : packages) out += " " + p;
  out += "\nservices:";
  for (const auto& [name, s] : services) {
    out += " " + name + "(" + (s.running ? "up" : "down") +
           (s.enabled ? ",enabled" : "") +
           (s.restarts ? ",restarts=" + std::to_string(s.restarts) : "") +
           ")";
  }
  out += "\nfiles:";
  for (const auto& [path, f] : files) {
    out += " " + path + (f.is_directory ? "/" : "");
    if (!f.mode.empty()) out += "[" + f.mode + "]";
  }
  out += "\nusers:";
  for (const auto& u : users) out += " " + u;
  out += "\ngroups:";
  for (const auto& g : groups) out += " " + g;
  out += "\nports:";
  for (const auto& p : open_ports) out += " " + p;
  out += "\ncommands:";
  for (const auto& c : command_journal) out += " [" + c + "]";
  if (!hostname.empty()) out += "\nhostname: " + hostname;
  if (!timezone.empty()) out += "\ntimezone: " + timezone;
  out += "\n";
  return out;
}

}  // namespace wisdom::exec
