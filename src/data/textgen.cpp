#include "data/textgen.hpp"

#include <array>
#include <cctype>
#include <string_view>

namespace wisdom::data {

namespace {

constexpr std::array<std::string_view, 10> kSubjects = {
    "the server",      "the deployment",  "our infrastructure",
    "the application", "the database",    "the cluster",
    "the service",     "the network",     "the pipeline",
    "the operating system",
};

constexpr std::array<std::string_view, 10> kVerbs = {
    "requires", "manages",  "provides",  "monitors", "restarts",
    "installs", "updates",  "validates", "deploys",  "configures",
};

constexpr std::array<std::string_view, 10> kObjects = {
    "a configuration file", "several packages",   "the web service",
    "user accounts",        "security patches",   "log rotation",
    "network interfaces",   "storage volumes",    "system facts",
    "scheduled backups",
};

constexpr std::array<std::string_view, 6> kAdverbs = {
    "automatically", "reliably", "periodically",
    "in production", "at boot",  "after every release",
};

constexpr std::array<std::string_view, 8> kIdentifiers = {
    "config", "handler", "result", "payload",
    "buffer", "request", "status", "record",
};

constexpr std::array<std::string_view, 6> kFuncNames = {
    "process", "validate", "transform", "parse", "update", "collect",
};

}  // namespace

std::string NlTextGenerator::sentence() {
  std::string s;
  std::string_view subject = kSubjects[rng_.uniform(kSubjects.size())];
  s += subject;
  s[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(s[0])));
  s += " ";
  s += kVerbs[rng_.uniform(kVerbs.size())];
  s += " ";
  s += kObjects[rng_.uniform(kObjects.size())];
  if (rng_.chance(0.5)) {
    s += " ";
    s += kAdverbs[rng_.uniform(kAdverbs.size())];
  }
  s += ".";
  return s;
}

std::string NlTextGenerator::document() {
  std::string doc;
  int sentences = static_cast<int>(rng_.uniform_int(3, 8));
  for (int i = 0; i < sentences; ++i) {
    if (i) doc += " ";
    doc += sentence();
  }
  doc += "\n";
  return doc;
}

std::string CodeTextGenerator::python_function() {
  std::string_view fn = kFuncNames[rng_.uniform(kFuncNames.size())];
  std::string_view var = kIdentifiers[rng_.uniform(kIdentifiers.size())];
  std::string_view arg = kIdentifiers[rng_.uniform(kIdentifiers.size())];
  std::string out;
  out += "def " + std::string(fn) + "_" + std::string(var) + "(" +
         std::string(arg) + "):\n";
  if (rng_.chance(0.5)) {
    out += "    if " + std::string(arg) + " is None:\n";
    out += "        return None\n";
  }
  out += "    " + std::string(var) + " = " + std::string(arg);
  out += rng_.chance(0.5) ? ".strip()\n" : ".lower()\n";
  out += "    return " + std::string(var) + "\n";
  return out;
}

std::string CodeTextGenerator::c_function() {
  std::string_view fn = kFuncNames[rng_.uniform(kFuncNames.size())];
  std::string_view var = kIdentifiers[rng_.uniform(kIdentifiers.size())];
  std::string out;
  out += "int " + std::string(fn) + "_" + std::string(var) + "(int n) {\n";
  out += "    int " + std::string(var) + " = 0;\n";
  out += "    for (int i = 0; i < n; i++) {\n";
  out += "        " + std::string(var) +
         (rng_.chance(0.5) ? " += i;\n" : " += i * i;\n");
  out += "    }\n";
  out += "    return " + std::string(var) + ";\n";
  out += "}\n";
  return out;
}

std::string CodeTextGenerator::document() {
  std::string doc;
  int functions = static_cast<int>(rng_.uniform_int(1, 3));
  bool python = rng_.chance(0.6);
  for (int i = 0; i < functions; ++i) {
    if (i) doc += "\n";
    doc += python ? python_function() : c_function();
  }
  return doc;
}

}  // namespace wisdom::data
