#include "data/packing.hpp"

namespace wisdom::data {

using text::BpeTokenizer;

std::span<const std::int32_t> TokenBatchSet::input(std::size_t i) const {
  return {inputs.data() + i * static_cast<std::size_t>(window),
          static_cast<std::size_t>(window)};
}

std::span<const std::int32_t> TokenBatchSet::target(std::size_t i) const {
  return {targets.data() + i * static_cast<std::size_t>(window),
          static_cast<std::size_t>(window)};
}

namespace {

// Cuts a token stream into (input, shifted-target) windows.
TokenBatchSet window_stream(const std::vector<std::int32_t>& stream,
                            int window) {
  TokenBatchSet set;
  set.window = window;
  if (stream.size() < 2) return set;
  const std::size_t usable = stream.size() - 1;  // last token has no target
  const std::size_t w = static_cast<std::size_t>(window);
  const std::size_t n_windows = (usable + w - 1) / w;
  set.inputs.reserve(n_windows * w);
  set.targets.reserve(n_windows * w);
  for (std::size_t start = 0; start < usable; start += w) {
    for (std::size_t j = 0; j < w; ++j) {
      std::size_t pos = start + j;
      if (pos < usable) {
        set.inputs.push_back(stream[pos]);
        std::int32_t target = stream[pos + 1];
        // Never ask the model to predict padding.
        set.targets.push_back(target == BpeTokenizer::kPad ? -1 : target);
      } else {
        set.inputs.push_back(BpeTokenizer::kPad);
        set.targets.push_back(-1);
      }
    }
  }
  return set;
}

}  // namespace

TokenBatchSet pack_files(const text::BpeTokenizer& tokenizer,
                         std::span<const std::string> files, int window) {
  std::vector<std::int32_t> stream;
  for (const std::string& file : files) {
    std::vector<std::int32_t> ids = tokenizer.encode(file);
    stream.insert(stream.end(), ids.begin(), ids.end());
    stream.push_back(BpeTokenizer::kEndOfText);
  }
  return window_stream(stream, window);
}

TokenBatchSet pack_samples(const text::BpeTokenizer& tokenizer,
                           std::span<const std::string> samples, int window) {
  std::vector<std::int32_t> stream;
  for (const std::string& sample : samples) {
    std::vector<std::int32_t> ids = tokenizer.encode(sample);
    // Left-truncate oversized samples, keeping the completion end (the
    // paper left-truncates inputs larger than the context window).
    if (static_cast<int>(ids.size()) >= window) {
      ids.erase(ids.begin(),
                ids.begin() + (static_cast<std::ptrdiff_t>(ids.size()) -
                               window + 1));
    }
    stream.insert(stream.end(), ids.begin(), ids.end());
    stream.push_back(BpeTokenizer::kEndOfText);
  }
  return window_stream(stream, window);
}

}  // namespace wisdom::data
