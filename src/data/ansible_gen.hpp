// Synthetic Ansible-YAML generator.
//
// Stands in for the paper's crawled Ansible corpus (GitHub / GitLab /
// Google BigQuery / Ansible Galaxy). The generator is driven by the module
// catalog: it picks modules with a Zipfian popularity profile, fills their
// parameters with plausible correlated values, and derives the natural-
// language "name" line from the module and its arguments — the exact
// name -> code correlation the Wisdom models learn to invert. A small
// fraction of samples use short module names or legacy k=v argument
// strings, mirroring the stylistic noise of real crawled repositories.
#pragma once

#include <string>

#include "ansible/catalog.hpp"
#include "util/rng.hpp"
#include "yaml/node.hpp"

namespace wisdom::data {

struct TaskGenOptions {
  bool with_name = true;
  // Probability of attaching extra execution keywords (become, when, ...).
  double keyword_prob = 0.3;
  // Probability of using the short module name instead of the FQCN.
  double short_name_prob = 0.15;
  // Probability of emitting legacy "k=v" argument strings.
  double old_style_prob = 0.04;
  // Probability that a role-task slot becomes an Ansible block (a named
  // group of tasks with optional rescue). The paper's corpus contains
  // blocks but its models are "not specifically trained and tested on"
  // them; default 0 reproduces that, raising it exercises the extension.
  double block_prob = 0.0;
};

class AnsibleGenerator {
 public:
  explicit AnsibleGenerator(util::Rng rng) : rng_(rng) {}

  // One task mapping (name, module, params[, keywords]).
  yaml::Node task(const TaskGenOptions& options = {});
  // A block: name + block/rescue task lists with optional keywords.
  yaml::Node block(const TaskGenOptions& options = {});
  // A role's tasks file: sequence of `count` tasks.
  yaml::Node role_tasks(int count, const TaskGenOptions& options = {});
  // A playbook: one play with name/hosts[/keywords] and `task_count` tasks.
  yaml::Node playbook(int task_count, const TaskGenOptions& options = {});

  // Emitted text forms (canonical style, with document start for files).
  std::string role_tasks_text(int count, const TaskGenOptions& options = {});
  std::string playbook_text(int task_count,
                            const TaskGenOptions& options = {});

  util::Rng& rng() { return rng_; }

 private:
  const ansible::ModuleSpec& pick_module();
  yaml::Node args_for(const ansible::ModuleSpec& module);
  std::string name_for(const ansible::ModuleSpec& module,
                       const yaml::Node& args);
  void maybe_add_keywords(yaml::Node& task_node, double prob);

  util::Rng rng_;
};

}  // namespace wisdom::data
