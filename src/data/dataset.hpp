// Fine-tuning sample extraction and prompt formulation (§Methodology).
//
// From each Galaxy file the pipeline derives samples of the paper's four
// generation types:
//   NL -> PB     : empty context, the combined play+task names as prompt,
//                  the whole (1-2 task) playbook as output.
//   PB+NL -> T   : a playbook with k >= 1 tasks as context, predict task k+1.
//   NL -> T      : empty context, predict the first task of a role.
//   T+NL -> T    : the previous role tasks as context, predict the next one.
//
// Prompt formulation follows Eq. (2): the natural-language prompt is the
// value of the output's own "name" line, so generation is code completion —
// the model sees   context + "- name: <prompt>\n"   and produces the body.
// The prefix-based ablation baseline (CodeGen-prefix in Table V) instead
// frames the input as "context code"/"prompt" sections.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/sources.hpp"
#include "util/rng.hpp"

namespace wisdom::data {

enum class GenerationType {
  NlToPlaybook,   // NL -> PB
  PbNlToTask,     // PB+NL -> T
  NlToTask,       // NL -> T
  TNlToTask,      // T+NL -> T
};

const char* generation_type_label(GenerationType type);

struct FtSample {
  GenerationType type = GenerationType::NlToTask;
  // Preceding YAML (playbook header + earlier tasks, or earlier role
  // tasks); empty for the context-free types.
  std::string context;
  // The natural-language prompt (the name value, or the combined names for
  // playbooks).
  std::string prompt;
  // The "- name: <prompt>" line the model completes, with the indentation
  // the output position requires.
  std::string input_line;
  // Gold completion: everything after the name line.
  std::string target_body;

  // What the model is fed / what metrics compare against.
  std::string model_input() const { return context + input_line; }
  std::string full_target() const { return input_line + target_body; }
};

// Extracts all samples from one parsed Galaxy file (text form). Files that
// fail to parse or have unnamed outputs yield no samples (the paper's
// pipeline validity-checks with PyYAML the same way).
std::vector<FtSample> extract_samples(const std::string& file_text);

// Full corpus extraction + exact-match sample dedup.
std::vector<FtSample> extract_corpus_samples(
    const std::vector<CorpusFile>& files);

struct DatasetSplits {
  std::vector<FtSample> train;
  std::vector<FtSample> valid;
  std::vector<FtSample> test;
};

// Random 80/10/10 split (the paper splits Galaxy this way).
DatasetSplits split_dataset(std::vector<FtSample> samples, std::uint64_t seed,
                            double train_frac = 0.8, double valid_frac = 0.1);

// --- prompt formats ----------------------------------------------------------

enum class PromptFormat {
  NameCompletion,  // Eq. (2): context + name line (the Wisdom format)
  Prefix,          // "context code:"/"prompt:" sections (ablation baseline)
};

// Renders the model input under a format. For NameCompletion this is
// sample.model_input(); for Prefix it wraps the pieces in labelled
// sections and ends with the same name line so decoding starts at the body
// either way.
std::string format_input(const FtSample& sample, PromptFormat format);
// Full training string: input + gold body (+ terminating newline).
std::string format_training_text(const FtSample& sample, PromptFormat format);

}  // namespace wisdom::data
