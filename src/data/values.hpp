// Shared pools of plausible values for the synthetic corpora: package
// names, services, file paths, hosts, users, and so on. Pool sizes are
// deliberately moderate — the learning signal in the real Galaxy data comes
// from heavy repetition of common entities (nginx, /etc/..., port 8080),
// and the scaled-down models need the same repetition to learn the
// name -> module -> parameter correlations.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace wisdom::data {

std::span<const std::string_view> packages();
std::span<const std::string_view> services();
std::span<const std::string_view> config_paths();
std::span<const std::string_view> directories();
std::span<const std::string_view> template_sources();
std::span<const std::string_view> urls();
std::span<const std::string_view> users();
std::span<const std::string_view> groups();
std::span<const std::string_view> host_groups();
std::span<const std::string_view> shell_commands();
std::span<const std::string_view> repos();
std::span<const std::string_view> file_modes();
std::span<const std::string_view> timezones();
std::span<const std::string_view> vyos_lines();
std::span<const std::string_view> ios_lines();

// Zipf-weighted pick from a pool (common entities dominate).
std::string_view pick_zipf(util::Rng& rng,
                           std::span<const std::string_view> pool);
// Uniform pick.
std::string_view pick(util::Rng& rng, std::span<const std::string_view> pool);

int plausible_port(util::Rng& rng);

}  // namespace wisdom::data
