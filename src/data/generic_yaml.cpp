#include "data/generic_yaml.hpp"

#include <string_view>

#include "data/values.hpp"
#include "yaml/emit.hpp"

namespace wisdom::data {

namespace yaml = wisdom::yaml;

namespace {
yaml::Node S(std::string_view s) { return yaml::Node::str(std::string(s)); }

constexpr std::string_view kAppNames[] = {
    "web", "api", "worker", "frontend", "backend", "cache", "queue",
};
constexpr std::string_view kImages[] = {
    "nginx:1.25",       "redis:7",           "postgres:15",
    "node:20-alpine",   "python:3.11-slim",  "example/app:latest",
};
}  // namespace

yaml::Node GenericYamlGenerator::kubernetes_manifest() {
  std::string_view app = kAppNames[rng_.uniform(std::size(kAppNames))];
  yaml::Node doc = yaml::Node::map();
  bool deployment = rng_.chance(0.6);
  doc.set("apiVersion", S(deployment ? "apps/v1" : "v1"));
  doc.set("kind", S(deployment ? "Deployment" : "Service"));

  yaml::Node metadata = yaml::Node::map();
  metadata.set("name", S(std::string(app) + (deployment ? "" : "-svc")));
  yaml::Node labels = yaml::Node::map();
  labels.set("app", S(app));
  metadata.set("labels", labels);
  if (rng_.chance(0.4)) metadata.set("namespace", S("production"));
  doc.set("metadata", metadata);

  yaml::Node spec = yaml::Node::map();
  if (deployment) {
    spec.set("replicas", yaml::Node::integer(rng_.uniform_int(1, 5)));
    yaml::Node selector = yaml::Node::map();
    yaml::Node match = yaml::Node::map();
    match.set("app", S(app));
    selector.set("matchLabels", match);
    spec.set("selector", selector);
    yaml::Node tmpl = yaml::Node::map();
    yaml::Node tmeta = yaml::Node::map();
    tmeta.set("labels", labels);
    tmpl.set("metadata", tmeta);
    yaml::Node pod_spec = yaml::Node::map();
    yaml::Node container = yaml::Node::map();
    container.set("name", S(app));
    container.set("image", S(kImages[rng_.uniform(std::size(kImages))]));
    yaml::Node port = yaml::Node::map();
    port.set("containerPort", yaml::Node::integer(plausible_port(rng_)));
    container.set("ports", yaml::Node::seq({port}));
    if (rng_.chance(0.5)) {
      yaml::Node env_var = yaml::Node::map();
      env_var.set("name", S("LOG_LEVEL"));
      env_var.set("value", S("info"));
      container.set("env", yaml::Node::seq({env_var}));
    }
    pod_spec.set("containers", yaml::Node::seq({container}));
    tmpl.set("spec", pod_spec);
    spec.set("template", tmpl);
  } else {
    yaml::Node selector = yaml::Node::map();
    selector.set("app", S(app));
    spec.set("selector", selector);
    yaml::Node port = yaml::Node::map();
    port.set("port", yaml::Node::integer(80));
    port.set("targetPort", yaml::Node::integer(plausible_port(rng_)));
    spec.set("ports", yaml::Node::seq({port}));
    if (rng_.chance(0.3)) spec.set("type", S("ClusterIP"));
  }
  doc.set("spec", spec);
  return doc;
}

yaml::Node GenericYamlGenerator::ci_pipeline() {
  yaml::Node doc = yaml::Node::map();
  doc.set("name", S(rng_.chance(0.5) ? "CI" : "Build and test"));
  yaml::Node on = yaml::Node::map();
  yaml::Node push = yaml::Node::map();
  push.set("branches", yaml::Node::seq({S("main")}));
  on.set("push", push);
  if (rng_.chance(0.5)) on.set("pull_request", yaml::Node::map());
  doc.set("on", on);

  yaml::Node steps = yaml::Node::seq();
  {
    yaml::Node step = yaml::Node::map();
    step.set("uses", S("actions/checkout@v4"));
    steps.push_back(step);
  }
  if (rng_.chance(0.6)) {
    yaml::Node step = yaml::Node::map();
    step.set("name", S("Set up runtime"));
    step.set("uses", S(rng_.chance(0.5) ? "actions/setup-node@v4"
                                        : "actions/setup-python@v5"));
    steps.push_back(step);
  }
  {
    yaml::Node step = yaml::Node::map();
    step.set("name", S("Run tests"));
    step.set("run", S(rng_.chance(0.5) ? "make test" : "npm test"));
    steps.push_back(step);
  }
  yaml::Node job = yaml::Node::map();
  job.set("runs-on", S("ubuntu-latest"));
  job.set("steps", steps);
  yaml::Node jobs = yaml::Node::map();
  jobs.set("build", job);
  doc.set("jobs", jobs);
  return doc;
}

yaml::Node GenericYamlGenerator::compose_file() {
  yaml::Node doc = yaml::Node::map();
  doc.set("version", S("3.8"));
  yaml::Node services = yaml::Node::map();
  int count = static_cast<int>(rng_.uniform_int(1, 3));
  for (int i = 0; i < count; ++i) {
    std::string_view app = kAppNames[rng_.uniform(std::size(kAppNames))];
    if (services.has(app)) continue;
    yaml::Node svc = yaml::Node::map();
    svc.set("image", S(kImages[rng_.uniform(std::size(kImages))]));
    yaml::Node ports = yaml::Node::seq();
    int port = plausible_port(rng_);
    ports.push_back(S(std::to_string(port) + ":" + std::to_string(port)));
    svc.set("ports", ports);
    if (rng_.chance(0.5)) svc.set("restart", S("unless-stopped"));
    if (rng_.chance(0.4)) {
      yaml::Node env = yaml::Node::map();
      env.set("TZ", S("UTC"));
      svc.set("environment", env);
    }
    services.set(app, svc);
  }
  doc.set("services", services);
  return doc;
}

std::string GenericYamlGenerator::file_text() {
  yaml::Node doc;
  switch (rng_.uniform(3)) {
    case 0: doc = kubernetes_manifest(); break;
    case 1: doc = ci_pipeline(); break;
    default: doc = compose_file(); break;
  }
  yaml::EmitOptions opts;
  opts.document_start = true;
  return yaml::emit(doc, opts);
}

}  // namespace wisdom::data
