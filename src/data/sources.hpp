// Data-source simulators reproducing Table I of the paper:
//
//   | Source       | File Count | YAML Type | Usage |
//   | Galaxy       | 112K       | Ansible   | FT    |
//   | GitLab       | 64K        | Ansible   | PT    |
//   | GitHub + GBQ | 1.1M       | Ansible   | PT    |
//   | GitHub + GBQ | 2.2M       | Generic   | PT    |
//
// File counts are scaled down (1/1000 for the pre-training sources; Galaxy
// is scaled 1/100 so that the fine-tuning split keeps a usable number of
// samples per generation type — the paper's per-type proportions in Table
// VI are preserved either way). Each source has its own style profile:
// Galaxy files are community-vetted (FQCN, no legacy syntax), the crawled
// sources carry short module names and old-style k=v arguments at realistic
// rates.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wisdom::data {

enum class SourceId {
  Galaxy,
  GitLab,
  GitHubGbqAnsible,
  GitHubGbqGeneric,
};

struct SourceSpec {
  SourceId id;
  const char* label;
  std::size_t paper_file_count;   // from Table I
  std::size_t scaled_file_count;  // what we synthesize
  const char* yaml_type;          // "Ansible" | "Generic"
  const char* usage;              // "PT" | "FT"
};

struct CorpusFile {
  std::string text;
  SourceId source = SourceId::Galaxy;
  bool ansible = true;
};

// The four rows of Table I.
std::span<const SourceSpec> table1_sources();

// Synthesizes all files of one source, deterministically from `seed`.
std::vector<CorpusFile> build_source(const SourceSpec& spec,
                                     std::uint64_t seed);

// Convenience corpus bundles used by the pre-training mixes.
struct CorpusBundle {
  std::vector<CorpusFile> files;
  std::size_t total_bytes() const;
  // Concatenation helper for tokenizer training.
  std::string concatenated() const;
};

CorpusBundle ansible_pretraining_corpus(std::uint64_t seed);  // GitLab + GH/GBQ
CorpusBundle generic_yaml_corpus(std::uint64_t seed);         // GH/GBQ generic
CorpusBundle galaxy_corpus(std::uint64_t seed);               // FT source
// "Pile" and "BigQuery code" analogs for the CodeGen baseline mixes.
CorpusBundle nl_corpus(std::uint64_t seed, std::size_t documents = 1600);
CorpusBundle code_corpus(std::uint64_t seed, std::size_t documents = 1200);

}  // namespace wisdom::data
