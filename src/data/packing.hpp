// Token packing for pre-training: "YAML files were packed to fill up a
// context window of 1024, and we used a special separator token to separate
// the files." Files are encoded, joined with the end-of-text separator and
// cut into fixed-size windows; each window yields (input, target) pairs via
// the standard next-token shift.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "text/bpe.hpp"

namespace wisdom::data {

struct TokenBatchSet {
  // Flattened windows, each `window` tokens long.
  std::vector<std::int32_t> inputs;
  std::vector<std::int32_t> targets;  // -1 where the loss is masked
  int window = 0;
  std::size_t count() const {
    return window == 0 ? 0 : inputs.size() / static_cast<std::size_t>(window);
  }
  std::span<const std::int32_t> input(std::size_t i) const;
  std::span<const std::int32_t> target(std::size_t i) const;
};

// Packs whole files into windows (pre-training). The trailing partial
// window is padded; padded positions are masked in the targets.
TokenBatchSet pack_files(const text::BpeTokenizer& tokenizer,
                         std::span<const std::string> files, int window);

// Packs fine-tuning strings: each sample is terminated with the separator
// and packed back to back (samples longer than the window are
// left-truncated, keeping the completion end).
TokenBatchSet pack_samples(const text::BpeTokenizer& tokenizer,
                           std::span<const std::string> samples, int window);

}  // namespace wisdom::data
