// Exact-match deduplication, as in the paper: "We de-duplicated the dataset
// using a simple exact match criterion", applied at both the file and the
// sample level.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/sources.hpp"

namespace wisdom::data {

struct DedupStats {
  std::size_t input = 0;
  std::size_t kept = 0;
  std::size_t removed() const { return input - kept; }
};

// Keeps the first occurrence of each distinct text; order preserved.
std::vector<CorpusFile> dedup_files(std::vector<CorpusFile> files,
                                    DedupStats* stats = nullptr);

// Same policy over arbitrary strings (used for fine-tuning samples).
std::vector<std::string> dedup_strings(std::vector<std::string> texts,
                                       DedupStats* stats = nullptr);

}  // namespace wisdom::data
