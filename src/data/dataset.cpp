#include "data/dataset.hpp"

#include <unordered_set>

#include "ansible/model.hpp"
#include "util/hashing.hpp"
#include "util/strings.hpp"
#include "yaml/emit.hpp"
#include "yaml/parse.hpp"

namespace wisdom::data {

namespace ansible = wisdom::ansible;
namespace util = wisdom::util;
namespace yaml = wisdom::yaml;

const char* generation_type_label(GenerationType type) {
  switch (type) {
    case GenerationType::NlToPlaybook: return "NL->PB";
    case GenerationType::PbNlToTask: return "PB+NL->T";
    case GenerationType::NlToTask: return "NL->T";
    case GenerationType::TNlToTask: return "T+NL->T";
  }
  return "?";
}

namespace {

// Splits emitted YAML at the end of its first line; returns false when the
// first line is not a "- name:" line (samples require named outputs).
bool split_name_line(const std::string& emitted, std::string& first,
                     std::string& rest) {
  std::size_t nl = emitted.find('\n');
  if (nl == std::string::npos) return false;
  first = emitted.substr(0, nl + 1);
  rest = emitted.substr(nl + 1);
  return util::starts_with(first, "- name: ") && !rest.empty();
}

std::string indent_lines(const std::string& text, std::size_t spaces) {
  std::string pad(spaces, ' ');
  std::string out;
  for (const std::string& line : util::split_lines(text)) {
    if (line.empty()) {
      out += "\n";
    } else {
      out += pad + line + "\n";
    }
  }
  return out;
}

std::string task_name(const yaml::Node& task) {
  if (!task.is_map()) return {};
  const yaml::Node* name = task.find("name");
  return name && name->is_str() ? name->as_str() : std::string();
}

std::string emit_single_task(const yaml::Node& task) {
  return yaml::emit(yaml::Node::seq({task}));
}

void extract_from_playbook(const yaml::Node& doc,
                           std::vector<FtSample>& out) {
  const yaml::Node& play = doc.items()[0];
  if (!play.is_map()) return;
  const yaml::Node* tasks = play.find("tasks");
  if (!tasks || !tasks->is_seq() || tasks->size() == 0) return;
  std::string play_name = task_name(play);
  if (play_name.empty()) return;
  for (const yaml::Node& task : tasks->items()) {
    if (task_name(task).empty()) return;  // unnamed outputs are unusable
  }
  const std::size_t n = tasks->size();

  if (n <= 2) {
    // NL -> PB, with the combined play+task names as prompt.
    std::string prompt = play_name;
    for (const yaml::Node& task : tasks->items())
      prompt += ". " + task_name(task);
    std::string emitted = yaml::emit(doc);
    std::string first, rest;
    if (split_name_line(emitted, first, rest)) {
      FtSample sample;
      sample.type = GenerationType::NlToPlaybook;
      sample.prompt = prompt;
      sample.input_line = "- name: " + prompt + "\n";
      sample.target_body = rest;
      out.push_back(std::move(sample));
    }
  }
  // PB+NL -> T: predict task k given the playbook truncated to k tasks.
  for (std::size_t k = 1; k < n; ++k) {
    yaml::Node truncated_play = yaml::Node::map();
    for (const auto& [key, value] : play.entries()) {
      if (key == "tasks") {
        yaml::Node prefix = yaml::Node::seq();
        for (std::size_t i = 0; i < k; ++i)
          prefix.push_back(tasks->items()[i]);
        truncated_play.set("tasks", prefix);
      } else {
        truncated_play.set(key, value);
      }
    }
    const yaml::Node& next = tasks->items()[k];
    std::string emitted = indent_lines(emit_single_task(next), 4);
    // After indenting, the first line is "    - name: ...".
    std::size_t nl = emitted.find('\n');
    if (nl == std::string::npos) continue;
    FtSample sample;
    sample.type = GenerationType::PbNlToTask;
    sample.context = yaml::emit(yaml::Node::seq({truncated_play}));
    sample.prompt = task_name(next);
    sample.input_line = emitted.substr(0, nl + 1);
    sample.target_body = emitted.substr(nl + 1);
    if (sample.target_body.empty()) continue;
    out.push_back(std::move(sample));
  }
}

void extract_from_role(const yaml::Node& doc, std::vector<FtSample>& out) {
  for (const yaml::Node& task : doc.items()) {
    if (!task.is_map() || task_name(task).empty()) return;
  }
  const std::size_t n = doc.size();
  // NL -> T from the first task of the role.
  {
    std::string emitted = emit_single_task(doc.items()[0]);
    std::string first, rest;
    if (split_name_line(emitted, first, rest)) {
      FtSample sample;
      sample.type = GenerationType::NlToTask;
      sample.prompt = task_name(doc.items()[0]);
      sample.input_line = first;
      sample.target_body = rest;
      out.push_back(std::move(sample));
    }
  }
  // T+NL -> T for every subsequent task.
  for (std::size_t k = 1; k < n; ++k) {
    yaml::Node context = yaml::Node::seq();
    for (std::size_t i = 0; i < k; ++i) context.push_back(doc.items()[i]);
    std::string emitted = emit_single_task(doc.items()[k]);
    std::string first, rest;
    if (!split_name_line(emitted, first, rest)) continue;
    FtSample sample;
    sample.type = GenerationType::TNlToTask;
    sample.context = yaml::emit(context);
    sample.prompt = task_name(doc.items()[k]);
    sample.input_line = first;
    sample.target_body = rest;
    out.push_back(std::move(sample));
  }
}

}  // namespace

std::vector<FtSample> extract_samples(const std::string& file_text) {
  std::vector<FtSample> out;
  auto doc = yaml::parse_document(file_text);
  if (!doc || !doc->is_seq() || doc->size() == 0) return out;
  if (ansible::looks_like_playbook(*doc)) {
    extract_from_playbook(*doc, out);
  } else {
    extract_from_role(*doc, out);
  }
  return out;
}

std::vector<FtSample> extract_corpus_samples(
    const std::vector<CorpusFile>& files) {
  std::vector<FtSample> all;
  for (const CorpusFile& file : files) {
    auto samples = extract_samples(file.text);
    all.insert(all.end(), std::make_move_iterator(samples.begin()),
               std::make_move_iterator(samples.end()));
  }
  // Sample-level exact-match dedup on the full training string.
  std::unordered_set<std::uint64_t> seen;
  std::vector<FtSample> kept;
  kept.reserve(all.size());
  for (FtSample& sample : all) {
    std::uint64_t h = util::fnv1a64(sample.context);
    h = util::hash_combine(h, util::fnv1a64(sample.input_line));
    h = util::hash_combine(h, util::fnv1a64(sample.target_body));
    if (seen.insert(h).second) kept.push_back(std::move(sample));
  }
  return kept;
}

DatasetSplits split_dataset(std::vector<FtSample> samples, std::uint64_t seed,
                            double train_frac, double valid_frac) {
  util::Rng rng(seed);
  rng.shuffle(samples);
  DatasetSplits splits;
  std::size_t n = samples.size();
  std::size_t n_train = static_cast<std::size_t>(
      static_cast<double>(n) * train_frac);
  std::size_t n_valid = static_cast<std::size_t>(
      static_cast<double>(n) * valid_frac);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < n_train) {
      splits.train.push_back(std::move(samples[i]));
    } else if (i < n_train + n_valid) {
      splits.valid.push_back(std::move(samples[i]));
    } else {
      splits.test.push_back(std::move(samples[i]));
    }
  }
  return splits;
}

std::string format_input(const FtSample& sample, PromptFormat format) {
  switch (format) {
    case PromptFormat::NameCompletion:
      return sample.model_input();
    case PromptFormat::Prefix: {
      // The ablation baseline: labelled sections instead of pure
      // completion. The trailing name line keeps decode alignment.
      std::string out = "### context code\n";
      out += sample.context;
      out += "### prompt\n";
      out += sample.prompt + "\n";
      out += sample.input_line;
      return out;
    }
  }
  return sample.model_input();
}

std::string format_training_text(const FtSample& sample,
                                 PromptFormat format) {
  return format_input(sample, format) + sample.target_body;
}

}  // namespace wisdom::data
