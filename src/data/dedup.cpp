#include "data/dedup.hpp"

#include <unordered_set>

#include "util/hashing.hpp"

namespace wisdom::data {

namespace util = wisdom::util;

std::vector<CorpusFile> dedup_files(std::vector<CorpusFile> files,
                                    DedupStats* stats) {
  DedupStats local;
  local.input = files.size();
  std::unordered_set<std::uint64_t> seen;
  std::vector<CorpusFile> kept;
  kept.reserve(files.size());
  for (CorpusFile& file : files) {
    if (seen.insert(util::fnv1a64(file.text)).second) {
      kept.push_back(std::move(file));
    }
  }
  local.kept = kept.size();
  if (stats) *stats = local;
  return kept;
}

std::vector<std::string> dedup_strings(std::vector<std::string> texts,
                                       DedupStats* stats) {
  DedupStats local;
  local.input = texts.size();
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::string> kept;
  kept.reserve(texts.size());
  for (std::string& text : texts) {
    if (seen.insert(util::fnv1a64(text)).second) {
      kept.push_back(std::move(text));
    }
  }
  local.kept = kept.size();
  if (stats) *stats = local;
  return kept;
}

}  // namespace wisdom::data
