#include "data/ansible_gen.hpp"

#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/values.hpp"
#include "util/strings.hpp"
#include "yaml/emit.hpp"

namespace wisdom::data {

namespace util = wisdom::util;
namespace yaml = wisdom::yaml;
using ansible::ModuleCatalog;
using ansible::ModuleSpec;
using ansible::ParamSpec;
using ansible::ParamType;

namespace {

yaml::Node S(std::string_view s) { return yaml::Node::str(std::string(s)); }

// Popularity weights for the Zipfian module mix (unlisted catalog modules
// get a small tail weight). Derived from the module frequency ranking of
// public Ansible corpora: packaging, files, services and commands dominate.
const std::unordered_map<std::string_view, double>& popularity() {
  static const std::unordered_map<std::string_view, double> weights = {
      {"apt", 20},          {"copy", 18},          {"file", 16},
      {"service", 15},      {"template", 14},      {"command", 12},
      {"shell", 12},        {"yum", 10},           {"systemd", 10},
      {"dnf", 8},           {"lineinfile", 8},     {"debug", 8},
      {"user", 7},          {"package", 6},        {"git", 6},
      {"get_url", 6},       {"set_fact", 6},       {"pip", 5},
      {"uri", 4},           {"unarchive", 4},      {"cron", 4},
      {"apt_repository", 3},{"apt_key", 3},        {"authorized_key", 3},
      {"stat", 3},          {"blockinfile", 3},    {"replace", 3},
      {"wait_for", 3},      {"sysctl", 3},         {"ufw", 3},
      {"firewalld", 3},     {"include_tasks", 3},  {"docker_container", 3},
      {"group", 3},         {"mount", 2},          {"npm", 2},
      {"docker_image", 2},  {"k8s", 2},            {"mysql_db", 2},
      {"mysql_user", 2},    {"postgresql_db", 2},  {"postgresql_user", 2},
      {"hostname", 2},      {"timezone", 2},       {"assert", 2},
      {"import_tasks", 2},  {"include_role", 2},   {"ini_file", 2},
      {"synchronize", 2},   {"script", 2},         {"ping", 2},
      {"include_vars", 2},  {"vyos_config", 2},    {"vyos_facts", 2},
      {"ios_config", 1},    {"ios_facts", 1},      {"helm", 1},
  };
  return weights;
}

std::string join_list(const yaml::Node& value) {
  if (value.is_seq()) {
    std::vector<std::string> parts;
    for (const auto& item : value.items()) parts.push_back(item.scalar_text());
    return util::join(parts, ", ");
  }
  return value.scalar_text();
}

std::string arg_text(const yaml::Node& args, std::string_view key,
                     std::string_view fallback) {
  if (args.is_map()) {
    if (const yaml::Node* v = args.find(key)) return join_list(*v);
  }
  return std::string(fallback);
}

}  // namespace

const ModuleSpec& AnsibleGenerator::pick_module() {
  const auto& catalog = ModuleCatalog::instance().all();
  static const std::vector<double> weights = [&] {
    std::vector<double> w;
    w.reserve(catalog.size());
    const auto& pop = popularity();
    for (const ModuleSpec& m : catalog) {
      auto it = pop.find(m.short_name);
      w.push_back(it == pop.end() ? 0.5 : it->second);
    }
    return w;
  }();
  return catalog[rng_.weighted(weights)];
}

yaml::Node AnsibleGenerator::args_for(const ModuleSpec& module) {
  yaml::Node args = yaml::Node::map();
  const std::string_view m = module.short_name;

  // --- module-specific realistic argument shapes -------------------------
  if (m == "apt" || m == "yum" || m == "dnf" || m == "package") {
    args.set("name", S(pick_zipf(rng_, packages())));
    const char* states[] = {"present", "present", "present", "latest",
                            "absent"};
    args.set("state", S(states[rng_.uniform(5)]));
    if (m == "apt" && rng_.chance(0.35))
      args.set("update_cache", yaml::Node::boolean(true));
    return args;
  }
  if (m == "pip") {
    args.set("name", S(rng_.chance(0.5) ? "flask" : "requests"));
    if (rng_.chance(0.4)) args.set("state", S("present"));
    if (rng_.chance(0.25))
      args.set("virtualenv", S("/opt/app/venv"));
    return args;
  }
  if (m == "npm" || m == "gem") {
    args.set("name", S(rng_.chance(0.5) ? "pm2" : "express"));
    if (m == "npm" && rng_.chance(0.5))
      args.set("global", yaml::Node::boolean(true));
    return args;
  }
  if (m == "copy") {
    if (rng_.chance(0.8)) {
      args.set("src", S(std::string("files/") +
                        std::string(pick(rng_, users())) + ".conf"));
    } else {
      args.set("content", S("managed by ansible\n"));
    }
    args.set("dest", S(pick_zipf(rng_, config_paths())));
    if (rng_.chance(0.5)) args.set("owner", S(pick(rng_, users())));
    if (rng_.chance(0.4)) args.set("group", S(pick(rng_, groups())));
    if (rng_.chance(0.5)) args.set("mode", S(pick(rng_, file_modes())));
    return args;
  }
  if (m == "template") {
    args.set("src", S(pick_zipf(rng_, template_sources())));
    args.set("dest", S(pick_zipf(rng_, config_paths())));
    if (rng_.chance(0.4)) args.set("owner", S(pick(rng_, users())));
    if (rng_.chance(0.4)) args.set("mode", S(pick(rng_, file_modes())));
    return args;
  }
  if (m == "file") {
    args.set("path", S(rng_.chance(0.6) ? pick_zipf(rng_, directories())
                                        : pick_zipf(rng_, config_paths())));
    const char* states[] = {"directory", "directory", "touch", "absent",
                            "file"};
    args.set("state", S(states[rng_.uniform(5)]));
    if (rng_.chance(0.5)) args.set("owner", S(pick(rng_, users())));
    if (rng_.chance(0.4)) args.set("mode", S(pick(rng_, file_modes())));
    return args;
  }
  if (m == "lineinfile") {
    args.set("path", S(pick_zipf(rng_, config_paths())));
    args.set("line", S(rng_.chance(0.5) ? "PermitRootLogin no"
                                        : "MaxClients 256"));
    if (rng_.chance(0.5)) args.set("regexp", S("^#?PermitRootLogin"));
    if (rng_.chance(0.3)) args.set("state", S("present"));
    return args;
  }
  if (m == "blockinfile") {
    args.set("path", S(pick_zipf(rng_, config_paths())));
    args.set("block", S("# BEGIN managed\noption on\n# END managed\n"));
    return args;
  }
  if (m == "replace") {
    args.set("path", S(pick_zipf(rng_, config_paths())));
    args.set("regexp", S("listen 80"));
    args.set("replace", S("listen 8080"));
    return args;
  }
  if (m == "ini_file") {
    args.set("path", S("/etc/app/settings.ini"));
    args.set("section", S(rng_.chance(0.5) ? "database" : "server"));
    args.set("option", S("port"));
    args.set("value", S(std::to_string(plausible_port(rng_))));
    return args;
  }
  if (m == "stat") {
    args.set("path", S(pick_zipf(rng_, config_paths())));
    return args;
  }
  if (m == "fetch" || m == "synchronize") {
    args.set("src", S(pick_zipf(rng_, directories())));
    args.set("dest", S("/var/backups"));
    return args;
  }
  if (m == "unarchive") {
    args.set("src", S("/tmp/app.tar.gz"));
    args.set("dest", S(pick_zipf(rng_, directories())));
    if (rng_.chance(0.6)) args.set("remote_src", yaml::Node::boolean(true));
    return args;
  }
  if (m == "get_url") {
    args.set("url", S(pick_zipf(rng_, urls())));
    args.set("dest", S("/tmp/download"));
    if (rng_.chance(0.4)) args.set("mode", S(pick(rng_, file_modes())));
    return args;
  }
  if (m == "uri") {
    args.set("url", S(pick_zipf(rng_, urls())));
    if (rng_.chance(0.5)) args.set("method", S("GET"));
    if (rng_.chance(0.4)) args.set("status_code",
                                   yaml::Node::seq({yaml::Node::integer(200)}));
    return args;
  }
  if (m == "command" || m == "shell") {
    // Free-form string argument, occasionally with creates/chdir dict form.
    if (rng_.chance(0.8)) return S(pick_zipf(rng_, shell_commands()));
    args.set("cmd", S(pick_zipf(rng_, shell_commands())));
    args.set("creates", S("/var/run/app.done"));
    return args;
  }
  if (m == "raw") return S("uptime");
  if (m == "script") return S("scripts/bootstrap.sh");
  if (m == "service" || m == "systemd") {
    args.set("name", S(pick_zipf(rng_, services())));
    const char* states[] = {"started", "started", "restarted", "stopped",
                            "reloaded"};
    args.set("state", S(states[rng_.uniform(5)]));
    if (rng_.chance(0.5)) args.set("enabled", yaml::Node::boolean(true));
    if (m == "systemd" && rng_.chance(0.3))
      args.set("daemon_reload", yaml::Node::boolean(true));
    return args;
  }
  if (m == "cron") {
    args.set("name", S("nightly backup"));
    args.set("minute", S("0"));
    args.set("hour", S("2"));
    args.set("job", S("/opt/scripts/backup.sh"));
    return args;
  }
  if (m == "user") {
    args.set("name", S(pick(rng_, users())));
    if (rng_.chance(0.6)) args.set("state", S("present"));
    if (rng_.chance(0.5)) args.set("shell", S("/bin/bash"));
    if (rng_.chance(0.4)) args.set("groups",
                                   yaml::Node::seq({S(pick(rng_, groups()))}));
    return args;
  }
  if (m == "group") {
    args.set("name", S(pick(rng_, groups())));
    args.set("state", S("present"));
    return args;
  }
  if (m == "authorized_key") {
    args.set("user", S(pick(rng_, users())));
    args.set("key", S("{{ lookup('file', 'files/id_rsa.pub') }}"));
    return args;
  }
  if (m == "known_hosts") {
    args.set("name", S("github.com"));
    args.set("key", S("{{ github_host_key }}"));
    return args;
  }
  if (m == "hostname") {
    args.set("name", S(rng_.chance(0.5) ? "web-01" : "app-server"));
    return args;
  }
  if (m == "wait_for") {
    args.set("port", yaml::Node::integer(plausible_port(rng_)));
    if (rng_.chance(0.5)) args.set("timeout", yaml::Node::integer(60));
    return args;
  }
  if (m == "git") {
    args.set("repo", S(pick_zipf(rng_, repos())));
    args.set("dest", S(pick_zipf(rng_, directories())));
    if (rng_.chance(0.5)) args.set("version", S("main"));
    return args;
  }
  if (m == "sysctl") {
    args.set("name", S("vm.swappiness"));
    args.set("value", S("10"));
    if (rng_.chance(0.4)) args.set("reload", yaml::Node::boolean(true));
    return args;
  }
  if (m == "mount") {
    args.set("path", S("/mnt/data"));
    args.set("src", S("/dev/sdb1"));
    args.set("fstype", S("ext4"));
    args.set("state", S("mounted"));
    return args;
  }
  if (m == "firewalld") {
    args.set("service", S(rng_.chance(0.5) ? "http" : "https"));
    args.set("permanent", yaml::Node::boolean(true));
    args.set("state", S("enabled"));
    return args;
  }
  if (m == "ufw") {
    args.set("rule", S("allow"));
    args.set("port", S(std::to_string(plausible_port(rng_))));
    if (rng_.chance(0.6)) args.set("proto", S("tcp"));
    return args;
  }
  if (m == "iptables") {
    args.set("chain", S("INPUT"));
    args.set("protocol", S("tcp"));
    args.set("destination_port", S(std::to_string(plausible_port(rng_))));
    args.set("jump", S("ACCEPT"));
    return args;
  }
  if (m == "seboolean") {
    args.set("name", S("httpd_can_network_connect"));
    args.set("state", yaml::Node::boolean(true));
    args.set("persistent", yaml::Node::boolean(true));
    return args;
  }
  if (m == "selinux") {
    args.set("policy", S("targeted"));
    args.set("state", S("enforcing"));
    return args;
  }
  if (m == "timezone") {
    args.set("name", S(pick(rng_, timezones())));
    return args;
  }
  if (m == "locale_gen") {
    args.set("name", S("en_US.UTF-8"));
    return args;
  }
  if (m == "apt_repository") {
    args.set("repo", S("ppa:deadsnakes/ppa"));
    args.set("state", S("present"));
    return args;
  }
  if (m == "apt_key" || m == "rpm_key") {
    args.set(m == "apt_key" ? "url" : "key", S(pick_zipf(rng_, urls())));
    args.set("state", S("present"));
    return args;
  }
  if (m == "debug") {
    if (rng_.chance(0.6)) {
      args.set("msg", S("Deployment finished on {{ inventory_hostname }}"));
    } else {
      args.set("var", S("result"));
    }
    return args;
  }
  if (m == "fail") {
    args.set("msg", S("Unsupported distribution"));
    return args;
  }
  if (m == "assert") {
    args.set("that",
             yaml::Node::seq({S("ansible_memtotal_mb >= 1024")}));
    return args;
  }
  if (m == "set_fact") {
    if (rng_.chance(0.5)) {
      args.set("app_port", yaml::Node::integer(plausible_port(rng_)));
    } else {
      args.set("deploy_color", S(rng_.chance(0.5) ? "blue" : "green"));
    }
    return args;
  }
  if (m == "include_vars") {
    args.set("file", S("vars/{{ ansible_os_family }}.yml"));
    return args;
  }
  if (m == "include_tasks" || m == "import_tasks") {
    return S(rng_.chance(0.5) ? "setup.yml" : "configure.yml");
  }
  if (m == "include_role" || m == "import_role") {
    args.set("name", S(rng_.chance(0.5) ? "common" : "webserver"));
    return args;
  }
  if (m == "meta") return S("flush_handlers");
  if (m == "add_host") {
    args.set("name", S("{{ new_host }}"));
    args.set("groups", yaml::Node::seq({S("dynamic")}));
    return args;
  }
  if (m == "group_by") {
    args.set("key", S("os_{{ ansible_os_family }}"));
    return args;
  }
  if (m == "slurp") {
    args.set("src", S(pick_zipf(rng_, config_paths())));
    return args;
  }
  if (m == "tempfile") {
    args.set("state", S("file"));
    args.set("suffix", S("build"));
    return args;
  }
  if (m == "reboot") {
    args.set("reboot_timeout", yaml::Node::integer(300));
    return args;
  }
  if (m == "pause") {
    args.set("seconds", yaml::Node::integer(10));
    return args;
  }
  if (m == "wait_for_connection") {
    args.set("timeout", yaml::Node::integer(120));
    return args;
  }
  if (m == "make") {
    args.set("chdir", S("/opt/app"));
    args.set("target", S("install"));
    return args;
  }
  if (m == "docker_container") {
    args.set("name", S("app"));
    args.set("image", S("example/app:latest"));
    args.set("state", S("started"));
    if (rng_.chance(0.6)) {
      args.set("ports", yaml::Node::seq({S("8080:8080")}));
    }
    if (rng_.chance(0.4)) args.set("restart_policy", S("always"));
    return args;
  }
  if (m == "docker_image") {
    args.set("name", S("example/app"));
    args.set("tag", S("latest"));
    args.set("source", S("pull"));
    return args;
  }
  if (m == "k8s") {
    args.set("state", S("present"));
    args.set("src", S("manifests/deployment.yml"));
    if (rng_.chance(0.5)) args.set("namespace", S("production"));
    return args;
  }
  if (m == "helm") {
    args.set("name", S("ingress"));
    args.set("chart_ref", S("stable/nginx-ingress"));
    args.set("release_namespace", S("kube-system"));
    return args;
  }
  if (m == "mysql_db" || m == "postgresql_db") {
    args.set("name", S("appdb"));
    args.set("state", S("present"));
    if (rng_.chance(0.4)) args.set("login_user", S("root"));
    return args;
  }
  if (m == "mysql_user" || m == "postgresql_user") {
    args.set("name", S("appuser"));
    args.set("password", S("{{ vault_db_password }}"));
    args.set("state", S("present"));
    return args;
  }
  if (m == "vyos_facts" || m == "ios_facts") {
    args.set("gather_subset", yaml::Node::seq({S("all")}));
    return args;
  }
  if (m == "vyos_config") {
    yaml::Node lines = yaml::Node::seq();
    lines.push_back(S(pick(rng_, vyos_lines())));
    if (rng_.chance(0.4)) lines.push_back(S(pick(rng_, vyos_lines())));
    args.set("lines", lines);
    if (rng_.chance(0.4)) args.set("save", yaml::Node::boolean(true));
    return args;
  }
  if (m == "ios_config") {
    yaml::Node lines = yaml::Node::seq();
    lines.push_back(S(pick(rng_, ios_lines())));
    args.set("lines", lines);
    return args;
  }
  if (m == "ping" || m == "setup" || m == "service_facts" ||
      m == "package_facts") {
    return yaml::Node::null();
  }

  // Fallback: fill required params with generic-but-typed values.
  for (const ParamSpec& p : module.params) {
    if (!p.required) continue;
    switch (p.type) {
      case ParamType::Bool: args.set(p.name, yaml::Node::boolean(true)); break;
      case ParamType::Int: args.set(p.name, yaml::Node::integer(1)); break;
      case ParamType::Choice:
        args.set(p.name, S(p.choices.front()));
        break;
      case ParamType::List:
        args.set(p.name, yaml::Node::seq({S("item")}));
        break;
      case ParamType::Dict: args.set(p.name, yaml::Node::map()); break;
      default: args.set(p.name, S("value")); break;
    }
  }
  if (args.size() == 0) return yaml::Node::null();
  return args;
}

std::string AnsibleGenerator::name_for(const ModuleSpec& module,
                                       const yaml::Node& args) {
  const std::string_view m = module.short_name;
  auto arg = [&](std::string_view key, std::string_view fallback = "") {
    return arg_text(args, key, fallback);
  };
  auto pick_t = [&](std::initializer_list<const char*> variants) {
    const char* const* base = variants.begin();
    return std::string(base[rng_.uniform(variants.size())]);
  };

  if (m == "apt" || m == "yum" || m == "dnf" || m == "package") {
    std::string pkg = arg("name", "packages");
    std::string state = arg("state", "present");
    if (state == "absent")
      return pick_t({"Remove ", "Uninstall "}) + pkg;
    if (state == "latest")
      return "Ensure " + pkg + " is at the latest version";
    return pick_t({"Install ", "Install package ", "Ensure installed: "}) +
           pkg;
  }
  if (m == "pip") return "Install " + arg("name", "python package") +
                         " with pip";
  if (m == "npm") return "Install " + arg("name", "node package") +
                         " with npm";
  if (m == "gem") return "Install " + arg("name", "ruby gem") + " gem";
  if (m == "copy") {
    return pick_t({"Copy ", "Deploy ", "Place "}) + arg("dest", "file");
  }
  if (m == "template") {
    return pick_t({"Write ", "Render ", "Template "}) +
           arg("dest", "config file") + " from template";
  }
  if (m == "file") {
    std::string state = arg("state", "file");
    std::string path = arg("path", "path");
    if (state == "directory") return "Create directory " + path;
    if (state == "absent") return "Remove " + path;
    if (state == "touch") return "Touch " + path;
    return "Manage file " + path;
  }
  if (m == "lineinfile") return "Set line in " + arg("path", "file");
  if (m == "blockinfile") return "Insert block into " + arg("path", "file");
  if (m == "replace") return "Replace pattern in " + arg("path", "file");
  if (m == "ini_file")
    return "Set " + arg("option", "option") + " in " + arg("section", "ini");
  if (m == "stat") return "Check " + arg("path", "file") + " exists";
  if (m == "fetch") return "Fetch " + arg("src", "file") + " from remote";
  if (m == "synchronize") return "Synchronize " + arg("src", "directory");
  if (m == "unarchive") return "Extract archive to " + arg("dest", "path");
  if (m == "get_url") return "Download " + arg("url", "file");
  if (m == "uri") return "Call " + arg("url", "endpoint");
  if (m == "command" || m == "shell") {
    std::string cmd = args.is_str() ? args.as_str() : arg("cmd", "command");
    return pick_t({"Run ", "Execute "}) + cmd;
  }
  if (m == "raw") return "Run raw command";
  if (m == "script") return "Run bootstrap script";
  if (m == "service" || m == "systemd") {
    std::string svc = arg("name", "service");
    std::string state = arg("state", "started");
    if (state == "restarted") return "Restart " + svc;
    if (state == "stopped") return "Stop " + svc;
    if (state == "reloaded") return "Reload " + svc;
    return pick_t({"Start ", "Start and enable "}) + svc;
  }
  if (m == "cron") return "Schedule " + arg("name", "cron job");
  if (m == "user") {
    std::string user = arg("name", "user");
    return arg("state", "present") == "absent" ? "Remove user " + user
                                               : "Create user " + user;
  }
  if (m == "group") return "Create group " + arg("name", "group");
  if (m == "authorized_key")
    return "Add ssh key for " + arg("user", "user");
  if (m == "known_hosts") return "Add " + arg("name", "host") +
                                 " to known hosts";
  if (m == "hostname") return "Set hostname to " + arg("name", "host");
  if (m == "wait_for")
    return "Wait for port " + arg("port", "port") + " to open";
  if (m == "git") return "Clone repository to " + arg("dest", "path");
  if (m == "sysctl") return "Set sysctl " + arg("name", "key");
  if (m == "mount") return "Mount " + arg("path", "filesystem");
  if (m == "firewalld")
    return "Allow " + arg("service", "service") + " through firewalld";
  if (m == "ufw") return "Allow port " + arg("port", "port") + " with ufw";
  if (m == "iptables") return "Open port " +
                              arg("destination_port", "port") +
                              " in iptables";
  if (m == "seboolean") return "Enable selinux boolean " + arg("name", "flag");
  if (m == "selinux") return "Set selinux to " + arg("state", "enforcing");
  if (m == "timezone") return "Set timezone to " + arg("name", "UTC");
  if (m == "locale_gen") return "Generate locale " + arg("name", "locale");
  if (m == "apt_repository") return "Add apt repository " +
                                    arg("repo", "repo");
  if (m == "apt_key" || m == "rpm_key") return "Import signing key";
  if (m == "debug") {
    return args.is_map() && args.has("var") ? "Print " + arg("var", "value")
                                            : "Show deployment message";
  }
  if (m == "fail") return "Fail on unsupported platform";
  if (m == "assert") return "Assert host requirements";
  if (m == "set_fact") {
    if (args.is_map() && args.size() > 0)
      return "Set fact " + args.entries()[0].first;
    return "Set deployment facts";
  }
  if (m == "include_vars") return "Load OS specific variables";
  if (m == "include_tasks" || m == "import_tasks") {
    std::string f = args.is_str() ? args.as_str() : arg("file", "tasks");
    return "Include tasks from " + f;
  }
  if (m == "include_role" || m == "import_role")
    return "Apply role " + arg("name", "role");
  if (m == "meta") return "Flush handlers";
  if (m == "add_host") return "Add host to dynamic inventory";
  if (m == "group_by") return "Group hosts by OS family";
  if (m == "slurp") return "Read " + arg("src", "file");
  if (m == "tempfile") return "Create temporary file";
  if (m == "reboot") return "Reboot the server";
  if (m == "pause") return "Pause before continuing";
  if (m == "wait_for_connection") return "Wait for host to come back";
  if (m == "make") return "Build " + arg("target", "all") + " with make";
  if (m == "docker_container")
    return "Start container " + arg("name", "app");
  if (m == "docker_image") return "Pull image " + arg("name", "image");
  if (m == "k8s") return "Apply kubernetes manifest";
  if (m == "helm") return "Deploy helm chart " + arg("chart_ref", "chart");
  if (m == "mysql_db" || m == "postgresql_db")
    return "Create database " + arg("name", "db");
  if (m == "mysql_user" || m == "postgresql_user")
    return "Create database user " + arg("name", "user");
  if (m == "vyos_facts" || m == "ios_facts")
    return "Get config for " + std::string(m == "vyos_facts" ? "VyOS" : "IOS") +
           " devices";
  if (m == "vyos_config") return "Update VyOS configuration";
  if (m == "ios_config") return "Update IOS configuration";
  if (m == "ping") return "Check connectivity";
  if (m == "setup") return "Gather facts";
  if (m == "service_facts") return "Collect service facts";
  if (m == "package_facts") return "Collect package facts";
  return "Configure " + std::string(m);
}

void AnsibleGenerator::maybe_add_keywords(yaml::Node& task_node, double prob) {
  if (!rng_.chance(prob)) return;
  switch (rng_.uniform(7)) {
    case 0:
      task_node.set("become", yaml::Node::boolean(true));
      break;
    case 1:
      task_node.set("when", S(rng_.chance(0.5)
                                  ? "ansible_os_family == 'Debian'"
                                  : "ansible_os_family == 'RedHat'"));
      break;
    case 2:
      task_node.set("register", S("result"));
      break;
    case 3: {
      yaml::Node tags = yaml::Node::seq();
      tags.push_back(S(rng_.chance(0.5) ? "setup" : "deploy"));
      task_node.set("tags", tags);
      break;
    }
    case 4:
      task_node.set("notify", S("restart nginx"));
      break;
    case 5:
      task_node.set("ignore_errors", yaml::Node::boolean(true));
      break;
    case 6: {
      yaml::Node loop = yaml::Node::seq();
      loop.push_back(S(pick_zipf(rng_, packages())));
      loop.push_back(S(pick_zipf(rng_, packages())));
      task_node.set("loop", loop);
      break;
    }
  }
}

yaml::Node AnsibleGenerator::task(const TaskGenOptions& options) {
  const ModuleSpec& module = pick_module();
  yaml::Node args = args_for(module);

  yaml::Node node = yaml::Node::map();
  if (options.with_name) node.set("name", S(name_for(module, args)));

  std::string key = rng_.chance(options.short_name_prob) ? module.short_name
                                                         : module.fqcn;
  // Legacy form: flatten scalar params into "k=v" text.
  if (args.is_map() && args.size() > 0 &&
      rng_.chance(options.old_style_prob)) {
    bool all_scalar = true;
    for (const auto& [k, v] : args.entries()) all_scalar &= v.is_scalar();
    if (all_scalar) {
      std::vector<std::string> parts;
      for (const auto& [k, v] : args.entries())
        parts.push_back(k + "=" + v.scalar_text());
      node.set(key, S(util::join(parts, " ")));
      maybe_add_keywords(node, options.keyword_prob);
      return node;
    }
  }
  node.set(key, args);
  maybe_add_keywords(node, options.keyword_prob);
  return node;
}

yaml::Node AnsibleGenerator::block(const TaskGenOptions& options) {
  // Blocks group tasks; their inner tasks never recurse into blocks.
  TaskGenOptions inner = options;
  inner.block_prob = 0.0;
  yaml::Node node = yaml::Node::map();
  node.set("name", S(rng_.chance(0.5) ? "Install and configure the service"
                                      : "Attempt the deployment steps"));
  yaml::Node body = yaml::Node::seq();
  int count = static_cast<int>(rng_.uniform_int(1, 2));
  for (int i = 0; i < count; ++i) body.push_back(task(inner));
  node.set("block", body);
  if (rng_.chance(0.5)) {
    yaml::Node rescue = yaml::Node::seq();
    yaml::Node report = yaml::Node::map();
    report.set("name", S("Report the failure"));
    yaml::Node dbg = yaml::Node::map();
    dbg.set("msg", S("deployment step failed"));
    report.set("ansible.builtin.debug", dbg);
    rescue.push_back(report);
    node.set("rescue", rescue);
  }
  if (rng_.chance(0.4)) node.set("become", yaml::Node::boolean(true));
  if (rng_.chance(0.3))
    node.set("when", S("ansible_os_family == 'Debian'"));
  return node;
}

yaml::Node AnsibleGenerator::role_tasks(int count,
                                        const TaskGenOptions& options) {
  yaml::Node out = yaml::Node::seq();
  for (int i = 0; i < count; ++i) {
    if (options.block_prob > 0.0 && rng_.chance(options.block_prob)) {
      out.push_back(block(options));
    } else {
      out.push_back(task(options));
    }
  }
  return out;
}

yaml::Node AnsibleGenerator::playbook(int task_count,
                                      const TaskGenOptions& options) {
  yaml::Node play = yaml::Node::map();
  static constexpr std::string_view kPlayNames[] = {
      "Provision web servers",   "Configure database hosts",
      "Deploy the application",  "Harden ssh access",
      "Set up monitoring",       "Bootstrap new hosts",
      "Network Setup Playbook",  "Install base packages",
  };
  play.set("name", S(kPlayNames[rng_.uniform(std::size(kPlayNames))]));
  play.set("hosts", S(pick_zipf(rng_, host_groups())));
  if (rng_.chance(0.5)) play.set("become", yaml::Node::boolean(true));
  if (rng_.chance(0.25)) play.set("gather_facts", yaml::Node::boolean(false));
  if (rng_.chance(0.2)) {
    yaml::Node vars = yaml::Node::map();
    vars.set("app_port", yaml::Node::integer(plausible_port(rng_)));
    play.set("vars", vars);
  }
  play.set("tasks", role_tasks(task_count, options));
  yaml::Node doc = yaml::Node::seq();
  doc.push_back(play);
  return doc;
}

std::string AnsibleGenerator::role_tasks_text(int count,
                                              const TaskGenOptions& options) {
  yaml::EmitOptions emit_opts;
  emit_opts.document_start = true;
  return yaml::emit(role_tasks(count, options), emit_opts);
}

std::string AnsibleGenerator::playbook_text(int task_count,
                                            const TaskGenOptions& options) {
  yaml::EmitOptions emit_opts;
  emit_opts.document_start = true;
  return yaml::emit(playbook(task_count, options), emit_opts);
}

}  // namespace wisdom::data
