// Natural-language and source-code text generators, standing in for the
// Pile (NL + some code) and the Google BigQuery multi-language code corpus
// of the CodeGen pre-training mixes. Template-based: the point is to give
// the CodeGen-analog checkpoints the same kind of prior the paper's
// baselines have (fluent-ish English, code-shaped indentation and
// punctuation) without any Ansible semantics.
#pragma once

#include <string>

#include "util/rng.hpp"

namespace wisdom::data {

class NlTextGenerator {
 public:
  explicit NlTextGenerator(util::Rng rng) : rng_(rng) {}
  // A short paragraph of English prose (a "Pile" document).
  std::string document();

 private:
  std::string sentence();
  util::Rng rng_;
};

class CodeTextGenerator {
 public:
  explicit CodeTextGenerator(util::Rng rng) : rng_(rng) {}
  // A small source file (Python- or C-flavoured, as in BigQuery).
  std::string document();

 private:
  std::string python_function();
  std::string c_function();
  util::Rng rng_;
};

}  // namespace wisdom::data
