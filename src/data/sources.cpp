#include "data/sources.hpp"

#include <array>

#include "data/ansible_gen.hpp"
#include "data/generic_yaml.hpp"
#include "data/textgen.hpp"
#include "util/rng.hpp"

namespace wisdom::data {

namespace {

constexpr std::array<SourceSpec, 4> kSources = {{
    {SourceId::Galaxy, "Galaxy", 112'000, 1120, "Ansible", "FT"},
    {SourceId::GitLab, "GitLab", 64'000, 64, "Ansible", "PT"},
    {SourceId::GitHubGbqAnsible, "GitHub + GBQ", 1'100'000, 1100, "Ansible",
     "PT"},
    {SourceId::GitHubGbqGeneric, "GitHub + GBQ", 2'200'000, 2200, "Generic",
     "PT"},
}};

// Style profile per source: Galaxy is clean, crawls are noisy.
TaskGenOptions style_for(SourceId id) {
  TaskGenOptions options;
  switch (id) {
    case SourceId::Galaxy:
      options.short_name_prob = 0.05;
      options.old_style_prob = 0.01;
      options.keyword_prob = 0.3;
      break;
    case SourceId::GitLab:
      options.short_name_prob = 0.3;
      options.old_style_prob = 0.08;
      options.keyword_prob = 0.35;
      break;
    case SourceId::GitHubGbqAnsible:
      options.short_name_prob = 0.25;
      options.old_style_prob = 0.06;
      options.keyword_prob = 0.3;
      break;
    case SourceId::GitHubGbqGeneric:
      break;
  }
  return options;
}

CorpusFile make_ansible_file(AnsibleGenerator& gen, const TaskGenOptions& opts,
                             SourceId id) {
  CorpusFile file;
  file.source = id;
  file.ansible = true;
  util::Rng& rng = gen.rng();
  if (rng.chance(0.3)) {
    // Playbooks skew small: "the vast majority" have 1-2 tasks.
    int tasks = rng.chance(0.6) ? static_cast<int>(rng.uniform_int(1, 2))
                                : static_cast<int>(rng.uniform_int(3, 5));
    file.text = gen.playbook_text(tasks, opts);
  } else {
    file.text = gen.role_tasks_text(static_cast<int>(rng.uniform_int(2, 6)),
                                    opts);
  }
  return file;
}

}  // namespace

std::span<const SourceSpec> table1_sources() { return kSources; }

std::vector<CorpusFile> build_source(const SourceSpec& spec,
                                     std::uint64_t seed) {
  util::Rng root(seed);
  util::Rng rng = root.fork(spec.label + std::string(spec.yaml_type));
  std::vector<CorpusFile> files;
  files.reserve(spec.scaled_file_count);
  if (spec.id == SourceId::GitHubGbqGeneric) {
    GenericYamlGenerator gen(rng);
    for (std::size_t i = 0; i < spec.scaled_file_count; ++i) {
      CorpusFile file;
      file.source = spec.id;
      file.ansible = false;
      file.text = gen.file_text();
      files.push_back(std::move(file));
    }
    return files;
  }
  AnsibleGenerator gen(rng);
  TaskGenOptions opts = style_for(spec.id);
  for (std::size_t i = 0; i < spec.scaled_file_count; ++i) {
    files.push_back(make_ansible_file(gen, opts, spec.id));
  }
  return files;
}

std::size_t CorpusBundle::total_bytes() const {
  std::size_t n = 0;
  for (const CorpusFile& f : files) n += f.text.size();
  return n;
}

std::string CorpusBundle::concatenated() const {
  std::string out;
  out.reserve(total_bytes());
  for (const CorpusFile& f : files) out += f.text;
  return out;
}

CorpusBundle ansible_pretraining_corpus(std::uint64_t seed) {
  CorpusBundle bundle;
  for (const SourceSpec& spec : kSources) {
    if (spec.id == SourceId::GitLab || spec.id == SourceId::GitHubGbqAnsible) {
      auto files = build_source(spec, seed);
      bundle.files.insert(bundle.files.end(),
                          std::make_move_iterator(files.begin()),
                          std::make_move_iterator(files.end()));
    }
  }
  return bundle;
}

CorpusBundle generic_yaml_corpus(std::uint64_t seed) {
  CorpusBundle bundle;
  bundle.files = build_source(kSources[3], seed);
  return bundle;
}

CorpusBundle galaxy_corpus(std::uint64_t seed) {
  CorpusBundle bundle;
  bundle.files = build_source(kSources[0], seed);
  return bundle;
}

CorpusBundle nl_corpus(std::uint64_t seed, std::size_t documents) {
  util::Rng root(seed);
  NlTextGenerator gen(root.fork("pile-nl"));
  CorpusBundle bundle;
  bundle.files.reserve(documents);
  for (std::size_t i = 0; i < documents; ++i) {
    CorpusFile file;
    file.source = SourceId::GitHubGbqGeneric;
    file.ansible = false;
    file.text = gen.document();
    bundle.files.push_back(std::move(file));
  }
  return bundle;
}

CorpusBundle code_corpus(std::uint64_t seed, std::size_t documents) {
  util::Rng root(seed);
  CodeTextGenerator gen(root.fork("bigquery-code"));
  CorpusBundle bundle;
  bundle.files.reserve(documents);
  for (std::size_t i = 0; i < documents; ++i) {
    CorpusFile file;
    file.source = SourceId::GitHubGbqGeneric;
    file.ansible = false;
    file.text = gen.document();
    bundle.files.push_back(std::move(file));
  }
  return bundle;
}

}  // namespace wisdom::data
