#include "data/values.hpp"

#include <array>

namespace wisdom::data {

namespace {

constexpr std::array<std::string_view, 28> kPackages = {
    "nginx",        "httpd",        "postgresql",  "mysql-server",
    "redis",        "docker",       "git",         "curl",
    "vim",          "htop",         "openssh-server", "python3",
    "python3-pip",  "nodejs",       "npm",         "java-11-openjdk",
    "haproxy",      "memcached",    "rabbitmq-server", "mariadb-server",
    "php-fpm",      "certbot",      "fail2ban",    "ufw",
    "rsync",        "unzip",        "wget",        "jq",
};

constexpr std::array<std::string_view, 14> kServices = {
    "nginx",   "httpd",     "postgresql", "mysql",     "redis",
    "docker",  "sshd",      "firewalld",  "haproxy",   "memcached",
    "rabbitmq-server", "php-fpm", "fail2ban", "crond",
};

constexpr std::array<std::string_view, 16> kConfigPaths = {
    "/etc/nginx/nginx.conf",
    "/etc/nginx/conf.d/default.conf",
    "/etc/httpd/conf/httpd.conf",
    "/etc/postgresql/postgresql.conf",
    "/etc/mysql/my.cnf",
    "/etc/redis/redis.conf",
    "/etc/ssh/sshd_config",
    "/etc/haproxy/haproxy.cfg",
    "/etc/hosts",
    "/etc/motd",
    "/etc/environment",
    "/etc/sysctl.conf",
    "/etc/app/config.yml",
    "/etc/app/secrets.env",
    "/opt/app/settings.ini",
    "/var/www/html/index.html",
};

constexpr std::array<std::string_view, 12> kDirectories = {
    "/var/www/html",  "/opt/app",        "/var/log/app",
    "/etc/app",       "/srv/data",       "/home/deploy/releases",
    "/var/lib/app",   "/tmp/build",      "/usr/local/bin",
    "/var/backups",   "/srv/www",        "/opt/scripts",
};

constexpr std::array<std::string_view, 10> kTemplates = {
    "templates/nginx.conf.j2",    "templates/httpd.conf.j2",
    "templates/app.config.j2",    "templates/haproxy.cfg.j2",
    "templates/my.cnf.j2",        "templates/redis.conf.j2",
    "templates/motd.j2",          "templates/sshd_config.j2",
    "templates/env.j2",           "templates/index.html.j2",
};

constexpr std::array<std::string_view, 8> kUrls = {
    "https://example.com/releases/app.tar.gz",
    "https://example.com/keys/release.gpg",
    "https://download.example.org/installer.sh",
    "https://artifacts.example.com/app/latest.zip",
    "https://api.example.com/health",
    "https://mirror.example.net/repo/packages.tgz",
    "https://example.com/bootstrap/setup.sh",
    "https://cdn.example.org/assets/static.tar.gz",
};

constexpr std::array<std::string_view, 10> kUsers = {
    "deploy", "app",   "www-data", "postgres", "redis",
    "admin",  "jenkins", "backup", "monitor",  "webadmin",
};

constexpr std::array<std::string_view, 8> kGroups = {
    "deploy", "app", "www-data", "docker", "wheel", "admin", "backup", "web",
};

constexpr std::array<std::string_view, 9> kHostGroups = {
    "all", "webservers", "dbservers", "servers", "app", "workers",
    "loadbalancers", "cache", "localhost",
};

constexpr std::array<std::string_view, 12> kShellCommands = {
    "systemctl daemon-reload",
    "nginx -t",
    "make install",
    "pg_ctl reload",
    "update-ca-certificates",
    "ldconfig",
    "sysctl -p",
    "apt-get clean",
    "swapoff -a",
    "timedatectl set-ntp true",
    "ufw --force enable",
    "certbot renew --quiet",
};

constexpr std::array<std::string_view, 6> kRepos = {
    "https://github.com/example/app.git",
    "https://github.com/example/infra.git",
    "https://gitlab.com/example/service.git",
    "https://github.com/example/tools.git",
    "git@github.com:example/private.git",
    "https://github.com/example/website.git",
};

constexpr std::array<std::string_view, 6> kModes = {
    "0644", "0755", "0600", "0640", "0750", "0444",
};

constexpr std::array<std::string_view, 6> kTimezones = {
    "UTC",           "Europe/Berlin", "America/New_York",
    "Asia/Kolkata",  "Europe/London", "America/Los_Angeles",
};

constexpr std::array<std::string_view, 6> kVyosLines = {
    "set system host-name vyos-prod",
    "set service ssh port 22",
    "set interfaces ethernet eth0 address dhcp",
    "set system name-server 1.1.1.1",
    "set system time-zone UTC",
    "set service lldp interface all",
};

constexpr std::array<std::string_view, 6> kIosLines = {
    "hostname core-switch",
    "ip domain-name example.com",
    "ntp server 10.0.0.1",
    "logging host 10.0.0.50",
    "no ip http server",
    "service password-encryption",
};

}  // namespace

std::span<const std::string_view> packages() { return kPackages; }
std::span<const std::string_view> services() { return kServices; }
std::span<const std::string_view> config_paths() { return kConfigPaths; }
std::span<const std::string_view> directories() { return kDirectories; }
std::span<const std::string_view> template_sources() { return kTemplates; }
std::span<const std::string_view> urls() { return kUrls; }
std::span<const std::string_view> users() { return kUsers; }
std::span<const std::string_view> groups() { return kGroups; }
std::span<const std::string_view> host_groups() { return kHostGroups; }
std::span<const std::string_view> shell_commands() { return kShellCommands; }
std::span<const std::string_view> repos() { return kRepos; }
std::span<const std::string_view> file_modes() { return kModes; }
std::span<const std::string_view> timezones() { return kTimezones; }
std::span<const std::string_view> vyos_lines() { return kVyosLines; }
std::span<const std::string_view> ios_lines() { return kIosLines; }

std::string_view pick_zipf(util::Rng& rng,
                           std::span<const std::string_view> pool) {
  return pool[rng.zipf(pool.size(), 0.8)];
}

std::string_view pick(util::Rng& rng,
                      std::span<const std::string_view> pool) {
  return pool[static_cast<std::size_t>(rng.uniform(pool.size()))];
}

int plausible_port(util::Rng& rng) {
  static constexpr int kPorts[] = {80, 443, 8080, 5432, 3306, 6379, 22, 8443};
  return kPorts[rng.uniform(8)];
}

}  // namespace wisdom::data
