// Generic (non-Ansible) YAML generator: Kubernetes manifests, GitHub-
// Actions-style CI pipelines and docker-compose files. These are the
// "2.2M other generic YAML files" of Table I — they teach the models YAML
// syntax (indentation, mappings, sequences) without Ansible semantics,
// which is exactly the distinction the Wisdom-Yaml vs Wisdom-Ansible
// ablation probes.
#pragma once

#include <string>

#include "util/rng.hpp"
#include "yaml/node.hpp"

namespace wisdom::data {

class GenericYamlGenerator {
 public:
  explicit GenericYamlGenerator(util::Rng rng) : rng_(rng) {}

  yaml::Node kubernetes_manifest();
  yaml::Node ci_pipeline();
  yaml::Node compose_file();

  // A random document of one of the three kinds, emitted canonically.
  std::string file_text();

 private:
  util::Rng rng_;
};

}  // namespace wisdom::data
