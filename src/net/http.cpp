#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace wisdom::net {

namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t'))
    text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t'))
    text.remove_suffix(1);
  return text;
}

bool equals_ignore_case(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

// Methods that carry a request body and therefore must declare its length.
bool method_has_body(std::string_view method) {
  return method == "POST" || method == "PUT" || method == "PATCH";
}

}  // namespace

std::string_view HttpRequest::path() const {
  std::string_view t(target);
  std::size_t query = t.find('?');
  return query == std::string_view::npos ? t : t.substr(0, query);
}

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers)
    if (equals_ignore_case(key, name)) return &value;
  return nullptr;
}

HttpParser::HttpParser(HttpParserLimits limits) : limits_(limits) {}

void HttpParser::reset() {
  state_ = State::Headers;
  head_.clear();
  request_ = HttpRequest{};
  body_expected_ = 0;
  error_status_ = 0;
  error_reason_.clear();
}

HttpParser::Status HttpParser::fail(int status, std::string_view reason) {
  state_ = State::Failed;
  error_status_ = status;
  error_reason_ = reason;
  return Status::Error;
}

HttpParser::Status HttpParser::parse_head() {
  // head_ holds everything up to (not including) the final CRLFCRLF.
  std::string_view head(head_);
  std::size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= request_line.size())
    return fail(400, "malformed request line");
  request_.method = std::string(request_line.substr(0, sp1));
  request_.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(request_line.substr(sp2 + 1));
  if (request_.target.empty() || request_.target.front() != '/')
    return fail(400, "target must be origin-form");
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0")
    return fail(505, "only HTTP/1.0 and HTTP/1.1 are supported");

  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    std::size_t eol = rest.find("\r\n");
    std::string_view line =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 2);
    if (line.empty()) continue;
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return fail(400, "malformed header line");
    request_.headers.emplace_back(to_lower(trim(line.substr(0, colon))),
                                  std::string(trim(line.substr(colon + 1))));
  }

  // Keep-alive: version default, Connection override.
  request_.keep_alive = request_.version == "HTTP/1.1";
  if (const std::string* connection = request_.header("connection")) {
    if (equals_ignore_case(*connection, "close"))
      request_.keep_alive = false;
    else if (equals_ignore_case(*connection, "keep-alive"))
      request_.keep_alive = true;
  }

  if (request_.header("transfer-encoding") != nullptr)
    return fail(400, "chunked request bodies are not accepted");

  body_expected_ = 0;
  if (const std::string* length = request_.header("content-length")) {
    if (length->empty() ||
        !std::all_of(length->begin(), length->end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        }) ||
        length->size() > 12)
      return fail(400, "malformed Content-Length");
    body_expected_ = static_cast<std::size_t>(std::stoull(*length));
    if (body_expected_ > limits_.max_body_bytes)
      return fail(413, "request body exceeds the wire-size cap");
  } else if (method_has_body(request_.method)) {
    return fail(411, "a request body requires Content-Length");
  }

  if (body_expected_ == 0) {
    state_ = State::Complete;
    return Status::Complete;
  }
  request_.body.reserve(body_expected_);
  state_ = State::Body;
  return Status::NeedMore;
}

HttpParser::Status HttpParser::feed(std::string_view data,
                                    std::size_t* consumed) {
  *consumed = 0;
  if (state_ == State::Failed) return Status::Error;
  if (state_ == State::Complete) return Status::Complete;

  if (state_ == State::Headers) {
    // Accumulate until the blank line. The terminator may straddle feeds,
    // so search the joined buffer (from just before the new bytes), not
    // the new bytes alone. head_ stays bounded: one read past the cap
    // fails with 431, so it never grows beyond cap + one socket read.
    std::size_t before = head_.size();
    head_.append(data);
    std::size_t marker =
        head_.find("\r\n\r\n", before >= 3 ? before - 3 : 0);
    if (marker == std::string::npos) {
      *consumed = data.size();
      if (head_.size() > limits_.max_header_bytes)
        return fail(431, "request head exceeds the header-size cap");
      return Status::NeedMore;
    }
    // Bytes past the blank line belong to the body (or the next request).
    *consumed = marker + 4 - before;
    head_.resize(marker);
    Status status = parse_head();
    if (status != Status::NeedMore) return status;
    data.remove_prefix(*consumed);
    // fall through to body accumulation with the leftover bytes
  }

  std::size_t want = body_expected_ - request_.body.size();
  std::size_t take = std::min(want, data.size());
  request_.body.append(data.substr(0, take));
  *consumed += take;
  if (request_.body.size() < body_expected_) return Status::NeedMore;
  state_ = State::Complete;
  return Status::Complete;
}

std::string response_head(
    int status, std::string_view reason,
    const std::vector<std::pair<std::string_view, std::string>>& headers) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\n";
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string simple_response(int status, std::string_view reason,
                            std::string_view content_type,
                            std::string_view body, bool keep_alive) {
  std::string out = response_head(
      status, reason,
      {{"Content-Type", std::string(content_type)},
       {"Content-Length", std::to_string(body.size())},
       {"Connection", keep_alive ? "keep-alive" : "close"}});
  out += body;
  return out;
}

std::string chunk_frame(std::string_view payload) {
  char size[32];
  std::snprintf(size, sizeof(size), "%zx\r\n", payload.size());
  std::string out(size);
  out += payload;
  out += "\r\n";
  return out;
}

}  // namespace wisdom::net
