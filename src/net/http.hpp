// Minimal HTTP/1.1 subset for the /v1 API front end: an incremental
// request parser that survives arbitrarily torn reads, plus response
// formatting helpers (status line + headers, chunked transfer framing).
//
// The parser accepts exactly what the API needs and rejects the rest with
// a typed status:
//   * request line `METHOD SP target SP HTTP/1.x` — anything malformed is
//     400; versions other than HTTP/1.0 and HTTP/1.1 are 505,
//   * headers up to a byte cap (431 past it), names case-insensitive,
//   * bodies only via Content-Length — a POST/PUT without one is 411, a
//     Transfer-Encoding request body is 400 (the server streams responses
//     with chunked encoding but does not accept chunked requests), and a
//     declared length past the body cap is 413 before a single body byte
//     is buffered,
//   * keep-alive: HTTP/1.1 defaults on, HTTP/1.0 defaults off, the
//     Connection header overrides either way.
//
// feed() consumes bytes incrementally: callers hand it whatever the
// socket produced (one byte or one hundred requests) and it consumes
// exactly up to the end of the current request, leaving pipelined bytes
// for the next reset()-then-feed() round.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wisdom::net {

struct HttpRequest {
  std::string method;
  std::string target;   // origin-form, query string included
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  // Names lower-cased at parse time; values trimmed of surrounding space.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  // The target's path component (target up to the first '?').
  std::string_view path() const;
  // First header value by (lower-case) name; nullptr when absent.
  const std::string* header(std::string_view name) const;
};

struct HttpParserLimits {
  std::size_t max_header_bytes = 16u << 10;
  std::size_t max_body_bytes = 1u << 20;  // serve::kMaxWireBytes
};

class HttpParser {
 public:
  enum class Status {
    NeedMore,  // consumed everything offered, request incomplete
    Complete,  // request() is ready; unconsumed bytes belong to the next
    Error,     // protocol error; error_status()/error_reason() describe it
  };

  explicit HttpParser(HttpParserLimits limits = {});

  // Consumes bytes from `data` (up to the end of the current request) and
  // advances the parse. `*consumed` reports how many bytes were taken —
  // on Complete, the remainder is pipelined input for the next request.
  // Once Error or Complete is returned, further bytes are not consumed
  // until reset().
  Status feed(std::string_view data, std::size_t* consumed);

  const HttpRequest& request() const { return request_; }
  // The HTTP status a protocol error maps to (400/411/413/431/505).
  int error_status() const { return error_status_; }
  std::string_view error_reason() const { return error_reason_; }

  // Ready the parser for the next request on the same connection.
  void reset();

 private:
  enum class State { Headers, Body, Complete, Failed };

  Status fail(int status, std::string_view reason);
  Status parse_head();

  HttpParserLimits limits_;
  State state_ = State::Headers;
  std::string head_;  // accumulated request line + headers
  HttpRequest request_;
  std::size_t body_expected_ = 0;
  int error_status_ = 0;
  std::string error_reason_;
};

// "HTTP/1.1 <status> <reason>\r\n<headers...>\r\n\r\n". Callers append the
// body (or chunks) themselves.
std::string response_head(
    int status, std::string_view reason,
    const std::vector<std::pair<std::string_view, std::string>>& headers);

// A complete fixed-length response with Content-Length and Connection
// headers filled in.
std::string simple_response(int status, std::string_view reason,
                            std::string_view content_type,
                            std::string_view body, bool keep_alive);

// One chunk of a chunked-transfer body: "<hex-size>\r\n<payload>\r\n".
std::string chunk_frame(std::string_view payload);

// The terminal zero-length chunk.
inline constexpr std::string_view kLastChunk = "0\r\n\r\n";

}  // namespace wisdom::net
