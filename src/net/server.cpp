#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "serve/wire.hpp"

namespace wisdom::net {

namespace {

// {"ok": false, "error": "<name>", "detail": "<detail>"} — the refusal
// body for requests that never produced a SuggestionResponse (protocol
// errors, unparseable JSON, unknown routes).
std::string error_body(std::string_view error_name, std::string_view detail) {
  std::string out = "{\"ok\": false, \"error\": \"";
  out += serve::json_escape(error_name);
  out += "\", \"detail\": \"";
  out += serve::json_escape(detail);
  out += "\"}";
  return out;
}

std::string health_body(serve::InferenceService::State state) {
  switch (state) {
    case serve::InferenceService::State::Accepting:
      return "{\"status\": \"accepting\"}";
    case serve::InferenceService::State::Draining:
      return "{\"status\": \"draining\"}";
    case serve::InferenceService::State::Stopped: break;
  }
  return "{\"status\": \"stopped\"}";
}

// One SSE event carrying a streaming delta, with suggest_stream's
// append/reset semantics.
std::string stream_event(std::string_view text, bool reset) {
  std::string out = "data: {\"text\": \"";
  out += serve::json_escape(text);
  out += "\", \"reset\": ";
  out += reset ? "true" : "false";
  out += "}\n\n";
  return out;
}

}  // namespace

HttpServer::HttpServer(serve::InferenceService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.max_body_bytes == 0)
    options_.max_body_bytes = serve::kMaxWireBytes;
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  obs::MetricsRegistry& registry = service_.metrics();
  h_.connections_opened = &registry.counter(
      "wisdom_http_connections_opened_total", "TCP connections accepted.");
  h_.connections_closed = &registry.counter(
      "wisdom_http_connections_closed_total", "TCP connections closed.");
  h_.connections_active = &registry.gauge(
      "wisdom_http_connections_active", "Connections currently open.");
  h_.requests = &registry.counter("wisdom_http_requests_total",
                                  "HTTP requests parsed and dispatched.");
  h_.responses = &registry.counter("wisdom_http_responses_total",
                                   "HTTP responses completed.");
  h_.bad_requests = &registry.counter(
      "wisdom_http_bad_requests_total",
      "Requests refused at the protocol layer (parse errors, caps).");
  h_.status_2xx = &registry.counter("wisdom_http_status_2xx_total",
                                    "Responses with a 2xx status.");
  h_.status_4xx = &registry.counter("wisdom_http_status_4xx_total",
                                    "Responses with a 4xx status.");
  h_.status_5xx = &registry.counter("wisdom_http_status_5xx_total",
                                    "Responses with a 5xx status.");
  h_.stream_chunks = &registry.counter(
      "wisdom_http_stream_chunks_total",
      "Chunks written by the streaming endpoint (SSE events).");
  h_.slow_client_disconnects = &registry.counter(
      "wisdom_http_slow_client_disconnects_total",
      "Connections dropped for exceeding a buffer cap (unread response "
      "bytes past the write cap, or runaway pipelined input).");
  h_.bytes_read = &registry.counter("wisdom_http_bytes_read_total",
                                    "Bytes read from client sockets.");
  h_.bytes_written = &registry.counter("wisdom_http_bytes_written_total",
                                       "Bytes written to client sockets.");
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start() {
  if (started_) return true;
  if (!loop_.valid()) return false;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return false;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1 ||
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 512) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  loop_.add(listen_fd_, EPOLLIN, [this](std::uint32_t) { on_listen_ready(); });
  jobs_stop_ = false;
  for (int i = 0; i < options_.worker_threads; ++i)
    workers_.emplace_back([this] { worker_main(); });
  loop_thread_ = std::thread([this] { loop_.run(); });
  started_ = true;
  return true;
}

void HttpServer::stop() {
  if (!started_) return;
  started_ = false;
  // On the loop thread: stop accepting and disconnect everything. Closing
  // trips each connection's cancel source, so decodes for abandoned
  // requests stop at their next deadline check and workers drain fast.
  loop_.post([this] {
    if (listen_fd_ >= 0) {
      loop_.remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    auto connections = connections_;  // close_connection mutates the map
    for (auto& [id, conn] : connections) close_connection(conn);
  });
  loop_.stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_stop_ = true;
  }
  jobs_cv_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
}

void HttpServer::worker_main() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock, [this] { return jobs_stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping and drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
  }
}

void HttpServer::enqueue_job(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
}

void HttpServer::post_to_connection(
    std::uint64_t conn_id, std::function<void(const ConnectionPtr&)> fn) {
  loop_.post([this, conn_id, fn = std::move(fn)] {
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) return;  // disconnected meanwhile
    fn(it->second);
  });
}

void HttpServer::on_listen_ready() {
  while (true) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;  // EAGAIN: accepted everything pending
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ConnectionPtr conn = std::make_shared<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->peer_loopback = (ntohl(addr.sin_addr.s_addr) >> 24) == 127;
    conn->parser = HttpParser(
        HttpParserLimits{options_.max_header_bytes, options_.max_body_bytes});
    connections_[conn->id] = conn;
    h_.connections_opened->inc();
    h_.connections_active->set(static_cast<double>(connections_.size()));
    const std::uint64_t id = conn->id;
    if (!loop_.add(fd, EPOLLIN, [this, id](std::uint32_t events) {
          on_connection_event(id, events);
        })) {
      close_connection(conn);
    }
  }
}

void HttpServer::on_connection_event(std::uint64_t id, std::uint32_t events) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ConnectionPtr conn = it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_connection(conn);
    return;
  }
  if (events & EPOLLOUT) flush_output(conn);
  if ((events & EPOLLIN) == 0) return;
  char buffer[16384];
  while (conn->fd >= 0) {
    ssize_t n = ::read(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      h_.bytes_read->inc(static_cast<std::uint64_t>(n));
      conn->inbuf.append(buffer, static_cast<std::size_t>(n));
      // Flow control on pipelined input: a client that keeps pumping
      // requests while one is in flight gets bounded buffering, not an
      // unbounded arena.
      if (conn->inbuf.size() >
          options_.max_body_bytes + options_.max_header_bytes + 4096) {
        h_.slow_client_disconnects->inc();
        close_connection(conn);
        return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error. In-flight work for this connection is abandoned:
    // the cancel source tripped by close_connection stops its decode.
    close_connection(conn);
    return;
  }
  process_input(conn);
}

void HttpServer::process_input(const ConnectionPtr& conn) {
  // One request in flight per connection: pipelined bytes wait in inbuf
  // until the current response (or stream) finishes, which also keeps
  // responses in request order.
  while (conn->fd >= 0 && !conn->busy && !conn->streaming &&
         !conn->close_after_flush && !conn->inbuf.empty()) {
    std::size_t consumed = 0;
    HttpParser::Status status = conn->parser.feed(conn->inbuf, &consumed);
    conn->inbuf.erase(0, consumed);
    if (status == HttpParser::Status::NeedMore) break;
    if (status == HttpParser::Status::Error) {
      h_.bad_requests->inc();
      // The connection state is ambiguous after a protocol error (an
      // unread body would be parsed as a new request): always close.
      respond_error(conn, conn->parser.error_status(),
                    serve::http_status_reason(conn->parser.error_status()),
                    conn->parser.error_reason(), /*keep_alive=*/false);
      break;
    }
    HttpRequest request = conn->parser.request();
    conn->parser.reset();
    h_.requests->inc();
    dispatch(conn, std::move(request));
  }
}

void HttpServer::dispatch(const ConnectionPtr& conn, HttpRequest request) {
  const bool keep = request.keep_alive;
  const std::string_view prefix =
      serve::api_version_prefix(serve::ApiVersion::V1);
  const std::string_view path = request.path();
  if (path.substr(0, prefix.size()) != prefix ||
      (path.size() > prefix.size() && path[prefix.size()] != '/')) {
    respond_error(conn, 404, serve::http_status_reason(404),
                  "the API is versioned: paths are mounted under /v1", keep);
    return;
  }
  const std::string_view route = path.substr(prefix.size());

  if (route == "/healthz") {
    if (request.method != "GET") {
      respond_error(conn, 405, serve::http_status_reason(405),
                    "healthz accepts GET", keep);
      return;
    }
    const serve::InferenceService::State state = service_.state();
    const int status =
        state == serve::InferenceService::State::Accepting ? 200 : 503;
    respond_json(conn, status, health_body(state), keep);
    return;
  }

  if (route == "/metrics") {
    if (request.method != "GET") {
      respond_error(conn, 405, serve::http_status_reason(405),
                    "metrics accepts GET", keep);
      return;
    }
    count_status(200);
    queue_output(conn,
                 simple_response(200, serve::http_status_reason(200),
                                 "text/plain; version=0.0.4; charset=utf-8",
                                 service_.metrics().expose_prometheus(),
                                 keep));
    finish_response(conn, keep);
    return;
  }

  if (route == "/suggest" || route == "/suggest/stream") {
    if (request.method != "POST") {
      respond_error(conn, 405, serve::http_status_reason(405),
                    "suggest accepts POST", keep);
      return;
    }
    conn->busy = true;
    const std::uint64_t id = conn->id;
    util::CancelToken cancel = conn->cancel.token();
    if (route == "/suggest") {
      enqueue_job([this, id, request = std::move(request),
                   cancel = std::move(cancel)]() mutable {
        handle_suggest(id, std::move(request), std::move(cancel));
      });
    } else {
      enqueue_job([this, id, request = std::move(request),
                   cancel = std::move(cancel)]() mutable {
        handle_suggest_stream(id, std::move(request), std::move(cancel));
      });
    }
    return;
  }

  if (route == "/admin/drain") {
    if (request.method != "POST") {
      respond_error(conn, 405, serve::http_status_reason(405),
                    "drain accepts POST", keep);
      return;
    }
    if (options_.admin_loopback_only && !conn->peer_loopback) {
      respond_error(conn, 403, serve::http_status_reason(403),
                    "admin endpoints accept loopback peers only", keep);
      return;
    }
    conn->busy = true;
    const std::uint64_t id = conn->id;
    enqueue_job([this, id, request = std::move(request)]() mutable {
      handle_drain(id, std::move(request));
    });
    return;
  }

  respond_error(conn, 404, serve::http_status_reason(404),
                "unknown /v1 route", keep);
}

void HttpServer::handle_suggest(std::uint64_t conn_id, HttpRequest request,
                                util::CancelToken cancel) {
  const bool keep = request.keep_alive;
  std::optional<serve::SuggestionRequest> parsed =
      serve::request_from_json(request.body);
  if (!parsed) {
    post_to_connection(conn_id, [this, keep](const ConnectionPtr& conn) {
      respond_json(
          conn, 400,
          error_body(serve::service_error_name(
                         serve::ServiceError::InvalidRequest),
                     "request body is not a valid suggestion JSON payload"),
          keep);
    });
    return;
  }
  parsed->cancel = std::move(cancel);
  serve::SuggestionResponse response = service_.suggest(*parsed);
  const int status = serve::http_status(response);
  post_to_connection(conn_id, [this, status, keep,
                               body = serve::to_json(response)](
                                  const ConnectionPtr& conn) mutable {
    respond_json(conn, status, std::move(body), keep);
  });
}

void HttpServer::handle_suggest_stream(std::uint64_t conn_id,
                                       HttpRequest request,
                                       util::CancelToken cancel) {
  const bool keep = request.keep_alive;
  std::optional<serve::SuggestionRequest> parsed =
      serve::request_from_json(request.body);
  if (!parsed) {
    post_to_connection(conn_id, [this, keep](const ConnectionPtr& conn) {
      respond_json(
          conn, 400,
          error_body(serve::service_error_name(
                         serve::ServiceError::InvalidRequest),
                     "request body is not a valid suggestion JSON payload"),
          keep);
    });
    return;
  }
  parsed->cancel = std::move(cancel);

  // The stream subscribes before the outcome is known (tokens flow during
  // decode), so the status line is 200 at subscribe time; the request's
  // outcome — including refusals — rides in the final `done` event's JSON.
  post_to_connection(conn_id, [this, keep](const ConnectionPtr& conn) {
    conn->streaming = true;
    count_status(200);
    queue_output(
        conn,
        response_head(200, serve::http_status_reason(200),
                      {{"Content-Type", "text/event-stream"},
                       {"Transfer-Encoding", "chunked"},
                       {"Cache-Control", "no-store"},
                       {"Connection", keep ? "keep-alive" : "close"}}));
  });

  // The sink runs on this worker thread; each delta is posted to the loop
  // as one SSE event in one chunk. post() preserves order, so chunks land
  // in emission order.
  serve::InferenceService::TokenSink sink = [this, conn_id](
                                                std::string_view text,
                                                bool reset) {
    post_to_connection(conn_id, [this, event = stream_event(text, reset)](
                                    const ConnectionPtr& conn) {
      h_.stream_chunks->inc();
      queue_output(conn, chunk_frame(event));
    });
  };
  serve::SuggestionResponse response =
      service_.suggest_stream(*parsed, sink);

  std::string done = "event: done\ndata: " + serve::to_json(response) + "\n\n";
  post_to_connection(conn_id, [this, keep, done = std::move(done)](
                                  const ConnectionPtr& conn) {
    h_.stream_chunks->inc();
    std::string tail = chunk_frame(done);
    tail += kLastChunk;
    queue_output(conn, std::move(tail));
    finish_response(conn, keep);
  });
}

void HttpServer::handle_drain(std::uint64_t conn_id, HttpRequest request) {
  const bool keep = request.keep_alive;
  // Blocks this worker until every in-flight request (streams included)
  // has completed; healthz flips to 503 the moment draining begins. The
  // returned exposition is the service's final metrics flush.
  std::string exposition = service_.drain();
  post_to_connection(conn_id, [this, keep,
                               body = std::move(exposition)](
                                  const ConnectionPtr& conn) mutable {
    count_status(200);
    queue_output(conn,
                 simple_response(200, serve::http_status_reason(200),
                                 "text/plain; version=0.0.4; charset=utf-8",
                                 body, keep));
    finish_response(conn, keep);
  });
}

void HttpServer::respond_error(const ConnectionPtr& conn, int status,
                               std::string_view /*reason*/,
                               std::string_view detail, bool keep_alive) {
  std::string_view error_name = "invalid-request";
  if (status == 404) error_name = "not-found";
  if (status == 405) error_name = "method-not-allowed";
  if (status == 403) error_name = "forbidden";
  respond_json(conn, status, error_body(error_name, detail), keep_alive);
}

void HttpServer::respond_json(const ConnectionPtr& conn, int status,
                              std::string body, bool keep_alive) {
  count_status(status);
  queue_output(conn, simple_response(status, serve::http_status_reason(status),
                                     "application/json", body, keep_alive));
  finish_response(conn, keep_alive);
}

void HttpServer::count_status(int status) {
  if (status < 300) h_.status_2xx->inc();
  else if (status >= 500) h_.status_5xx->inc();
  else if (status >= 400) h_.status_4xx->inc();
}

void HttpServer::finish_response(const ConnectionPtr& conn, bool keep_alive) {
  if (conn->fd < 0) return;  // already closed (slow client, disconnect)
  h_.responses->inc();
  conn->busy = false;
  conn->streaming = false;
  if (!keep_alive) conn->close_after_flush = true;
  if (conn->close_after_flush) {
    if (conn->out_offset == conn->outbuf.size()) close_connection(conn);
    // else: flush_output closes once the tail drains
  } else {
    process_input(conn);  // serve the next pipelined request, if any
  }
}

void HttpServer::queue_output(const ConnectionPtr& conn, std::string bytes) {
  if (conn->fd < 0) return;
  if (conn->outbuf.empty()) {
    conn->outbuf = std::move(bytes);
    conn->out_offset = 0;
  } else {
    conn->outbuf += bytes;
  }
  if (conn->outbuf.size() - conn->out_offset >
      options_.max_write_buffer_bytes) {
    h_.slow_client_disconnects->inc();
    close_connection(conn);
    return;
  }
  flush_output(conn);
}

void HttpServer::flush_output(const ConnectionPtr& conn) {
  if (conn->fd < 0) return;
  while (conn->out_offset < conn->outbuf.size()) {
    ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_offset,
                       conn->outbuf.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      h_.bytes_written->inc(static_cast<std::uint64_t>(n));
      conn->out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        loop_.modify(conn->fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    close_connection(conn);
    return;
  }
  conn->outbuf.clear();
  conn->out_offset = 0;
  if (conn->want_write) {
    conn->want_write = false;
    loop_.modify(conn->fd, EPOLLIN);
  }
  if (conn->close_after_flush && !conn->busy && !conn->streaming)
    close_connection(conn);
}

void HttpServer::close_connection(const ConnectionPtr& conn) {
  // Trip the cancel source first: any decode still running for this
  // connection observes it at its next cooperative check.
  conn->cancel.cancel();
  if (conn->fd >= 0) {
    loop_.remove(conn->fd);
    ::close(conn->fd);
    conn->fd = -1;
  }
  if (connections_.erase(conn->id) > 0) {
    h_.connections_closed->inc();
    h_.connections_active->set(static_cast<double>(connections_.size()));
  }
}

}  // namespace wisdom::net
