#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace wisdom::net {

namespace {

// Packs (generation, fd) into the epoll user-data word so a stale event —
// one queued for an fd that was removed (and possibly reused) after the
// epoll_wait batch was collected — can be recognized and dropped.
std::uint64_t pack_key(std::uint32_t generation, int fd) {
  return (static_cast<std::uint64_t>(generation) << 32) |
         static_cast<std::uint32_t>(fd);
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = pack_key(0, wake_fd_);
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::add(int fd, std::uint32_t events, IoCallback callback) {
  if (!valid() || fd < 0) return false;
  Handler handler;
  handler.generation = next_generation_++;
  handler.callback = std::make_shared<IoCallback>(std::move(callback));
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = pack_key(handler.generation, fd);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  handlers_[fd] = std::move(handler);
  return true;
}

bool EventLoop::modify(int fd, std::uint32_t events) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return false;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = pack_key(it->second.generation, fd);
  return epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::remove(int fd) {
  if (handlers_.erase(fd) > 0)
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    posted_.push_back(std::move(fn));
  }
  std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; other errors
  // have no recovery an I/O loop could attempt.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::run_posted() {
  // Swap the queue out under the lock, run outside it: closures may post
  // more work (which lands in the next batch) without deadlocking.
  std::deque<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::run() {
  if (!valid()) return;
  running_.store(true, std::memory_order_release);
  std::vector<epoll_event> events(64);
  while (running_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t key = events[static_cast<std::size_t>(i)].data.u64;
      const int fd = static_cast<int>(key & 0xffffffffu);
      const std::uint32_t generation = static_cast<std::uint32_t>(key >> 32);
      if (fd == wake_fd_) {
        std::uint64_t count = 0;
        while (::read(wake_fd_, &count, sizeof(count)) > 0) {
        }
        continue;
      }
      auto it = handlers_.find(fd);
      if (it == handlers_.end() || it->second.generation != generation)
        continue;  // removed (possibly re-added) after the batch was taken
      // Keep the callback alive across the call even if the handler
      // removes itself (connection close inside its own event).
      std::shared_ptr<IoCallback> callback = it->second.callback;
      (*callback)(events[static_cast<std::size_t>(i)].events);
    }
    run_posted();
  }
  run_posted();
}

void EventLoop::stop() {
  running_.store(false, std::memory_order_release);
  post([] {});  // wake the loop so it observes the flag
}

}  // namespace wisdom::net
