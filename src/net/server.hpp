// Epoll streaming HTTP front end for the inference service: the /v1 API.
//
// Threading model (see DESIGN.md for the diagram):
//
//   * One loop thread owns the EventLoop, the listen socket, and every
//     connection. It accepts, reads, parses, and writes — all
//     non-blocking, so a slow or torn client never stalls another.
//   * Model work never runs on the loop thread. A parsed /v1/suggest,
//     /v1/suggest/stream, or /v1/admin/drain request is handed to a small
//     worker pool; the worker runs the service call (admission queue,
//     breaker, scheduler — the existing serving stack, unchanged) and
//     posts the finished response, or each streaming chunk, back to the
//     loop through EventLoop::post() (eventfd wakeup). Cheap endpoints
//     (healthz, metrics) answer inline on the loop thread.
//   * Connections are identified by a monotonically increasing id, never
//     by fd: a posted closure resolves the id against the live-connection
//     map, so a response for a connection that disconnected mid-request
//     (or whose fd number the kernel reused) is dropped instead of being
//     written to a stranger.
//
// Endpoints (versioned; unversioned paths are 404):
//   POST /v1/suggest         single-shot JSON (serve/wire.hpp schema)
//   POST /v1/suggest/stream  SSE over chunked transfer encoding
//   GET  /v1/metrics         Prometheus text exposition
//   GET  /v1/healthz         200 accepting / 503 draining or stopped
//   POST /v1/admin/drain     graceful drain (loopback-only by default)
//
// Streaming protocol: `Content-Type: text/event-stream`, chunked. Each
// token delta is one chunk holding one SSE event
//   data: {"text": "...", "reset": false}\n\n
// with InferenceService::suggest_stream's append/reset semantics, and the
// final chunk is
//   event: done\ndata: <single-shot response JSON>\n\n
// followed by the terminating zero chunk. Applying the append/reset
// deltas in order reproduces the single-shot snippet byte-for-byte.
//
// Error mapping is the serve/api.hpp table; per-connection buffers are
// capped (oversized bodies are refused with 413 before they buffer, slow
// clients whose unread output exceeds the write cap are disconnected).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.hpp"
#include "net/http.hpp"
#include "obs/metrics.hpp"
#include "serve/api.hpp"
#include "serve/service.hpp"
#include "util/deadline.hpp"

namespace wisdom::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read back via port()
  // Service worker threads (model calls). Keep >= 2 so an admin drain —
  // which blocks its worker until in-flight requests finish — cannot
  // deadlock behind the streams it is waiting for.
  int worker_threads = 2;
  std::size_t max_header_bytes = 16u << 10;
  // Body cap; defaults to the wire-format cap at construction.
  std::size_t max_body_bytes = 0;
  // A connection whose unsent output exceeds this is a slow client (or a
  // stalled one): it is disconnected and counted, instead of buffering
  // without bound.
  std::size_t max_write_buffer_bytes = 4u << 20;
  // Refuse /v1/admin/drain from non-loopback peers with 403.
  bool admin_loopback_only = true;
};

class HttpServer {
 public:
  // Borrows the service (and registers wisdom_http_* metric families in
  // its registry); the service must outlive the server.
  HttpServer(serve::InferenceService& service, ServerOptions options = {});
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and spawns the loop thread and the worker pool.
  // False when the socket could not be bound.
  bool start();
  // Closes the listener, disconnects everything, joins all threads.
  // Idempotent; called by the destructor.
  void stop();

  // The bound port (resolves option port 0 to the kernel's choice).
  std::uint16_t port() const { return port_; }

 private:
  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    bool peer_loopback = false;
    HttpParser parser;
    std::string inbuf;   // parsed-from; keeps pipelined requests
    std::string outbuf;  // unsent response bytes
    std::size_t out_offset = 0;
    bool busy = false;        // a request is with a worker
    bool streaming = false;   // chunked response in progress
    bool close_after_flush = false;
    bool want_write = false;  // EPOLLOUT currently armed
    // Tripped on disconnect so an in-flight decode for this connection
    // cancels instead of generating tokens nobody will read.
    util::CancelSource cancel;
  };
  using ConnectionPtr = std::shared_ptr<Connection>;

  // Loop thread.
  void on_listen_ready();
  void on_connection_event(std::uint64_t id, std::uint32_t events);
  void process_input(const ConnectionPtr& conn);
  void dispatch(const ConnectionPtr& conn, HttpRequest request);
  void queue_output(const ConnectionPtr& conn, std::string bytes);
  void flush_output(const ConnectionPtr& conn);
  void finish_response(const ConnectionPtr& conn, bool keep_alive);
  void close_connection(const ConnectionPtr& conn);
  void respond_error(const ConnectionPtr& conn, int status,
                     std::string_view reason, std::string_view detail,
                     bool keep_alive);
  void respond_json(const ConnectionPtr& conn, int status, std::string body,
                    bool keep_alive);
  void count_status(int status);

  // Worker pool.
  void worker_main();
  void enqueue_job(std::function<void()> job);

  // Endpoint bodies (worker threads). The cancel token is the
  // connection's: it trips on disconnect, cancelling the decode.
  void handle_suggest(std::uint64_t conn_id, HttpRequest request,
                      util::CancelToken cancel);
  void handle_suggest_stream(std::uint64_t conn_id, HttpRequest request,
                             util::CancelToken cancel);
  void handle_drain(std::uint64_t conn_id, HttpRequest request);

  // Posts `fn(conn)` to the loop; drops it if the connection is gone.
  void post_to_connection(std::uint64_t conn_id,
                          std::function<void(const ConnectionPtr&)> fn);

  serve::InferenceService& service_;
  ServerOptions options_;
  EventLoop loop_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread loop_thread_;
  bool started_ = false;

  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, ConnectionPtr> connections_;

  std::vector<std::thread> workers_;
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<std::function<void()>> jobs_;
  bool jobs_stop_ = false;

  struct Handles {
    obs::Counter* connections_opened = nullptr;
    obs::Counter* connections_closed = nullptr;
    obs::Gauge* connections_active = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* responses = nullptr;
    obs::Counter* bad_requests = nullptr;     // parser-level refusals
    obs::Counter* status_2xx = nullptr;
    obs::Counter* status_4xx = nullptr;
    obs::Counter* status_5xx = nullptr;
    obs::Counter* stream_chunks = nullptr;
    obs::Counter* slow_client_disconnects = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_written = nullptr;
  } h_;
};

}  // namespace wisdom::net
