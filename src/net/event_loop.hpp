// Single-threaded epoll reactor — the I/O core of the HTTP front end.
//
// One thread owns the loop and every registered file descriptor; all
// socket reads, writes, and timer-free state transitions happen on that
// thread, so per-connection state needs no locks. Other threads talk to
// the loop exclusively through post(), which enqueues a closure and wakes
// the loop via an eventfd — this is how service worker threads hand
// finished responses (and streaming chunks) back to the connection that
// asked for them without ever touching a socket themselves.
//
// Level-triggered epoll: handlers read/write until EAGAIN but are
// re-notified if they leave data behind, which keeps partial-read /
// partial-write handling straightforward under slow or torn clients.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace wisdom::net {

class EventLoop {
 public:
  // Invoked on the loop thread with the ready epoll event mask
  // (EPOLLIN / EPOLLOUT / EPOLLHUP / EPOLLERR bits).
  using IoCallback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // False when epoll/eventfd creation failed (fd exhaustion).
  bool valid() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  // fd registration. Loop-thread only (or before run() starts). The fd is
  // borrowed: remove() deregisters but never closes it. Registrations are
  // generation-stamped so an event carried by an already-removed fd —
  // even one whose number the kernel has reused — is dropped instead of
  // being delivered to the new owner.
  bool add(int fd, std::uint32_t events, IoCallback callback);
  bool modify(int fd, std::uint32_t events);
  void remove(int fd);

  // Thread-safe: enqueues `fn` to run on the loop thread and wakes it.
  // Closures run in post order, after the I/O handlers of the wakeup's
  // epoll batch. Safe to call from handlers and from posted closures.
  void post(std::function<void()> fn);

  // Runs until stop(). Returns after draining the final posted batch.
  void run();
  // Thread-safe; idempotent.
  void stop();

 private:
  struct Handler {
    std::uint32_t generation = 0;
    std::shared_ptr<IoCallback> callback;
  };

  void run_posted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  std::atomic<bool> running_{false};
  std::uint32_t next_generation_ = 1;
  std::unordered_map<int, Handler> handlers_;
  std::mutex mu_;
  std::deque<std::function<void()>> posted_;
};

}  // namespace wisdom::net
