// The versioned API surface shared by every transport that exposes the
// inference service (today: the in-process API and the /v1 HTTP front end
// in src/net/). One table maps the typed ServiceError taxonomy to HTTP
// statuses so the single-shot and streaming endpoints — and any future
// transport — cannot drift apart:
//
//   InvalidRequest   -> 400  (bad wire payload / empty prompt / bad indent)
//   DeadlineExceeded -> 408  (decode cut off by the request deadline)
//   LintRejected     -> 422  (snippet refused by the reject-degraded gate)
//   Overloaded       -> 429  (shed by the bounded admission queue)
//   GenerateFailed   -> 500  (model failure)
//   CircuitOpen      -> 503  (short-circuited by the admission breaker)
//   Draining         -> 503  (the service is draining or stopped)
//
// A response with ok=true maps to 200 regardless of its error field: a
// degraded response (fallback-served after a deadline miss, degrade-newest
// shedding, an open breaker with the fallback enabled) is still a served
// suggestion — the JSON body carries `degraded` and `error` so clients can
// tell. Only refusals (ok=false) surface the table above as the status.
#pragma once

#include <cstdint>
#include <string_view>

#include "serve/types.hpp"

namespace wisdom::serve {

// Version tag of the wire API a transport exposes. V1 is today's JSON
// schema (serve/wire.hpp) under the /v1 path prefix; unversioned paths do
// not exist — a request that names no known version is a 404.
enum class ApiVersion : std::uint8_t { V1 = 1 };

// The path prefix a version mounts under ("/v1").
std::string_view api_version_prefix(ApiVersion version);

// The single ServiceError -> HTTP status table (the list above). None
// maps to 200.
int http_status(ServiceError error);

// Status for a full response: 200 when ok (served, possibly degraded),
// http_status(error) otherwise.
int http_status(const SuggestionResponse& response);

// Canonical reason phrase for the statuses this API emits; "Unknown" for
// anything else.
std::string_view http_status_reason(int status);

}  // namespace wisdom::serve
