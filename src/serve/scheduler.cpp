#include "serve/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <memory>
#include <optional>

#include "model/kv_block.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace wisdom::serve {

namespace {

using model::Transformer;

// The scheduler performs generate()'s token-level actions itself, so it
// also owns generate()'s instrumentation: these are the same registry
// names transformer.cpp registers (MetricsRegistry dedups by name), which
// keeps the decode-path counters faithful no matter which path served a
// request.
struct DecodeMetrics {
  obs::Counter* generate_calls;
  obs::Counter* decoded_tokens;
  obs::Histogram* prefill_ms;
  obs::Histogram* token_ms;
};

DecodeMetrics& decode_metrics() {
  static DecodeMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::global();
    return DecodeMetrics{
        &registry.counter("wisdom_model_generate_total",
                          "generate()/generate_beam() invocations."),
        &registry.counter("wisdom_model_decoded_tokens_total",
                          "Decode steps taken (prefill + generation)."),
        &registry.histogram("wisdom_model_prefill_ms", {},
                            "Prompt-ingestion latency per generate call."),
        &registry.histogram("wisdom_model_decode_token_ms", {},
                            "Per-token decode-step latency."),
    };
  }();
  return metrics;
}

double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// One in-flight sequence. The lifecycle mirrors generate() line by line:
// admit = everything generate() does before its prefill loop, each
// select/post-step pair = one loop iteration (prefill or decode), retire
// = the return. Heap-allocated so addresses stay stable while the live
// list shrinks.
struct Seq {
  SeqRequest* req = nullptr;
  std::size_t index = 0;  // result slot
  std::span<const std::int32_t> kept;
  Transformer::KvCache owned_cache;       // when no warm cache was passed
  Transformer::KvCache* cache = nullptr;  // working cache (owned or warm)
  Transformer::GenerateStatus local_status;
  Transformer::GenerateStatus* status = nullptr;
  obs::TraceContext inert_trace;
  obs::TraceContext* trace = nullptr;
  bool observe = false;

  bool prefilling = true;
  std::size_t pos = 0;    // next kept-prompt index to feed
  int iterations = 0;     // decode-loop counter (generate()'s `i`)
  std::vector<std::int32_t> out;
  std::optional<util::Rng> rng;  // seeded after prefill, like generate()
  bool retired = false;

  // --- preemption / watchdog state ---------------------------------------
  int preemptions = 0;      // times this sequence has been preempted
  // Cache length to restore before normal decoding resumes; while
  // cache->length < recompute_until the sequence is in warm-start
  // recompute — re-feeding rows whose decode-loop bookkeeping (deadline
  // checks, RNG draws, counters, spans) already happened before the
  // preemption, so the recompute does none of it again.
  int recompute_until = 0;
  bool preempt_pending = false;  // marked by the pressure check this iter
  int age = 0;        // scheduler iterations since admission (incl. waits)
  int age_bound = 0;  // watchdog force-retire threshold

  std::optional<obs::TraceContext::Scope> prefill_span;
  std::optional<obs::TraceContext::Scope> decode_span;
  std::chrono::steady_clock::time_point prefill_start;

  // --- speculative-decoding state ----------------------------------------
  bool speculating = false;  // draft configured and this seq is greedy
  Transformer::KvCache draft_cache;
  int draft_fed = 0;  // committed tokens currently fed into draft_cache
  // Catch-up scratch: committed tokens the draft has not seen yet. Kept
  // in the Seq so the fused draft feed can borrow stable storage.
  std::vector<std::int32_t> draft_pending;
  // This iteration's fed run: the anchor token select() committed plus
  // the drafted guesses (clamped to feed_n rows at verify time).
  std::vector<std::int32_t> candidates;
  int guess_fed = 0;   // guesses actually fed into the draft this round
  int feed_n = 1;      // rows this seq contributed to the fused step
  bool guessing = false;     // still extending the drafted chain
  bool spec_round = false;   // drafted this iteration (needs spec_post)
  std::optional<obs::TraceContext::Scope> draft_span;
  std::optional<obs::TraceContext::Scope> verify_span;

  bool recomputing() const { return cache->length < recompute_until; }
  // The token occupying cache row `p`: prompt rows first, then the
  // generated tail — the sequence a warm-start recompute must re-feed.
  std::int32_t token_at(int p) const {
    return p < static_cast<int>(kept.size())
               ? kept[static_cast<std::size_t>(p)]
               : out[static_cast<std::size_t>(p) - kept.size()];
  }
};

// Rows per fused draft catch-up chunk (bounds workspace, not semantics).
constexpr int kDraftChunk = 32;

}  // namespace

ContinuousScheduler::ContinuousScheduler(const model::Transformer& model,
                                         SchedulerOptions options,
                                         SchedulerMetrics metrics)
    : model_(model), options_(options), metrics_(metrics) {
  if (options_.max_in_flight < 1) options_.max_in_flight = 1;
  if (options_.max_preemptions_per_seq < 0) options_.max_preemptions_per_seq = 0;
}

std::vector<std::vector<std::int32_t>> ContinuousScheduler::run(
    std::span<SeqRequest> requests) {
  const int ctx = model_.config().ctx;
  last_run_ = SchedulerRunStats{};
  std::vector<std::vector<std::int32_t>> results(requests.size());

  auto retire = [&](Seq& seq) {
    seq.decode_span.reset();
    seq.draft_span.reset();
    seq.verify_span.reset();
    seq.prefill_span.reset();
    results[seq.index] = std::move(seq.out);
    seq.retired = true;
    if (metrics_.retired) metrics_.retired->inc();
  };

  // Everything generate() does after its prefill loop: observe prefill
  // latency, take the prompt snapshot, seed the sampling RNG, and bail
  // out if the decode loop would not run at all.
  auto finish_prefill = [&](Seq& seq) {
    if (seq.observe) {
      decode_metrics().prefill_ms->observe(
          elapsed_ms_since(seq.prefill_start));
      decode_metrics().decoded_tokens->inc(
          static_cast<std::uint64_t>(seq.status->steps_taken));
    }
    seq.prefill_span.reset();
    seq.prefilling = false;
    if (seq.kept.empty()) {
      retire(seq);
      return;
    }
    if (seq.req->prompt_snapshot)
      *seq.req->prompt_snapshot =
          seq.cache->clone(static_cast<int>(seq.kept.size()));
    seq.rng.emplace(seq.req->sample_seed);
    if (seq.req->max_new_tokens <= 0 || seq.cache->length >= ctx) retire(seq);
  };

  // The watchdog's per-sequence residence bound. The derived bound must
  // never trip on a fault-free run, so it covers the worst legitimate
  // case: the sequence's own work (prefill + decode), every re-admitted
  // recompute of it, and — per preemption — a requeue wait while up to
  // max_in_flight other sequences drain whole contexts to free blocks.
  auto watchdog_bound = [&](const Seq& seq) {
    if (options_.watchdog_iterations > 0) return options_.watchdog_iterations;
    const int own_work = static_cast<int>(seq.kept.size()) +
                         std::max(0, seq.req->max_new_tokens);
    return 64 + own_work * (2 + options_.max_preemptions_per_seq) +
           (1 + options_.max_preemptions_per_seq) *
               options_.max_in_flight * ctx;
  };

  auto admit = [&](SeqRequest& req, std::size_t index) {
    auto seq = std::make_unique<Seq>();
    seq->req = &req;
    seq->index = index;
    seq->status = req.status ? req.status : &seq->local_status;
    *seq->status = Transformer::GenerateStatus{};
    seq->trace = req.trace ? req.trace : &seq->inert_trace;
    seq->observe = obs::enabled();
    if (seq->observe) decode_metrics().generate_calls->inc();
    seq->kept = model_.kept_prompt(req.prompt, req.max_new_tokens);
    seq->age_bound = watchdog_bound(*seq);
    // Speculation is greedy-only (sampled tokens cannot be verified
    // bit-exactly) and needs a compatible draft: same vocab, a context
    // window at least as large (so the draft can always mirror the
    // committed sequence).
    seq->speculating =
        options_.draft != nullptr && options_.speculative_k > 0 &&
        req.temperature <= 0.0f &&
        options_.draft->config().vocab == model_.config().vocab &&
        options_.draft->config().ctx >= ctx;
    if (seq->speculating)
      seq->draft_cache =
          options_.draft_arena
              ? options_.draft->make_paged_cache(options_.draft_arena)
              : options_.draft->make_cache();

    if (req.warm_cache) {
      assert(req.warm_cache->length <=
             static_cast<int>(seq->kept.size()));
      assert(req.warm_cache->length < static_cast<int>(seq->kept.size()) ||
             !req.warm_cache->logits.empty());
      seq->cache = req.warm_cache;
    } else {
      if (options_.arena) {
        // Admission control: only go paged when the arena can cover the
        // sequence's worst case; otherwise fall back to a monolithic
        // cache up front rather than churn through a mid-flight
        // materialize(). An injected allocation failure denies the paged
        // cache the same way a full arena would.
        const int target = std::min(
            ctx, static_cast<int>(seq->kept.size()) + req.max_new_tokens);
        const int needed = options_.arena->blocks_for_tokens(target);
        const bool alloc_fault =
            options_.faults && options_.faults->take_alloc_failure();
        if (!alloc_fault && options_.arena->free_blocks() >= needed) {
          seq->owned_cache = model_.make_paged_cache(options_.arena);
        } else {
          seq->owned_cache = model_.make_cache();
          ++last_run_.monolithic_fallbacks;
          if (metrics_.monolithic_fallbacks)
            metrics_.monolithic_fallbacks->inc();
        }
      } else {
        seq->owned_cache = model_.make_cache();
      }
      seq->cache = &seq->owned_cache;
    }
    seq->status->prefill_tokens_reused = seq->cache->length;
    seq->pos = static_cast<std::size_t>(seq->cache->length);

    seq->prefill_span = seq->trace->span("prefill");
    if (seq->observe) seq->prefill_start = std::chrono::steady_clock::now();
    if (seq->pos == seq->kept.size()) finish_prefill(*seq);

    ++last_run_.admitted;
    if (metrics_.admitted) metrics_.admitted->inc();
    return seq;
  };

  // Select phase: generate()'s per-iteration work up to (not including)
  // the decode_step — deadline check, span open, sampling, stop check.
  // Returns the token to feed this step, or nullopt when the sequence
  // retired (or, transiently, pushed a token into a full context).
  auto select = [&](Seq& seq) -> std::optional<std::int32_t> {
    if (seq.recomputing()) {
      // Warm-start recompute of rows released by a preemption: the
      // decode-loop bookkeeping for these rows already ran before the
      // preemption, so re-feeding them checks no deadline, draws no RNG,
      // opens no span — byte-identity to the unpreempted run depends on
      // exactly this.
      return seq.token_at(seq.cache->length);
    }
    if (seq.prefilling) {
      if (seq.req->deadline.expired()) {
        // Mirrors generate()'s early return from inside the prefill
        // scope: span closes, prefill_ms/decoded_tokens are NOT
        // observed, the partial result is empty.
        seq.status->deadline_expired = true;
        retire(seq);
        return std::nullopt;
      }
      return seq.kept[seq.pos];
    }
    if (seq.req->deadline.expired()) {
      seq.status->deadline_expired = true;
      retire(seq);
      return std::nullopt;
    }
    seq.decode_span = seq.trace->span("decode");
    const std::span<const float> logits = seq.cache->logits;
    const std::int32_t next =
        seq.req->temperature > 0.0f
            ? model_.sample_token(logits, seq.req->temperature,
                                  seq.req->top_k, *seq.rng)
            : model_.argmax_token(logits);
    if (next == seq.req->stop_token) {
      retire(seq);
      return std::nullopt;
    }
    seq.out.push_back(next);
    if (seq.req->on_token) seq.req->on_token(next);
    if (seq.cache->length >= ctx) {
      // generate() would skip the decode_step and fail the loop
      // condition on the next pass without another deadline check.
      retire(seq);
      return std::nullopt;
    }
    return next;
  };

  // Post-step phase: the bookkeeping generate() does after decode_step —
  // counters, span close, prefill completion, loop-exit checks (which
  // generate() evaluates before the next deadline check, so they retire
  // here rather than in the next select). Recompute rows were booked
  // before their preemption and are skipped entirely.
  auto post_step = [&](Seq& seq, double step_ms) {
    if (seq.cache->length <= seq.recompute_until) return;
    ++seq.status->steps_taken;
    if (seq.prefilling) {
      ++seq.pos;
      if (seq.pos == seq.kept.size()) finish_prefill(seq);
      return;
    }
    if (seq.observe) {
      decode_metrics().token_ms->observe(step_ms);
      decode_metrics().decoded_tokens->inc();
    }
    seq.decode_span.reset();
    ++seq.iterations;
    if (seq.iterations >= seq.req->max_new_tokens ||
        seq.cache->length >= ctx)
      retire(seq);
  };

  const int vocab = model_.config().vocab;
  std::vector<std::unique_ptr<Seq>> live;
  std::deque<std::unique_ptr<Seq>> requeue;  // preempted, FIFO
  std::vector<Seq*> step_seqs;
  std::vector<Seq*> spec_seqs;  // drafting subset of step_seqs
  std::vector<Transformer::SpanFeed> feeds;
  std::vector<Transformer::SpanFeed> draft_feeds;
  std::vector<Transformer::KvCache*> draft_caches;
  std::vector<std::int32_t> draft_tokens;
  std::vector<Seq*> draft_guessers;
  std::vector<int> row_base;
  std::vector<float> row_logits;
  std::size_t next_pending = 0;
  int step = 0;

  // Post-step for a sequence that drafted this iteration. Row 0 is the
  // anchor token select() committed — generate()'s own post-step
  // bookkeeping. Rows 1..feed_n-1 are drafted tokens: each is committed
  // iff it equals the verifier's argmax at its position, with the same
  // deadline/stop handling sequential decode runs (one deadline check per
  // committed token, in order). On mismatch the speculated suffix is
  // dropped and the verifier token's commit is deferred to the next
  // iteration's select — the restored logits re-derive it there, where it
  // consumes its deadline check.
  auto spec_post = [&](Seq& seq, int row0, double step_ms) {
    const int L0 = seq.cache->length - seq.feed_n;
    ++seq.status->steps_taken;
    if (seq.observe) {
      decode_metrics().token_ms->observe(step_ms);
      decode_metrics().decoded_tokens->inc();
    }
    seq.decode_span.reset();
    ++seq.iterations;
    int accepted = 0;
    bool ended = false;  // stop token or deadline inside the chain
    int kept_rows = seq.feed_n;
    for (int j = 1; j < seq.feed_n; ++j) {
      // Logits after feeding candidates[0..j-1]: sequential decode's
      // state when it would pick this round's token number j.
      const std::span<const float> row(
          row_logits.data() +
              static_cast<std::size_t>(row0 + j - 1) * vocab,
          static_cast<std::size_t>(vocab));
      const std::int32_t true_t = model_.argmax_token(row);
      if (true_t != seq.candidates[static_cast<std::size_t>(j)]) {
        seq.cache->truncate(L0 + j);
        seq.cache->logits.assign(row.begin(), row.end());
        kept_rows = j;
        break;
      }
      if (seq.req->deadline.expired()) {
        seq.status->deadline_expired = true;
        seq.cache->truncate(L0 + j);
        seq.cache->logits.assign(row.begin(), row.end());
        kept_rows = j;
        ended = true;
        break;
      }
      if (true_t == seq.req->stop_token) {
        seq.cache->truncate(L0 + j);
        seq.cache->logits.assign(row.begin(), row.end());
        kept_rows = j;
        ended = true;
        break;
      }
      seq.out.push_back(true_t);
      if (seq.req->on_token) seq.req->on_token(true_t);
      ++seq.status->steps_taken;
      ++seq.iterations;
      ++accepted;
      if (seq.observe) decode_metrics().decoded_tokens->inc();
    }
    const int proposed = seq.feed_n - 1;
    ++last_run_.spec_verify_steps;
    last_run_.spec_proposed += proposed;
    last_run_.spec_accepted += accepted;
    last_run_.spec_rejected += proposed - accepted;
    if (metrics_.spec_verify_steps) metrics_.spec_verify_steps->inc();
    if (metrics_.spec_proposed && proposed > 0)
      metrics_.spec_proposed->inc(static_cast<std::uint64_t>(proposed));
    if (metrics_.spec_accepted && accepted > 0)
      metrics_.spec_accepted->inc(static_cast<std::uint64_t>(accepted));
    if (metrics_.spec_rejected && proposed - accepted > 0)
      metrics_.spec_rejected->inc(
          static_cast<std::uint64_t>(proposed - accepted));
    if (metrics_.spec_commit_per_verify)
      metrics_.spec_commit_per_verify->observe(
          static_cast<double>(kept_rows));
    // Resync the draft to the committed prefix: accepted guesses stay
    // fed, everything past them is forgotten (truncate drops the draft
    // logits; the next catch-up feed regenerates them).
    const int draft_keep = seq.draft_fed + std::min(seq.guess_fed, accepted);
    seq.draft_cache.truncate(draft_keep);
    seq.draft_fed = draft_keep;
    seq.verify_span.reset();
    seq.spec_round = false;
    if (ended || seq.iterations >= seq.req->max_new_tokens ||
        seq.cache->length >= ctx)
      retire(seq);
  };

  // Blocks the arena appears to have free — zero once an injected
  // arena-exhaustion step is reached, the real free count otherwise.
  auto perceived_free = [&]() {
    if (options_.faults && options_.faults->arena_exhausted_at(step)) return 0;
    return options_.arena->free_blocks();
  };

  // Blocks this sequence's next append needs beyond what it holds: fresh
  // blocks to cover the planned rows (one for plain decode, up to
  // 1 + speculative_k for a drafting sequence), plus an exclusive copy
  // when the tail block is shared with a snapshot (COW).
  auto step_block_need = [&](const Seq& seq) {
    if (!seq.cache->paged()) return 0;
    int width = 1;
    if (seq.speculating && !seq.prefilling && !seq.recomputing())
      width = std::min(1 + options_.speculative_k,
                       std::max(1, ctx - seq.cache->length));
    int need =
        options_.arena->blocks_for_tokens(seq.cache->length + width) -
        static_cast<int>(seq.cache->block_table.size());
    if (need < 0) need = 0;
    const int bi = seq.cache->length / options_.arena->block_size();
    if (bi < static_cast<int>(seq.cache->block_table.size()) &&
        options_.arena->ref_count(
            seq.cache->block_table[static_cast<std::size_t>(bi)]) > 1)
      ++need;
    return need;
  };

  // Blocks a preemption of `seq` could return: everything past the
  // kept-prefix boundary (the generated tail). The prefilled prompt rows
  // stay resident — that is the snapshot the sequence resumes from.
  auto releasable_blocks = [&](const Seq& seq) {
    if (!seq.cache->paged()) return 0;
    const int keep =
        std::min(static_cast<int>(seq.kept.size()), seq.cache->length);
    return static_cast<int>(seq.cache->block_table.size()) -
           options_.arena->blocks_for_tokens(keep);
  };

  auto preempt = [&](Seq& seq) {
    const int keep =
        std::min(static_cast<int>(seq.kept.size()), seq.cache->length);
    const int free_before = options_.arena->free_blocks();
    // max(): a victim preempted mid-recompute keeps its original restore
    // target — shrinking it to the partial recompute length would replay
    // the remaining rows through the normal decode path, re-emitting
    // tokens the sequence already produced.
    seq.recompute_until = std::max(seq.recompute_until, seq.cache->length);
    seq.cache->truncate(keep);  // drops the tail blocks AND the logits;
                                // the recompute regenerates both
    // A parked sequence must not sit on draft memory either: drop the
    // whole draft cache (releasing its paged blocks). The next drafting
    // round re-feeds the committed tokens — correctness never depended
    // on the draft state, only latency does.
    if (seq.speculating) {
      seq.draft_cache.truncate(0);
      seq.draft_fed = 0;
    }
    const int released = options_.arena->free_blocks() - free_before;
    const int recompute = seq.recompute_until - keep;
    ++seq.preemptions;
    seq.preempt_pending = true;
    ++last_run_.preemptions;
    last_run_.preempt_blocks_released += released;
    last_run_.preempt_recompute_tokens += recompute;
    if (metrics_.preempted) metrics_.preempted->inc();
    if (metrics_.preempt_blocks_released && released > 0)
      metrics_.preempt_blocks_released->inc(
          static_cast<std::uint64_t>(released));
    if (metrics_.preempt_recompute_tokens && recompute > 0)
      metrics_.preempt_recompute_tokens->inc(
          static_cast<std::uint64_t>(recompute));
  };

  // KV-pressure check: preempt lowest-progress sequences until the
  // arena can cover every live sequence's next append. Victims must
  // actually return blocks and be under their preemption cap; when no
  // victim qualifies the step proceeds and prepare_append's monolithic
  // materialization absorbs the (real) shortfall — decoding never fails.
  auto relieve_pressure = [&]() {
    if (!options_.arena) return;
    bool any_preempted = false;
    while (true) {
      int needed = 0;
      for (auto& seq : live)
        if (!seq->preempt_pending) needed += step_block_need(*seq);
      if (needed <= perceived_free()) break;
      Seq* victim = nullptr;
      for (auto& seq : live) {
        if (seq->preempt_pending) continue;
        if (seq->preemptions >= options_.max_preemptions_per_seq) continue;
        if (releasable_blocks(*seq) <= 0) continue;
        // Lowest progress loses least recompute work; ties go to the
        // most recently admitted (later in the live list).
        if (!victim || seq->out.size() <= victim->out.size())
          victim = seq.get();
      }
      if (!victim) break;
      preempt(*victim);
      any_preempted = true;
    }
    if (!any_preempted) return;
    for (auto& seq : live) {
      if (!seq->preempt_pending) continue;
      seq->preempt_pending = false;
      requeue.push_back(std::move(seq));
    }
    std::erase_if(live, [](const auto& s) { return s == nullptr; });
  };

  // Re-admission gate for a preempted sequence: the arena must cover the
  // recompute target plus one decode row. `force` (nothing else is live)
  // overrides — the requeue must always be able to make progress.
  auto fits_requeued = [&](const Seq& seq) {
    if (!seq.cache->paged()) return true;
    const int target = std::min(ctx, seq.recompute_until + 1);
    const int needed = options_.arena->blocks_for_tokens(target) -
                       static_cast<int>(seq.cache->block_table.size());
    return needed <= perceived_free();
  };

  // Watchdog sweep: every admitted-but-unfinished sequence (live or
  // requeued) ages one iteration; past its bound it is force-retired as
  // deadline-expired — the guarantee that a wedged batch (stall faults,
  // pathological requeue waits) still terminates with every request
  // answered.
  auto age_and_watchdog = [&](std::unique_ptr<Seq>& seq) {
    ++seq->age;
    last_run_.max_seq_age = std::max(last_run_.max_seq_age, seq->age);
    if (seq->age <= seq->age_bound) return;
    seq->status->deadline_expired = true;
    ++last_run_.watchdog_retired;
    if (metrics_.watchdog_retired) metrics_.watchdog_retired->inc();
    retire(*seq);
  };

  while (next_pending < requests.size() || !live.empty() ||
         !requeue.empty()) {
    // An injected stall wedges this iteration: admissions still land (so
    // the watchdog has sequences to age) but nothing decodes.
    const bool stalled =
        options_.faults && options_.faults->take_stall_step();

    int admissions = 0;
    // Preempted sequences re-admit first — strict priority over new
    // arrivals, so a victim cannot be starved by fresh traffic grabbing
    // the blocks it is waiting for. The head re-admits unconditionally
    // when nothing else is live (forward progress even under injected
    // exhaustion, where fits_requeued() never passes).
    while (!requeue.empty() &&
           static_cast<int>(live.size()) < options_.max_in_flight &&
           (live.empty() || fits_requeued(*requeue.front()))) {
      live.push_back(std::move(requeue.front()));
      requeue.pop_front();
      ++admissions;
    }
    while (requeue.empty() && next_pending < requests.size() &&
           static_cast<int>(live.size()) < options_.max_in_flight &&
           requests[next_pending].arrival_step <= step) {
      auto seq = admit(requests[next_pending], next_pending);
      ++next_pending;
      ++admissions;
      if (!seq->retired) live.push_back(std::move(seq));
    }
    if (live.empty() && requeue.empty()) {
      if (next_pending >= requests.size()) break;
      // Nothing in flight and the next arrival is in the future: jump
      // straight to it instead of spinning empty iterations.
      step = std::max(step + 1, requests[next_pending].arrival_step);
      continue;
    }
    last_run_.peak_in_flight =
        std::max(last_run_.peak_in_flight, static_cast<int>(live.size()));
    if (metrics_.inflight)
      metrics_.inflight->set(static_cast<double>(live.size()));

    if (!stalled) {
      relieve_pressure();

      step_seqs.clear();
      for (auto& seq : live) {
        if (auto token = select(*seq)) {
          seq->candidates.clear();
          seq->candidates.push_back(*token);
          seq->feed_n = 1;
          seq->spec_round = false;
          step_seqs.push_back(seq.get());
        }
      }
      std::erase_if(live, [](const auto& s) { return s->retired; });

      if (!step_seqs.empty()) {
        // --- draft phase: greedy decode rows propose up to k tokens from
        // their per-sequence draft caches, batched across sequences.
        // Prefill and recompute rows never draft; draft work consumes no
        // deadline checks (check-count parity with sequential decode).
        spec_seqs.clear();
        if (options_.draft && options_.speculative_k > 0)
          for (Seq* seq : step_seqs)
            if (seq->speculating && !seq->prefilling && !seq->recomputing())
              spec_seqs.push_back(seq);
        if (!spec_seqs.empty()) {
          for (Seq* seq : spec_seqs) {
            seq->spec_round = true;
            seq->draft_span = seq->trace->span("draft");
            seq->guess_fed = 0;
            seq->guessing = true;
            const int target =
                static_cast<int>(seq->kept.size() + seq->out.size());
            seq->draft_pending.clear();
            for (int i = seq->draft_fed; i < target; ++i)
              seq->draft_pending.push_back(seq->token_at(i));
            seq->draft_fed = target;
          }
          // Catch-up: feed each draft the committed tokens it has not
          // seen yet, fused across sequences, chunked to bound workspace.
          std::size_t max_pending = 0;
          for (Seq* seq : spec_seqs)
            max_pending = std::max(max_pending, seq->draft_pending.size());
          for (std::size_t off = 0; off < max_pending; off += kDraftChunk) {
            draft_feeds.clear();
            int fed_rows = 0;
            for (Seq* seq : spec_seqs) {
              if (off >= seq->draft_pending.size()) continue;
              const std::size_t len = std::min<std::size_t>(
                  kDraftChunk, seq->draft_pending.size() - off);
              draft_feeds.push_back(
                  {&seq->draft_cache,
                   std::span<const std::int32_t>(seq->draft_pending)
                       .subspan(off, len)});
              fed_rows += static_cast<int>(len);
            }
            options_.draft->verify_step_batch(draft_feeds);
            last_run_.spec_draft_steps += fed_rows;
            if (metrics_.spec_draft_steps)
              metrics_.spec_draft_steps->inc(
                  static_cast<std::uint64_t>(fed_rows));
          }
          // Guess rounds: one batched draft step per drafted position.
          for (int g = 1; g <= options_.speculative_k; ++g) {
            draft_caches.clear();
            draft_tokens.clear();
            draft_guessers.clear();
            for (Seq* seq : spec_seqs) {
              if (!seq->guessing) continue;
              const std::int32_t guess =
                  options_.draft->argmax_token(seq->draft_cache.logits);
              seq->candidates.push_back(guess);
              if (guess == seq->req->stop_token ||
                  seq->draft_cache.length >=
                      options_.draft->config().ctx) {
                seq->guessing = false;
                continue;
              }
              if (g < options_.speculative_k) {
                draft_caches.push_back(&seq->draft_cache);
                draft_tokens.push_back(guess);
                draft_guessers.push_back(seq);
              }
            }
            if (draft_caches.empty()) break;
            options_.draft->decode_step_batch(draft_caches, draft_tokens);
            for (Seq* seq : draft_guessers) ++seq->guess_fed;
            last_run_.spec_draft_steps +=
                static_cast<int>(draft_caches.size());
            if (metrics_.spec_draft_steps)
              metrics_.spec_draft_steps->inc(
                  static_cast<std::uint64_t>(draft_caches.size()));
          }
          for (Seq* seq : spec_seqs) {
            seq->draft_span.reset();
            seq->verify_span = seq->trace->span("verify");
            // Clamp the fed run so every row is one sequential decode
            // would also feed: the anchor's own append plus at most the
            // remaining token budget and remaining context rows.
            seq->feed_n = std::min(
                {static_cast<int>(seq->candidates.size()),
                 1 + seq->req->max_new_tokens -
                     static_cast<int>(seq->out.size()),
                 ctx - seq->cache->length});
          }
        }

        // --- fused forward: every selected row plus the drafted chains.
        // With no drafting sequences this is exactly the old width-1
        // decode_step_batch step.
        feeds.clear();
        row_base.clear();
        int rows = 0;
        for (Seq* seq : step_seqs) {
          row_base.push_back(rows);
          rows += seq->feed_n;
          feeds.push_back(
              {seq->cache,
               std::span<const std::int32_t>(seq->candidates)
                   .first(static_cast<std::size_t>(seq->feed_n))});
        }
        const bool observe = obs::enabled();
        const auto step_start =
            observe ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{};
        model_.verify_step_batch(feeds,
                                 spec_seqs.empty() ? nullptr : &row_logits);
        const double step_ms =
            observe ? elapsed_ms_since(step_start) : 0.0;
        ++last_run_.steps;
        if (metrics_.steps) metrics_.steps->inc();
        if (metrics_.batch_width)
          metrics_.batch_width->observe(
              static_cast<double>(step_seqs.size()));
        if (metrics_.admissions_per_step)
          metrics_.admissions_per_step->observe(
              static_cast<double>(admissions));
        for (std::size_t i = 0; i < step_seqs.size(); ++i) {
          Seq* seq = step_seqs[i];
          if (seq->spec_round)
            spec_post(*seq, row_base[i], step_ms);
          else
            post_step(*seq, step_ms);
        }
        std::erase_if(live, [](const auto& s) { return s->retired; });
      }
    }
    if (options_.arena && (metrics_.blocks_in_use || metrics_.blocks_free)) {
      const auto stats = options_.arena->stats();
      if (metrics_.blocks_in_use)
        metrics_.blocks_in_use->set(static_cast<double>(stats.in_use));
      if (metrics_.blocks_free)
        metrics_.blocks_free->set(static_cast<double>(stats.free_blocks));
    }
    for (auto& seq : live) age_and_watchdog(seq);
    for (auto& seq : requeue) age_and_watchdog(seq);
    std::erase_if(live, [](const auto& s) { return s->retired; });
    std::erase_if(requeue, [](const auto& s) { return s->retired; });
    ++step;
  }
  if (metrics_.inflight) metrics_.inflight->set(0.0);
  return results;
}

}  // namespace wisdom::serve
