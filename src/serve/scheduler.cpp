#include "serve/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <optional>

#include "model/kv_block.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace wisdom::serve {

namespace {

using model::Transformer;

// The scheduler performs generate()'s token-level actions itself, so it
// also owns generate()'s instrumentation: these are the same registry
// names transformer.cpp registers (MetricsRegistry dedups by name), which
// keeps the decode-path counters faithful no matter which path served a
// request.
struct DecodeMetrics {
  obs::Counter* generate_calls;
  obs::Counter* decoded_tokens;
  obs::Histogram* prefill_ms;
  obs::Histogram* token_ms;
};

DecodeMetrics& decode_metrics() {
  static DecodeMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::global();
    return DecodeMetrics{
        &registry.counter("wisdom_model_generate_total",
                          "generate()/generate_beam() invocations."),
        &registry.counter("wisdom_model_decoded_tokens_total",
                          "Decode steps taken (prefill + generation)."),
        &registry.histogram("wisdom_model_prefill_ms", {},
                            "Prompt-ingestion latency per generate call."),
        &registry.histogram("wisdom_model_decode_token_ms", {},
                            "Per-token decode-step latency."),
    };
  }();
  return metrics;
}

double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// One in-flight sequence. The lifecycle mirrors generate() line by line:
// admit = everything generate() does before its prefill loop, each
// select/post-step pair = one loop iteration (prefill or decode), retire
// = the return. Heap-allocated so addresses stay stable while the live
// list shrinks.
struct Seq {
  SeqRequest* req = nullptr;
  std::size_t index = 0;  // result slot
  std::span<const std::int32_t> kept;
  Transformer::KvCache owned_cache;       // when no warm cache was passed
  Transformer::KvCache* cache = nullptr;  // working cache (owned or warm)
  Transformer::GenerateStatus local_status;
  Transformer::GenerateStatus* status = nullptr;
  obs::TraceContext inert_trace;
  obs::TraceContext* trace = nullptr;
  bool observe = false;

  bool prefilling = true;
  std::size_t pos = 0;    // next kept-prompt index to feed
  int iterations = 0;     // decode-loop counter (generate()'s `i`)
  std::vector<std::int32_t> out;
  std::optional<util::Rng> rng;  // seeded after prefill, like generate()
  bool retired = false;

  std::optional<obs::TraceContext::Scope> prefill_span;
  std::optional<obs::TraceContext::Scope> decode_span;
  std::chrono::steady_clock::time_point prefill_start;
};

}  // namespace

ContinuousScheduler::ContinuousScheduler(const model::Transformer& model,
                                         SchedulerOptions options,
                                         SchedulerMetrics metrics)
    : model_(model), options_(options), metrics_(metrics) {
  if (options_.max_in_flight < 1) options_.max_in_flight = 1;
}

std::vector<std::vector<std::int32_t>> ContinuousScheduler::run(
    std::span<SeqRequest> requests) {
  const int ctx = model_.config().ctx;
  last_run_ = SchedulerRunStats{};
  std::vector<std::vector<std::int32_t>> results(requests.size());

  auto retire = [&](Seq& seq) {
    seq.decode_span.reset();
    seq.prefill_span.reset();
    results[seq.index] = std::move(seq.out);
    seq.retired = true;
    if (metrics_.retired) metrics_.retired->inc();
  };

  // Everything generate() does after its prefill loop: observe prefill
  // latency, take the prompt snapshot, seed the sampling RNG, and bail
  // out if the decode loop would not run at all.
  auto finish_prefill = [&](Seq& seq) {
    if (seq.observe) {
      decode_metrics().prefill_ms->observe(
          elapsed_ms_since(seq.prefill_start));
      decode_metrics().decoded_tokens->inc(
          static_cast<std::uint64_t>(seq.status->steps_taken));
    }
    seq.prefill_span.reset();
    seq.prefilling = false;
    if (seq.kept.empty()) {
      retire(seq);
      return;
    }
    if (seq.req->prompt_snapshot)
      *seq.req->prompt_snapshot =
          seq.cache->clone(static_cast<int>(seq.kept.size()));
    seq.rng.emplace(seq.req->sample_seed);
    if (seq.req->max_new_tokens <= 0 || seq.cache->length >= ctx) retire(seq);
  };

  auto admit = [&](SeqRequest& req, std::size_t index) {
    auto seq = std::make_unique<Seq>();
    seq->req = &req;
    seq->index = index;
    seq->status = req.status ? req.status : &seq->local_status;
    *seq->status = Transformer::GenerateStatus{};
    seq->trace = req.trace ? req.trace : &seq->inert_trace;
    seq->observe = obs::enabled();
    if (seq->observe) decode_metrics().generate_calls->inc();
    seq->kept = model_.kept_prompt(req.prompt, req.max_new_tokens);

    if (req.warm_cache) {
      assert(req.warm_cache->length <=
             static_cast<int>(seq->kept.size()));
      assert(req.warm_cache->length < static_cast<int>(seq->kept.size()) ||
             !req.warm_cache->logits.empty());
      seq->cache = req.warm_cache;
    } else {
      if (options_.arena) {
        // Admission control: only go paged when the arena can cover the
        // sequence's worst case; otherwise fall back to a monolithic
        // cache up front rather than churn through a mid-flight
        // materialize().
        const int target = std::min(
            ctx, static_cast<int>(seq->kept.size()) + req.max_new_tokens);
        const int bs = options_.arena->block_size();
        const int needed = (target + bs - 1) / bs;
        if (options_.arena->free_blocks() >= needed) {
          seq->owned_cache = model_.make_paged_cache(options_.arena);
        } else {
          seq->owned_cache = model_.make_cache();
          ++last_run_.monolithic_fallbacks;
          if (metrics_.monolithic_fallbacks)
            metrics_.monolithic_fallbacks->inc();
        }
      } else {
        seq->owned_cache = model_.make_cache();
      }
      seq->cache = &seq->owned_cache;
    }
    seq->status->prefill_tokens_reused = seq->cache->length;
    seq->pos = static_cast<std::size_t>(seq->cache->length);

    seq->prefill_span = seq->trace->span("prefill");
    if (seq->observe) seq->prefill_start = std::chrono::steady_clock::now();
    if (seq->pos == seq->kept.size()) finish_prefill(*seq);

    ++last_run_.admitted;
    if (metrics_.admitted) metrics_.admitted->inc();
    return seq;
  };

  // Select phase: generate()'s per-iteration work up to (not including)
  // the decode_step — deadline check, span open, sampling, stop check.
  // Returns the token to feed this step, or nullopt when the sequence
  // retired (or, transiently, pushed a token into a full context).
  auto select = [&](Seq& seq) -> std::optional<std::int32_t> {
    if (seq.prefilling) {
      if (seq.req->deadline.expired()) {
        // Mirrors generate()'s early return from inside the prefill
        // scope: span closes, prefill_ms/decoded_tokens are NOT
        // observed, the partial result is empty.
        seq.status->deadline_expired = true;
        retire(seq);
        return std::nullopt;
      }
      return seq.kept[seq.pos];
    }
    if (seq.req->deadline.expired()) {
      seq.status->deadline_expired = true;
      retire(seq);
      return std::nullopt;
    }
    seq.decode_span = seq.trace->span("decode");
    const std::span<const float> logits = seq.cache->logits;
    const std::int32_t next =
        seq.req->temperature > 0.0f
            ? model_.sample_token(logits, seq.req->temperature,
                                  seq.req->top_k, *seq.rng)
            : model_.argmax_token(logits);
    if (next == seq.req->stop_token) {
      retire(seq);
      return std::nullopt;
    }
    seq.out.push_back(next);
    if (seq.cache->length >= ctx) {
      // generate() would skip the decode_step and fail the loop
      // condition on the next pass without another deadline check.
      retire(seq);
      return std::nullopt;
    }
    return next;
  };

  // Post-step phase: the bookkeeping generate() does after decode_step —
  // counters, span close, prefill completion, loop-exit checks (which
  // generate() evaluates before the next deadline check, so they retire
  // here rather than in the next select).
  auto post_step = [&](Seq& seq, double step_ms) {
    ++seq.status->steps_taken;
    if (seq.prefilling) {
      ++seq.pos;
      if (seq.pos == seq.kept.size()) finish_prefill(seq);
      return;
    }
    if (seq.observe) {
      decode_metrics().token_ms->observe(step_ms);
      decode_metrics().decoded_tokens->inc();
    }
    seq.decode_span.reset();
    ++seq.iterations;
    if (seq.iterations >= seq.req->max_new_tokens ||
        seq.cache->length >= ctx)
      retire(seq);
  };

  std::vector<std::unique_ptr<Seq>> live;
  std::vector<Transformer::KvCache*> step_caches;
  std::vector<std::int32_t> step_tokens;
  std::vector<Seq*> step_seqs;
  std::size_t next_pending = 0;
  int step = 0;

  while (next_pending < requests.size() || !live.empty()) {
    int admissions = 0;
    while (next_pending < requests.size() &&
           static_cast<int>(live.size()) < options_.max_in_flight &&
           requests[next_pending].arrival_step <= step) {
      auto seq = admit(requests[next_pending], next_pending);
      ++next_pending;
      ++admissions;
      if (!seq->retired) live.push_back(std::move(seq));
    }
    if (live.empty()) {
      if (next_pending >= requests.size()) break;
      // Nothing in flight and the next arrival is in the future: jump
      // straight to it instead of spinning empty iterations.
      step = std::max(step + 1, requests[next_pending].arrival_step);
      continue;
    }
    last_run_.peak_in_flight =
        std::max(last_run_.peak_in_flight, static_cast<int>(live.size()));
    if (metrics_.inflight)
      metrics_.inflight->set(static_cast<double>(live.size()));

    step_caches.clear();
    step_tokens.clear();
    step_seqs.clear();
    for (auto& seq : live) {
      if (auto token = select(*seq)) {
        step_caches.push_back(seq->cache);
        step_tokens.push_back(*token);
        step_seqs.push_back(seq.get());
      }
    }
    std::erase_if(live, [](const auto& s) { return s->retired; });

    if (!step_seqs.empty()) {
      const bool observe = obs::enabled();
      const auto step_start = observe
                                  ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
      model_.decode_step_batch(step_caches, step_tokens);
      const double step_ms =
          observe ? elapsed_ms_since(step_start) : 0.0;
      ++last_run_.steps;
      if (metrics_.steps) metrics_.steps->inc();
      if (metrics_.batch_width)
        metrics_.batch_width->observe(
            static_cast<double>(step_seqs.size()));
      if (metrics_.admissions_per_step)
        metrics_.admissions_per_step->observe(
            static_cast<double>(admissions));
      for (Seq* seq : step_seqs) post_step(*seq, step_ms);
      std::erase_if(live, [](const auto& s) { return s->retired; });
    }
    if (options_.arena && (metrics_.blocks_in_use || metrics_.blocks_free)) {
      const auto stats = options_.arena->stats();
      if (metrics_.blocks_in_use)
        metrics_.blocks_in_use->set(static_cast<double>(stats.in_use));
      if (metrics_.blocks_free)
        metrics_.blocks_free->set(static_cast<double>(stats.free_blocks));
    }
    ++step;
  }
  if (metrics_.inflight) metrics_.inflight->set(0.0);
  return results;
}

}  // namespace wisdom::serve
