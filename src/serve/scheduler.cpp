#include "serve/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <memory>
#include <optional>

#include "model/kv_block.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace wisdom::serve {

namespace {

using model::Transformer;

// The scheduler performs generate()'s token-level actions itself, so it
// also owns generate()'s instrumentation: these are the same registry
// names transformer.cpp registers (MetricsRegistry dedups by name), which
// keeps the decode-path counters faithful no matter which path served a
// request.
struct DecodeMetrics {
  obs::Counter* generate_calls;
  obs::Counter* decoded_tokens;
  obs::Histogram* prefill_ms;
  obs::Histogram* token_ms;
};

DecodeMetrics& decode_metrics() {
  static DecodeMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::global();
    return DecodeMetrics{
        &registry.counter("wisdom_model_generate_total",
                          "generate()/generate_beam() invocations."),
        &registry.counter("wisdom_model_decoded_tokens_total",
                          "Decode steps taken (prefill + generation)."),
        &registry.histogram("wisdom_model_prefill_ms", {},
                            "Prompt-ingestion latency per generate call."),
        &registry.histogram("wisdom_model_decode_token_ms", {},
                            "Per-token decode-step latency."),
    };
  }();
  return metrics;
}

double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// One in-flight sequence. The lifecycle mirrors generate() line by line:
// admit = everything generate() does before its prefill loop, each
// select/post-step pair = one loop iteration (prefill or decode), retire
// = the return. Heap-allocated so addresses stay stable while the live
// list shrinks.
struct Seq {
  SeqRequest* req = nullptr;
  std::size_t index = 0;  // result slot
  std::span<const std::int32_t> kept;
  Transformer::KvCache owned_cache;       // when no warm cache was passed
  Transformer::KvCache* cache = nullptr;  // working cache (owned or warm)
  Transformer::GenerateStatus local_status;
  Transformer::GenerateStatus* status = nullptr;
  obs::TraceContext inert_trace;
  obs::TraceContext* trace = nullptr;
  bool observe = false;

  bool prefilling = true;
  std::size_t pos = 0;    // next kept-prompt index to feed
  int iterations = 0;     // decode-loop counter (generate()'s `i`)
  std::vector<std::int32_t> out;
  std::optional<util::Rng> rng;  // seeded after prefill, like generate()
  bool retired = false;

  // --- preemption / watchdog state ---------------------------------------
  int preemptions = 0;      // times this sequence has been preempted
  // Cache length to restore before normal decoding resumes; while
  // cache->length < recompute_until the sequence is in warm-start
  // recompute — re-feeding rows whose decode-loop bookkeeping (deadline
  // checks, RNG draws, counters, spans) already happened before the
  // preemption, so the recompute does none of it again.
  int recompute_until = 0;
  bool preempt_pending = false;  // marked by the pressure check this iter
  int age = 0;        // scheduler iterations since admission (incl. waits)
  int age_bound = 0;  // watchdog force-retire threshold

  std::optional<obs::TraceContext::Scope> prefill_span;
  std::optional<obs::TraceContext::Scope> decode_span;
  std::chrono::steady_clock::time_point prefill_start;

  bool recomputing() const { return cache->length < recompute_until; }
  // The token occupying cache row `p`: prompt rows first, then the
  // generated tail — the sequence a warm-start recompute must re-feed.
  std::int32_t token_at(int p) const {
    return p < static_cast<int>(kept.size())
               ? kept[static_cast<std::size_t>(p)]
               : out[static_cast<std::size_t>(p) - kept.size()];
  }
};

}  // namespace

ContinuousScheduler::ContinuousScheduler(const model::Transformer& model,
                                         SchedulerOptions options,
                                         SchedulerMetrics metrics)
    : model_(model), options_(options), metrics_(metrics) {
  if (options_.max_in_flight < 1) options_.max_in_flight = 1;
  if (options_.max_preemptions_per_seq < 0) options_.max_preemptions_per_seq = 0;
}

std::vector<std::vector<std::int32_t>> ContinuousScheduler::run(
    std::span<SeqRequest> requests) {
  const int ctx = model_.config().ctx;
  last_run_ = SchedulerRunStats{};
  std::vector<std::vector<std::int32_t>> results(requests.size());

  auto retire = [&](Seq& seq) {
    seq.decode_span.reset();
    seq.prefill_span.reset();
    results[seq.index] = std::move(seq.out);
    seq.retired = true;
    if (metrics_.retired) metrics_.retired->inc();
  };

  // Everything generate() does after its prefill loop: observe prefill
  // latency, take the prompt snapshot, seed the sampling RNG, and bail
  // out if the decode loop would not run at all.
  auto finish_prefill = [&](Seq& seq) {
    if (seq.observe) {
      decode_metrics().prefill_ms->observe(
          elapsed_ms_since(seq.prefill_start));
      decode_metrics().decoded_tokens->inc(
          static_cast<std::uint64_t>(seq.status->steps_taken));
    }
    seq.prefill_span.reset();
    seq.prefilling = false;
    if (seq.kept.empty()) {
      retire(seq);
      return;
    }
    if (seq.req->prompt_snapshot)
      *seq.req->prompt_snapshot =
          seq.cache->clone(static_cast<int>(seq.kept.size()));
    seq.rng.emplace(seq.req->sample_seed);
    if (seq.req->max_new_tokens <= 0 || seq.cache->length >= ctx) retire(seq);
  };

  // The watchdog's per-sequence residence bound. The derived bound must
  // never trip on a fault-free run, so it covers the worst legitimate
  // case: the sequence's own work (prefill + decode), every re-admitted
  // recompute of it, and — per preemption — a requeue wait while up to
  // max_in_flight other sequences drain whole contexts to free blocks.
  auto watchdog_bound = [&](const Seq& seq) {
    if (options_.watchdog_iterations > 0) return options_.watchdog_iterations;
    const int own_work = static_cast<int>(seq.kept.size()) +
                         std::max(0, seq.req->max_new_tokens);
    return 64 + own_work * (2 + options_.max_preemptions_per_seq) +
           (1 + options_.max_preemptions_per_seq) *
               options_.max_in_flight * ctx;
  };

  auto admit = [&](SeqRequest& req, std::size_t index) {
    auto seq = std::make_unique<Seq>();
    seq->req = &req;
    seq->index = index;
    seq->status = req.status ? req.status : &seq->local_status;
    *seq->status = Transformer::GenerateStatus{};
    seq->trace = req.trace ? req.trace : &seq->inert_trace;
    seq->observe = obs::enabled();
    if (seq->observe) decode_metrics().generate_calls->inc();
    seq->kept = model_.kept_prompt(req.prompt, req.max_new_tokens);
    seq->age_bound = watchdog_bound(*seq);

    if (req.warm_cache) {
      assert(req.warm_cache->length <=
             static_cast<int>(seq->kept.size()));
      assert(req.warm_cache->length < static_cast<int>(seq->kept.size()) ||
             !req.warm_cache->logits.empty());
      seq->cache = req.warm_cache;
    } else {
      if (options_.arena) {
        // Admission control: only go paged when the arena can cover the
        // sequence's worst case; otherwise fall back to a monolithic
        // cache up front rather than churn through a mid-flight
        // materialize(). An injected allocation failure denies the paged
        // cache the same way a full arena would.
        const int target = std::min(
            ctx, static_cast<int>(seq->kept.size()) + req.max_new_tokens);
        const int needed = options_.arena->blocks_for_tokens(target);
        const bool alloc_fault =
            options_.faults && options_.faults->take_alloc_failure();
        if (!alloc_fault && options_.arena->free_blocks() >= needed) {
          seq->owned_cache = model_.make_paged_cache(options_.arena);
        } else {
          seq->owned_cache = model_.make_cache();
          ++last_run_.monolithic_fallbacks;
          if (metrics_.monolithic_fallbacks)
            metrics_.monolithic_fallbacks->inc();
        }
      } else {
        seq->owned_cache = model_.make_cache();
      }
      seq->cache = &seq->owned_cache;
    }
    seq->status->prefill_tokens_reused = seq->cache->length;
    seq->pos = static_cast<std::size_t>(seq->cache->length);

    seq->prefill_span = seq->trace->span("prefill");
    if (seq->observe) seq->prefill_start = std::chrono::steady_clock::now();
    if (seq->pos == seq->kept.size()) finish_prefill(*seq);

    ++last_run_.admitted;
    if (metrics_.admitted) metrics_.admitted->inc();
    return seq;
  };

  // Select phase: generate()'s per-iteration work up to (not including)
  // the decode_step — deadline check, span open, sampling, stop check.
  // Returns the token to feed this step, or nullopt when the sequence
  // retired (or, transiently, pushed a token into a full context).
  auto select = [&](Seq& seq) -> std::optional<std::int32_t> {
    if (seq.recomputing()) {
      // Warm-start recompute of rows released by a preemption: the
      // decode-loop bookkeeping for these rows already ran before the
      // preemption, so re-feeding them checks no deadline, draws no RNG,
      // opens no span — byte-identity to the unpreempted run depends on
      // exactly this.
      return seq.token_at(seq.cache->length);
    }
    if (seq.prefilling) {
      if (seq.req->deadline.expired()) {
        // Mirrors generate()'s early return from inside the prefill
        // scope: span closes, prefill_ms/decoded_tokens are NOT
        // observed, the partial result is empty.
        seq.status->deadline_expired = true;
        retire(seq);
        return std::nullopt;
      }
      return seq.kept[seq.pos];
    }
    if (seq.req->deadline.expired()) {
      seq.status->deadline_expired = true;
      retire(seq);
      return std::nullopt;
    }
    seq.decode_span = seq.trace->span("decode");
    const std::span<const float> logits = seq.cache->logits;
    const std::int32_t next =
        seq.req->temperature > 0.0f
            ? model_.sample_token(logits, seq.req->temperature,
                                  seq.req->top_k, *seq.rng)
            : model_.argmax_token(logits);
    if (next == seq.req->stop_token) {
      retire(seq);
      return std::nullopt;
    }
    seq.out.push_back(next);
    if (seq.req->on_token) seq.req->on_token(next);
    if (seq.cache->length >= ctx) {
      // generate() would skip the decode_step and fail the loop
      // condition on the next pass without another deadline check.
      retire(seq);
      return std::nullopt;
    }
    return next;
  };

  // Post-step phase: the bookkeeping generate() does after decode_step —
  // counters, span close, prefill completion, loop-exit checks (which
  // generate() evaluates before the next deadline check, so they retire
  // here rather than in the next select). Recompute rows were booked
  // before their preemption and are skipped entirely.
  auto post_step = [&](Seq& seq, double step_ms) {
    if (seq.cache->length <= seq.recompute_until) return;
    ++seq.status->steps_taken;
    if (seq.prefilling) {
      ++seq.pos;
      if (seq.pos == seq.kept.size()) finish_prefill(seq);
      return;
    }
    if (seq.observe) {
      decode_metrics().token_ms->observe(step_ms);
      decode_metrics().decoded_tokens->inc();
    }
    seq.decode_span.reset();
    ++seq.iterations;
    if (seq.iterations >= seq.req->max_new_tokens ||
        seq.cache->length >= ctx)
      retire(seq);
  };

  std::vector<std::unique_ptr<Seq>> live;
  std::deque<std::unique_ptr<Seq>> requeue;  // preempted, FIFO
  std::vector<Transformer::KvCache*> step_caches;
  std::vector<std::int32_t> step_tokens;
  std::vector<Seq*> step_seqs;
  std::size_t next_pending = 0;
  int step = 0;

  // Blocks the arena appears to have free — zero once an injected
  // arena-exhaustion step is reached, the real free count otherwise.
  auto perceived_free = [&]() {
    if (options_.faults && options_.faults->arena_exhausted_at(step)) return 0;
    return options_.arena->free_blocks();
  };

  // Blocks this sequence's next append needs beyond what it holds: a
  // fresh block at a block boundary, or an exclusive copy when the tail
  // block is shared with a snapshot (COW).
  auto step_block_need = [&](const Seq& seq) {
    if (!seq.cache->paged()) return 0;
    const int bi = seq.cache->length / options_.arena->block_size();
    if (bi >= static_cast<int>(seq.cache->block_table.size())) return 1;
    const std::int32_t block =
        seq.cache->block_table[static_cast<std::size_t>(bi)];
    return options_.arena->ref_count(block) > 1 ? 1 : 0;
  };

  // Blocks a preemption of `seq` could return: everything past the
  // kept-prefix boundary (the generated tail). The prefilled prompt rows
  // stay resident — that is the snapshot the sequence resumes from.
  auto releasable_blocks = [&](const Seq& seq) {
    if (!seq.cache->paged()) return 0;
    const int keep =
        std::min(static_cast<int>(seq.kept.size()), seq.cache->length);
    return static_cast<int>(seq.cache->block_table.size()) -
           options_.arena->blocks_for_tokens(keep);
  };

  auto preempt = [&](Seq& seq) {
    const int keep =
        std::min(static_cast<int>(seq.kept.size()), seq.cache->length);
    const int free_before = options_.arena->free_blocks();
    // max(): a victim preempted mid-recompute keeps its original restore
    // target — shrinking it to the partial recompute length would replay
    // the remaining rows through the normal decode path, re-emitting
    // tokens the sequence already produced.
    seq.recompute_until = std::max(seq.recompute_until, seq.cache->length);
    seq.cache->truncate(keep);  // drops the tail blocks AND the logits;
                                // the recompute regenerates both
    const int released = options_.arena->free_blocks() - free_before;
    const int recompute = seq.recompute_until - keep;
    ++seq.preemptions;
    seq.preempt_pending = true;
    ++last_run_.preemptions;
    last_run_.preempt_blocks_released += released;
    last_run_.preempt_recompute_tokens += recompute;
    if (metrics_.preempted) metrics_.preempted->inc();
    if (metrics_.preempt_blocks_released && released > 0)
      metrics_.preempt_blocks_released->inc(
          static_cast<std::uint64_t>(released));
    if (metrics_.preempt_recompute_tokens && recompute > 0)
      metrics_.preempt_recompute_tokens->inc(
          static_cast<std::uint64_t>(recompute));
  };

  // KV-pressure check: preempt lowest-progress sequences until the
  // arena can cover every live sequence's next append. Victims must
  // actually return blocks and be under their preemption cap; when no
  // victim qualifies the step proceeds and prepare_append's monolithic
  // materialization absorbs the (real) shortfall — decoding never fails.
  auto relieve_pressure = [&]() {
    if (!options_.arena) return;
    bool any_preempted = false;
    while (true) {
      int needed = 0;
      for (auto& seq : live)
        if (!seq->preempt_pending) needed += step_block_need(*seq);
      if (needed <= perceived_free()) break;
      Seq* victim = nullptr;
      for (auto& seq : live) {
        if (seq->preempt_pending) continue;
        if (seq->preemptions >= options_.max_preemptions_per_seq) continue;
        if (releasable_blocks(*seq) <= 0) continue;
        // Lowest progress loses least recompute work; ties go to the
        // most recently admitted (later in the live list).
        if (!victim || seq->out.size() <= victim->out.size())
          victim = seq.get();
      }
      if (!victim) break;
      preempt(*victim);
      any_preempted = true;
    }
    if (!any_preempted) return;
    for (auto& seq : live) {
      if (!seq->preempt_pending) continue;
      seq->preempt_pending = false;
      requeue.push_back(std::move(seq));
    }
    std::erase_if(live, [](const auto& s) { return s == nullptr; });
  };

  // Re-admission gate for a preempted sequence: the arena must cover the
  // recompute target plus one decode row. `force` (nothing else is live)
  // overrides — the requeue must always be able to make progress.
  auto fits_requeued = [&](const Seq& seq) {
    if (!seq.cache->paged()) return true;
    const int target = std::min(ctx, seq.recompute_until + 1);
    const int needed = options_.arena->blocks_for_tokens(target) -
                       static_cast<int>(seq.cache->block_table.size());
    return needed <= perceived_free();
  };

  // Watchdog sweep: every admitted-but-unfinished sequence (live or
  // requeued) ages one iteration; past its bound it is force-retired as
  // deadline-expired — the guarantee that a wedged batch (stall faults,
  // pathological requeue waits) still terminates with every request
  // answered.
  auto age_and_watchdog = [&](std::unique_ptr<Seq>& seq) {
    ++seq->age;
    last_run_.max_seq_age = std::max(last_run_.max_seq_age, seq->age);
    if (seq->age <= seq->age_bound) return;
    seq->status->deadline_expired = true;
    ++last_run_.watchdog_retired;
    if (metrics_.watchdog_retired) metrics_.watchdog_retired->inc();
    retire(*seq);
  };

  while (next_pending < requests.size() || !live.empty() ||
         !requeue.empty()) {
    // An injected stall wedges this iteration: admissions still land (so
    // the watchdog has sequences to age) but nothing decodes.
    const bool stalled =
        options_.faults && options_.faults->take_stall_step();

    int admissions = 0;
    // Preempted sequences re-admit first — strict priority over new
    // arrivals, so a victim cannot be starved by fresh traffic grabbing
    // the blocks it is waiting for. The head re-admits unconditionally
    // when nothing else is live (forward progress even under injected
    // exhaustion, where fits_requeued() never passes).
    while (!requeue.empty() &&
           static_cast<int>(live.size()) < options_.max_in_flight &&
           (live.empty() || fits_requeued(*requeue.front()))) {
      live.push_back(std::move(requeue.front()));
      requeue.pop_front();
      ++admissions;
    }
    while (requeue.empty() && next_pending < requests.size() &&
           static_cast<int>(live.size()) < options_.max_in_flight &&
           requests[next_pending].arrival_step <= step) {
      auto seq = admit(requests[next_pending], next_pending);
      ++next_pending;
      ++admissions;
      if (!seq->retired) live.push_back(std::move(seq));
    }
    if (live.empty() && requeue.empty()) {
      if (next_pending >= requests.size()) break;
      // Nothing in flight and the next arrival is in the future: jump
      // straight to it instead of spinning empty iterations.
      step = std::max(step + 1, requests[next_pending].arrival_step);
      continue;
    }
    last_run_.peak_in_flight =
        std::max(last_run_.peak_in_flight, static_cast<int>(live.size()));
    if (metrics_.inflight)
      metrics_.inflight->set(static_cast<double>(live.size()));

    if (!stalled) {
      relieve_pressure();

      step_caches.clear();
      step_tokens.clear();
      step_seqs.clear();
      for (auto& seq : live) {
        if (auto token = select(*seq)) {
          step_caches.push_back(seq->cache);
          step_tokens.push_back(*token);
          step_seqs.push_back(seq.get());
        }
      }
      std::erase_if(live, [](const auto& s) { return s->retired; });

      if (!step_seqs.empty()) {
        const bool observe = obs::enabled();
        const auto step_start =
            observe ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{};
        model_.decode_step_batch(step_caches, step_tokens);
        const double step_ms =
            observe ? elapsed_ms_since(step_start) : 0.0;
        ++last_run_.steps;
        if (metrics_.steps) metrics_.steps->inc();
        if (metrics_.batch_width)
          metrics_.batch_width->observe(
              static_cast<double>(step_seqs.size()));
        if (metrics_.admissions_per_step)
          metrics_.admissions_per_step->observe(
              static_cast<double>(admissions));
        for (Seq* seq : step_seqs) post_step(*seq, step_ms);
        std::erase_if(live, [](const auto& s) { return s->retired; });
      }
    }
    if (options_.arena && (metrics_.blocks_in_use || metrics_.blocks_free)) {
      const auto stats = options_.arena->stats();
      if (metrics_.blocks_in_use)
        metrics_.blocks_in_use->set(static_cast<double>(stats.in_use));
      if (metrics_.blocks_free)
        metrics_.blocks_free->set(static_cast<double>(stats.free_blocks));
    }
    for (auto& seq : live) age_and_watchdog(seq);
    for (auto& seq : requeue) age_and_watchdog(seq);
    std::erase_if(live, [](const auto& s) { return s->retired; });
    std::erase_if(requeue, [](const auto& s) { return s->retired; });
    ++step;
  }
  if (metrics_.inflight) metrics_.inflight->set(0.0);
  return results;
}

}  // namespace wisdom::serve
