#include "serve/wire.hpp"

#include <cctype>
#include <charconv>
#include <map>
#include <variant>

namespace wisdom::serve {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// A tiny JSON value model: only what the two messages need.
struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string> value =
      nullptr;

  bool is_bool() const { return std::holds_alternative<bool>(value); }
  bool is_number() const { return std::holds_alternative<double>(value); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value);
  }
};

using JsonObject = std::map<std::string, JsonValue>;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonObject> parse_object() {
    skip_ws();
    if (!eat('{')) return std::nullopt;
    JsonObject obj;
    skip_ws();
    if (eat('}')) return finish(obj);
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      auto value = parse_value();
      if (!value) return std::nullopt;
      obj[*key] = *value;
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return finish(obj);
      return std::nullopt;
    }
  }

 private:
  std::optional<JsonObject> finish(JsonObject obj) {
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return obj;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool match(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    JsonValue out;
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      out.value = std::move(*s);
      return out;
    }
    if (match("true")) {
      out.value = true;
      return out;
    }
    if (match("false")) {
      out.value = false;
      return out;
    }
    if (match("null")) return out;
    // number
    std::size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double number = 0.0;
    auto [ptr, ec] = std::from_chars(text_.data() + start,
                                     text_.data() + pos_, number);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start)
      return std::nullopt;
    out.value = number;
    return out;
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            auto [p, ec] = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
            if (ec != std::errc() || p != text_.data() + pos_ + 4)
              return std::nullopt;
            pos_ += 4;
            // Only Latin-1 escapes are produced by json_escape.
            if (code > 0xFF) return std::nullopt;
            out += static_cast<char>(code);
            break;
          }
          default:
            return std::nullopt;
        }
        continue;
      }
      out += c;
    }
    return std::nullopt;  // unterminated
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue* find(const JsonObject& obj, const std::string& key) {
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

}  // namespace

std::string to_json(const SuggestionRequest& request) {
  std::string out = "{";
  out += "\"context\": \"" + json_escape(request.context) + "\", ";
  out += "\"prompt\": \"" + json_escape(request.prompt) + "\", ";
  out += "\"indent\": " + std::to_string(request.indent);
  out += "}";
  return out;
}

std::optional<SuggestionRequest> request_from_json(std::string_view json) {
  auto obj = JsonParser(json).parse_object();
  if (!obj) return std::nullopt;
  SuggestionRequest request;
  const JsonValue* prompt = find(*obj, "prompt");
  if (!prompt || !prompt->is_string()) return std::nullopt;
  request.prompt = std::get<std::string>(prompt->value);
  if (const JsonValue* context = find(*obj, "context")) {
    if (!context->is_string()) return std::nullopt;
    request.context = std::get<std::string>(context->value);
  }
  if (const JsonValue* indent = find(*obj, "indent")) {
    if (!indent->is_number()) return std::nullopt;
    request.indent = static_cast<int>(std::get<double>(indent->value));
  }
  return request;
}

std::string to_json(const SuggestionResponse& response) {
  std::string out = "{";
  out += std::string("\"ok\": ") + (response.ok ? "true" : "false") + ", ";
  out += "\"snippet\": \"" + json_escape(response.snippet) + "\", ";
  out += std::string("\"schema_correct\": ") +
         (response.schema_correct ? "true" : "false") + ", ";
  char latency[48];
  std::snprintf(latency, sizeof(latency), "%.3f", response.latency_ms);
  out += std::string("\"latency_ms\": ") + latency + ", ";
  out += "\"generated_tokens\": " + std::to_string(response.generated_tokens);
  out += "}";
  return out;
}

std::optional<SuggestionResponse> response_from_json(std::string_view json) {
  auto obj = JsonParser(json).parse_object();
  if (!obj) return std::nullopt;
  SuggestionResponse response;
  const JsonValue* ok = find(*obj, "ok");
  const JsonValue* snippet = find(*obj, "snippet");
  if (!ok || !ok->is_bool() || !snippet || !snippet->is_string())
    return std::nullopt;
  response.ok = std::get<bool>(ok->value);
  response.snippet = std::get<std::string>(snippet->value);
  if (const JsonValue* sc = find(*obj, "schema_correct")) {
    if (!sc->is_bool()) return std::nullopt;
    response.schema_correct = std::get<bool>(sc->value);
  }
  if (const JsonValue* lat = find(*obj, "latency_ms")) {
    if (!lat->is_number()) return std::nullopt;
    response.latency_ms = std::get<double>(lat->value);
  }
  if (const JsonValue* toks = find(*obj, "generated_tokens")) {
    if (!toks->is_number()) return std::nullopt;
    response.generated_tokens =
        static_cast<int>(std::get<double>(toks->value));
  }
  return response;
}

}  // namespace wisdom::serve
