#include "serve/wire.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

namespace wisdom::serve {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// A tiny JSON value model: only what the two messages need. Nested
// objects (server_timing_ms, per-diagnostic objects, tolerated unknown
// fields) are stored as a member list behind a shared_ptr — std::vector
// accepts the incomplete JsonValue element type, and the pointer keeps
// the variant copyable. Arrays (the diagnostics list) follow the same
// pattern.
struct JsonValue;
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonMembers>, std::shared_ptr<JsonArray>>
      value = nullptr;

  bool is_bool() const { return std::holds_alternative<bool>(value); }
  bool is_number() const { return std::holds_alternative<double>(value); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value);
  }
  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonMembers>>(value);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(value);
  }
};

using JsonObject = std::map<std::string, JsonValue>;

// Deeper nesting than this in either message is hostile input, not a
// plausible client; keeps the recursive-descent stack bounded.
constexpr int kMaxJsonDepth = 8;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonObject> parse_object() {
    skip_ws();
    auto members = parse_members(/*depth=*/1);
    if (!members) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    JsonObject obj;
    for (auto& [key, value] : *members) obj[key] = std::move(value);
    return obj;
  }

 private:
  // Parses one {...} object (the opening brace not yet consumed) into its
  // member list, recursing through parse_value for nested objects.
  std::optional<JsonMembers> parse_members(int depth) {
    if (depth > kMaxJsonDepth) return std::nullopt;
    if (!eat('{')) return std::nullopt;
    JsonMembers members;
    skip_ws();
    if (eat('}')) return members;
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      auto value = parse_value(depth);
      if (!value) return std::nullopt;
      members.emplace_back(std::move(*key), std::move(*value));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return members;
      return std::nullopt;
    }
  }

  // Parses one [...] array (the opening bracket not yet consumed); shares
  // the object nesting budget so depth stays bounded either way.
  std::optional<JsonArray> parse_elements(int depth) {
    if (depth > kMaxJsonDepth) return std::nullopt;
    if (!eat('[')) return std::nullopt;
    JsonArray elements;
    skip_ws();
    if (eat(']')) return elements;
    for (;;) {
      auto value = parse_value(depth);
      if (!value) return std::nullopt;
      elements.push_back(std::move(*value));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return elements;
      return std::nullopt;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool match(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value(int depth) {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    JsonValue out;
    if (c == '{') {
      auto members = parse_members(depth + 1);
      if (!members) return std::nullopt;
      out.value = std::make_shared<JsonMembers>(std::move(*members));
      return out;
    }
    if (c == '[') {
      auto elements = parse_elements(depth + 1);
      if (!elements) return std::nullopt;
      out.value = std::make_shared<JsonArray>(std::move(*elements));
      return out;
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      out.value = std::move(*s);
      return out;
    }
    if (match("true")) {
      out.value = true;
      return out;
    }
    if (match("false")) {
      out.value = false;
      return out;
    }
    if (match("null")) return out;
    // number
    std::size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double number = 0.0;
    auto [ptr, ec] = std::from_chars(text_.data() + start,
                                     text_.data() + pos_, number);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start)
      return std::nullopt;
    // from_chars accepts "inf"/"nan" spellings and huge exponents can
    // overflow to infinity; neither is a valid wire value.
    if (!std::isfinite(number)) return std::nullopt;
    out.value = number;
    return out;
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            auto [p, ec] = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
            if (ec != std::errc() || p != text_.data() + pos_ + 4)
              return std::nullopt;
            pos_ += 4;
            // Only Latin-1 escapes are produced by json_escape.
            if (code > 0xFF) return std::nullopt;
            out += static_cast<char>(code);
            break;
          }
          default:
            return std::nullopt;
        }
        continue;
      }
      out += c;
    }
    return std::nullopt;  // unterminated
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue* find(const JsonObject& obj, const std::string& key) {
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

// Linear find in a nested object's member list (diagnostic objects have a
// handful of fields; no map needed).
const JsonValue* find_member(const JsonMembers& members,
                             std::string_view key) {
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

// A number that is a whole value in [0, max]; rejects 4.5, -1, 1e12.
bool as_bounded_int(const JsonValue& value, int max, int* out) {
  if (!value.is_number()) return false;
  double d = std::get<double>(value.value);
  if (!(d >= 0.0) || d > static_cast<double>(max)) return false;
  if (d != std::floor(d)) return false;
  *out = static_cast<int>(d);
  return true;
}

}  // namespace

std::string to_json(const SuggestionRequest& request) {
  std::string out = "{";
  out += "\"context\": \"" + json_escape(request.context) + "\", ";
  out += "\"prompt\": \"" + json_escape(request.prompt) + "\", ";
  out += "\"indent\": " + std::to_string(request.indent);
  if (request.deadline_ms > 0.0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", request.deadline_ms);
    out += std::string(", \"deadline_ms\": ") + buf;
  }
  if (!request.trace_id.empty()) {
    out += ", \"trace_id\": \"" + json_escape(request.trace_id) + "\"";
  }
  out += "}";
  return out;
}

std::optional<SuggestionRequest> request_from_json(std::string_view json) {
  if (json.size() > kMaxWireBytes) return std::nullopt;
  auto obj = JsonParser(json).parse_object();
  if (!obj) return std::nullopt;
  SuggestionRequest request;
  const JsonValue* prompt = find(*obj, "prompt");
  if (!prompt || !prompt->is_string()) return std::nullopt;
  request.prompt = std::get<std::string>(prompt->value);
  if (const JsonValue* context = find(*obj, "context")) {
    if (!context->is_string()) return std::nullopt;
    request.context = std::get<std::string>(context->value);
  }
  if (const JsonValue* indent = find(*obj, "indent")) {
    if (!as_bounded_int(*indent, kMaxWireIndent, &request.indent))
      return std::nullopt;
  }
  if (const JsonValue* deadline = find(*obj, "deadline_ms")) {
    if (!deadline->is_number()) return std::nullopt;
    double ms = std::get<double>(deadline->value);
    if (ms < 0.0) return std::nullopt;
    request.deadline_ms = ms;
  }
  if (const JsonValue* trace_id = find(*obj, "trace_id")) {
    if (!trace_id->is_string()) return std::nullopt;
    request.trace_id = std::get<std::string>(trace_id->value);
  }
  return request;
}

std::string to_json(const SuggestionResponse& response) {
  std::string out = "{";
  out += std::string("\"ok\": ") + (response.ok ? "true" : "false") + ", ";
  out += "\"snippet\": \"" + json_escape(response.snippet) + "\", ";
  out += std::string("\"schema_correct\": ") +
         (response.schema_correct ? "true" : "false") + ", ";
  char latency[48];
  std::snprintf(latency, sizeof(latency), "%.3f", response.latency_ms);
  out += std::string("\"latency_ms\": ") + latency + ", ";
  out += "\"generated_tokens\": " + std::to_string(response.generated_tokens) +
         ", ";
  out += std::string("\"degraded\": ") +
         (response.degraded ? "true" : "false") + ", ";
  out += std::string("\"repaired\": ") +
         (response.repaired ? "true" : "false") + ", ";
  out += "\"error\": \"" + std::string(service_error_name(response.error)) +
         "\"";
  // Emitted only when set, so pre-cache clients' goldens are unchanged.
  if (response.cached) out += ", \"cached\": true";
  if (!response.diagnostics.empty()) {
    out += ", \"diagnostics\": [";
    bool first = true;
    for (const auto& d : response.diagnostics) {
      if (!first) out += ", ";
      first = false;
      out += "{\"rule\": \"" + json_escape(d.rule) + "\", ";
      out += std::string("\"severity\": \"") +
             (d.severity == analysis::Severity::Error ? "error" : "warning") +
             "\", ";
      out += "\"message\": \"" + json_escape(d.message) + "\", ";
      out += "\"line\": " + std::to_string(d.span.line) + ", ";
      out += "\"column\": " + std::to_string(d.span.column) + ", ";
      out += "\"begin\": " + std::to_string(d.span.begin) + ", ";
      out += "\"end\": " + std::to_string(d.span.end) + ", ";
      out += std::string("\"fixable\": ") + (d.fixable() ? "true" : "false") +
             "}";
    }
    out += "]";
  }
  if (!response.trace_id.empty()) {
    out += ", \"trace_id\": \"" + json_escape(response.trace_id) + "\"";
  }
  if (!response.server_timing_ms.empty()) {
    // std::map iterates sorted by stage name: deterministic output.
    out += ", \"server_timing_ms\": {";
    bool first = true;
    for (const auto& [stage, ms] : response.server_timing_ms) {
      if (!first) out += ", ";
      first = false;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.3f", ms);
      out += "\"" + json_escape(stage) + "\": " + buf;
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::optional<SuggestionResponse> response_from_json(std::string_view json) {
  if (json.size() > kMaxWireBytes) return std::nullopt;
  auto obj = JsonParser(json).parse_object();
  if (!obj) return std::nullopt;
  SuggestionResponse response;
  const JsonValue* ok = find(*obj, "ok");
  const JsonValue* snippet = find(*obj, "snippet");
  if (!ok || !ok->is_bool() || !snippet || !snippet->is_string())
    return std::nullopt;
  response.ok = std::get<bool>(ok->value);
  response.snippet = std::get<std::string>(snippet->value);
  if (const JsonValue* sc = find(*obj, "schema_correct")) {
    if (!sc->is_bool()) return std::nullopt;
    response.schema_correct = std::get<bool>(sc->value);
  }
  if (const JsonValue* lat = find(*obj, "latency_ms")) {
    if (!lat->is_number()) return std::nullopt;
    double ms = std::get<double>(lat->value);
    if (ms < 0.0) return std::nullopt;
    response.latency_ms = ms;
  }
  if (const JsonValue* toks = find(*obj, "generated_tokens")) {
    if (!as_bounded_int(*toks, 1 << 24, &response.generated_tokens))
      return std::nullopt;
  }
  if (const JsonValue* degraded = find(*obj, "degraded")) {
    if (!degraded->is_bool()) return std::nullopt;
    response.degraded = std::get<bool>(degraded->value);
  }
  if (const JsonValue* repaired = find(*obj, "repaired")) {
    if (!repaired->is_bool()) return std::nullopt;
    response.repaired = std::get<bool>(repaired->value);
  }
  if (const JsonValue* cached = find(*obj, "cached")) {
    if (!cached->is_bool()) return std::nullopt;
    response.cached = std::get<bool>(cached->value);
  }
  if (const JsonValue* diags = find(*obj, "diagnostics")) {
    if (!diags->is_array()) return std::nullopt;
    for (const JsonValue& item :
         *std::get<std::shared_ptr<JsonArray>>(diags->value)) {
      if (!item.is_object()) return std::nullopt;
      const JsonMembers& members =
          *std::get<std::shared_ptr<JsonMembers>>(item.value);
      analysis::Diagnostic d;
      const JsonValue* rule = find_member(members, "rule");
      const JsonValue* severity = find_member(members, "severity");
      const JsonValue* message = find_member(members, "message");
      if (!rule || !rule->is_string() || !severity || !severity->is_string() ||
          !message || !message->is_string())
        return std::nullopt;
      d.rule = std::get<std::string>(rule->value);
      d.message = std::get<std::string>(message->value);
      const std::string& sev = std::get<std::string>(severity->value);
      if (sev == "error") d.severity = analysis::Severity::Error;
      else if (sev == "warning") d.severity = analysis::Severity::Warning;
      else return std::nullopt;
      // Span fields are whole non-negative numbers; absent fields leave
      // the span unlocated. The edits themselves do not cross the wire —
      // "fixable" is informational for JSON consumers and is only
      // type-checked here (fixable() on a parsed diagnostic is false).
      struct SpanField { const char* key; std::size_t* slot; };
      for (SpanField f : {SpanField{"line", &d.span.line},
                          SpanField{"column", &d.span.column},
                          SpanField{"begin", &d.span.begin},
                          SpanField{"end", &d.span.end}}) {
        if (const JsonValue* v = find_member(members, f.key)) {
          int n = 0;
          if (!as_bounded_int(*v, 1 << 24, &n)) return std::nullopt;
          *f.slot = static_cast<std::size_t>(n);
        }
      }
      if (const JsonValue* fixable = find_member(members, "fixable")) {
        if (!fixable->is_bool()) return std::nullopt;
      }
      response.diagnostics.push_back(std::move(d));
    }
  }
  if (const JsonValue* error = find(*obj, "error")) {
    if (!error->is_string() ||
        !service_error_from_name(std::get<std::string>(error->value),
                                 &response.error))
      return std::nullopt;
  }
  if (const JsonValue* trace_id = find(*obj, "trace_id")) {
    if (!trace_id->is_string()) return std::nullopt;
    response.trace_id = std::get<std::string>(trace_id->value);
  }
  if (const JsonValue* timing = find(*obj, "server_timing_ms")) {
    if (!timing->is_object()) return std::nullopt;
    // Stage names are open-ended (new stages must not break old clients),
    // but every value must be a non-negative duration.
    for (const auto& [stage, value] :
         *std::get<std::shared_ptr<JsonMembers>>(timing->value)) {
      if (!value.is_number()) return std::nullopt;
      double ms = std::get<double>(value.value);
      if (ms < 0.0) return std::nullopt;
      response.server_timing_ms[stage] = ms;
    }
  }
  return response;
}

}  // namespace wisdom::serve
