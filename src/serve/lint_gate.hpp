// The lint gate: what the service does with the diagnostics engine's
// findings on each generated snippet before returning it to the editor.
//
// The gate is a pure function of (snippet, policy) — no service state —
// so the policy matrix is unit-testable without a model. The service
// wires the outcome into SuggestionResponse (diagnostics, repaired flag,
// schema_correct) and its per-rule observability counters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.hpp"

namespace wisdom::serve {

enum class LintPolicy : std::uint8_t {
  // No analysis beyond the schema-correct bit (seed behaviour).
  Off = 0,
  // Attach diagnostics to the response; never change the snippet.
  Annotate,
  // Apply the engine's auto-fixes and return the repaired snippet;
  // remaining diagnostics are attached.
  Repair,
  // Repair, then refuse snippets still carrying errors (schema or
  // semantic): the caller serves the degraded/fallback path instead of a
  // known-broken suggestion.
  RejectDegraded,
};

std::string_view lint_policy_name(LintPolicy policy);
// Parses a name produced by lint_policy_name; false on unknown names.
bool lint_policy_from_name(std::string_view name, LintPolicy* out);

// Result of pushing one snippet through the gate.
struct LintOutcome {
  // Post-gate text: repaired under Repair/RejectDegraded, otherwise the
  // input unchanged.
  std::string snippet;
  // False under Off (no diagnostics were computed).
  bool analyzed = false;
  // True when the auto-fix engine changed the snippet.
  bool repaired = false;
  // RejectDegraded only: errors survived repair, the snippet must not be
  // served as-is.
  bool rejected = false;
  // Schema-correct verdict of the post-gate snippet.
  bool schema_correct = false;
  // Semantic-correct verdict (schema-correct and no error-severity
  // semantic findings); implies schema_correct.
  bool semantic_correct = false;
  // Diagnostics of the post-gate snippet (i.e. post-repair when the
  // policy repairs); empty under Off.
  std::vector<analysis::Diagnostic> diagnostics;
};

LintOutcome lint_gate(std::string_view snippet, LintPolicy policy);

}  // namespace wisdom::serve
