#include "serve/response_cache.hpp"

namespace wisdom::serve {

namespace {

std::size_t entry_bytes(const ResponseCache::Key& key,
                        const SuggestionResponse& response) {
  std::size_t bytes = key.context.size() + key.prompt.size() +
                      response.snippet.size() + 256;
  for (const auto& d : response.diagnostics)
    bytes += d.rule.size() + d.message.size() + 64;
  return bytes;
}

}  // namespace

ResponseCache::ResponseCache(ResponseCacheOptions options)
    : options_(options) {
  if (options_.max_entries == 0) options_.max_entries = 1;
}

void ResponseCache::bind_metrics(const MetricHooks& hooks) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_ = hooks;
}

void ResponseCache::remove_entry(EntryList::iterator it) {
  bytes_ -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
}

void ResponseCache::expire_stale() {
  if (options_.ttl_lookups == 0) return;
  while (!lru_.empty() &&
         tick_ - std::prev(lru_.end())->tick > options_.ttl_lookups) {
    remove_entry(std::prev(lru_.end()));
    ++stats_.expirations;
    if (hooks_.expirations) hooks_.expirations->inc();
  }
}

void ResponseCache::update_gauges() {
  stats_.bytes = bytes_;
  stats_.entries = lru_.size();
  if (hooks_.entries)
    hooks_.entries->set(static_cast<double>(lru_.size()));
}

std::optional<SuggestionResponse> ResponseCache::lookup(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  ++stats_.lookups;
  expire_stale();
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    if (hooks_.misses) hooks_.misses->inc();
    return std::nullopt;
  }
  EntryList::iterator entry = it->second;
  entry->tick = tick_;
  lru_.splice(lru_.begin(), lru_, entry);
  ++stats_.hits;
  if (hooks_.hits) hooks_.hits->inc();
  SuggestionResponse out = entry->response;
  out.cached = true;
  return out;
}

void ResponseCache::insert(const Key& key,
                           const SuggestionResponse& response) {
  // Never memoize degraded/fallback/failed responses: their bytes depend
  // on deadlines and fault state, not on the key.
  if (!response.ok || response.degraded ||
      response.error != ServiceError::None)
    return;
  std::lock_guard<std::mutex> lock(mu_);
  expire_stale();
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic decode: an exact repeat produced the same bytes, so
    // only the LRU position is news.
    it->second->tick = tick_;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.refreshed;
    update_gauges();
    return;
  }
  Entry entry;
  entry.key = key;
  entry.response = response;
  // Per-request fields are not part of the memo; the caller stamps fresh
  // ones on every hit.
  entry.response.latency_ms = 0.0;
  entry.response.trace_id.clear();
  entry.response.server_timing_ms.clear();
  entry.response.cached = false;
  entry.bytes = entry_bytes(key, response);
  entry.tick = tick_;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  bytes_ += lru_.front().bytes;
  ++stats_.stored;
  if (hooks_.stored) hooks_.stored->inc();
  while (lru_.size() > options_.max_entries) {
    remove_entry(std::prev(lru_.end()));
    ++stats_.evictions;
    if (hooks_.evictions) hooks_.evictions->inc();
  }
  update_gauges();
}

void ResponseCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.cleared += lru_.size();
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  update_gauges();
}

ResponseCacheStats ResponseCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResponseCacheStats out = stats_;
  out.bytes = bytes_;
  out.entries = lru_.size();
  return out;
}

}  // namespace wisdom::serve
