#include "serve/lint_gate.hpp"

#include <utility>

#include "analysis/engine.hpp"
#include "metrics/schema_correct.hpp"
#include "metrics/semantic_correct.hpp"

namespace wisdom::serve {

std::string_view lint_policy_name(LintPolicy policy) {
  switch (policy) {
    case LintPolicy::Off: return "off";
    case LintPolicy::Annotate: return "annotate";
    case LintPolicy::Repair: return "repair";
    case LintPolicy::RejectDegraded: return "reject-degraded";
  }
  return "off";
}

bool lint_policy_from_name(std::string_view name, LintPolicy* out) {
  for (LintPolicy p : {LintPolicy::Off, LintPolicy::Annotate,
                       LintPolicy::Repair, LintPolicy::RejectDegraded}) {
    if (lint_policy_name(p) == name) {
      *out = p;
      return true;
    }
  }
  return false;
}

LintOutcome lint_gate(std::string_view snippet, LintPolicy policy) {
  LintOutcome out;
  out.snippet = std::string(snippet);
  if (policy == LintPolicy::Off) {
    analysis::AnalysisResult result = analysis::analyze(snippet);
    out.schema_correct = metrics::schema_correct(result);
    out.semantic_correct = metrics::semantic_correct(result);
    return out;
  }
  out.analyzed = true;
  if (policy == LintPolicy::Annotate) {
    analysis::AnalysisResult result = analysis::analyze(snippet);
    out.schema_correct = metrics::schema_correct(result);
    out.semantic_correct = metrics::semantic_correct(result);
    out.diagnostics = std::move(result.diagnostics);
    return out;
  }
  analysis::RepairResult repaired = analysis::repair(snippet);
  out.snippet = std::move(repaired.text);
  out.repaired = repaired.changed;
  out.schema_correct = metrics::schema_correct(repaired.final_result);
  out.semantic_correct = metrics::semantic_correct(repaired.final_result);
  out.diagnostics = std::move(repaired.final_result.diagnostics);
  // Semantic errors that survive repair reject the snippet too: the gate
  // is strictly stricter than schema-only rejection.
  if (policy == LintPolicy::RejectDegraded && !out.semantic_correct)
    out.rejected = true;
  return out;
}

}  // namespace wisdom::serve
