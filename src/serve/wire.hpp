// JSON wire format for the inference service, mirroring the paper's
// REST interface ("we expose a GRPC and REST API based interface to model
// predictions so that inference can be called out using GRPC and REST
// clients"). A deliberately small JSON subset — objects and arrays
// (nested to a small fixed depth), strings, numbers, booleans — is all
// the two message types need; no third-party dependency.
//
// The parsers are hardened against hostile input: payloads above
// kMaxWireBytes are refused before parsing, numbers must be finite (no
// NaN/inf smuggling into latency or indent fields), indent must be a
// non-negative integer, counts must be non-negative, and truncated escape
// sequences fail cleanly rather than reading out of bounds.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "serve/service.hpp"

namespace wisdom::serve {

// Upper bound on an accepted JSON payload (request or response). Editor
// buffers are capped far below this; anything larger is hostile or a bug.
inline constexpr std::size_t kMaxWireBytes = 1 << 20;  // 1 MiB

// Largest accepted "indent" value; deeper nesting than this is not a
// plausible editor state.
inline constexpr int kMaxWireIndent = 4096;

// {"context": "...", "prompt": "...", "indent": 4, "deadline_ms": 50.0,
//  "trace_id": "f00d..."}
// (deadline_ms optional, 0 = service default; trace_id optional, empty =
// the service derives a deterministic one)
std::string to_json(const SuggestionRequest& request);
std::optional<SuggestionRequest> request_from_json(std::string_view json);

// {"ok": true, "snippet": "...", "schema_correct": true,
//  "latency_ms": 12.5, "generated_tokens": 40,
//  "degraded": false, "repaired": false, "error": "none",
//  "cached": true,
//  ("cached" is emitted only when the response was served from a cache)
//  "diagnostics": [{"rule": "fqcn", "severity": "warning",
//                   "message": "...", "line": 2, "column": 5,
//                   "begin": 14, "end": 17, "fixable": true}, ...],
//  "trace_id": "f00d...",
//  "server_timing_ms": {"decode": 9.1, "tokenize": 0.2, ...}}
// (diagnostics, trace_id and server_timing_ms are optional and omitted
// when empty; a diagnostic's fix edits do not cross the wire, so the
// "fixable" flag is informational for JSON consumers)
std::string to_json(const SuggestionResponse& response);
std::optional<SuggestionResponse> response_from_json(std::string_view json);

// JSON string escaping (exposed for tests).
std::string json_escape(std::string_view text);

}  // namespace wisdom::serve
