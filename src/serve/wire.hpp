// JSON wire format for the inference service, mirroring the paper's
// REST interface ("we expose a GRPC and REST API based interface to model
// predictions so that inference can be called out using GRPC and REST
// clients"). A deliberately small JSON subset — objects, strings, numbers,
// booleans — is all the two message types need; no third-party dependency.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "serve/service.hpp"

namespace wisdom::serve {

// {"context": "...", "prompt": "...", "indent": 4}
std::string to_json(const SuggestionRequest& request);
std::optional<SuggestionRequest> request_from_json(std::string_view json);

// {"ok": true, "snippet": "...", "schema_correct": true,
//  "latency_ms": 12.5, "generated_tokens": 40}
std::string to_json(const SuggestionResponse& response);
std::optional<SuggestionResponse> response_from_json(std::string_view json);

// JSON string escaping (exposed for tests).
std::string json_escape(std::string_view text);

}  // namespace wisdom::serve
