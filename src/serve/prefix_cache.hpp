// Level 1 of the serving cache: a prefix KV cache.
//
// Production traffic to a code-completion service is dominated by highly
// similar prompts — the same playbook context re-sent as the user types
// successive "- name:" lines — so most of each request's prefill recomputes
// KV rows an earlier request already produced. This cache is a trie over
// tokenized (kept) prompts whose nodes own compacted KvCache snapshots;
// a lookup walks the request's tokens through the trie and returns a clone
// of the best reusable snapshot, truncated to the shared span, so
// generation skips prefill for every shared token and only decodes the
// tail.
//
// Correctness invariant (the point of the design): a KV row is a
// deterministic function of the token sequence up to its position, so
// serving rows from the cache is bit-identical to recomputing them —
// cached and uncached generation produce the same bytes.
//
// Bounds: a byte budget with LRU eviction, and an optional TTL measured in
// lookups (a request count, not wall time — deterministic under test).
// Entries are keyed on token ids, so the cache MUST be clear()ed whenever
// the model weights, tokenizer, or context window change (e.g. on
// checkpoint reload); InferenceService::invalidate_caches() does this.
//
// Thread-safe: one mutex; clones happen under it (a clone is a bounded
// memcpy, cheap next to the prefill it saves).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>

#include "model/transformer.hpp"
#include "obs/metrics.hpp"

namespace wisdom::serve {

struct PrefixCacheOptions {
  // Upper bound on bytes held by snapshots (plus their token paths).
  // Inserts that would exceed it evict least-recently-used entries first;
  // a snapshot larger than the whole budget is rejected outright.
  std::size_t byte_budget = 32ull << 20;
  // Entries untouched for more than this many lookups expire; 0 disables
  // the TTL.
  std::uint64_t ttl_lookups = 0;
};

// Monotone totals; bytes/entries are point-in-time. Identities that always
// hold (the eviction test asserts them exactly):
//   hits + misses == lookups
//   entries == stored - evictions - expirations - cleared
struct PrefixCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stored = 0;       // inserts that created a new entry
  std::uint64_t refreshed = 0;    // inserts that touched an existing entry
  std::uint64_t rejected = 0;     // inserts larger than the whole budget
  std::uint64_t evictions = 0;    // LRU removals to honor the byte budget
  std::uint64_t expirations = 0;  // TTL removals
  std::uint64_t cleared = 0;      // entries dropped by clear()
  std::uint64_t tokens_reused = 0;  // prefill tokens served from cache
  std::size_t bytes = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class PrefixKvCache {
 public:
  // Registry handles mirrored on every update; any pointer may be null.
  struct MetricHooks {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* stored = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* expirations = nullptr;
    obs::Counter* tokens_reused = nullptr;
    obs::Gauge* bytes = nullptr;
    obs::Gauge* entries = nullptr;
    obs::Histogram* hit_tokens = nullptr;
  };

  explicit PrefixKvCache(PrefixCacheOptions options = {});
  ~PrefixKvCache();
  PrefixKvCache(const PrefixKvCache&) = delete;
  PrefixKvCache& operator=(const PrefixKvCache&) = delete;

  void bind_metrics(const MetricHooks& hooks);

  struct Hit {
    // Compacted clone holding exactly `reused_tokens` rows, ready to hand
    // to GenerateOptions::warm_cache.
    model::Transformer::KvCache cache;
    int reused_tokens = 0;
    // True when the cache covers the whole requested prompt (the clone
    // carries valid last-token logits, so prefill is skipped entirely).
    bool exact = false;
  };

  // Best reusable snapshot for this token sequence, or nullopt when no
  // cached prefix shares at least one token. Counts one lookup (the TTL
  // tick) and refreshes the used entry's LRU position.
  std::optional<Hit> lookup(std::span<const std::int32_t> tokens);

  // Stores a snapshot for this exact token sequence. The snapshot must
  // hold exactly tokens.size() rows (GenerateOptions::prompt_snapshot
  // produces this form). Inserting an already-cached sequence refreshes
  // its LRU position instead of storing twice.
  enum class InsertOutcome { Stored, Refreshed, Rejected };
  InsertOutcome insert(std::span<const std::int32_t> tokens,
                       model::Transformer::KvCache snapshot);

  // Drops every entry (checkpoint reload, tokenizer change). Monotone
  // counters survive; bytes/entries drop to zero.
  void clear();

  PrefixCacheStats stats() const;
  std::size_t bytes_held() const;

 private:
  struct Node;
  struct Entry {
    Node* node = nullptr;
    model::Transformer::KvCache cache;  // compact: length == node depth
    std::size_t bytes = 0;
    std::uint64_t tick = 0;  // last use (lookup serial)
    std::list<Entry*>::iterator lru_it;
  };
  struct Node {
    Node* parent = nullptr;
    std::int32_t edge = -1;  // token on the edge from the parent
    int depth = 0;
    std::map<std::int32_t, std::unique_ptr<Node>> children;
    std::unique_ptr<Entry> entry;
  };

  // The most recently used entry in `node`'s subtree (including itself);
  // nullptr when the subtree holds no snapshot.
  static Entry* best_in_subtree(const Node* node);
  void touch(Entry* entry);
  void remove_entry(Entry* entry);  // + prunes the now-bare node chain
  void evict_to_budget();
  void expire_stale();
  void update_gauges();

  PrefixCacheOptions options_;
  MetricHooks hooks_;
  mutable std::mutex mu_;
  std::unique_ptr<Node> root_;
  std::list<Entry*> lru_;  // front = most recently used
  std::uint64_t tick_ = 0;
  std::size_t bytes_ = 0;
  PrefixCacheStats stats_;
};

}  // namespace wisdom::serve
