#include "serve/api.hpp"

namespace wisdom::serve {

std::string_view api_version_prefix(ApiVersion version) {
  switch (version) {
    case ApiVersion::V1: return "/v1";
  }
  return "/v1";
}

int http_status(ServiceError error) {
  switch (error) {
    case ServiceError::None: return 200;
    case ServiceError::InvalidRequest: return 400;
    case ServiceError::DeadlineExceeded: return 408;
    case ServiceError::LintRejected: return 422;
    case ServiceError::Overloaded: return 429;
    case ServiceError::GenerateFailed: return 500;
    case ServiceError::CircuitOpen: return 503;
    case ServiceError::Draining: return 503;
  }
  return 500;
}

int http_status(const SuggestionResponse& response) {
  return response.ok ? 200 : http_status(response.error);
}

std::string_view http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Content";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
  }
  return "Unknown";
}

}  // namespace wisdom::serve
