// Bounded admission in front of the inference pool.
//
// The Lightspeed lesson: an unbounded queue under sustained overload does
// not fail, it just converts every request into a timeout — latency grows
// without bound while throughput stays pinned at capacity. A bounded
// admission count with an explicit shed policy keeps the served requests
// fast and makes the overload visible to clients as a typed, retryable
// error instead of a slow death.
//
// The queue is a counting gate, not a holding buffer: a slot is held for
// the lifetime of an admitted request and released when its response is
// produced. try_acquire is lock-free and never blocks — on a full queue the
// caller sheds immediately (reject-newest).
#pragma once

#include <atomic>
#include <cstdint>

namespace wisdom::serve {

// What to do with a request the queue cannot admit.
enum class ShedPolicy {
  // Refuse it outright with ServiceError::Overloaded (default). The retry
  // client's backoff is the intended recovery path.
  RejectNewest,
  // Serve it from the deterministic fallback suggester instead of the
  // model: every caller still gets a schema-checked snippet, tagged
  // degraded, at O(us) cost.
  DegradeNewest,
};

class AdmissionQueue {
 public:
  // capacity <= 0 means unbounded (admission always succeeds).
  explicit AdmissionQueue(int capacity) : capacity_(capacity) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  int capacity() const { return capacity_; }
  bool bounded() const { return capacity_ > 0; }
  int in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed_count() const {
    return shed_.load(std::memory_order_relaxed);
  }

  // Claims a slot; false (and one shed recorded) when the queue is full.
  bool try_acquire() {
    if (!bounded()) return true;
    int n = in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n <= capacity_) return true;
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Releases a slot previously claimed with a successful try_acquire.
  void release() {
    if (bounded()) in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  int capacity_;
  std::atomic<int> in_flight_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace wisdom::serve
