// Retry-with-exponential-backoff client wrapper for transient serving
// errors (load shedding). Overload is expected under the ROADMAP's
// "heavy traffic" regime; the recovery contract is: the service sheds
// fast with ServiceError::Overloaded, and well-behaved clients retry with
// exponentially growing, jittered delays so the retry wave does not
// re-synchronize into the same thundering herd that caused the shed.
//
// The backoff schedule is a pure function of the policy (seeded RNG for
// jitter), and sleeping is injectable, so tests assert the exact schedule
// with zero wall-clock sleeps.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "serve/service.hpp"
#include "util/rng.hpp"

namespace wisdom::serve {

struct RetryPolicy {
  // Total tries including the first (4 = one call + three retries).
  int max_attempts = 4;
  double base_delay_ms = 25.0;
  double multiplier = 2.0;
  double max_delay_ms = 1000.0;
  // Equal-jitter fraction: delay = backoff * (1 - jitter + jitter * u),
  // u ~ U[0,1). 0 = deterministic full backoff, 1 = full jitter.
  double jitter = 0.5;
  // Seeds the jitter stream; the schedule is reproducible per seed.
  std::uint64_t seed = 1;
  // Total retry-delay budget in ms; <= 0 means unlimited. The budget is
  // charged the computed backoff delays (a pure function of the policy,
  // not wall time, so the cutoff is deterministic and testable without
  // sleeping): a retry whose delay would push the cumulative delay past
  // the budget is not taken — the client returns the last response
  // instead of queueing more load behind a bounded caller deadline.
  double total_budget_ms = 0.0;
};

// The delay sequence alone; deterministic given the policy.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy);

  // Delay before retry number attempt()+1; advances the schedule.
  double next_delay_ms();
  int attempt() const { return attempt_; }

 private:
  RetryPolicy policy_;
  util::Rng rng_;
  int attempt_ = 0;
};

class RetryingClient {
 public:
  using SleepFn = std::function<void(double /*ms*/)>;

  // `sleep` is called with each backoff delay; the default performs a real
  // std::this_thread::sleep_for. Tests inject a recorder instead.
  explicit RetryingClient(InferenceService& service, RetryPolicy policy = {},
                          SleepFn sleep = {});

  // Result of the final attempt plus the retry trace.
  struct Outcome {
    SuggestionResponse response;
    int attempts = 0;
    std::vector<double> delays_ms;  // one entry per retry actually taken
    // True when a retry was wanted but its delay would have exceeded
    // RetryPolicy::total_budget_ms.
    bool budget_exhausted = false;
  };

  // Calls suggest(), retrying transient errors per the policy. Terminal
  // (non-transient) errors — invalid requests, lint rejections, and
  // Draining refusals among them — and successes return immediately;
  // retries stop early once the total delay budget is spent.
  SuggestionResponse suggest(const SuggestionRequest& request);
  Outcome suggest_with_trace(const SuggestionRequest& request);

 private:
  InferenceService& service_;
  RetryPolicy policy_;
  SleepFn sleep_;
};

}  // namespace wisdom::serve
