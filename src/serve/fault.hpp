// Deterministic fault injection for the serving path.
//
// Robustness behavior (deadline fallback, load shedding, retry, KV-pressure
// preemption, circuit breaking) is miserable to test with real timing: a
// "slow decode" produced by sleeping is flaky and slow, a genuinely full
// queue needs racing threads, and a genuinely exhausted arena needs a
// precisely sized workload. The FaultInjector instead forces each degraded
// path to trigger on demand:
//
//   * slow_decode_after_tokens: requests decode under a check-count
//     deadline that expires after N cooperative checks — the decode "takes
//     too long" after exactly N tokens, on any machine, with no sleeps,
//   * fail_generate: generation fails on demand. Credit semantics:
//     n > 0 arms exactly n failures — each take_generate_failure() call
//     consumes one credit (CAS decrement) until the count reaches 0;
//     n < 0 means INFINITE — every call fails, no credit is consumed,
//     until reset() or set_fail_generate(0); n == 0 disables,
//   * force_queue_full: admission behaves as if the queue were at capacity,
//   * arena_exhaust_at_step: from scheduler step N on, the continuous
//     scheduler's KV-pressure check behaves as if the block arena had zero
//     free blocks — deterministically forcing preemption mid-flight,
//   * fail_alloc: the next N paged-cache admission checks behave as if
//     block allocation failed (same credit semantics as fail_generate),
//     pushing those sequences onto the monolithic-fallback path,
//   * stall_steps: the next N scheduler iterations make no forward
//     progress (no sequence decodes; only watchdog ages advance) — the
//     wedged-batch scenario the scheduler watchdog exists for,
//   * poison_breaker: the next N outcomes recorded by the service are
//     forced to count as failures in the circuit breaker's rolling window
//     regardless of the real response (same credit semantics).
//
// All knobs are atomics so tests can flip them while worker threads serve;
// a default-constructed injector injects nothing. reset() is the single
// source of truth for the inactive values — the members are
// default-initialized in reset()'s terms, never with their own literals.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/deadline.hpp"

namespace wisdom::serve {

class FaultInjector {
 public:
  FaultInjector() { reset(); }

  // --- forced slow decode --------------------------------------------------
  // n >= 0: every subsequent request decodes under Deadline::after_checks(n)
  // (n counts prefill and generated tokens together). n < 0 disables.
  void set_slow_decode_after_tokens(std::int64_t n) {
    slow_decode_tokens_.store(n, std::memory_order_relaxed);
  }
  bool slow_decode_active() const {
    return slow_decode_tokens_.load(std::memory_order_relaxed) >= 0;
  }
  // The per-request deadline to decode under; call once per request.
  util::Deadline slow_decode_deadline() const {
    return util::Deadline::after_checks(
        slow_decode_tokens_.load(std::memory_order_relaxed));
  }

  // --- forced generate failure --------------------------------------------
  // n > 0: the next n requests fail generation (credits, consumed one per
  // take_generate_failure()). n < 0: every request fails until reset —
  // infinite credit, nothing is consumed. 0 disables.
  void set_fail_generate(std::int64_t n) {
    fail_generate_.store(n, std::memory_order_relaxed);
  }
  // Consumes one failure credit; true when this request must fail.
  bool take_generate_failure() { return take_credit(fail_generate_); }

  // --- forced queue-full ---------------------------------------------------
  void set_force_queue_full(bool full) {
    force_queue_full_.store(full, std::memory_order_relaxed);
  }
  bool queue_full_forced() const {
    return force_queue_full_.load(std::memory_order_relaxed);
  }

  // --- forced arena exhaustion --------------------------------------------
  // n >= 0: from scheduler step n on, the KV-pressure check sees zero free
  // blocks (real allocations still succeed, so decodes complete — the
  // injected pressure only drives preemption/fallback decisions). n < 0
  // disables.
  void set_arena_exhaust_at_step(std::int64_t n) {
    arena_exhaust_step_.store(n, std::memory_order_relaxed);
  }
  bool arena_exhausted_at(std::int64_t step) const {
    const std::int64_t n = arena_exhaust_step_.load(std::memory_order_relaxed);
    return n >= 0 && step >= n;
  }

  // --- forced allocation failure ------------------------------------------
  // Same credit semantics as fail_generate: n > 0 fails the next n paged
  // admission checks, n < 0 fails all of them, 0 disables.
  void set_fail_alloc(std::int64_t n) {
    fail_alloc_.store(n, std::memory_order_relaxed);
  }
  bool take_alloc_failure() { return take_credit(fail_alloc_); }

  // --- forced scheduler stall ----------------------------------------------
  // Same credit semantics: n > 0 stalls the next n scheduler iterations
  // (no sequence makes progress; watchdog ages still advance), n < 0
  // stalls forever (the watchdog must dig the batch out), 0 disables.
  void set_stall_steps(std::int64_t n) {
    stall_steps_.store(n, std::memory_order_relaxed);
  }
  bool take_stall_step() { return take_credit(stall_steps_); }

  // --- breaker-window poisoning -------------------------------------------
  // Same credit semantics: n > 0 forces the next n recorded outcomes to
  // count as breaker failures, n < 0 poisons every outcome, 0 disables.
  void set_poison_breaker(std::int64_t n) {
    poison_breaker_.store(n, std::memory_order_relaxed);
  }
  bool take_breaker_poison() { return take_credit(poison_breaker_); }

  // The single source of truth for the inactive defaults; the constructor
  // delegates here so the literals exist exactly once.
  void reset() {
    set_slow_decode_after_tokens(-1);
    set_fail_generate(0);
    set_force_queue_full(false);
    set_arena_exhaust_at_step(-1);
    set_fail_alloc(0);
    set_stall_steps(0);
    set_poison_breaker(0);
  }

 private:
  // Shared credit-consumption loop: n < 0 = infinite (always true, never
  // decremented), n == 0 = off, n > 0 = CAS one credit away per call.
  static bool take_credit(std::atomic<std::int64_t>& credits) {
    std::int64_t n = credits.load(std::memory_order_relaxed);
    while (true) {
      if (n < 0) return true;
      if (n == 0) return false;
      if (credits.compare_exchange_weak(n, n - 1, std::memory_order_relaxed))
        return true;
    }
  }

  std::atomic<std::int64_t> slow_decode_tokens_;
  std::atomic<std::int64_t> fail_generate_;
  std::atomic<bool> force_queue_full_;
  std::atomic<std::int64_t> arena_exhaust_step_;
  std::atomic<std::int64_t> fail_alloc_;
  std::atomic<std::int64_t> stall_steps_;
  std::atomic<std::int64_t> poison_breaker_;
};

}  // namespace wisdom::serve
