// Deterministic fault injection for the serving path.
//
// Robustness behavior (deadline fallback, load shedding, retry) is
// miserable to test with real timing: a "slow decode" produced by sleeping
// is flaky and slow, and a genuinely full queue needs racing threads. The
// FaultInjector instead forces each degraded path to trigger on demand:
//
//   * slow_decode_after_tokens: requests decode under a check-count
//     deadline that expires after N cooperative checks — the decode "takes
//     too long" after exactly N tokens, on any machine, with no sleeps,
//   * fail_generate: the next N requests behave as if the model errored,
//   * force_queue_full: admission behaves as if the queue were at capacity.
//
// All knobs are atomics so tests can flip them while worker threads serve;
// a default-constructed injector injects nothing.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/deadline.hpp"

namespace wisdom::serve {

class FaultInjector {
 public:
  FaultInjector() = default;

  // --- forced slow decode --------------------------------------------------
  // n >= 0: every subsequent request decodes under Deadline::after_checks(n)
  // (n counts prefill and generated tokens together). n < 0 disables.
  void set_slow_decode_after_tokens(std::int64_t n) {
    slow_decode_tokens_.store(n, std::memory_order_relaxed);
  }
  bool slow_decode_active() const {
    return slow_decode_tokens_.load(std::memory_order_relaxed) >= 0;
  }
  // The per-request deadline to decode under; call once per request.
  util::Deadline slow_decode_deadline() const {
    return util::Deadline::after_checks(
        slow_decode_tokens_.load(std::memory_order_relaxed));
  }

  // --- forced generate failure --------------------------------------------
  // n > 0: the next n requests fail generation. n < 0: every request fails
  // until reset. 0 disables.
  void set_fail_generate(std::int64_t n) {
    fail_generate_.store(n, std::memory_order_relaxed);
  }
  // Consumes one failure credit; true when this request must fail.
  bool take_generate_failure() {
    std::int64_t n = fail_generate_.load(std::memory_order_relaxed);
    while (true) {
      if (n < 0) return true;
      if (n == 0) return false;
      if (fail_generate_.compare_exchange_weak(n, n - 1,
                                               std::memory_order_relaxed))
        return true;
    }
  }

  // --- forced queue-full ---------------------------------------------------
  void set_force_queue_full(bool full) {
    force_queue_full_.store(full, std::memory_order_relaxed);
  }
  bool queue_full_forced() const {
    return force_queue_full_.load(std::memory_order_relaxed);
  }

  void reset() {
    set_slow_decode_after_tokens(-1);
    set_fail_generate(0);
    set_force_queue_full(false);
  }

 private:
  std::atomic<std::int64_t> slow_decode_tokens_{-1};
  std::atomic<std::int64_t> fail_generate_{0};
  std::atomic<bool> force_queue_full_{false};
};

}  // namespace wisdom::serve
