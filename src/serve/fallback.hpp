// Deterministic model-free fallback suggester: graceful degradation for
// the serving path.
//
// When a request's deadline expires mid-decode (or the model fails
// outright), the editor still needs *something* useful back — the paper's
// plugin contract is "the user hits tab or escape", and an empty completion
// is strictly worse than a plain template. This suggester answers in
// microseconds from the module catalog: the prompt's unigrams are matched
// (via text::count_ngrams / clipped_matches) against per-template keyword
// sets, the best template is instantiated with an object noun lifted from
// the prompt, and the result is a schema-correct task body. No model, no
// randomness, no allocation beyond the output string.
#pragma once

#include <string>
#include <vector>

#include "text/ngram.hpp"

namespace wisdom::serve {

class FallbackSuggester {
 public:
  FallbackSuggester();

  // Task body lines (module key + params) for an item whose "- name:" line
  // sits at column `indent`; always non-empty, always schema-correct when
  // appended to that name line.
  std::string suggest_body(const std::string& prompt, int indent) const;

 private:
  enum class Kind { Package, Service, Copy, Directory, Debug };

  struct Template {
    Kind kind;
    text::NgramCounts keywords;  // unigram keyword multiset
  };

  std::vector<Template> templates_;
};

}  // namespace wisdom::serve
