// Iteration-level continuous batching (Orca-style) over the model's
// batched decode step.
//
// Request-level batching (ThreadPool::parallel_for over whole requests)
// wastes the machine two ways under production traffic: a worker that
// drew a short request idles while long ones finish (head-of-line
// imbalance), and every concurrent decode streams the full weight matrix
// through the cache hierarchy for its own single row (a GEMV per
// sequence). The continuous scheduler instead merges every in-flight
// sequence into ONE batched forward step per token — each step is a
// GEMM whose rows are the live sequences — admits newly arrived
// sequences between steps, and retires finished or deadline-expired
// sequences each iteration. Weights stream once per step regardless of
// batch width, and a finished sequence's slot is reused immediately.
//
// The contract is the one the serving stack is built on: for every
// sequence the scheduler performs exactly the token-level actions of
// model::Transformer::generate() — the same deadline checks in the same
// order (check-count budgets spend identically), the same sampling RNG
// per sequence, the same snapshot timing, the same trace span shapes —
// and the batched step itself is bit-identical to sequential
// decode_step calls (row-independent kernels). Outputs are therefore
// byte-equal to per-request sequential serving at any WISDOM_THREADS,
// with the prefix cache on or off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/transformer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/deadline.hpp"

namespace wisdom::model {
class KvBlockAllocator;
}

namespace wisdom::serve {

// One generation request for the continuous batcher; mirrors
// Transformer::GenerateOptions plus an arrival step for admission tests.
struct SeqRequest {
  std::vector<std::int32_t> prompt;
  int max_new_tokens = 64;
  std::int32_t stop_token = -1;
  float temperature = 0.0f;  // 0 = greedy
  int top_k = 0;
  std::uint64_t sample_seed = 1;
  util::Deadline deadline;
  // Earliest scheduler iteration this request may be admitted at (0 =
  // present from the start). Lets tests interleave admissions mid-flight;
  // the service always passes 0 and relies on batch arrival order.
  int arrival_step = 0;
  model::Transformer::GenerateStatus* status = nullptr;  // optional
  obs::TraceContext* trace = nullptr;                    // optional
  // Same contract as GenerateOptions: warm_cache is used as the working
  // cache (mutated in place; must hold a prefix of the kept prompt),
  // prompt_snapshot receives a clone taken right after prefill.
  model::Transformer::KvCache* warm_cache = nullptr;
  model::Transformer::KvCache* prompt_snapshot = nullptr;
};

struct SchedulerOptions {
  // Max sequences decoded together per step; arrivals past this wait for
  // a retirement (admission is strictly in request order).
  int max_in_flight = 8;
  // Paged-KV arena for sequence caches; borrowed, may be null (sequences
  // then use monolithic caches — still continuously batched).
  model::KvBlockAllocator* arena = nullptr;
};

// Borrowed metric handles (all optional) updated as the loop runs.
struct SchedulerMetrics {
  obs::Gauge* inflight = nullptr;          // live sequences after admission
  obs::Gauge* blocks_in_use = nullptr;     // arena occupancy
  obs::Gauge* blocks_free = nullptr;
  obs::Counter* steps = nullptr;           // batched forward steps
  obs::Counter* admitted = nullptr;        // sequences admitted
  obs::Counter* retired = nullptr;         // sequences retired
  obs::Counter* monolithic_fallbacks = nullptr;  // arena full at admit
  obs::Histogram* admissions_per_step = nullptr;
  obs::Histogram* batch_width = nullptr;   // sequences per forward step
};

struct SchedulerRunStats {
  int steps = 0;             // batched forward steps taken
  int admitted = 0;          // sequences admitted (== requests)
  int peak_in_flight = 0;
  int monolithic_fallbacks = 0;  // sequences denied a paged cache
};

class ContinuousScheduler {
 public:
  ContinuousScheduler(const model::Transformer& model,
                      SchedulerOptions options = {},
                      SchedulerMetrics metrics = {});

  // Runs every request to completion and returns the generated tokens,
  // aligned by index — byte-identical to calling model.generate() per
  // request with the matching GenerateOptions. Requests must stay alive
  // and unmoved for the duration of the call (prompts are borrowed).
  std::vector<std::vector<std::int32_t>> run(
      std::span<SeqRequest> requests);

  const SchedulerRunStats& last_run() const { return last_run_; }

 private:
  const model::Transformer& model_;
  SchedulerOptions options_;
  SchedulerMetrics metrics_;
  SchedulerRunStats last_run_;
};

}  // namespace wisdom::serve
