// Iteration-level continuous batching (Orca-style) over the model's
// batched decode step.
//
// Request-level batching (ThreadPool::parallel_for over whole requests)
// wastes the machine two ways under production traffic: a worker that
// drew a short request idles while long ones finish (head-of-line
// imbalance), and every concurrent decode streams the full weight matrix
// through the cache hierarchy for its own single row (a GEMV per
// sequence). The continuous scheduler instead merges every in-flight
// sequence into ONE batched forward step per token — each step is a
// GEMM whose rows are the live sequences — admits newly arrived
// sequences between steps, and retires finished or deadline-expired
// sequences each iteration. Weights stream once per step regardless of
// batch width, and a finished sequence's slot is reused immediately.
//
// The contract is the one the serving stack is built on: for every
// sequence the scheduler performs exactly the token-level actions of
// model::Transformer::generate() — the same deadline checks in the same
// order (check-count budgets spend identically), the same sampling RNG
// per sequence, the same snapshot timing, the same trace span shapes —
// and the batched step itself is bit-identical to sequential
// decode_step calls (row-independent kernels). Outputs are therefore
// byte-equal to per-request sequential serving at any WISDOM_THREADS,
// with the prefix cache on or off.
//
// Overload resilience: when the upcoming step would need more KV blocks
// than the arena has free, the scheduler preempts the lowest-progress
// sequence instead of silently materializing monolithic buffers — the
// generated-tail blocks are released (the prefilled kept-prefix stays
// resident, exactly the PR 5 truncate-to-shared-span path), and the
// sequence is requeued; on re-admission the released rows are recomputed
// as a warm-start (recompute steps consume no deadline checks, RNG draws,
// or counters, so outputs and statuses stay byte-identical to sequential
// serving). Preempted sequences re-admit with strict priority over new
// arrivals, and a per-sequence preemption cap exempts repeat victims, so
// nothing starves. A check-count watchdog bounds per-sequence residence
// and force-retires wedged sequences as deadline-expired — the loop
// terminates for any fault schedule the FaultInjector can produce.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "model/transformer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/fault.hpp"
#include "util/deadline.hpp"

namespace wisdom::model {
class KvBlockAllocator;
}

namespace wisdom::serve {

// One generation request for the continuous batcher; mirrors
// Transformer::GenerateOptions plus an arrival step for admission tests.
struct SeqRequest {
  std::vector<std::int32_t> prompt;
  int max_new_tokens = 64;
  std::int32_t stop_token = -1;
  float temperature = 0.0f;  // 0 = greedy
  int top_k = 0;
  std::uint64_t sample_seed = 1;
  util::Deadline deadline;
  // Earliest scheduler iteration this request may be admitted at (0 =
  // present from the start). Lets tests interleave admissions mid-flight;
  // the service always passes 0 and relies on batch arrival order.
  int arrival_step = 0;
  model::Transformer::GenerateStatus* status = nullptr;  // optional
  obs::TraceContext* trace = nullptr;                    // optional
  // Same contract as GenerateOptions: warm_cache is used as the working
  // cache (mutated in place; must hold a prefix of the kept prompt),
  // prompt_snapshot receives a clone taken right after prefill.
  model::Transformer::KvCache* warm_cache = nullptr;
  model::Transformer::KvCache* prompt_snapshot = nullptr;
  // Per-token emission hook with GenerateOptions' contract: fired once
  // per generated token as it is committed to the output — never for the
  // stop token, prefill rows, or preemption-recompute rows (those re-feed
  // already-emitted tokens, which the hook must not see twice).
  std::function<void(std::int32_t)> on_token;
};

struct SchedulerOptions {
  // Max sequences decoded together per step; arrivals past this wait for
  // a retirement (admission is strictly in request order).
  int max_in_flight = 8;
  // --- speculative decoding ----------------------------------------------
  // Draft model for speculative decoding (borrowed, may be null = off).
  // Greedy sequences (temperature 0) then draft speculative_k tokens from
  // a per-sequence draft cache each iteration and the batched forward
  // step verifies them fused — committed tokens stay byte-identical to
  // non-speculative serving (greedy acceptance, deferred-mismatch commit,
  // one deadline check per committed token in order). Sampled sequences,
  // prefill rows, and preemption recomputes never speculate.
  const model::Transformer* draft = nullptr;
  // Draft tokens proposed per sequence per iteration (<= 0 disables).
  int speculative_k = 0;
  // Optional paged arena for draft caches; its geometry must match the
  // *draft* model. Null = monolithic draft caches. Preempting a sequence
  // releases its draft blocks along with its generated-tail KV blocks.
  model::KvBlockAllocator* draft_arena = nullptr;
  // Paged-KV arena for sequence caches; borrowed, may be null (sequences
  // then use monolithic caches — still continuously batched).
  model::KvBlockAllocator* arena = nullptr;
  // KV-pressure preemption: when the upcoming step needs more blocks than
  // the arena has free, the lowest-progress sequence is preempted — its
  // generated-tail blocks released (the kept-prefix blocks stay), the
  // sequence requeued for re-admission with a warm-start recompute of the
  // released rows. A sequence preempted this many times is exempt from
  // further preemption (it finishes, materializing monolithically if the
  // arena is truly exhausted) so repeated victimhood cannot starve it.
  int max_preemptions_per_seq = 2;
  // Force-retire (as deadline-expired) any sequence still unfinished
  // after this many scheduler iterations from its admission — the bound
  // on per-sequence residence that keeps a wedged batch from spinning
  // forever. Counted in iterations (check-count discipline, no wall
  // clocks); <= 0 derives a bound generous enough that fault-free runs —
  // including preemption-heavy ones on tiny arenas — never trip it.
  int watchdog_iterations = 0;
  // Borrowed fault injector driving arena-exhaustion / allocation-failure
  // / stall injection; nullptr injects nothing.
  FaultInjector* faults = nullptr;
};

// Borrowed metric handles (all optional) updated as the loop runs.
struct SchedulerMetrics {
  obs::Gauge* inflight = nullptr;          // live sequences after admission
  obs::Gauge* blocks_in_use = nullptr;     // arena occupancy
  obs::Gauge* blocks_free = nullptr;
  obs::Counter* steps = nullptr;           // batched forward steps
  obs::Counter* admitted = nullptr;        // sequences admitted
  obs::Counter* retired = nullptr;         // sequences retired
  obs::Counter* monolithic_fallbacks = nullptr;  // arena full at admit
  obs::Histogram* admissions_per_step = nullptr;
  obs::Histogram* batch_width = nullptr;   // sequences per forward step
  obs::Counter* preempted = nullptr;       // KV-pressure preemptions
  obs::Counter* preempt_blocks_released = nullptr;
  obs::Counter* preempt_recompute_tokens = nullptr;
  obs::Counter* watchdog_retired = nullptr;
  obs::Counter* spec_proposed = nullptr;   // draft tokens verified
  obs::Counter* spec_accepted = nullptr;   // draft tokens committed
  obs::Counter* spec_rejected = nullptr;   // draft tokens discarded
  obs::Counter* spec_verify_steps = nullptr;  // fused verify rounds
  obs::Counter* spec_draft_steps = nullptr;   // tokens fed to the draft
  obs::Histogram* spec_commit_per_verify = nullptr;  // tokens/verify round
};

struct SchedulerRunStats {
  int steps = 0;             // batched forward steps taken
  int admitted = 0;          // sequences admitted (== requests)
  int peak_in_flight = 0;
  int monolithic_fallbacks = 0;  // sequences denied a paged cache
  int preemptions = 0;           // KV-pressure preemption events
  int preempt_blocks_released = 0;  // blocks returned by preemptions
  int preempt_recompute_tokens = 0;  // rows re-fed by warm-start resumes
  int watchdog_retired = 0;      // sequences force-retired by the watchdog
  int max_seq_age = 0;           // longest per-sequence residence (iters)
  // Speculative-decoding tallies (zero when no draft is configured).
  int spec_proposed = 0;         // draft tokens fed to the verifier
  int spec_accepted = 0;         // draft tokens committed verbatim
  int spec_rejected = 0;         // draft tokens discarded
  int spec_verify_steps = 0;     // sequences' fused verify rounds
  int spec_draft_steps = 0;      // tokens fed through the draft model
};

class ContinuousScheduler {
 public:
  ContinuousScheduler(const model::Transformer& model,
                      SchedulerOptions options = {},
                      SchedulerMetrics metrics = {});

  // Runs every request to completion and returns the generated tokens,
  // aligned by index — byte-identical to calling model.generate() per
  // request with the matching GenerateOptions. Requests must stay alive
  // and unmoved for the duration of the call (prompts are borrowed).
  std::vector<std::vector<std::int32_t>> run(
      std::span<SeqRequest> requests);

  const SchedulerRunStats& last_run() const { return last_run_; }

 private:
  const model::Transformer& model_;
  SchedulerOptions options_;
  SchedulerMetrics metrics_;
  SchedulerRunStats last_run_;
};

}  // namespace wisdom::serve
