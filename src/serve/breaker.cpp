#include "serve/breaker.hpp"

#include <algorithm>

namespace wisdom::serve {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "closed";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options, BreakerMetrics metrics)
    : options_(options), metrics_(metrics) {
  options_.window = std::max(1, options_.window);
  options_.min_samples = std::clamp(options_.min_samples, 1, options_.window);
  options_.failure_threshold =
      std::clamp(options_.failure_threshold, 0.0, 1.0);
  options_.cooldown = std::max(1, options_.cooldown);
  options_.probes = std::max(1, options_.probes);
  window_.assign(static_cast<std::size_t>(options_.window), 0);
  if (metrics_.state)
    metrics_.state->set(static_cast<double>(state_));
}

void CircuitBreaker::transition_locked(BreakerState next) {
  if (next == state_) return;
  if (next == BreakerState::Open) {
    ++opened_total_;
    if (metrics_.opened) metrics_.opened->inc();
    cooldown_left_ = options_.cooldown;
    // The window emptied the moment we gave up on the backend; after the
    // probe cycle it restarts from clean history.
    std::fill(window_.begin(), window_.end(), 0);
    head_ = outcomes_ = failures_ = 0;
  } else if (next == BreakerState::HalfOpen) {
    probes_issued_ = 0;
    probe_successes_ = 0;
  } else {  // Closed, from a successful probe cycle
    ++closed_total_;
    if (metrics_.closed) metrics_.closed->inc();
  }
  state_ = next;
  if (metrics_.state) metrics_.state->set(static_cast<double>(state_));
}

CircuitBreaker::Admission CircuitBreaker::admit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::Open) {
    if (cooldown_left_ > 0) {
      --cooldown_left_;
      ++short_circuit_total_;
      if (metrics_.short_circuited) metrics_.short_circuited->inc();
      return Admission::ShortCircuit;
    }
    transition_locked(BreakerState::HalfOpen);
  }
  if (state_ == BreakerState::HalfOpen) {
    if (probes_issued_ >= options_.probes) {
      ++short_circuit_total_;
      if (metrics_.short_circuited) metrics_.short_circuited->inc();
      return Admission::ShortCircuit;
    }
    ++probes_issued_;
    ++probe_total_;
    if (metrics_.probes) metrics_.probes->inc();
    return Admission::Probe;
  }
  return Admission::Allow;
}

void CircuitBreaker::record(bool failure) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failure && metrics_.failures_recorded) metrics_.failures_recorded->inc();
  if (state_ == BreakerState::HalfOpen) {
    if (failure) {
      transition_locked(BreakerState::Open);
      return;
    }
    ++probe_successes_;
    if (probe_successes_ >= options_.probes)
      transition_locked(BreakerState::Closed);
    return;
  }
  if (state_ == BreakerState::Open) return;  // straggler; window was cleared
  // Closed: rolling window update. The slot being overwritten ages out of
  // both counts before the new outcome lands.
  if (outcomes_ == options_.window) {
    failures_ -= window_[static_cast<std::size_t>(head_)];
  } else {
    ++outcomes_;
  }
  window_[static_cast<std::size_t>(head_)] = failure ? 1 : 0;
  head_ = (head_ + 1) % options_.window;
  if (failure) ++failures_;
  if (outcomes_ >= options_.min_samples &&
      static_cast<double>(failures_) >=
          options_.failure_threshold * static_cast<double>(outcomes_))
    transition_locked(BreakerState::Open);
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.state = state_;
  s.window_outcomes = outcomes_;
  s.window_failures = failures_;
  s.opened = opened_total_;
  s.closed_from_half_open = closed_total_;
  s.short_circuited = short_circuit_total_;
  s.probes_admitted = probe_total_;
  return s;
}

}  // namespace wisdom::serve
