// In-process inference service modelling the paper's GRPC/REST serving path
// and VS Code plugin workflow: the editor sends the current file content
// plus the "- name: ..." prompt line the user just typed, the service
// returns a formatted suggestion, and the user accepts (tab) or rejects
// (escape). Latency statistics back the paper's model-size argument (a
// coding assistant must respond interactively, which is why Wisdom ships
// the 350M model rather than the 2.7B one).
//
// suggest_batch() fans N requests out across util::ThreadPool::global(),
// sharing one read-only model; with greedy decoding the batched responses
// are identical to N sequential suggest() calls.
//
// The serving path is deadline-aware and failure-tolerant end to end:
//   * every request decodes under a deadline (per-request override or the
//     service default); on expiry the model's partial result is salvaged
//     when schema-correct, otherwise the deterministic FallbackSuggester
//     answers — either way the response is tagged `degraded`,
//   * a bounded AdmissionQueue in front of the pool sheds excess load
//     (ServiceError::Overloaded) instead of letting latency grow without
//     bound; ShedPolicy::DegradeNewest serves shed requests from the
//     fallback instead of refusing them,
//   * a FaultInjector (tests/benchmarks) forces each degraded path
//     deterministically.
//
// Observability: the service owns an obs::MetricsRegistry (counters,
// request-latency and per-stage histograms — exportable as Prometheus
// text or JSON via metrics()), and every request is traced: admission →
// tokenize → generate (prefill + per-token decode) → postprocess →
// fallback spans land in the request's obs::Trace (attach a sink via
// SuggestionRequest::trace to keep it) and the per-stage totals come back
// in SuggestionResponse::server_timing_ms. ServiceStats is a snapshot
// view derived from the registry; the accessors are unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "model/transformer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/fallback.hpp"
#include "serve/fault.hpp"
#include "serve/lint_gate.hpp"
#include "serve/queue.hpp"
#include "text/bpe.hpp"
#include "util/deadline.hpp"

namespace wisdom::serve {

// Why a request was not served normally. Overloaded is the only transient
// error (retrying after backoff can succeed); the rest are terminal for
// the request that produced them.
enum class ServiceError : std::uint8_t {
  None = 0,
  InvalidRequest,    // empty prompt, negative indent
  Overloaded,        // shed by the admission queue
  DeadlineExceeded,  // decode cut off by the request deadline
  GenerateFailed,    // model failure (fault-injected or real)
  LintRejected,      // RejectDegraded policy: errors survived repair
};

std::string_view service_error_name(ServiceError error);
// Parses a name produced by service_error_name; false on unknown names.
bool service_error_from_name(std::string_view name, ServiceError* out);
// True for errors a client should retry with backoff.
bool is_transient(ServiceError error);

struct SuggestionRequest {
  // YAML already in the editor above the cursor (may be empty).
  std::string context;
  // Natural-language intent, the value of the name line being completed.
  std::string prompt;
  // Indentation column of the task item ("- name:") being completed.
  int indent = 0;
  // Per-request decode budget in milliseconds; <= 0 uses the service
  // default (ServiceOptions::deadline_ms).
  double deadline_ms = 0.0;
  // Client-supplied trace id echoed in the response; empty lets the
  // service derive a deterministic one (sequence number + prompt hash).
  std::string trace_id;
  // Optional cooperative cancellation (the user kept typing).
  util::CancelToken cancel;
  // Optional trace sink: when set (and observability is enabled) the
  // request's span timeline is written here. Borrowed; not serialized.
  obs::Trace* trace = nullptr;
};

struct SuggestionResponse {
  bool ok = false;
  // The full suggested snippet (name line + generated body), formatted for
  // pasting at the cursor.
  std::string snippet;
  // Whether the suggestion passes the strict Ansible schema.
  bool schema_correct = false;
  double latency_ms = 0.0;
  int generated_tokens = 0;
  // True when the snippet came from the fallback path (deadline expiry,
  // model failure, or DegradeNewest shedding) rather than a full decode.
  bool degraded = false;
  // Why the request degraded or failed; None for a normal response.
  ServiceError error = ServiceError::None;
  // Diagnostics the lint gate attached to the served snippet (post-repair
  // when the policy repairs). Empty when lint_policy is Off, when the
  // snippet is clean, or for fallback-served snippets (the fallback is
  // catalog-backed and schema-correct by construction) — except under
  // RejectDegraded, where the rejected snippet's diagnostics are kept so
  // the client can see why its model suggestion was refused.
  std::vector<wisdom::analysis::Diagnostic> diagnostics;
  // True when the lint gate's auto-fix engine changed the snippet.
  bool repaired = false;
  // Trace id of this request (client-supplied or service-derived); empty
  // when tracing is disabled.
  std::string trace_id;
  // Per-stage wall time of this request ("admission", "tokenize",
  // "prefill", "decode", "postprocess", "lint", "fallback", plus the
  // "request" root). Empty when tracing is disabled.
  std::map<std::string, double> server_timing_ms;
};

struct ServiceOptions {
  int max_new_tokens = 56;
  // Default per-request decode budget in ms; <= 0 disables the deadline.
  double deadline_ms = 0.0;
  // Admission queue capacity; <= 0 means unbounded (never sheds).
  int queue_capacity = 0;
  ShedPolicy shed_policy = ShedPolicy::RejectNewest;
  // Serve the fallback on deadline expiry / model failure. When false such
  // requests return ok=false with the error set instead.
  bool fallback_enabled = true;
  // Borrowed fault injector; nullptr injects nothing. Must outlive the
  // service.
  FaultInjector* faults = nullptr;
  // What to do with diagnostics on generated snippets (see lint_gate.hpp).
  // Off preserves the seed behaviour exactly.
  LintPolicy lint_policy = LintPolicy::Off;
};

// Snapshot of the service's counters, derived from its metrics registry.
// The derived quantities (percentiles, rates, throughput) keep their
// pre-registry signatures, so existing callers compile unchanged.
struct ServiceStats {
  // Every arrival, admitted or shed.
  std::uint64_t offered = 0;
  // Responses produced (admitted + degraded-shed); latencies below cover
  // exactly these.
  std::uint64_t requests = 0;
  // Arrivals refused admission by the bounded queue (both shed policies).
  std::uint64_t shed = 0;
  // Responses served by the fallback path.
  std::uint64_t degraded = 0;
  // Requests whose decode hit its deadline.
  std::uint64_t deadline_expired = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t generated_tokens = 0;
  // Sum of per-request latencies; with batching this exceeds wall time.
  double total_latency_ms = 0.0;
  // Service-side wall time: a batch contributes its elapsed time once,
  // which is what makes tokens_per_sec() reflect batching throughput.
  double total_wall_ms = 0.0;
  // Per-request latencies, in arrival order, for the percentile report.
  std::vector<double> latencies_ms;

  double mean_latency_ms() const {
    return requests == 0 ? 0.0 : total_latency_ms / static_cast<double>(requests);
  }
  // Nearest-rank percentile of per-request latency, p in (0, 100].
  double percentile_latency_ms(double p) const;
  double p50_latency_ms() const { return percentile_latency_ms(50.0); }
  double p95_latency_ms() const { return percentile_latency_ms(95.0); }
  double p99_latency_ms() const { return percentile_latency_ms(99.0); }
  double tokens_per_sec() const {
    return total_wall_ms <= 0.0
               ? 0.0
               : static_cast<double>(generated_tokens) / (total_wall_ms / 1e3);
  }
  double shed_rate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(shed) /
                              static_cast<double>(offered);
  }
  double degraded_rate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(degraded) /
                               static_cast<double>(requests);
  }
  double acceptance_rate() const {
    std::uint64_t decided = accepted + rejected;
    return decided == 0 ? 0.0
                        : static_cast<double>(accepted) /
                              static_cast<double>(decided);
  }
};

class InferenceService {
 public:
  // Borrows the model and tokenizer; both must outlive the service.
  // Default-constructed options give an unbounded, deadline-free service
  // (the old max_new_tokens-only constructor is covered by setting just
  // that field).
  InferenceService(const model::Transformer& model,
                   const text::BpeTokenizer& tokenizer,
                   ServiceOptions options = {});

  const ServiceOptions& options() const { return options_; }

  SuggestionResponse suggest(const SuggestionRequest& request);

  // Serves a batch concurrently on the global thread pool. Responses align
  // with requests by index and match sequential suggest() calls exactly
  // (greedy decoding, shared read-only model). Admission is decided in
  // arrival order before the fan-out (reject-newest: with capacity C and
  // an otherwise idle service, the first C requests are admitted and the
  // rest shed — deterministically). Stats count each request individually
  // but the batch's wall time once.
  std::vector<SuggestionResponse> suggest_batch(
      const std::vector<SuggestionRequest>& requests);

  // The plugin's accept/reject feedback ("hit tab ... or escape").
  void record_accept();
  void record_reject();

  // The service's metrics registry: counters/gauges backing ServiceStats
  // plus per-stage latency histograms; export with expose_prometheus() /
  // expose_json().
  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::MetricsRegistry& metrics() const { return registry_; }

  // Single-threaded view (refreshed from the registry on each call); use
  // stats_snapshot() when other threads may be calling into the service.
  const ServiceStats& stats() const;
  ServiceStats stats_snapshot() const;

 private:
  // Per-service metric handles, registered once at construction; the hot
  // path updates through these pointers without touching the registry map.
  struct Handles {
    obs::Counter* offered = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* deadline_expired = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* generated_tokens = nullptr;
    obs::Counter* fallback_served = nullptr;
    obs::Gauge* wall_ms = nullptr;
    obs::Gauge* inflight = nullptr;
    obs::Histogram* request_ms = nullptr;
    obs::Histogram* stage_admission = nullptr;
    obs::Histogram* stage_tokenize = nullptr;
    obs::Histogram* stage_generate = nullptr;
    obs::Histogram* stage_prefill = nullptr;
    obs::Histogram* stage_decode = nullptr;
    obs::Histogram* stage_postprocess = nullptr;
    obs::Histogram* stage_fallback = nullptr;
    obs::Histogram* stage_lint = nullptr;
    // Lint-gate counters. Pre-registered at construction (run_one is
    // const), one per registry rule, so every rule family appears in the
    // Prometheus exposition at 0 — scrape-side queries and the CI grep
    // never depend on which rules happened to fire.
    obs::Counter* lint_diagnostics = nullptr;
    obs::Counter* lint_errors = nullptr;
    obs::Counter* lint_warnings = nullptr;
    obs::Counter* lint_repaired = nullptr;
    obs::Counter* lint_rejected = nullptr;
    std::map<std::string, obs::Counter*, std::less<>> lint_rules;
  };

  bool try_admit();
  util::Deadline request_deadline(const SuggestionRequest& request) const;
  // Serves one request (admitted or shed path), recording spans into
  // `trace` and finalizing trace_id/server_timing_ms on the response.
  SuggestionResponse serve_traced(const SuggestionRequest& request,
                                  bool admitted, std::uint64_t seq) const;
  SuggestionResponse run_one(const SuggestionRequest& request,
                             obs::TraceContext& trace) const;
  // Response for a request refused admission: an Overloaded rejection or,
  // under DegradeNewest, a fallback suggestion.
  SuggestionResponse run_shed(const SuggestionRequest& request,
                              obs::TraceContext& trace) const;
  // Fills `response` from the fallback suggester (degraded path).
  void apply_fallback(const SuggestionRequest& request,
                      obs::TraceContext& trace,
                      SuggestionResponse* response) const;
  // Pushes a generated snippet through the lint gate under the service's
  // policy, recording the "lint" trace span and the lint counters (both
  // skipped under Off, where the gate is just the schema check).
  LintOutcome run_lint_gate(std::string_view snippet,
                            obs::TraceContext& trace) const;
  // Counter updates for one gate outcome (per-rule, severity, repair).
  void record_lint(const LintOutcome& outcome) const;
  // Feeds the completed trace's stage totals into the per-stage
  // histograms.
  void observe_stages(const obs::Trace& trace) const;
  // Counter/histogram updates for one produced response; appends the
  // exact latency sample under mu_.
  void record_response(const SuggestionResponse& response);
  void refresh_stats_locked() const;

  const model::Transformer& model_;
  const text::BpeTokenizer& tokenizer_;
  ServiceOptions options_;
  FallbackSuggester fallback_;
  AdmissionQueue queue_;
  obs::MetricsRegistry registry_;
  Handles h_;
  std::atomic<std::uint64_t> trace_seq_{0};
  mutable std::mutex mu_;
  // Exact per-request latency samples (arrival order) for the legacy
  // nearest-rank percentiles; everything else lives in the registry.
  std::vector<double> latencies_ms_;
  mutable ServiceStats stats_;
};

}  // namespace wisdom::serve
