// In-process inference service modelling the paper's GRPC/REST serving path
// and VS Code plugin workflow: the editor sends the current file content
// plus the "- name: ..." prompt line the user just typed, the service
// returns a formatted suggestion, and the user accepts (tab) or rejects
// (escape). Latency statistics back the paper's model-size argument (a
// coding assistant must respond interactively, which is why Wisdom ships
// the 350M model rather than the 2.7B one).
//
// suggest_batch() fans N requests out across util::ThreadPool::global(),
// sharing one read-only model; with greedy decoding the batched responses
// are identical to N sequential suggest() calls.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "model/transformer.hpp"
#include "text/bpe.hpp"

namespace wisdom::serve {

struct SuggestionRequest {
  // YAML already in the editor above the cursor (may be empty).
  std::string context;
  // Natural-language intent, the value of the name line being completed.
  std::string prompt;
  // Indentation column of the task item ("- name:") being completed.
  int indent = 0;
};

struct SuggestionResponse {
  bool ok = false;
  // The full suggested snippet (name line + generated body), formatted for
  // pasting at the cursor.
  std::string snippet;
  // Whether the suggestion passes the strict Ansible schema.
  bool schema_correct = false;
  double latency_ms = 0.0;
  int generated_tokens = 0;
};

struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t generated_tokens = 0;
  // Sum of per-request latencies; with batching this exceeds wall time.
  double total_latency_ms = 0.0;
  // Service-side wall time: a batch contributes its elapsed time once,
  // which is what makes tokens_per_sec() reflect batching throughput.
  double total_wall_ms = 0.0;
  // Per-request latencies, in arrival order, for the percentile report.
  std::vector<double> latencies_ms;

  double mean_latency_ms() const {
    return requests == 0 ? 0.0 : total_latency_ms / static_cast<double>(requests);
  }
  // Nearest-rank percentile of per-request latency, p in (0, 100].
  double percentile_latency_ms(double p) const;
  double p50_latency_ms() const { return percentile_latency_ms(50.0); }
  double p95_latency_ms() const { return percentile_latency_ms(95.0); }
  double p99_latency_ms() const { return percentile_latency_ms(99.0); }
  double tokens_per_sec() const {
    return total_wall_ms <= 0.0
               ? 0.0
               : static_cast<double>(generated_tokens) / (total_wall_ms / 1e3);
  }
  double acceptance_rate() const {
    std::uint64_t decided = accepted + rejected;
    return decided == 0 ? 0.0
                        : static_cast<double>(accepted) /
                              static_cast<double>(decided);
  }
};

class InferenceService {
 public:
  // Borrows the model and tokenizer; both must outlive the service.
  InferenceService(const model::Transformer& model,
                   const text::BpeTokenizer& tokenizer,
                   int max_new_tokens = 56);

  SuggestionResponse suggest(const SuggestionRequest& request);

  // Serves a batch concurrently on the global thread pool. Responses align
  // with requests by index and match sequential suggest() calls exactly
  // (greedy decoding, shared read-only model). Stats count each request
  // individually but the batch's wall time once.
  std::vector<SuggestionResponse> suggest_batch(
      const std::vector<SuggestionRequest>& requests);

  // The plugin's accept/reject feedback ("hit tab ... or escape").
  void record_accept();
  void record_reject();

  // Single-threaded view; use stats_snapshot() when other threads may be
  // calling into the service.
  const ServiceStats& stats() const { return stats_; }
  ServiceStats stats_snapshot() const;

 private:
  SuggestionResponse run_one(const SuggestionRequest& request) const;
  void record_locked(const SuggestionResponse& response);

  const model::Transformer& model_;
  const text::BpeTokenizer& tokenizer_;
  int max_new_tokens_;
  mutable std::mutex mu_;
  ServiceStats stats_;
};

}  // namespace wisdom::serve
