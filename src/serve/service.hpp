// In-process inference service modelling the paper's GRPC/REST serving path
// and VS Code plugin workflow: the editor sends the current file content
// plus the "- name: ..." prompt line the user just typed, the service
// returns a formatted suggestion, and the user accepts (tab) or rejects
// (escape). Latency statistics back the paper's model-size argument (a
// coding assistant must respond interactively, which is why Wisdom ships
// the 350M model rather than the 2.7B one).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/transformer.hpp"
#include "text/bpe.hpp"

namespace wisdom::serve {

struct SuggestionRequest {
  // YAML already in the editor above the cursor (may be empty).
  std::string context;
  // Natural-language intent, the value of the name line being completed.
  std::string prompt;
  // Indentation column of the task item ("- name:") being completed.
  int indent = 0;
};

struct SuggestionResponse {
  bool ok = false;
  // The full suggested snippet (name line + generated body), formatted for
  // pasting at the cursor.
  std::string snippet;
  // Whether the suggestion passes the strict Ansible schema.
  bool schema_correct = false;
  double latency_ms = 0.0;
  int generated_tokens = 0;
};

struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  double total_latency_ms = 0.0;
  double mean_latency_ms() const {
    return requests == 0 ? 0.0 : total_latency_ms / static_cast<double>(requests);
  }
  double acceptance_rate() const {
    std::uint64_t decided = accepted + rejected;
    return decided == 0 ? 0.0
                        : static_cast<double>(accepted) /
                              static_cast<double>(decided);
  }
};

class InferenceService {
 public:
  // Borrows the model and tokenizer; both must outlive the service.
  InferenceService(model::Transformer& model,
                   const text::BpeTokenizer& tokenizer,
                   int max_new_tokens = 56);

  SuggestionResponse suggest(const SuggestionRequest& request);

  // The plugin's accept/reject feedback ("hit tab ... or escape").
  void record_accept();
  void record_reject();

  const ServiceStats& stats() const { return stats_; }

 private:
  model::Transformer& model_;
  const text::BpeTokenizer& tokenizer_;
  int max_new_tokens_;
  ServiceStats stats_;
};

}  // namespace wisdom::serve
