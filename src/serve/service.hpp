// In-process inference service modelling the paper's GRPC/REST serving path
// and VS Code plugin workflow: the editor sends the current file content
// plus the "- name: ..." prompt line the user just typed, the service
// returns a formatted suggestion, and the user accepts (tab) or rejects
// (escape). Latency statistics back the paper's model-size argument (a
// coding assistant must respond interactively, which is why Wisdom ships
// the 350M model rather than the 2.7B one).
//
// suggest_batch() serves N requests through the continuous batcher: one
// iteration-level scheduler merges every in-flight sequence into a single
// batched forward step per token over paged KV blocks (see scheduler.hpp
// and kv_block.hpp), admitting and retiring sequences between steps. With
// continuous_batching off it falls back to fanning whole requests out
// across util::ThreadPool::global(). Either way the batched responses are
// byte-identical to N sequential suggest() calls.
//
// The serving path is deadline-aware and failure-tolerant end to end:
//   * every request decodes under a deadline (per-request override or the
//     service default); on expiry the model's partial result is salvaged
//     when schema-correct, otherwise the deterministic FallbackSuggester
//     answers — either way the response is tagged `degraded`,
//   * a bounded AdmissionQueue in front of the pool sheds excess load
//     (ServiceError::Overloaded) instead of letting latency grow without
//     bound; ShedPolicy::DegradeNewest serves shed requests from the
//     fallback instead of refusing them,
//   * a FaultInjector (tests/benchmarks) forces each degraded path
//     deterministically.
//
// Observability: the service owns an obs::MetricsRegistry (counters,
// request-latency and per-stage histograms — exportable as Prometheus
// text or JSON via metrics()), and every request is traced: admission →
// cache → tokenize → generate (prefill + per-token decode) → postprocess
// → fallback spans land in the request's obs::Trace (attach a sink via
// SuggestionRequest::trace to keep it) and the per-stage totals come back
// in SuggestionResponse::server_timing_ms. ServiceStats is a snapshot
// view derived from the registry; the accessors are unchanged.
//
// Caching: two optional levels sit in front of generation (both off by
// default, preserving the exact seed behaviour).
//   * Level 1, PrefixKvCache — KV snapshots of previously prefilled
//     prompts, keyed by token prefix, so a request sharing a prompt
//     prefix with an earlier one skips prefill for the shared span.
//   * Level 2, ResponseCache — a memo of full responses for exact
//     repeats of (context, prompt, indent, generation options, lint
//     policy); degraded/fallback responses are never memoized.
// Both levels are byte-transparent: cached and uncached serving produce
// identical response bytes (KV rows are deterministic functions of the
// token sequence, and the memo only replays deterministic decodes).
// invalidate_caches() drops both levels; callers must invoke it whenever
// the model weights change under the service (checkpoint reload).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "model/kv_block.hpp"
#include "model/speculative.hpp"
#include "model/transformer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/breaker.hpp"
#include "serve/fallback.hpp"
#include "serve/fault.hpp"
#include "serve/lint_gate.hpp"
#include "serve/prefix_cache.hpp"
#include "serve/queue.hpp"
#include "serve/response_cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/types.hpp"
#include "text/bpe.hpp"
#include "util/deadline.hpp"

namespace wisdom::serve {

struct ServiceOptions {
  int max_new_tokens = 56;
  // Decoding strategy: <= 1 decodes greedily (seed behaviour); widths > 1
  // serve through Transformer::generate_beam. Beam requests bypass the
  // continuous scheduler (iteration-level batching is greedy-only) — a
  // beam-configured service serves batches on the thread-pool path.
  int beam_width = 1;
  // Length normalization for beam scoring (score / length^penalty).
  float beam_length_penalty = 0.6f;
  // Default per-request decode budget in ms; <= 0 disables the deadline.
  double deadline_ms = 0.0;
  // Admission queue capacity; <= 0 means unbounded (never sheds).
  int queue_capacity = 0;
  ShedPolicy shed_policy = ShedPolicy::RejectNewest;
  // Serve the fallback on deadline expiry / model failure. When false such
  // requests return ok=false with the error set instead.
  bool fallback_enabled = true;
  // Borrowed fault injector; nullptr injects nothing. Must outlive the
  // service.
  FaultInjector* faults = nullptr;
  // What to do with diagnostics on generated snippets (see lint_gate.hpp).
  // Off preserves the seed behaviour exactly.
  LintPolicy lint_policy = LintPolicy::Off;
  // Level-1 prefix KV cache: reuse prefill work across requests sharing a
  // tokenized prompt prefix. Off by default (seed behaviour).
  bool prefix_cache_enabled = false;
  // Byte budget for the prefix cache (KV payload + trie overhead); LRU
  // eviction keeps the held bytes at or under this bound.
  std::size_t prefix_cache_bytes = 32ull << 20;
  // Level-2 response memo: replay the full prior response for exact
  // request repeats. Off by default.
  bool response_cache_enabled = false;
  // Entry cap for the response memo (LRU past it).
  std::size_t response_cache_entries = 256;
  // TTL for both caches, measured in cache lookups (a request count, not
  // wall time — deterministic under test); 0 disables expiry.
  std::uint64_t cache_ttl_requests = 0;
  // --- continuous batching (iteration-level scheduler) -------------------
  // Serve suggest_batch() through the ContinuousScheduler: one batched
  // forward step per token across every in-flight request, admissions
  // between steps, paged KV memory. Responses stay byte-identical to the
  // request-level path (and to sequential suggest() calls); turning this
  // off restores the whole-request thread-pool fan-out.
  bool continuous_batching = true;
  // Tokens per KV block in the paged arena.
  int kv_block_size = 16;
  // Max sequences decoded together per scheduler step (in-flight cap).
  int max_batch_sequences = 8;
  // Arena capacity in blocks; <= 0 sizes it automatically (4x the
  // worst-case working set of max_batch_sequences full-context sequences,
  // the surplus backing block-sharing prefix-cache snapshots). When the
  // arena is exhausted, sequences fall back to monolithic caches —
  // serving never fails for lack of blocks.
  int kv_arena_blocks = 0;
  // --- speculative decoding -----------------------------------------------
  // Draft tokens proposed per verify round; <= 0 disables speculation (the
  // seed behaviour, preserved exactly). With a draft configured, greedy
  // requests decode speculatively — a small config drafts k tokens, the
  // served model verifies them in one fused forward pass — with output
  // byte-identical to non-speculative serving (greedy acceptance). Beam
  // and sampled requests always decode non-speculatively.
  int speculative_k = 0;
  // Draft model (borrowed; must outlive the service). Takes precedence
  // over draft_checkpoint. Must share the verifier's vocab; a context
  // window at least as large is required (an owned checkpoint draft is
  // re-windowed automatically). An incompatible draft disables
  // speculation rather than failing construction.
  const model::Transformer* draft_model = nullptr;
  // Checkpoint path to load an owned draft from when draft_model is null.
  // A missing or corrupt file disables speculation (serving never fails
  // for lack of a draft).
  std::string draft_checkpoint;
  // --- overload resilience ------------------------------------------------
  // KV-pressure preemption cap: a sequence preempted this many times is
  // exempt from further preemption (see SchedulerOptions).
  int max_preemptions_per_seq = 2;
  // Scheduler watchdog bound in iterations; <= 0 derives one (see
  // SchedulerOptions::watchdog_iterations).
  int watchdog_iterations = 0;
  // Admission circuit breaker: past a rolling-window failure-rate
  // threshold, arrivals short-circuit to the deterministic fallback with
  // ServiceError::CircuitOpen instead of burning decode budget against a
  // failing backend; after a cooldown, probe requests test recovery. Off
  // by default (seed behaviour preserved exactly).
  bool breaker_enabled = false;
  BreakerOptions breaker;
};

// Snapshot of the service's counters, derived from its metrics registry.
// The derived quantities (percentiles, rates, throughput) keep their
// pre-registry signatures, so existing callers compile unchanged.
struct ServiceStats {
  // Every arrival, admitted or shed.
  std::uint64_t offered = 0;
  // Responses produced (admitted + degraded-shed); latencies below cover
  // exactly these.
  std::uint64_t requests = 0;
  // Arrivals refused admission by the bounded queue (both shed policies).
  std::uint64_t shed = 0;
  // Responses served by the fallback path.
  std::uint64_t degraded = 0;
  // Requests whose decode hit its deadline.
  std::uint64_t deadline_expired = 0;
  // Arrivals answered from the fallback by the open circuit breaker.
  std::uint64_t short_circuited = 0;
  // Arrivals refused because the service was draining or stopped.
  std::uint64_t drain_rejected = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t generated_tokens = 0;
  // Sum of per-request latencies; with batching this exceeds wall time.
  double total_latency_ms = 0.0;
  // Service-side wall time: a batch contributes its elapsed time once,
  // which is what makes tokens_per_sec() reflect batching throughput.
  double total_wall_ms = 0.0;
  // Per-request latencies, in arrival order, for the percentile report.
  std::vector<double> latencies_ms;

  double mean_latency_ms() const {
    return requests == 0 ? 0.0 : total_latency_ms / static_cast<double>(requests);
  }
  // Nearest-rank percentile of per-request latency, p in (0, 100].
  double percentile_latency_ms(double p) const;
  double p50_latency_ms() const { return percentile_latency_ms(50.0); }
  double p95_latency_ms() const { return percentile_latency_ms(95.0); }
  double p99_latency_ms() const { return percentile_latency_ms(99.0); }
  double tokens_per_sec() const {
    return total_wall_ms <= 0.0
               ? 0.0
               : static_cast<double>(generated_tokens) / (total_wall_ms / 1e3);
  }
  double shed_rate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(shed) /
                              static_cast<double>(offered);
  }
  double degraded_rate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(degraded) /
                               static_cast<double>(requests);
  }
  double acceptance_rate() const {
    std::uint64_t decided = accepted + rejected;
    return decided == 0 ? 0.0
                        : static_cast<double>(accepted) /
                              static_cast<double>(decided);
  }
};

class InferenceService {
 public:
  // Borrows the model and tokenizer; both must outlive the service.
  // Default-constructed options give an unbounded, deadline-free service
  // (the old max_new_tokens-only constructor is covered by setting just
  // that field).
  InferenceService(const model::Transformer& model,
                   const text::BpeTokenizer& tokenizer,
                   ServiceOptions options = {});

  const ServiceOptions& options() const { return options_; }

  SuggestionResponse suggest(const SuggestionRequest& request);

  // --- streaming ----------------------------------------------------------
  // Incremental delivery of one suggestion, hooked into the model's
  // per-token emission points (the same points the per-token "decode"
  // trace spans mark). The sink is called on the serving thread with text
  // chunks as tokens decode:
  //   * sink(text, reset=false) — append `text` to the accumulated
  //     snippet. Only bytes that are already final are emitted this way
  //     (complete lines that postprocessing provably keeps), so chunks
  //     never have to be retracted token-by-token.
  //   * sink(text, reset=true) — discard everything accumulated and
  //     replace it with `text`. Fired at most once, at the end, when the
  //     final snippet is not an extension of what was streamed (fallback
  //     replaced the decode, the lint gate repaired it, an empty
  //     generation cleared it, ...).
  // Invariant (asserted by tests/http_test.cpp): after suggest_stream
  // returns, the accumulated bytes equal response.snippet exactly — the
  // stream is byte-identical to the single-shot response for the same
  // request, greedy or beam. Beam decoding emits no per-token chunks (a
  // hypothesis is not final until search ends); its snippet arrives as
  // one chunk at the end.
  using TokenSink = std::function<void(std::string_view text, bool reset)>;
  SuggestionResponse suggest_stream(const SuggestionRequest& request,
                                    const TokenSink& sink);

  // Serves a batch through the continuous scheduler (or, with
  // continuous_batching off, concurrently on the global thread pool).
  // Responses align with requests by index and match sequential suggest()
  // calls exactly (greedy decoding, shared read-only model). Admission is
  // decided in arrival order before any serving (reject-newest: with
  // capacity C and an otherwise idle service, the first C requests are
  // admitted and the rest shed — deterministically). Stats count each
  // request individually but the batch's wall time once.
  std::vector<SuggestionResponse> suggest_batch(
      const std::vector<SuggestionRequest>& requests);

  // --- lifecycle (graceful drain) -----------------------------------------
  // accepting -> draining -> stopped. While accepting, everything serves
  // normally. begin_drain() stops admitting: new arrivals get a typed
  // ok=false ServiceError::Draining refusal (no fallback — clients must
  // fail over, not retry) while requests already in flight run to
  // completion or deadline. drain() blocks until the in-flight count hits
  // zero, transitions to stopped, and returns the final Prometheus
  // exposition — the metrics flush a supervisor scrapes once before
  // tearing the process down.
  enum class State : std::uint8_t { Accepting = 0, Draining = 1, Stopped = 2 };
  State state() const;
  void begin_drain();
  std::string drain();

  // The breaker's current state/window snapshot; a default (Closed,
  // all-zero) snapshot when the breaker is disabled.
  CircuitBreaker::Stats breaker_stats() const;

  // The plugin's accept/reject feedback ("hit tab ... or escape").
  void record_accept();
  void record_reject();

  // The service's metrics registry: counters/gauges backing ServiceStats
  // plus per-stage latency histograms; export with expose_prometheus() /
  // expose_json().
  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::MetricsRegistry& metrics() const { return registry_; }

  // Single-threaded view (refreshed from the registry on each call); use
  // stats_snapshot() when other threads may be calling into the service.
  const ServiceStats& stats() const;
  ServiceStats stats_snapshot() const;

  // Cache stats snapshots; all-zero when the corresponding level is
  // disabled.
  PrefixCacheStats prefix_cache_stats() const;
  ResponseCacheStats response_cache_stats() const;

  // Drops every cached KV snapshot and memoized response. MUST be called
  // whenever the model behind the service changes (checkpoint reload,
  // weight update): cache entries are keyed on token ids and model
  // outputs, both of which a reload invalidates.
  void invalidate_caches();

 private:
  // Per-service metric handles, registered once at construction; the hot
  // path updates through these pointers without touching the registry map.
  struct Handles {
    obs::Counter* offered = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* deadline_expired = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* generated_tokens = nullptr;
    obs::Counter* fallback_served = nullptr;
    obs::Gauge* wall_ms = nullptr;
    obs::Gauge* inflight = nullptr;
    obs::Histogram* request_ms = nullptr;
    obs::Histogram* stage_admission = nullptr;
    obs::Histogram* stage_tokenize = nullptr;
    obs::Histogram* stage_generate = nullptr;
    obs::Histogram* stage_prefill = nullptr;
    obs::Histogram* stage_decode = nullptr;
    obs::Histogram* stage_postprocess = nullptr;
    obs::Histogram* stage_fallback = nullptr;
    obs::Histogram* stage_lint = nullptr;
    obs::Histogram* stage_cache = nullptr;
    // Cache metric families (wisdom_cache_*). Registered unconditionally
    // at construction — even with both caches disabled every family shows
    // up in the Prometheus exposition at 0, so scrape-side queries and the
    // CI smoke grep never depend on the cache configuration.
    obs::Counter* cache_prefix_hits = nullptr;
    obs::Counter* cache_prefix_misses = nullptr;
    obs::Counter* cache_prefix_inserts = nullptr;
    obs::Counter* cache_prefix_evictions = nullptr;
    obs::Counter* cache_prefix_expired = nullptr;
    obs::Counter* cache_prefill_tokens_saved = nullptr;
    obs::Gauge* cache_prefix_bytes = nullptr;
    obs::Gauge* cache_prefix_entries = nullptr;
    obs::Histogram* cache_prefix_hit_tokens = nullptr;
    obs::Counter* cache_response_hits = nullptr;
    obs::Counter* cache_response_misses = nullptr;
    obs::Counter* cache_response_inserts = nullptr;
    obs::Counter* cache_response_evictions = nullptr;
    obs::Counter* cache_response_expired = nullptr;
    obs::Gauge* cache_response_entries = nullptr;
    // Lint-gate counters. Pre-registered at construction (run_one is
    // const), one per registry rule, so every rule family appears in the
    // Prometheus exposition at 0 — scrape-side queries and the CI grep
    // never depend on which rules happened to fire.
    obs::Counter* lint_diagnostics = nullptr;
    obs::Counter* lint_errors = nullptr;
    obs::Counter* lint_warnings = nullptr;
    obs::Counter* lint_repaired = nullptr;
    obs::Counter* lint_rejected = nullptr;
    std::map<std::string, obs::Counter*, std::less<>> lint_rules;
    // Continuous-batching scheduler and paged-KV arena gauges
    // (wisdom_sched_* / wisdom_kv_*). Registered unconditionally so the
    // families are visible at 0 even with continuous batching disabled.
    obs::Gauge* sched_inflight = nullptr;
    obs::Gauge* kv_blocks_in_use = nullptr;
    obs::Gauge* kv_blocks_free = nullptr;
    obs::Counter* sched_steps = nullptr;
    obs::Counter* sched_admitted = nullptr;
    obs::Counter* sched_retired = nullptr;
    obs::Counter* sched_monolithic_fallback = nullptr;
    obs::Histogram* sched_admissions_per_step = nullptr;
    obs::Histogram* sched_batch_width = nullptr;
    // Overload-resilience families (wisdom_sched_preempt_* /
    // wisdom_breaker_* / wisdom_drain_*). Registered unconditionally so
    // they are scrapeable at 0 whatever the configuration.
    obs::Counter* sched_preempted = nullptr;
    obs::Counter* sched_preempt_blocks = nullptr;
    obs::Counter* sched_preempt_recompute = nullptr;
    obs::Counter* sched_watchdog_retired = nullptr;
    obs::Gauge* breaker_state = nullptr;
    obs::Counter* breaker_opened = nullptr;
    obs::Counter* breaker_closed = nullptr;
    obs::Counter* breaker_short_circuit = nullptr;
    obs::Counter* breaker_probes = nullptr;
    obs::Counter* breaker_failures = nullptr;
    obs::Gauge* drain_state = nullptr;
    obs::Counter* drain_rejected = nullptr;
    obs::Counter* drain_completed = nullptr;
    // Speculative-decoding families (wisdom_spec_*) plus the draft/verify
    // stage histograms. Registered unconditionally so every family is
    // scrapeable at 0 with speculation off.
    obs::Counter* spec_proposed = nullptr;
    obs::Counter* spec_accepted = nullptr;
    obs::Counter* spec_rejected = nullptr;
    obs::Counter* spec_verify_steps = nullptr;
    obs::Counter* spec_draft_steps = nullptr;
    obs::Gauge* spec_acceptance = nullptr;
    obs::Histogram* spec_commit_per_verify = nullptr;
    obs::Histogram* stage_draft = nullptr;
    obs::Histogram* stage_verify = nullptr;
  };

  // State carried between pre_generate() and post_generate(): everything
  // run_one() builds before the model is consulted, plus the out-params
  // generation fills in. Must not move between the two calls — the
  // GenerateOptions point back into it.
  struct GenPrep {
    std::chrono::steady_clock::time_point start;
    SuggestionResponse response;
    std::string name_line;
    std::vector<std::int32_t> ids;
    std::span<const std::int32_t> kept;  // into ids
    model::Transformer::KvCache warm;
    bool has_warm = false;
    model::Transformer::KvCache snapshot;
    model::Transformer::GenerateStatus status;
    model::Transformer::GenerateOptions gen;
    bool done = false;  // response finalized without generation
  };

  // Which pipeline a request takes after admission decisions: the full
  // model path, the shed path (queue refusal), or the breaker's
  // short-circuit (open circuit, fallback-only).
  enum class ServePath : std::uint8_t { Full, Shed, ShortCircuit };

  // Stable-prefix chunk emitter backing suggest_stream (defined in
  // service.cpp); run_one hooks it into GenerateOptions::on_token.
  class StreamEmitter;

  bool try_admit();
  util::Deadline request_deadline(const SuggestionRequest& request) const;
  // Serves one request down `path`, recording spans into the trace and
  // finalizing trace_id/server_timing_ms on the response. A non-null
  // emitter receives per-token chunks from the generate stage.
  SuggestionResponse serve_traced(const SuggestionRequest& request,
                                  ServePath path, std::uint64_t seq,
                                  StreamEmitter* emitter = nullptr) const;
  SuggestionResponse run_one(const SuggestionRequest& request,
                             obs::TraceContext& trace,
                             StreamEmitter* emitter = nullptr) const;
  // run_one() split at the generate call, so the continuous batcher can
  // run each half per request around one shared scheduler pass. Returns
  // true when the response is already final (invalid request, memo hit,
  // injected failure) and generation must be skipped.
  bool pre_generate(const SuggestionRequest& request,
                    obs::TraceContext& trace, GenPrep& prep) const;
  void post_generate(const SuggestionRequest& request,
                     obs::TraceContext& trace, std::vector<std::int32_t> out,
                     GenPrep& prep) const;
  // suggest_batch() via the ContinuousScheduler: per-request pre/post
  // halves in arrival order around one iteration-level scheduler run.
  std::vector<SuggestionResponse> suggest_batch_continuous(
      const std::vector<SuggestionRequest>& requests);
  // Response for a request refused admission: an Overloaded rejection or,
  // under DegradeNewest, a fallback suggestion.
  SuggestionResponse run_shed(const SuggestionRequest& request,
                              obs::TraceContext& trace) const;
  // Response for an arrival the open breaker short-circuited: the
  // deterministic fallback (when enabled) with ServiceError::CircuitOpen.
  SuggestionResponse run_short_circuit(const SuggestionRequest& request,
                                       obs::TraceContext& trace) const;
  // Feeds one served outcome into the breaker's rolling window (deadline
  // miss / generate failure / shed count as failures; an armed
  // poison_breaker fault forces a failure regardless). No-op when the
  // breaker is disabled.
  void breaker_record(const SuggestionResponse& response);
  // Lifecycle gate: registers one in-flight serving call; false when the
  // service is draining or stopped (the caller must refuse the request).
  bool enter_serving();
  void exit_serving();
  // The typed refusal drained/stopped services answer with.
  SuggestionResponse drain_refusal();
  // suggest()/suggest_batch() bodies once past the lifecycle gate.
  SuggestionResponse suggest_serving(const SuggestionRequest& request,
                                     StreamEmitter* emitter = nullptr);
  std::vector<SuggestionResponse> suggest_batch_pooled(
      const std::vector<SuggestionRequest>& requests);
  // Fills `response` from the fallback suggester (degraded path).
  void apply_fallback(const SuggestionRequest& request,
                      obs::TraceContext& trace,
                      SuggestionResponse* response) const;
  // Pushes a generated snippet through the lint gate under the service's
  // policy, recording the "lint" trace span and the lint counters (both
  // skipped under Off, where the gate is just the schema check).
  LintOutcome run_lint_gate(std::string_view snippet,
                            obs::TraceContext& trace) const;
  // Counter updates for one gate outcome (per-rule, severity, repair).
  void record_lint(const LintOutcome& outcome) const;
  // Merges one request's speculative-decoding tallies into the
  // wisdom_spec_* families and refreshes the acceptance-rate gauge.
  void record_speculation(const model::SpeculativeStats& stats) const;
  // Feeds the completed trace's stage totals into the per-stage
  // histograms.
  void observe_stages(const obs::Trace& trace) const;
  // Counter/histogram updates for one produced response; appends the
  // exact latency sample under mu_.
  void record_response(const SuggestionResponse& response);
  void refresh_stats_locked() const;

  // Memo key for one request under this service's configuration.
  ResponseCache::Key memo_key(const SuggestionRequest& request) const;

  const model::Transformer& model_;
  const text::BpeTokenizer& tokenizer_;
  ServiceOptions options_;
  FallbackSuggester fallback_;
  AdmissionQueue queue_;
  // Speculative decoding: the resolved draft (borrowed from options or
  // owned via draft_checkpoint; null = speculation off) and the paged
  // arena backing the scheduler's per-sequence draft caches.
  std::unique_ptr<model::Transformer> owned_draft_;
  const model::Transformer* draft_ = nullptr;
  std::unique_ptr<model::KvBlockAllocator> draft_arena_;
  // Paged-KV arena and iteration-level scheduler (continuous batching).
  // Declared before prefix_cache_: cached snapshots share arena blocks,
  // so the trie must release them before the arena is torn down.
  std::unique_ptr<model::KvBlockAllocator> arena_;
  std::unique_ptr<ContinuousScheduler> scheduler_;
  // Serializes continuous batch runs (the scheduler is single-caller).
  std::mutex batch_mu_;
  // Null when the corresponding ServiceOptions flag is off. Both caches
  // are internally synchronized; run_one (const) uses them from every
  // serving thread.
  std::unique_ptr<PrefixKvCache> prefix_cache_;
  std::unique_ptr<ResponseCache> response_cache_;
  // Null when breaker_enabled is off (admission skips it entirely).
  std::unique_ptr<CircuitBreaker> breaker_;
  // Lifecycle: state transitions and the in-flight serving count drain()
  // waits on. A plain int under the mutex (not an atomic) so the
  // condition-variable wait has no lost-wakeup window.
  mutable std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  State lifecycle_ = State::Accepting;
  int serving_calls_ = 0;
  obs::MetricsRegistry registry_;
  Handles h_;
  std::atomic<std::uint64_t> trace_seq_{0};
  mutable std::mutex mu_;
  // Exact per-request latency samples (arrival order) for the legacy
  // nearest-rank percentiles; everything else lives in the registry.
  std::vector<double> latencies_ms_;
  mutable ServiceStats stats_;
};

}  // namespace wisdom::serve
