#include "serve/fallback.hpp"

#include <cctype>
#include <unordered_set>

#include "ansible/catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/strings.hpp"

namespace wisdom::serve {

namespace {

// Module names resolved through the catalog so the templates stay in sync
// with the single source of truth the linter validates against.
std::string fqcn(const char* short_name) {
  return ansible::ModuleCatalog::instance().to_fqcn(short_name);
}

text::NgramCounts keyword_set(std::initializer_list<const char*> words) {
  text::NgramCounts counts;
  for (const char* w : words) counts[w] = 1;
  return counts;
}

// Lowercased word tokens of the prompt, punctuation stripped at both ends
// so "nginx," and "(nginx)" both yield "nginx".
std::vector<std::string> prompt_tokens(const std::string& prompt) {
  std::vector<std::string> tokens;
  for (const std::string& raw : util::split_ws(util::to_lower(prompt))) {
    std::size_t b = 0, e = raw.size();
    while (b < e && !std::isalnum(static_cast<unsigned char>(raw[b]))) ++b;
    while (e > b && !std::isalnum(static_cast<unsigned char>(raw[e - 1])))
      --e;
    if (e > b) tokens.push_back(raw.substr(b, e - b));
  }
  return tokens;
}

bool has_token(const std::vector<std::string>& tokens, const char* word) {
  for (const std::string& t : tokens)
    if (t == word) return true;
  return false;
}

// The object the task acts on: the last prompt token that is neither a
// stopword nor an action keyword ("Restart the nginx service" -> "nginx").
std::string object_of(const std::vector<std::string>& tokens) {
  static const std::unordered_set<std::string> skip = {
      // stopwords
      "the", "a", "an", "to", "of", "on", "in", "for", "and", "with",
      "all", "is", "are", "be", "it", "its", "this", "that", "from", "as",
      "into", "if", "at", "by", "new", "our", "my", "your",
      // action/keyword words shared with the templates
      "install", "installed", "installing", "package", "packages",
      "remove", "removed", "uninstall", "upgrade", "update", "updated",
      "latest", "present", "absent", "purge",
      "start", "started", "stop", "stopped", "restart", "restarted",
      "reload", "reloaded", "enable", "enabled", "disable", "disabled",
      "service", "services", "daemon", "systemd", "running",
      "copy", "copied", "deploy", "deployed", "upload", "place",
      "template", "config", "configuration", "file", "files",
      "create", "created", "directory", "directories", "folder", "mkdir",
      "ensure", "make", "set", "setup", "run", "task",
  };
  for (std::size_t i = tokens.size(); i-- > 0;) {
    if (!skip.count(tokens[i])) return tokens[i];
  }
  return "app";
}

// Double-quoted YAML scalar safe for arbitrary prompt text on one line.
std::string yaml_quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += ' '; break;
      case '\r': break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

FallbackSuggester::FallbackSuggester() {
  templates_.push_back(
      {Kind::Package,
       keyword_set({"install", "installed", "installing", "package",
                    "packages", "remove", "removed", "uninstall", "purge",
                    "upgrade", "update", "latest", "apt", "yum", "dnf",
                    "pip"})});
  templates_.push_back(
      {Kind::Service,
       keyword_set({"start", "started", "stop", "stopped", "restart",
                    "restarted", "reload", "reloaded", "enable", "enabled",
                    "disable", "disabled", "service", "services", "daemon",
                    "systemd", "running"})});
  templates_.push_back(
      {Kind::Copy, keyword_set({"copy", "copied", "deploy", "deployed",
                                "upload", "template", "config",
                                "configuration"})});
  templates_.push_back(
      {Kind::Directory,
       keyword_set({"directory", "directories", "folder", "mkdir"})});
}

std::string FallbackSuggester::suggest_body(const std::string& prompt,
                                            int indent) const {
  if (obs::enabled()) {
    // Global (not per-service): the suggester is also used standalone.
    static obs::Counter& served = obs::MetricsRegistry::global().counter(
        "wisdom_fallback_suggestions_total",
        "Bodies produced by the deterministic fallback suggester.");
    served.inc();
  }
  const std::vector<std::string> tokens = prompt_tokens(prompt);
  const text::NgramCounts counts = text::count_ngrams(tokens, 1);

  Kind kind = Kind::Debug;  // zero-overlap default: always valid
  std::int64_t best = 0;
  for (const Template& t : templates_) {
    std::int64_t score = text::clipped_matches(counts, t.keywords);
    if (score > best) {
      best = score;
      kind = t.kind;
    }
  }

  const std::string object = object_of(tokens);
  const std::string p0(static_cast<std::size_t>(indent) + 2, ' ');
  const std::string p1(static_cast<std::size_t>(indent) + 4, ' ');
  std::string body;
  switch (kind) {
    case Kind::Package: {
      const char* state = "present";
      if (has_token(tokens, "remove") || has_token(tokens, "removed") ||
          has_token(tokens, "uninstall") || has_token(tokens, "purge"))
        state = "absent";
      else if (has_token(tokens, "upgrade") || has_token(tokens, "update") ||
               has_token(tokens, "latest"))
        state = "latest";
      body = p0 + fqcn("package") + ":\n" + p1 + "name: " + object + "\n" +
             p1 + "state: " + state + "\n";
      break;
    }
    case Kind::Service: {
      const char* state = "started";
      if (has_token(tokens, "stop") || has_token(tokens, "stopped"))
        state = "stopped";
      else if (has_token(tokens, "restart") ||
               has_token(tokens, "restarted"))
        state = "restarted";
      else if (has_token(tokens, "reload") || has_token(tokens, "reloaded"))
        state = "reloaded";
      body = p0 + fqcn("service") + ":\n" + p1 + "name: " + object + "\n" +
             p1 + "state: " + state + "\n";
      if (has_token(tokens, "enable") || has_token(tokens, "enabled"))
        body += p1 + "enabled: true\n";
      else if (has_token(tokens, "disable") ||
               has_token(tokens, "disabled"))
        body += p1 + "enabled: false\n";
      break;
    }
    case Kind::Copy:
      body = p0 + fqcn("copy") + ":\n" + p1 + "src: " + object + "\n" + p1 +
             "dest: /etc/" + object + "\n";
      break;
    case Kind::Directory:
      body = p0 + fqcn("file") + ":\n" + p1 + "path: /etc/" + object + "\n" +
             p1 + "state: directory\n";
      break;
    case Kind::Debug:
      body = p0 + fqcn("debug") + ":\n" + p1 +
             "msg: " + yaml_quote(prompt) + "\n";
      break;
  }
  return body;
}

}  // namespace wisdom::serve
