#include "serve/prefix_cache.hpp"

#include <algorithm>
#include <cassert>

namespace wisdom::serve {

namespace {

// Fixed accounting overhead per entry: the token path (one trie node per
// token) plus the entry bookkeeping. An estimate — the budget bounds the
// dominant KV payload exactly and the structural overhead approximately.
std::size_t path_overhead_bytes(std::size_t tokens) {
  return tokens * (sizeof(std::int32_t) + 2 * sizeof(void*)) + 128;
}

}  // namespace

PrefixKvCache::PrefixKvCache(PrefixCacheOptions options)
    : options_(options), root_(std::make_unique<Node>()) {}

PrefixKvCache::~PrefixKvCache() = default;

void PrefixKvCache::bind_metrics(const MetricHooks& hooks) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_ = hooks;
}

PrefixKvCache::Entry* PrefixKvCache::best_in_subtree(const Node* node) {
  Entry* best = node->entry.get();
  for (const auto& [token, child] : node->children) {
    (void)token;
    Entry* candidate = best_in_subtree(child.get());
    if (candidate && (!best || candidate->tick > best->tick))
      best = candidate;
  }
  return best;
}

void PrefixKvCache::touch(Entry* entry) {
  entry->tick = tick_;
  lru_.splice(lru_.begin(), lru_, entry->lru_it);
}

void PrefixKvCache::remove_entry(Entry* entry) {
  Node* node = entry->node;
  bytes_ -= entry->bytes;
  lru_.erase(entry->lru_it);
  node->entry.reset();  // destroys `entry`
  // Prune the now-bare chain up to the root.
  while (node != root_.get() && !node->entry && node->children.empty()) {
    Node* parent = node->parent;
    parent->children.erase(node->edge);
    node = parent;
  }
}

void PrefixKvCache::evict_to_budget() {
  while (bytes_ > options_.byte_budget && !lru_.empty()) {
    remove_entry(lru_.back());
    ++stats_.evictions;
    if (hooks_.evictions) hooks_.evictions->inc();
  }
}

void PrefixKvCache::expire_stale() {
  if (options_.ttl_lookups == 0) return;
  // The LRU tail is the least recently used entry, so ticks are
  // monotonically non-increasing toward the back: sweep from there.
  while (!lru_.empty() &&
         tick_ - lru_.back()->tick > options_.ttl_lookups) {
    remove_entry(lru_.back());
    ++stats_.expirations;
    if (hooks_.expirations) hooks_.expirations->inc();
  }
}

void PrefixKvCache::update_gauges() {
  stats_.bytes = bytes_;
  stats_.entries = lru_.size();
  if (hooks_.bytes) hooks_.bytes->set(static_cast<double>(bytes_));
  if (hooks_.entries)
    hooks_.entries->set(static_cast<double>(lru_.size()));
}

std::optional<PrefixKvCache::Hit> PrefixKvCache::lookup(
    std::span<const std::int32_t> tokens) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  ++stats_.lookups;
  expire_stale();

  // Walk as deep as the trie shares tokens with the request, remembering
  // the deepest snapshot sitting on the walked path (its KV rows AND
  // last-token logits are valid for the request).
  Node* node = root_.get();
  Entry* on_path = nullptr;
  std::size_t walked = 0;
  for (std::int32_t token : tokens) {
    auto it = node->children.find(token);
    if (it == node->children.end()) break;
    node = it->second.get();
    ++walked;
    if (node->entry) on_path = node->entry.get();
  }

  // A snapshot anywhere below the divergence node shares the first
  // `walked` tokens with the request; truncating its clone to the shared
  // span (dropping the now-stale logits) makes it reusable. When the walk
  // consumed the whole request, keep one row back so generation re-decodes
  // the last prompt token and regenerates fresh logits.
  Entry* subtree = nullptr;
  std::size_t subtree_reuse = 0;
  if (walked > 0) {
    subtree = best_in_subtree(node);
    if (subtree) {
      subtree_reuse = walked < tokens.size() ? walked : tokens.size() - 1;
      if (static_cast<std::size_t>(subtree->cache.length) < subtree_reuse)
        subtree_reuse = static_cast<std::size_t>(subtree->cache.length);
    }
  }
  const std::size_t on_path_reuse =
      on_path ? static_cast<std::size_t>(on_path->cache.length) : 0;

  Entry* chosen = nullptr;
  std::size_t reuse = 0;
  bool exact = false;
  // Prefer the on-path snapshot on ties: it carries valid logits.
  if (on_path && on_path_reuse >= subtree_reuse && on_path_reuse > 0) {
    chosen = on_path;
    reuse = on_path_reuse;
    exact = reuse == tokens.size();
  } else if (subtree && subtree_reuse > 0) {
    chosen = subtree;
    reuse = subtree_reuse;
  }

  if (!chosen) {
    ++stats_.misses;
    if (hooks_.misses) hooks_.misses->inc();
    return std::nullopt;
  }

  Hit hit;
  hit.cache = chosen->cache.clone(static_cast<int>(reuse));
  hit.reused_tokens = static_cast<int>(reuse);
  hit.exact = exact;
  touch(chosen);
  ++stats_.hits;
  stats_.tokens_reused += reuse;
  if (hooks_.hits) hooks_.hits->inc();
  if (hooks_.tokens_reused) hooks_.tokens_reused->inc(reuse);
  if (hooks_.hit_tokens)
    hooks_.hit_tokens->observe(static_cast<double>(reuse));
  return hit;
}

PrefixKvCache::InsertOutcome PrefixKvCache::insert(
    std::span<const std::int32_t> tokens,
    model::Transformer::KvCache snapshot) {
  assert(snapshot.length == static_cast<int>(tokens.size()));
  std::lock_guard<std::mutex> lock(mu_);
  expire_stale();
  if (tokens.empty() ||
      snapshot.length != static_cast<int>(tokens.size())) {
    ++stats_.rejected;
    return InsertOutcome::Rejected;
  }
  const std::size_t bytes =
      snapshot.byte_size() + path_overhead_bytes(tokens.size());
  if (bytes > options_.byte_budget) {
    ++stats_.rejected;
    return InsertOutcome::Rejected;
  }

  Node* node = root_.get();
  for (std::int32_t token : tokens) {
    auto it = node->children.find(token);
    if (it == node->children.end()) {
      auto child = std::make_unique<Node>();
      child->parent = node;
      child->edge = token;
      child->depth = node->depth + 1;
      it = node->children.emplace(token, std::move(child)).first;
    }
    node = it->second.get();
  }

  if (node->entry) {
    // Same kept prompt, same deterministic KV — nothing new to store.
    touch(node->entry.get());
    ++stats_.refreshed;
    update_gauges();
    return InsertOutcome::Refreshed;
  }

  auto entry = std::make_unique<Entry>();
  entry->node = node;
  entry->cache = std::move(snapshot);
  entry->bytes = bytes;
  entry->tick = tick_;
  lru_.push_front(entry.get());
  entry->lru_it = lru_.begin();
  bytes_ += bytes;
  node->entry = std::move(entry);
  ++stats_.stored;
  if (hooks_.stored) hooks_.stored->inc();
  evict_to_budget();
  update_gauges();
  return InsertOutcome::Stored;
}

void PrefixKvCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.cleared += lru_.size();
  lru_.clear();
  root_ = std::make_unique<Node>();
  bytes_ = 0;
  update_gauges();
}

PrefixCacheStats PrefixKvCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PrefixCacheStats out = stats_;
  out.bytes = bytes_;
  out.entries = lru_.size();
  return out;
}

std::size_t PrefixKvCache::bytes_held() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace wisdom::serve
