// Request/response message types and the service error taxonomy, split out
// of service.hpp so lower-level serving components (the response memo
// cache, the wire format) can name them without pulling in the service.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "obs/trace.hpp"
#include "util/deadline.hpp"

namespace wisdom::serve {

// Why a request was not served normally. Overloaded and CircuitOpen are
// the transient errors (retrying after backoff can succeed); the rest are
// terminal for the request that produced them.
enum class ServiceError : std::uint8_t {
  None = 0,
  InvalidRequest,    // empty prompt, negative indent
  Overloaded,        // shed by the admission queue
  DeadlineExceeded,  // decode cut off by the request deadline
  GenerateFailed,    // model failure (fault-injected or real)
  LintRejected,      // RejectDegraded policy: errors survived repair
  CircuitOpen,       // short-circuited by the admission circuit breaker
  Draining,          // refused: the service is draining or stopped
};

std::string_view service_error_name(ServiceError error);
// Parses a name produced by service_error_name; false on unknown names.
bool service_error_from_name(std::string_view name, ServiceError* out);
// True for errors a client should retry with backoff.
bool is_transient(ServiceError error);

struct SuggestionRequest {
  // YAML already in the editor above the cursor (may be empty).
  std::string context;
  // Natural-language intent, the value of the name line being completed.
  std::string prompt;
  // Indentation column of the task item ("- name:") being completed.
  int indent = 0;
  // Per-request decode budget in milliseconds; <= 0 uses the service
  // default (ServiceOptions::deadline_ms).
  double deadline_ms = 0.0;
  // Client-supplied trace id echoed in the response; empty lets the
  // service derive a deterministic one (sequence number + prompt hash).
  std::string trace_id;
  // Optional cooperative cancellation (the user kept typing).
  util::CancelToken cancel;
  // Optional trace sink: when set (and observability is enabled) the
  // request's span timeline is written here. Borrowed; not serialized.
  obs::Trace* trace = nullptr;
};

struct SuggestionResponse {
  bool ok = false;
  // The full suggested snippet (name line + generated body), formatted for
  // pasting at the cursor.
  std::string snippet;
  // Whether the suggestion passes the strict Ansible schema.
  bool schema_correct = false;
  double latency_ms = 0.0;
  int generated_tokens = 0;
  // True when the snippet came from the fallback path (deadline expiry,
  // model failure, or DegradeNewest shedding) rather than a full decode.
  bool degraded = false;
  // True when the response was served from the cache: a response-memo hit
  // (the whole prior response for an exact repeat) or a prefix-cache hit
  // (prefill skipped for the shared prompt span). Either way the bytes are
  // identical to what an uncached decode would have produced.
  bool cached = false;
  // Why the request degraded or failed; None for a normal response.
  ServiceError error = ServiceError::None;
  // Diagnostics the lint gate attached to served snippets (post-repair
  // when the policy repairs). Empty when lint_policy is Off, when the
  // snippet is clean, or for fallback-served snippets (the fallback is
  // catalog-backed and schema-correct by construction) — except under
  // RejectDegraded, where the rejected snippet's diagnostics are kept so
  // the client can see why its model suggestion was refused.
  std::vector<wisdom::analysis::Diagnostic> diagnostics;
  // True when the lint gate's auto-fix engine changed the snippet.
  bool repaired = false;
  // Trace id of this request (client-supplied or service-derived); empty
  // when tracing is disabled.
  std::string trace_id;
  // Per-stage wall time of this request ("admission", "tokenize",
  // "prefill", "decode", "postprocess", "lint", "fallback", "cache", plus
  // the "request" root). Empty when tracing is disabled.
  std::map<std::string, double> server_timing_ms;
};

}  // namespace wisdom::serve
