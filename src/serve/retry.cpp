#include "serve/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace wisdom::serve {

Backoff::Backoff(const RetryPolicy& policy)
    : policy_(policy), rng_(policy.seed) {}

double Backoff::next_delay_ms() {
  // base * multiplier^attempt, capped, then equal-jittered.
  double backoff = policy_.base_delay_ms;
  for (int i = 0; i < attempt_; ++i) backoff *= policy_.multiplier;
  backoff = std::min(backoff, policy_.max_delay_ms);
  ++attempt_;
  const double j = std::clamp(policy_.jitter, 0.0, 1.0);
  return backoff * (1.0 - j + j * rng_.uniform_real());
}

RetryingClient::RetryingClient(InferenceService& service, RetryPolicy policy,
                               SleepFn sleep)
    : service_(service), policy_(policy), sleep_(std::move(sleep)) {
  if (!sleep_) {
    sleep_ = [](double ms) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    };
  }
}

RetryingClient::Outcome RetryingClient::suggest_with_trace(
    const SuggestionRequest& request) {
  // Retry counters live in the service's registry next to the shed/offered
  // counters they explain; registration is idempotent and off the per-call
  // hot path (one map lookup per client call, not per token).
  obs::Counter& retries = service_.metrics().counter(
      "wisdom_serve_retries_total",
      "Backoff retries taken by retrying clients.");
  obs::Counter& exhausted = service_.metrics().counter(
      "wisdom_serve_retry_exhausted_total",
      "Client calls that used every attempt and still failed.");
  obs::Counter& budget_exhausted = service_.metrics().counter(
      "wisdom_serve_retry_budget_exhausted_total",
      "Client calls that stopped retrying on the total delay budget.");
  Outcome outcome;
  Backoff backoff(policy_);
  const int attempts = std::max(1, policy_.max_attempts);
  double delay_spent_ms = 0.0;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    outcome.response = service_.suggest(request);
    ++outcome.attempts;
    if (!is_transient(outcome.response.error)) break;
    // A degraded-shed response already carries a usable snippet; retrying
    // it would trade a good-enough answer for more load on a hot service.
    if (outcome.response.ok) break;
    if (attempt + 1 >= attempts) {
      exhausted.inc();
      break;
    }
    double delay = backoff.next_delay_ms();
    // Charge the budget before sleeping: a delay that would overrun the
    // total budget is not taken at all (the schedule is deterministic, so
    // the same policy always gives up at the same attempt).
    if (policy_.total_budget_ms > 0.0 &&
        delay_spent_ms + delay > policy_.total_budget_ms) {
      outcome.budget_exhausted = true;
      budget_exhausted.inc();
      break;
    }
    delay_spent_ms += delay;
    outcome.delays_ms.push_back(delay);
    retries.inc();
    sleep_(delay);
  }
  return outcome;
}

SuggestionResponse RetryingClient::suggest(const SuggestionRequest& request) {
  return suggest_with_trace(request).response;
}

}  // namespace wisdom::serve
