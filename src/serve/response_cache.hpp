// Level 2 of the serving cache: a response memo.
//
// The Lightspeed production traffic study found many requests are exact
// repeats (the editor re-sends the same context + prompt as the user
// hesitates). For those, even a prefix-cache-warmed decode is wasted work:
// the service's decode is deterministic given (prompt, context, generation
// options, lint policy), so the full prior response can be replayed
// byte-for-byte. Degraded and fallback responses are never stored — they
// depend on deadlines and fault state, not just the key.
//
// Bounds: an entry-count cap with LRU eviction and the same
// TTL-by-lookup-count as the prefix cache. Keyed on the literal request
// fields plus the option fields that shape the output, so a service
// reconfiguration cannot alias entries; still, clear() on checkpoint
// reload is mandatory (the model behind the memo changed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "serve/types.hpp"

namespace wisdom::serve {

struct ResponseCacheOptions {
  std::size_t max_entries = 256;
  // Entries untouched for more than this many lookups expire; 0 disables.
  std::uint64_t ttl_lookups = 0;
};

// Same identities as PrefixCacheStats:
//   hits + misses == lookups
//   entries == stored - evictions - expirations - cleared
struct ResponseCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stored = 0;
  std::uint64_t refreshed = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  std::uint64_t cleared = 0;
  std::size_t bytes = 0;  // approximate: key + snippet payloads
  std::size_t entries = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class ResponseCache {
 public:
  // Everything that shapes a non-degraded response's bytes.
  struct Key {
    std::string context;
    std::string prompt;
    int indent = 0;
    int max_new_tokens = 0;
    int lint_policy = 0;

    auto operator<=>(const Key&) const = default;
  };

  struct MetricHooks {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* stored = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* expirations = nullptr;
    obs::Gauge* entries = nullptr;
  };

  explicit ResponseCache(ResponseCacheOptions options = {});

  void bind_metrics(const MetricHooks& hooks);

  // The memoized response, with `cached` already set. Per-request fields
  // (latency, trace id, server timing) are zeroed — the caller stamps its
  // own. Counts one lookup (the TTL tick).
  std::optional<SuggestionResponse> lookup(const Key& key);

  // Stores a response. The caller must only pass non-degraded, successful
  // responses; insert() drops anything else as a safety net.
  void insert(const Key& key, const SuggestionResponse& response);

  void clear();
  ResponseCacheStats stats() const;

 private:
  struct Entry {
    Key key;
    SuggestionResponse response;
    std::size_t bytes = 0;
    std::uint64_t tick = 0;
  };
  using EntryList = std::list<Entry>;

  void remove_entry(EntryList::iterator it);
  void expire_stale();
  void update_gauges();

  ResponseCacheOptions options_;
  MetricHooks hooks_;
  mutable std::mutex mu_;
  EntryList lru_;  // front = most recently used
  std::map<Key, EntryList::iterator> index_;
  std::uint64_t tick_ = 0;
  std::size_t bytes_ = 0;
  ResponseCacheStats stats_;
};

}  // namespace wisdom::serve
