#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/postprocess.hpp"
#include "metrics/schema_correct.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace wisdom::serve {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::string_view service_error_name(ServiceError error) {
  switch (error) {
    case ServiceError::None: return "none";
    case ServiceError::InvalidRequest: return "invalid-request";
    case ServiceError::Overloaded: return "overloaded";
    case ServiceError::DeadlineExceeded: return "deadline-exceeded";
    case ServiceError::GenerateFailed: return "generate-failed";
  }
  return "none";
}

bool service_error_from_name(std::string_view name, ServiceError* out) {
  for (ServiceError e :
       {ServiceError::None, ServiceError::InvalidRequest,
        ServiceError::Overloaded, ServiceError::DeadlineExceeded,
        ServiceError::GenerateFailed}) {
    if (service_error_name(e) == name) {
      *out = e;
      return true;
    }
  }
  return false;
}

bool is_transient(ServiceError error) {
  return error == ServiceError::Overloaded;
}

double ServiceStats::percentile_latency_ms(double p) const {
  if (latencies_ms.empty()) return 0.0;
  std::vector<double> sorted = latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least p% of samples at or
  // below it.
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

InferenceService::InferenceService(const model::Transformer& model,
                                   const text::BpeTokenizer& tokenizer,
                                   int max_new_tokens)
    : InferenceService(model, tokenizer, [&] {
        ServiceOptions options;
        options.max_new_tokens = max_new_tokens;
        return options;
      }()) {}

InferenceService::InferenceService(const model::Transformer& model,
                                   const text::BpeTokenizer& tokenizer,
                                   const ServiceOptions& options)
    : model_(model),
      tokenizer_(tokenizer),
      options_(options),
      queue_(options.queue_capacity) {}

bool InferenceService::try_admit() {
  if (options_.faults && options_.faults->queue_full_forced()) return false;
  return queue_.try_acquire();
}

util::Deadline InferenceService::request_deadline(
    const SuggestionRequest& request) const {
  util::Deadline deadline;
  if (options_.faults && options_.faults->slow_decode_active()) {
    deadline = options_.faults->slow_decode_deadline();
  } else {
    double ms =
        request.deadline_ms > 0.0 ? request.deadline_ms : options_.deadline_ms;
    if (ms > 0.0) deadline = util::Deadline::after_ms(ms);
  }
  deadline.set_token(request.cancel);
  return deadline;
}

void InferenceService::apply_fallback(const SuggestionRequest& request,
                                      SuggestionResponse* response) const {
  std::string pad(static_cast<std::size_t>(request.indent), ' ');
  std::string name_line = pad + "- name: " + request.prompt + "\n";
  response->snippet =
      name_line + fallback_.suggest_body(request.prompt, request.indent);
  response->ok = true;
  response->degraded = true;
  response->schema_correct = metrics::schema_correct(response->snippet);
}

SuggestionResponse InferenceService::run_one(
    const SuggestionRequest& request) const {
  auto start = std::chrono::steady_clock::now();
  SuggestionResponse response;
  if (request.prompt.empty() || request.indent < 0) {
    response.error = ServiceError::InvalidRequest;
    response.latency_ms = elapsed_ms(start);
    return response;
  }

  std::string pad(static_cast<std::size_t>(request.indent), ' ');
  std::string name_line = pad + "- name: " + request.prompt + "\n";

  if (options_.faults && options_.faults->take_generate_failure()) {
    response.error = ServiceError::GenerateFailed;
    if (options_.fallback_enabled) apply_fallback(request, &response);
    response.latency_ms = elapsed_ms(start);
    return response;
  }

  std::string input_text = request.context + name_line;
  std::vector<std::int32_t> ids = tokenizer_.encode(input_text);
  model::Transformer::GenerateOptions gen;
  gen.max_new_tokens = options_.max_new_tokens;
  gen.stop_token = text::BpeTokenizer::kEndOfText;
  gen.deadline = request_deadline(request);
  model::Transformer::GenerateStatus status;
  gen.status = &status;
  std::vector<std::int32_t> out = model_.generate(ids, gen);

  std::string body = core::trim_generation(tokenizer_.decode(out));
  body = core::truncate_to_first_task(
      body, static_cast<std::size_t>(request.indent));
  response.generated_tokens = static_cast<int>(out.size());

  if (status.deadline_expired) {
    response.error = ServiceError::DeadlineExceeded;
    // Salvage the partial decode when it already forms a valid task;
    // otherwise answer from the deterministic fallback. Either way the
    // editor gets a schema-checked snippet within the budget.
    std::string partial = name_line + body;
    if (!body.empty() && metrics::schema_correct(partial)) {
      response.ok = true;
      response.degraded = true;
      response.snippet = std::move(partial);
      response.schema_correct = true;
    } else if (options_.fallback_enabled) {
      apply_fallback(request, &response);
    }
  } else {
    response.ok = !body.empty();
    response.snippet = name_line + body;
    response.schema_correct =
        response.ok && metrics::schema_correct(response.snippet);
  }
  response.latency_ms = elapsed_ms(start);
  return response;
}

SuggestionResponse InferenceService::run_shed(
    const SuggestionRequest& request) const {
  auto start = std::chrono::steady_clock::now();
  SuggestionResponse response;
  response.error = ServiceError::Overloaded;
  if (options_.shed_policy == ShedPolicy::DegradeNewest &&
      !request.prompt.empty() && request.indent >= 0) {
    apply_fallback(request, &response);
  }
  response.latency_ms = elapsed_ms(start);
  return response;
}

void InferenceService::record_locked(const SuggestionResponse& response) {
  ++stats_.requests;
  stats_.total_latency_ms += response.latency_ms;
  stats_.latencies_ms.push_back(response.latency_ms);
  stats_.generated_tokens +=
      static_cast<std::uint64_t>(response.generated_tokens);
  if (response.degraded) ++stats_.degraded;
  if (response.error == ServiceError::DeadlineExceeded)
    ++stats_.deadline_expired;
}

SuggestionResponse InferenceService::suggest(const SuggestionRequest& request) {
  const bool admitted = try_admit();
  SuggestionResponse response =
      admitted ? run_one(request) : run_shed(request);
  if (admitted) queue_.release();

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.offered;
  if (!admitted) {
    ++stats_.shed;
    // A rejected request never entered the pipeline: it contributes no
    // latency sample. A degraded-shed response is a served request.
    if (options_.shed_policy == ShedPolicy::RejectNewest) return response;
  }
  record_locked(response);
  stats_.total_wall_ms += response.latency_ms;
  return response;
}

std::vector<SuggestionResponse> InferenceService::suggest_batch(
    const std::vector<SuggestionRequest>& requests) {
  auto start = std::chrono::steady_clock::now();
  const std::size_t n = requests.size();
  // Admission in arrival order, before the fan-out: with capacity C on an
  // otherwise idle service exactly the first C requests are admitted —
  // deterministic reject-newest.
  std::vector<char> admitted(n, 0);
  for (std::size_t i = 0; i < n; ++i) admitted[i] = try_admit() ? 1 : 0;

  std::vector<SuggestionResponse> responses(n);
  util::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(n),
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          std::size_t j = static_cast<std::size_t>(i);
          responses[j] =
              admitted[j] ? run_one(requests[j]) : run_shed(requests[j]);
        }
      });
  for (std::size_t i = 0; i < n; ++i)
    if (admitted[i]) queue_.release();
  double wall = elapsed_ms(start);

  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < n; ++i) {
    ++stats_.offered;
    if (!admitted[i]) {
      ++stats_.shed;
      if (options_.shed_policy == ShedPolicy::RejectNewest) continue;
    }
    record_locked(responses[i]);
  }
  stats_.total_wall_ms += wall;
  return responses;
}

void InferenceService::record_accept() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.accepted;
}

void InferenceService::record_reject() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.rejected;
}

ServiceStats InferenceService::stats_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace wisdom::serve
