#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/postprocess.hpp"
#include "metrics/schema_correct.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace wisdom::serve {

double ServiceStats::percentile_latency_ms(double p) const {
  if (latencies_ms.empty()) return 0.0;
  std::vector<double> sorted = latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least p% of samples at or
  // below it.
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

InferenceService::InferenceService(const model::Transformer& model,
                                   const text::BpeTokenizer& tokenizer,
                                   int max_new_tokens)
    : model_(model), tokenizer_(tokenizer), max_new_tokens_(max_new_tokens) {}

SuggestionResponse InferenceService::run_one(
    const SuggestionRequest& request) const {
  auto start = std::chrono::steady_clock::now();
  SuggestionResponse response;
  if (request.prompt.empty() || request.indent < 0) return response;

  std::string pad(static_cast<std::size_t>(request.indent), ' ');
  std::string name_line = pad + "- name: " + request.prompt + "\n";
  std::string input_text = request.context + name_line;

  std::vector<std::int32_t> ids = tokenizer_.encode(input_text);
  model::Transformer::GenerateOptions gen;
  gen.max_new_tokens = max_new_tokens_;
  gen.stop_token = text::BpeTokenizer::kEndOfText;
  std::vector<std::int32_t> out = model_.generate(ids, gen);

  std::string body = core::trim_generation(tokenizer_.decode(out));
  body = core::truncate_to_first_task(
      body, static_cast<std::size_t>(request.indent));

  response.ok = !body.empty();
  response.snippet = name_line + body;
  response.schema_correct =
      response.ok && metrics::schema_correct(response.snippet);
  response.generated_tokens = static_cast<int>(out.size());
  auto end = std::chrono::steady_clock::now();
  response.latency_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return response;
}

void InferenceService::record_locked(const SuggestionResponse& response) {
  ++stats_.requests;
  stats_.total_latency_ms += response.latency_ms;
  stats_.latencies_ms.push_back(response.latency_ms);
  stats_.generated_tokens +=
      static_cast<std::uint64_t>(response.generated_tokens);
}

SuggestionResponse InferenceService::suggest(const SuggestionRequest& request) {
  SuggestionResponse response = run_one(request);
  std::lock_guard<std::mutex> lock(mu_);
  record_locked(response);
  stats_.total_wall_ms += response.latency_ms;
  return response;
}

std::vector<SuggestionResponse> InferenceService::suggest_batch(
    const std::vector<SuggestionRequest>& requests) {
  auto start = std::chrono::steady_clock::now();
  std::vector<SuggestionResponse> responses(requests.size());
  util::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(requests.size()),
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i)
          responses[static_cast<std::size_t>(i)] =
              run_one(requests[static_cast<std::size_t>(i)]);
      });
  auto end = std::chrono::steady_clock::now();

  std::lock_guard<std::mutex> lock(mu_);
  for (const SuggestionResponse& response : responses)
    record_locked(response);
  stats_.total_wall_ms +=
      std::chrono::duration<double, std::milli>(end - start).count();
  return responses;
}

void InferenceService::record_accept() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.accepted;
}

void InferenceService::record_reject() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.rejected;
}

ServiceStats InferenceService::stats_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace wisdom::serve
