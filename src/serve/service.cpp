#include "serve/service.hpp"

#include <chrono>

#include "core/postprocess.hpp"
#include "metrics/schema_correct.hpp"
#include "util/strings.hpp"

namespace wisdom::serve {

InferenceService::InferenceService(model::Transformer& model,
                                   const text::BpeTokenizer& tokenizer,
                                   int max_new_tokens)
    : model_(model), tokenizer_(tokenizer), max_new_tokens_(max_new_tokens) {}

SuggestionResponse InferenceService::suggest(const SuggestionRequest& request) {
  auto start = std::chrono::steady_clock::now();
  SuggestionResponse response;
  if (request.prompt.empty() || request.indent < 0) {
    ++stats_.requests;
    return response;
  }

  std::string pad(static_cast<std::size_t>(request.indent), ' ');
  std::string name_line = pad + "- name: " + request.prompt + "\n";
  std::string input_text = request.context + name_line;

  std::vector<std::int32_t> ids = tokenizer_.encode(input_text);
  model::Transformer::GenerateOptions gen;
  gen.max_new_tokens = max_new_tokens_;
  gen.stop_token = text::BpeTokenizer::kEndOfText;
  std::vector<std::int32_t> out = model_.generate(ids, gen);

  std::string body = core::trim_generation(tokenizer_.decode(out));
  body = core::truncate_to_first_task(
      body, static_cast<std::size_t>(request.indent));

  response.ok = !body.empty();
  response.snippet = name_line + body;
  response.schema_correct =
      response.ok && metrics::schema_correct(response.snippet);
  response.generated_tokens = static_cast<int>(out.size());
  auto end = std::chrono::steady_clock::now();
  response.latency_ms =
      std::chrono::duration<double, std::milli>(end - start).count();

  ++stats_.requests;
  stats_.total_latency_ms += response.latency_ms;
  return response;
}

void InferenceService::record_accept() { ++stats_.accepted; }
void InferenceService::record_reject() { ++stats_.rejected; }

}  // namespace wisdom::serve
