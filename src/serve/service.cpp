#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <span>

#include "analysis/rules.hpp"
#include "core/postprocess.hpp"
#include "model/checkpoint.hpp"
#include "metrics/schema_correct.hpp"
#include "obs/obs.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace wisdom::serve {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::string_view service_error_name(ServiceError error) {
  switch (error) {
    case ServiceError::None: return "none";
    case ServiceError::InvalidRequest: return "invalid-request";
    case ServiceError::Overloaded: return "overloaded";
    case ServiceError::DeadlineExceeded: return "deadline-exceeded";
    case ServiceError::GenerateFailed: return "generate-failed";
    case ServiceError::LintRejected: return "lint-rejected";
    case ServiceError::CircuitOpen: return "circuit-open";
    case ServiceError::Draining: return "draining";
  }
  return "none";
}

bool service_error_from_name(std::string_view name, ServiceError* out) {
  for (ServiceError e :
       {ServiceError::None, ServiceError::InvalidRequest,
        ServiceError::Overloaded, ServiceError::DeadlineExceeded,
        ServiceError::GenerateFailed, ServiceError::LintRejected,
        ServiceError::CircuitOpen, ServiceError::Draining}) {
    if (service_error_name(e) == name) {
      *out = e;
      return true;
    }
  }
  return false;
}

bool is_transient(ServiceError error) {
  // Overloaded clears when the queue drains; CircuitOpen clears when the
  // breaker's cooldown elapses and probes succeed. Draining never clears —
  // the service is going away, so clients must fail over, not retry.
  return error == ServiceError::Overloaded ||
         error == ServiceError::CircuitOpen;
}

double ServiceStats::percentile_latency_ms(double p) const {
  if (latencies_ms.empty()) return 0.0;
  std::vector<double> sorted = latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least p% of samples at or
  // below it.
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

InferenceService::InferenceService(const model::Transformer& model,
                                   const text::BpeTokenizer& tokenizer,
                                   ServiceOptions options)
    : model_(model),
      tokenizer_(tokenizer),
      options_(options),
      queue_(options.queue_capacity) {
  h_.offered = &registry_.counter("wisdom_serve_offered_total",
                                  "Every arrival, admitted or shed.");
  h_.requests = &registry_.counter(
      "wisdom_serve_requests_total",
      "Responses produced (admitted + degraded-shed).");
  h_.shed = &registry_.counter(
      "wisdom_serve_shed_total",
      "Arrivals refused admission by the bounded queue.");
  h_.degraded = &registry_.counter("wisdom_serve_degraded_total",
                                   "Responses served by the fallback path.");
  h_.deadline_expired =
      &registry_.counter("wisdom_serve_deadline_expired_total",
                         "Requests whose decode hit its deadline.");
  h_.accepted = &registry_.counter("wisdom_serve_accepted_total",
                                   "Suggestions the user accepted (tab).");
  h_.rejected = &registry_.counter("wisdom_serve_rejected_total",
                                   "Suggestions the user rejected (escape).");
  h_.generated_tokens = &registry_.counter(
      "wisdom_serve_generated_tokens_total", "Tokens decoded for responses.");
  h_.fallback_served = &registry_.counter(
      "wisdom_serve_fallback_total",
      "Responses filled in by the deterministic fallback suggester.");
  h_.wall_ms = &registry_.gauge(
      "wisdom_serve_wall_ms",
      "Service-side wall time; a batch contributes its elapsed time once.");
  h_.inflight = &registry_.gauge("wisdom_serve_inflight",
                                 "Admitted requests currently in flight.");
  h_.request_ms = &registry_.histogram("wisdom_serve_request_ms", {},
                                       "End-to-end per-request latency.");
  h_.stage_admission = &registry_.histogram(
      "wisdom_serve_stage_admission_ms", {}, "Admission-gate stage time.");
  h_.stage_tokenize = &registry_.histogram("wisdom_serve_stage_tokenize_ms",
                                           {}, "Prompt encoding stage time.");
  h_.stage_generate = &registry_.histogram(
      "wisdom_serve_stage_generate_ms", {},
      "Model generate() stage time (prefill + decode).");
  h_.stage_prefill = &registry_.histogram("wisdom_serve_stage_prefill_ms",
                                          {}, "Prompt-ingestion stage time.");
  h_.stage_decode = &registry_.histogram("wisdom_serve_stage_decode_ms", {},
                                         "Per-token decode span time.");
  h_.stage_postprocess = &registry_.histogram(
      "wisdom_serve_stage_postprocess_ms", {},
      "Detokenize/trim/truncate stage time.");
  h_.stage_fallback = &registry_.histogram(
      "wisdom_serve_stage_fallback_ms", {}, "Fallback-suggester stage time.");
  h_.stage_lint = &registry_.histogram(
      "wisdom_serve_stage_lint_ms", {}, "Lint-gate (analyze/repair) stage time.");
  h_.lint_diagnostics = &registry_.counter(
      "wisdom_lint_diagnostics_total",
      "Diagnostics the lint gate attached to served snippets.");
  h_.lint_errors = &registry_.counter(
      "wisdom_lint_errors_total", "Error-severity lint diagnostics served.");
  h_.lint_warnings = &registry_.counter(
      "wisdom_lint_warnings_total",
      "Warning-severity lint diagnostics served.");
  h_.lint_repaired = &registry_.counter(
      "wisdom_lint_repaired_total",
      "Snippets the lint gate's auto-fix engine changed.");
  h_.lint_rejected = &registry_.counter(
      "wisdom_lint_rejected_total",
      "Snippets refused under the reject-degraded lint policy.");
  // One counter per registry rule so the full family is visible (at 0)
  // from the first scrape.
  for (const analysis::RuleInfo& rule : analysis::all_rules()) {
    std::string name = "wisdom_lint_rule_";
    for (char c : rule.id) name += c == '-' ? '_' : c;
    name += "_total";
    h_.lint_rules.emplace(
        std::string(rule.id),
        &registry_.counter(name, "Lint diagnostics for one rule."));
  }
  h_.stage_cache = &registry_.histogram(
      "wisdom_serve_stage_cache_ms", {},
      "Cache stage time (memo + prefix lookups, snapshot inserts).");
  h_.stage_draft = &registry_.histogram(
      "wisdom_serve_stage_draft_ms", {},
      "Speculative draft stage time (catch-up + guess decode).");
  h_.stage_verify = &registry_.histogram(
      "wisdom_serve_stage_verify_ms", {},
      "Speculative verify stage time (fused forward + accept/commit).");
  // wisdom_spec_* families: registered even with speculation off, so the
  // exposition (and the CI smoke grep) always sees them.
  h_.spec_proposed = &registry_.counter(
      "wisdom_spec_proposed_total", "Draft tokens fed to the verifier.");
  h_.spec_accepted = &registry_.counter(
      "wisdom_spec_accepted_total",
      "Draft tokens committed verbatim (verifier agreed).");
  h_.spec_rejected = &registry_.counter(
      "wisdom_spec_rejected_total",
      "Draft tokens discarded (verifier disagreed or the round was cut).");
  h_.spec_verify_steps = &registry_.counter(
      "wisdom_spec_verify_steps_total", "Fused draft-verify rounds.");
  h_.spec_draft_steps = &registry_.counter(
      "wisdom_spec_draft_steps_total",
      "Tokens fed through the draft model (catch-up + guesses).");
  h_.spec_acceptance = &registry_.gauge(
      "wisdom_spec_acceptance_rate",
      "accepted / proposed draft tokens over the service lifetime.");
  h_.spec_commit_per_verify = &registry_.histogram(
      "wisdom_spec_commit_tokens_per_verify", {},
      "Tokens committed per fused verify round (1 = no speculation win).");
  // wisdom_cache_* families: registered even when both caches are
  // disabled, so the exposition (and the CI smoke grep) always sees them.
  h_.cache_prefix_hits = &registry_.counter(
      "wisdom_cache_prefix_hits_total",
      "Prefix-cache lookups that found a reusable KV snapshot.");
  h_.cache_prefix_misses = &registry_.counter(
      "wisdom_cache_prefix_misses_total",
      "Prefix-cache lookups with no shared-prefix snapshot.");
  h_.cache_prefix_inserts = &registry_.counter(
      "wisdom_cache_prefix_inserts_total",
      "KV snapshots stored in the prefix cache.");
  h_.cache_prefix_evictions = &registry_.counter(
      "wisdom_cache_prefix_evictions_total",
      "Prefix-cache entries evicted to honor the byte budget.");
  h_.cache_prefix_expired = &registry_.counter(
      "wisdom_cache_prefix_expired_total",
      "Prefix-cache entries expired by the lookup-count TTL.");
  h_.cache_prefill_tokens_saved = &registry_.counter(
      "wisdom_cache_prefill_tokens_saved_total",
      "Prompt tokens whose prefill was served from cached KV rows.");
  h_.cache_prefix_bytes = &registry_.gauge(
      "wisdom_cache_prefix_bytes",
      "Bytes currently held by prefix-cache snapshots.");
  h_.cache_prefix_entries = &registry_.gauge(
      "wisdom_cache_prefix_entries",
      "Snapshots currently held by the prefix cache.");
  h_.cache_prefix_hit_tokens = &registry_.histogram(
      "wisdom_cache_prefix_hit_tokens", {},
      "Reused-prefix length (tokens) per prefix-cache hit.");
  h_.cache_response_hits = &registry_.counter(
      "wisdom_cache_response_hits_total",
      "Response-memo lookups that replayed a full prior response.");
  h_.cache_response_misses = &registry_.counter(
      "wisdom_cache_response_misses_total",
      "Response-memo lookups with no exact-repeat entry.");
  h_.cache_response_inserts = &registry_.counter(
      "wisdom_cache_response_inserts_total",
      "Responses memoized for exact-repeat replay.");
  h_.cache_response_evictions = &registry_.counter(
      "wisdom_cache_response_evictions_total",
      "Memo entries evicted past the entry cap.");
  h_.cache_response_expired = &registry_.counter(
      "wisdom_cache_response_expired_total",
      "Memo entries expired by the lookup-count TTL.");
  h_.cache_response_entries = &registry_.gauge(
      "wisdom_cache_response_entries",
      "Responses currently memoized.");
  // wisdom_sched_* / wisdom_kv_* families: registered even with continuous
  // batching off, so the exposition always carries them.
  h_.sched_inflight = &registry_.gauge(
      "wisdom_sched_inflight_seqs",
      "Sequences in flight in the continuous scheduler.");
  h_.kv_blocks_in_use = &registry_.gauge(
      "wisdom_kv_blocks_in_use", "Paged-KV arena blocks currently live.");
  h_.kv_blocks_free = &registry_.gauge(
      "wisdom_kv_blocks_free", "Paged-KV arena blocks on the free list.");
  h_.sched_steps = &registry_.counter(
      "wisdom_sched_steps_total",
      "Batched forward steps taken by the continuous scheduler.");
  h_.sched_admitted = &registry_.counter(
      "wisdom_sched_admitted_total",
      "Sequences admitted by the continuous scheduler.");
  h_.sched_retired = &registry_.counter(
      "wisdom_sched_retired_total",
      "Sequences retired (finished or deadline-expired).");
  h_.sched_monolithic_fallback = &registry_.counter(
      "wisdom_sched_monolithic_fallback_total",
      "Sequences denied a paged cache by arena exhaustion.");
  h_.sched_admissions_per_step = &registry_.histogram(
      "wisdom_sched_admissions_per_step", {},
      "Sequences admitted between consecutive scheduler steps.");
  h_.sched_batch_width = &registry_.histogram(
      "wisdom_sched_batch_width", {},
      "Sequences per batched forward step.");
  // Overload-resilience families: preemption, breaker, drain. Registered
  // unconditionally (like every family above) so the exposition and the
  // CI smoke grep see them at 0 whatever the configuration.
  h_.sched_preempted = &registry_.counter(
      "wisdom_sched_preempt_total",
      "Sequences preempted by KV-block pressure (requeued for resume).");
  h_.sched_preempt_blocks = &registry_.counter(
      "wisdom_sched_preempt_blocks_released_total",
      "KV blocks returned to the arena by preemptions.");
  h_.sched_preempt_recompute = &registry_.counter(
      "wisdom_sched_preempt_recompute_tokens_total",
      "KV rows re-fed by warm-start resumes of preempted sequences.");
  h_.sched_watchdog_retired = &registry_.counter(
      "wisdom_sched_watchdog_retired_total",
      "Wedged sequences force-retired (deadline-expired) by the watchdog.");
  h_.breaker_state = &registry_.gauge(
      "wisdom_breaker_state",
      "Circuit-breaker state: 0 closed, 1 open, 2 half-open.");
  h_.breaker_opened = &registry_.counter(
      "wisdom_breaker_opened_total",
      "Times the breaker tripped open on window failure rate.");
  h_.breaker_closed = &registry_.counter(
      "wisdom_breaker_closed_total",
      "Times a successful probe cycle closed the breaker.");
  h_.breaker_short_circuit = &registry_.counter(
      "wisdom_breaker_short_circuit_total",
      "Arrivals answered from the fallback by the open breaker.");
  h_.breaker_probes = &registry_.counter(
      "wisdom_breaker_probes_total",
      "Probe requests admitted while half-open.");
  h_.breaker_failures = &registry_.counter(
      "wisdom_breaker_failures_recorded_total",
      "Failure outcomes recorded into the breaker window.");
  h_.drain_state = &registry_.gauge(
      "wisdom_drain_state",
      "Service lifecycle: 0 accepting, 1 draining, 2 stopped.");
  h_.drain_rejected = &registry_.counter(
      "wisdom_drain_rejected_total",
      "Arrivals refused because the service was draining or stopped.");
  h_.drain_completed = &registry_.counter(
      "wisdom_drain_completed_total",
      "Completed drains (in-flight ran dry after begin_drain).");

  if (options_.breaker_enabled) {
    BreakerMetrics breaker_metrics;
    breaker_metrics.state = h_.breaker_state;
    breaker_metrics.opened = h_.breaker_opened;
    breaker_metrics.closed = h_.breaker_closed;
    breaker_metrics.short_circuited = h_.breaker_short_circuit;
    breaker_metrics.probes = h_.breaker_probes;
    breaker_metrics.failures_recorded = h_.breaker_failures;
    breaker_ =
        std::make_unique<CircuitBreaker>(options_.breaker, breaker_metrics);
  }

  // --- speculative decoding: resolve the draft model ----------------------
  // A borrowed draft wins; otherwise load an owned one from the configured
  // checkpoint. Anything unusable — missing file, bad checksum, vocab
  // mismatch — disables speculation instead of failing construction:
  // the service then decodes exactly as a speculation-free one would.
  if (options_.speculative_k > 0) {
    if (options_.draft_model) {
      draft_ = options_.draft_model;
    } else if (!options_.draft_checkpoint.empty()) {
      if (auto loaded =
              model::load_checkpoint_file(options_.draft_checkpoint, nullptr)) {
        owned_draft_ = std::make_unique<model::Transformer>(std::move(*loaded));
        // Weights are position-independent (rotary), so an owned draft can
        // be re-windowed to mirror the verifier's context exactly.
        if (owned_draft_->config().ctx != model_.config().ctx)
          owned_draft_->set_context_window(model_.config().ctx);
        draft_ = owned_draft_.get();
      }
    }
    if (draft_ && (draft_->config().vocab != model_.config().vocab ||
                   draft_->config().ctx < model_.config().ctx)) {
      draft_ = nullptr;
      owned_draft_.reset();
    }
    if (!draft_) options_.speculative_k = 0;
  }

  if (options_.continuous_batching) {
    if (options_.max_batch_sequences < 1) options_.max_batch_sequences = 1;
    if (options_.kv_block_size < 1) options_.kv_block_size = 16;
    const model::ModelConfig& config = model_.config();
    const int blocks_per_seq =
        (config.ctx + options_.kv_block_size - 1) / options_.kv_block_size;
    int blocks = options_.kv_arena_blocks;
    if (blocks <= 0) blocks = 4 * options_.max_batch_sequences * blocks_per_seq;
    arena_ = std::make_unique<model::KvBlockAllocator>(
        blocks, options_.kv_block_size, config.n_layer, config.d_model);
    SchedulerOptions sched_options;
    sched_options.max_in_flight = options_.max_batch_sequences;
    sched_options.arena = arena_.get();
    sched_options.max_preemptions_per_seq = options_.max_preemptions_per_seq;
    sched_options.watchdog_iterations = options_.watchdog_iterations;
    sched_options.faults = options_.faults;
    if (draft_ && options_.speculative_k > 0) {
      // Per-sequence draft caches page out of their own arena (the block
      // geometry is tied to the draft's layer count and width, so the
      // main arena cannot back them).
      const model::ModelConfig& dconfig = draft_->config();
      const int draft_blocks_per_seq =
          (dconfig.ctx + options_.kv_block_size - 1) / options_.kv_block_size;
      draft_arena_ = std::make_unique<model::KvBlockAllocator>(
          2 * options_.max_batch_sequences * draft_blocks_per_seq,
          options_.kv_block_size, dconfig.n_layer, dconfig.d_model);
      sched_options.draft = draft_;
      sched_options.speculative_k = options_.speculative_k;
      sched_options.draft_arena = draft_arena_.get();
    }
    SchedulerMetrics sched_metrics;
    sched_metrics.inflight = h_.sched_inflight;
    sched_metrics.blocks_in_use = h_.kv_blocks_in_use;
    sched_metrics.blocks_free = h_.kv_blocks_free;
    sched_metrics.steps = h_.sched_steps;
    sched_metrics.admitted = h_.sched_admitted;
    sched_metrics.retired = h_.sched_retired;
    sched_metrics.monolithic_fallbacks = h_.sched_monolithic_fallback;
    sched_metrics.admissions_per_step = h_.sched_admissions_per_step;
    sched_metrics.batch_width = h_.sched_batch_width;
    sched_metrics.preempted = h_.sched_preempted;
    sched_metrics.preempt_blocks_released = h_.sched_preempt_blocks;
    sched_metrics.preempt_recompute_tokens = h_.sched_preempt_recompute;
    sched_metrics.watchdog_retired = h_.sched_watchdog_retired;
    sched_metrics.spec_proposed = h_.spec_proposed;
    sched_metrics.spec_accepted = h_.spec_accepted;
    sched_metrics.spec_rejected = h_.spec_rejected;
    sched_metrics.spec_verify_steps = h_.spec_verify_steps;
    sched_metrics.spec_draft_steps = h_.spec_draft_steps;
    sched_metrics.spec_commit_per_verify = h_.spec_commit_per_verify;
    scheduler_ = std::make_unique<ContinuousScheduler>(model_, sched_options,
                                                       sched_metrics);
  }

  if (options_.prefix_cache_enabled) {
    PrefixCacheOptions cache_options;
    cache_options.byte_budget = options_.prefix_cache_bytes;
    cache_options.ttl_lookups = options_.cache_ttl_requests;
    prefix_cache_ = std::make_unique<PrefixKvCache>(cache_options);
    PrefixKvCache::MetricHooks hooks;
    hooks.hits = h_.cache_prefix_hits;
    hooks.misses = h_.cache_prefix_misses;
    hooks.stored = h_.cache_prefix_inserts;
    hooks.evictions = h_.cache_prefix_evictions;
    hooks.expirations = h_.cache_prefix_expired;
    hooks.tokens_reused = h_.cache_prefill_tokens_saved;
    hooks.bytes = h_.cache_prefix_bytes;
    hooks.entries = h_.cache_prefix_entries;
    hooks.hit_tokens = h_.cache_prefix_hit_tokens;
    prefix_cache_->bind_metrics(hooks);
  }
  if (options_.response_cache_enabled) {
    ResponseCacheOptions cache_options;
    cache_options.max_entries = options_.response_cache_entries;
    cache_options.ttl_lookups = options_.cache_ttl_requests;
    response_cache_ = std::make_unique<ResponseCache>(cache_options);
    ResponseCache::MetricHooks hooks;
    hooks.hits = h_.cache_response_hits;
    hooks.misses = h_.cache_response_misses;
    hooks.stored = h_.cache_response_inserts;
    hooks.evictions = h_.cache_response_evictions;
    hooks.expirations = h_.cache_response_expired;
    hooks.entries = h_.cache_response_entries;
    response_cache_->bind_metrics(hooks);
  }
}

ResponseCache::Key InferenceService::memo_key(
    const SuggestionRequest& request) const {
  ResponseCache::Key key;
  key.context = request.context;
  key.prompt = request.prompt;
  key.indent = request.indent;
  key.max_new_tokens = options_.max_new_tokens;
  key.lint_policy = static_cast<int>(options_.lint_policy);
  return key;
}

bool InferenceService::try_admit() {
  if (options_.faults && options_.faults->queue_full_forced()) return false;
  return queue_.try_acquire();
}

util::Deadline InferenceService::request_deadline(
    const SuggestionRequest& request) const {
  util::Deadline deadline;
  if (options_.faults && options_.faults->slow_decode_active()) {
    deadline = options_.faults->slow_decode_deadline();
  } else {
    double ms =
        request.deadline_ms > 0.0 ? request.deadline_ms : options_.deadline_ms;
    if (ms > 0.0) deadline = util::Deadline::after_ms(ms);
  }
  deadline.set_token(request.cancel);
  return deadline;
}

void InferenceService::apply_fallback(const SuggestionRequest& request,
                                      obs::TraceContext& trace,
                                      SuggestionResponse* response) const {
  auto fallback_span = trace.span("fallback");
  h_.fallback_served->inc();
  std::string pad(static_cast<std::size_t>(request.indent), ' ');
  std::string name_line = pad + "- name: " + request.prompt + "\n";
  response->snippet =
      name_line + fallback_.suggest_body(request.prompt, request.indent);
  response->ok = true;
  response->degraded = true;
  response->schema_correct = metrics::schema_correct(response->snippet);
}

void InferenceService::record_lint(const LintOutcome& outcome) const {
  if (!outcome.analyzed) return;
  h_.lint_diagnostics->inc(outcome.diagnostics.size());
  for (const analysis::Diagnostic& d : outcome.diagnostics) {
    (d.severity == analysis::Severity::Error ? h_.lint_errors
                                             : h_.lint_warnings)
        ->inc();
    auto it = h_.lint_rules.find(d.rule);
    if (it != h_.lint_rules.end()) it->second->inc();
  }
  if (outcome.repaired) h_.lint_repaired->inc();
  if (outcome.rejected) h_.lint_rejected->inc();
}

LintOutcome InferenceService::run_lint_gate(std::string_view snippet,
                                            obs::TraceContext& trace) const {
  if (options_.lint_policy == LintPolicy::Off)
    return lint_gate(snippet, LintPolicy::Off);
  LintOutcome outcome;
  {
    auto lint_span = trace.span("lint");
    outcome = lint_gate(snippet, options_.lint_policy);
  }
  record_lint(outcome);
  return outcome;
}

bool InferenceService::pre_generate(const SuggestionRequest& request,
                                    obs::TraceContext& trace,
                                    GenPrep& prep) const {
  prep.start = std::chrono::steady_clock::now();
  SuggestionResponse& response = prep.response;
  if (request.prompt.empty() || request.indent < 0) {
    response.error = ServiceError::InvalidRequest;
    response.latency_ms = elapsed_ms(prep.start);
    prep.done = true;
    return true;
  }

  std::string pad(static_cast<std::size_t>(request.indent), ' ');
  prep.name_line = pad + "- name: " + request.prompt + "\n";

  // Level 2 first: an exact repeat replays the full prior response before
  // the model (or the fault injector — a memo hit never touches either) is
  // consulted. Only non-degraded successes are ever memoized, so the
  // replayed bytes equal what a fresh decode would produce.
  if (response_cache_) {
    auto cache_span = trace.span("cache");
    if (auto memo = response_cache_->lookup(memo_key(request))) {
      response = std::move(*memo);
      response.latency_ms = elapsed_ms(prep.start);
      prep.done = true;
      return true;
    }
  }

  if (options_.faults && options_.faults->take_generate_failure()) {
    response.error = ServiceError::GenerateFailed;
    if (options_.fallback_enabled)
      apply_fallback(request, trace, &response);
    response.latency_ms = elapsed_ms(prep.start);
    prep.done = true;
    return true;
  }

  {
    auto tokenize_span = trace.span("tokenize");
    std::string input_text = request.context + prep.name_line;
    prep.ids = tokenizer_.encode(input_text);
  }
  prep.gen.max_new_tokens = options_.max_new_tokens;
  prep.gen.stop_token = text::BpeTokenizer::kEndOfText;
  prep.gen.deadline = request_deadline(request);
  prep.gen.trace = &trace;
  prep.gen.status = &prep.status;

  // Level 1: warm-start generation from the deepest cached KV snapshot
  // sharing a token prefix with this prompt, and capture a snapshot of the
  // full prefilled prompt for future requests. Keyed on the kept prompt —
  // exactly the tokens generate() feeds the model after left-truncation.
  if (prefix_cache_) {
    auto cache_span = trace.span("cache");
    prep.kept = model_.kept_prompt(prep.ids, prep.gen.max_new_tokens);
    if (auto hit = prefix_cache_->lookup(prep.kept)) {
      prep.warm = std::move(hit->cache);
      prep.gen.warm_cache = &prep.warm;
      prep.has_warm = true;
      response.cached = true;
    }
    prep.gen.prompt_snapshot = &prep.snapshot;
  }
  return false;
}

void InferenceService::post_generate(const SuggestionRequest& request,
                                     obs::TraceContext& trace,
                                     std::vector<std::int32_t> out,
                                     GenPrep& prep) const {
  SuggestionResponse& response = prep.response;
  const model::Transformer::GenerateStatus& status = prep.status;

  // Store the prefilled prompt whenever prefill completed — KV rows are
  // valid even when the decode after them degraded (deadline salvage,
  // empty generation): prefill is a pure function of the prompt tokens.
  if (prefix_cache_ &&
      prep.snapshot.length == static_cast<int>(prep.kept.size()) &&
      prep.snapshot.length > 0) {
    auto cache_span = trace.span("cache");
    prefix_cache_->insert(prep.kept, std::move(prep.snapshot));
  }

  std::string body;
  {
    auto postprocess_span = trace.span("postprocess");
    body = core::trim_generation(tokenizer_.decode(out));
    body = core::truncate_to_first_task(
        body, static_cast<std::size_t>(request.indent));
  }
  response.generated_tokens = static_cast<int>(out.size());
  const std::string& name_line = prep.name_line;

  if (status.deadline_expired) {
    response.error = ServiceError::DeadlineExceeded;
    // Salvage the partial decode when it forms a valid task — the lint
    // gate gets first crack, so under a repairing policy a partial that is
    // one auto-fix away from valid is repaired and salvaged rather than
    // thrown away. Otherwise answer from the deterministic fallback.
    // Either way the editor gets a schema-checked snippet in budget.
    LintOutcome gate;
    bool salvaged = false;
    if (!body.empty()) {
      gate = run_lint_gate(name_line + body, trace);
      salvaged = gate.schema_correct && !gate.rejected;
    }
    if (salvaged) {
      response.ok = true;
      response.degraded = true;
      response.snippet = std::move(gate.snippet);
      response.schema_correct = true;
      response.repaired = gate.repaired;
      response.diagnostics = std::move(gate.diagnostics);
    } else if (options_.fallback_enabled) {
      apply_fallback(request, trace, &response);
    }
  } else {
    response.ok = !body.empty();
    response.snippet = name_line + body;
    if (!response.ok && options_.lint_policy == LintPolicy::RejectDegraded) {
      // An empty generation cannot pass the gate either: reject it the
      // same way, so every response under this policy is a schema-correct
      // snippet (or an explicit refusal when the fallback is off).
      response.error = ServiceError::LintRejected;
      response.snippet.clear();
      h_.lint_rejected->inc();
      if (options_.fallback_enabled) apply_fallback(request, trace, &response);
    } else if (response.ok) {
      LintOutcome gate = run_lint_gate(response.snippet, trace);
      response.schema_correct = gate.schema_correct;
      if (gate.rejected) {
        // RejectDegraded: never serve a snippet still carrying errors.
        // The rejected snippet's diagnostics stay on the response so the
        // client can see why its model suggestion was refused.
        response.error = ServiceError::LintRejected;
        response.diagnostics = std::move(gate.diagnostics);
        response.ok = false;
        response.snippet.clear();
        if (options_.fallback_enabled) apply_fallback(request, trace, &response);
      } else {
        response.snippet = std::move(gate.snippet);
        response.repaired = gate.repaired;
        response.diagnostics = std::move(gate.diagnostics);
      }
    }
  }
  // Memoize only full-fidelity successes; degraded and failed responses
  // depend on deadlines and fault state, not just the request key.
  if (response_cache_ && response.ok && !response.degraded &&
      response.error == ServiceError::None) {
    auto cache_span = trace.span("cache");
    response_cache_->insert(memo_key(request), response);
  }
  response.latency_ms = elapsed_ms(prep.start);
}

// Streams the stable prefix of the response body as tokens decode.
//
// The postprocess pipeline (trim_generation + truncate_to_first_task)
// rewrites raw decoded bytes, so raw token text cannot be streamed
// verbatim without breaking the byte-identity invariant (concatenated
// chunks == final snippet). Instead the emitter recomputes, after every
// token, the portion of the final body that is already decided:
//   - trim_generation keeps only complete lines (up to the last '\n'),
//     and a complete line never changes as more tokens append — BPE
//     decode is byte-concatenative, so new tokens only extend the tail;
//   - truncate_to_first_task decides each complete line's fate from that
//     line's content alone and cuts at the first terminator, so over the
//     complete-lines prefix its output is monotone: each recomputation
//     extends the previous one and is a prefix of the final body.
// The delta between successive stable prefixes is emitted as a chunk.
// finish() reconciles the cases where the final snippet diverges from
// the streamed prefix (lint repair/rejection, fallback, deadline
// salvage, empty generation) with a reset chunk carrying the
// authoritative bytes.
class InferenceService::StreamEmitter {
 public:
  StreamEmitter(const TokenSink& sink, const text::BpeTokenizer& tokenizer,
                const SuggestionRequest& request, bool token_streaming)
      : sink_(sink),
        tokenizer_(tokenizer),
        indent_(static_cast<std::size_t>(std::max(request.indent, 0))),
        token_streaming_(token_streaming) {
    std::string pad(indent_, ' ');
    name_line_ = pad + "- name: " + request.prompt + "\n";
  }

  // Whether run_one should hook GenerateOptions::on_token. Beam search
  // revises hypotheses non-monotonically, so beam responses stream as one
  // final chunk from finish() instead of per-token deltas.
  bool streaming_tokens() const { return token_streaming_; }

  // GenerateOptions::on_token target: runs on the decoding thread, once
  // per committed token, in order.
  void on_token(std::int32_t token) {
    ids_.push_back(token);
    std::string body = core::trim_generation(tokenizer_.decode(ids_));
    body = core::truncate_to_first_task(body, indent_);
    std::string stable = name_line_ + body;
    if (stable.size() > emitted_.size() &&
        stable.compare(0, emitted_.size(), emitted_) == 0) {
      sink_(std::string_view(stable).substr(emitted_.size()),
            /*reset=*/false);
      emitted_ = std::move(stable);
    }
  }

  // Settles the stream against the final response: afterwards the bytes
  // delivered through the sink equal `final_snippet` exactly. Appends the
  // missing suffix when the stream is a prefix of the final bytes (the
  // common case — also how memo hits and shed/fallback responses that
  // never decoded a token stream their one chunk); emits a reset chunk
  // when postprocess rewrote already-streamed bytes.
  void finish(const std::string& final_snippet) {
    if (final_snippet.size() >= emitted_.size() &&
        final_snippet.compare(0, emitted_.size(), emitted_) == 0) {
      if (final_snippet.size() > emitted_.size())
        sink_(std::string_view(final_snippet).substr(emitted_.size()),
              /*reset=*/false);
    } else {
      sink_(final_snippet, /*reset=*/true);
    }
    emitted_ = final_snippet;
  }

 private:
  const TokenSink& sink_;
  const text::BpeTokenizer& tokenizer_;
  std::size_t indent_;
  bool token_streaming_;
  std::string name_line_;
  std::vector<std::int32_t> ids_;
  std::string emitted_;
};

SuggestionResponse InferenceService::run_one(
    const SuggestionRequest& request, obs::TraceContext& trace,
    StreamEmitter* emitter) const {
  GenPrep prep;
  if (pre_generate(request, trace, prep)) return std::move(prep.response);
  if (emitter && emitter->streaming_tokens())
    prep.gen.on_token = [emitter](std::int32_t token) {
      emitter->on_token(token);
    };
  std::vector<std::int32_t> out;
  {
    auto generate_span = trace.span("generate");
    if (options_.beam_width > 1) {
      // Beam-configured service: decode through generate_beam with the
      // same budget/deadline/cache wiring as the greedy path. The
      // continuous scheduler is greedy-only, so beam requests always take
      // this per-request route (suggest_batch bypasses the scheduler).
      model::Transformer::BeamOptions beam;
      beam.beam_width = options_.beam_width;
      beam.max_new_tokens = prep.gen.max_new_tokens;
      beam.stop_token = prep.gen.stop_token;
      beam.length_penalty = options_.beam_length_penalty;
      beam.deadline = prep.gen.deadline;
      beam.status = prep.gen.status;
      beam.trace = prep.gen.trace;
      beam.warm_cache = prep.gen.warm_cache;
      beam.prompt_snapshot = prep.gen.prompt_snapshot;
      out = model_.generate_beam(prep.ids, beam);
    } else if (draft_ && options_.speculative_k > 0) {
      // Speculative greedy decode: byte-identical to model_.generate()
      // (greedy acceptance), so every downstream consumer — postprocess,
      // caches, goldens, streaming — sees exactly the baseline bytes.
      // Each request drafts into its own monolithic cache here (the
      // paged draft arena is the scheduler's; this path is concurrent).
      model::SpeculativeStats spec_stats;
      model::SpeculativeOptions spec;
      spec.draft = draft_;
      spec.k = options_.speculative_k;
      spec.stats = &spec_stats;
      out = model::generate_speculative(model_, prep.ids, prep.gen, spec);
      record_speculation(spec_stats);
    } else {
      out = model_.generate(prep.ids, prep.gen);
    }
  }
  post_generate(request, trace, std::move(out), prep);
  return std::move(prep.response);
}

SuggestionResponse InferenceService::run_shed(
    const SuggestionRequest& request, obs::TraceContext& trace) const {
  auto start = std::chrono::steady_clock::now();
  SuggestionResponse response;
  response.error = ServiceError::Overloaded;
  if (options_.shed_policy == ShedPolicy::DegradeNewest &&
      !request.prompt.empty() && request.indent >= 0) {
    apply_fallback(request, trace, &response);
  }
  response.latency_ms = elapsed_ms(start);
  return response;
}

SuggestionResponse InferenceService::run_short_circuit(
    const SuggestionRequest& request, obs::TraceContext& trace) const {
  auto start = std::chrono::steady_clock::now();
  SuggestionResponse response;
  response.error = ServiceError::CircuitOpen;
  // The whole point of the open breaker: answer immediately from the
  // deterministic fallback without spending a queue slot or decode budget
  // on a backend that is currently failing.
  if (options_.fallback_enabled && !request.prompt.empty() &&
      request.indent >= 0) {
    apply_fallback(request, trace, &response);
  }
  response.latency_ms = elapsed_ms(start);
  return response;
}

void InferenceService::breaker_record(const SuggestionResponse& response) {
  if (!breaker_) return;
  // Failures are the outcomes that predict the next request will also
  // burn budget for nothing: deadline misses, model failures, shedding.
  // Client errors (invalid request) and lint rejections say nothing about
  // backend health. An armed poison_breaker fault overrides the verdict.
  bool failure = response.error == ServiceError::DeadlineExceeded ||
                 response.error == ServiceError::GenerateFailed ||
                 response.error == ServiceError::Overloaded;
  if (options_.faults && options_.faults->take_breaker_poison())
    failure = true;
  breaker_->record(failure);
}

void InferenceService::record_speculation(
    const model::SpeculativeStats& stats) const {
  if (stats.proposed > 0)
    h_.spec_proposed->inc(static_cast<std::uint64_t>(stats.proposed));
  if (stats.accepted > 0)
    h_.spec_accepted->inc(static_cast<std::uint64_t>(stats.accepted));
  if (stats.rejected > 0)
    h_.spec_rejected->inc(static_cast<std::uint64_t>(stats.rejected));
  if (stats.draft_steps > 0)
    h_.spec_draft_steps->inc(static_cast<std::uint64_t>(stats.draft_steps));
  if (stats.verify_steps > 0) {
    h_.spec_verify_steps->inc(static_cast<std::uint64_t>(stats.verify_steps));
    h_.spec_commit_per_verify->observe(
        static_cast<double>(stats.committed) /
        static_cast<double>(stats.verify_steps));
  }
  const std::uint64_t proposed = h_.spec_proposed->value();
  if (proposed > 0)
    h_.spec_acceptance->set(static_cast<double>(h_.spec_accepted->value()) /
                            static_cast<double>(proposed));
}

void InferenceService::observe_stages(const obs::Trace& trace) const {
  for (const obs::Span& span : trace.spans) {
    obs::Histogram* histogram = nullptr;
    if (span.name == "admission") histogram = h_.stage_admission;
    else if (span.name == "tokenize") histogram = h_.stage_tokenize;
    else if (span.name == "generate") histogram = h_.stage_generate;
    else if (span.name == "prefill") histogram = h_.stage_prefill;
    else if (span.name == "decode") histogram = h_.stage_decode;
    else if (span.name == "postprocess") histogram = h_.stage_postprocess;
    else if (span.name == "fallback") histogram = h_.stage_fallback;
    else if (span.name == "cache") histogram = h_.stage_cache;
    else if (span.name == "draft") histogram = h_.stage_draft;
    else if (span.name == "verify") histogram = h_.stage_verify;
    if (histogram) histogram->observe(span.duration_ms);
  }
}

SuggestionResponse InferenceService::serve_traced(
    const SuggestionRequest& request, ServePath path, std::uint64_t seq,
    StreamEmitter* emitter) const {
  // Every request is traced when observability is enabled; the caller's
  // sink (if any) keeps the timeline, otherwise a local one feeds the
  // per-stage histograms and Server-Timing map and is dropped.
  obs::Trace local_trace;
  obs::Trace* sink = request.trace ? request.trace : &local_trace;
  const std::uint64_t id = obs::trace_id(seq, request.prompt);
  obs::TraceContext trace(sink, id);
  SuggestionResponse response;
  {
    auto root = trace.span("request");
    {
      // The admission decision itself ran just before the trace opened
      // (batches decide all admissions in arrival order first); the span
      // documents the stage at its true sub-microsecond cost.
      auto admission_span = trace.span("admission");
    }
    switch (path) {
      case ServePath::Full:
        response = run_one(request, trace, emitter);
        break;
      case ServePath::Shed: response = run_shed(request, trace); break;
      case ServePath::ShortCircuit:
        response = run_short_circuit(request, trace);
        break;
    }
  }
  if (trace.active()) {
    response.trace_id =
        request.trace_id.empty() ? obs::trace_id_hex(id) : request.trace_id;
    response.server_timing_ms = sink->stage_totals();
    observe_stages(*sink);
  }
  return response;
}

void InferenceService::record_response(const SuggestionResponse& response) {
  h_.requests->inc();
  h_.request_ms->observe(response.latency_ms);
  h_.generated_tokens->inc(
      static_cast<std::uint64_t>(response.generated_tokens));
  if (response.degraded) h_.degraded->inc();
  if (response.error == ServiceError::DeadlineExceeded)
    h_.deadline_expired->inc();
  std::lock_guard<std::mutex> lock(mu_);
  latencies_ms_.push_back(response.latency_ms);
}

bool InferenceService::enter_serving() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (lifecycle_ != State::Accepting) return false;
  ++serving_calls_;
  return true;
}

void InferenceService::exit_serving() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  --serving_calls_;
  if (serving_calls_ == 0 && lifecycle_ != State::Accepting)
    lifecycle_cv_.notify_all();
}

SuggestionResponse InferenceService::drain_refusal() {
  // A typed refusal, not a degraded answer: the service is going away,
  // so handing out a fallback snippet would invite the client to keep
  // sending traffic here instead of failing over.
  SuggestionResponse response;
  response.error = ServiceError::Draining;
  h_.offered->inc();
  h_.drain_rejected->inc();
  return response;
}

InferenceService::State InferenceService::state() const {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  return lifecycle_;
}

void InferenceService::begin_drain() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (lifecycle_ != State::Accepting) return;
  lifecycle_ = State::Draining;
  h_.drain_state->set(static_cast<double>(State::Draining));
}

std::string InferenceService::drain() {
  begin_drain();
  {
    std::unique_lock<std::mutex> lock(lifecycle_mu_);
    lifecycle_cv_.wait(lock, [&] { return serving_calls_ == 0; });
    if (lifecycle_ != State::Stopped) {
      lifecycle_ = State::Stopped;
      h_.drain_state->set(static_cast<double>(State::Stopped));
      h_.drain_completed->inc();
    }
  }
  // Final metrics flush: in-flight is zero by construction, and the
  // returned exposition is the complete last word on this service's
  // counters — scrape it once before tearing the process down.
  h_.inflight->set(0.0);
  return registry_.expose_prometheus();
}

CircuitBreaker::Stats InferenceService::breaker_stats() const {
  return breaker_ ? breaker_->stats() : CircuitBreaker::Stats{};
}

SuggestionResponse InferenceService::suggest(const SuggestionRequest& request) {
  if (!enter_serving()) return drain_refusal();
  SuggestionResponse response = suggest_serving(request);
  exit_serving();
  return response;
}

SuggestionResponse InferenceService::suggest_stream(
    const SuggestionRequest& request, const TokenSink& sink) {
  if (!enter_serving()) return drain_refusal();
  SuggestionResponse response;
  if (sink) {
    StreamEmitter emitter(sink, tokenizer_, request,
                          /*token_streaming=*/options_.beam_width <= 1);
    response = suggest_serving(request, &emitter);
    // Settle the stream before exit_serving(): a drain() waiter that sees
    // serving_calls_ hit zero must know every in-flight stream delivered
    // its final bytes.
    emitter.finish(response.snippet);
  } else {
    response = suggest_serving(request);
  }
  exit_serving();
  return response;
}

SuggestionResponse InferenceService::suggest_serving(
    const SuggestionRequest& request, StreamEmitter* emitter) {
  const CircuitBreaker::Admission gate =
      breaker_ ? breaker_->admit() : CircuitBreaker::Admission::Allow;
  const std::uint64_t seq =
      trace_seq_.fetch_add(1, std::memory_order_relaxed);
  if (gate == CircuitBreaker::Admission::ShortCircuit) {
    // Short-circuited arrivals never touch the queue or the model, and
    // their outcome is NOT recorded into the breaker window — refusing
    // traffic must not look like the backend failing harder.
    SuggestionResponse response =
        serve_traced(request, ServePath::ShortCircuit, seq);
    h_.offered->inc();
    record_response(response);
    h_.wall_ms->add(response.latency_ms);
    return response;
  }
  const bool admitted = try_admit();
  if (obs::enabled())
    h_.inflight->set(static_cast<double>(queue_.in_flight()));
  SuggestionResponse response = serve_traced(
      request, admitted ? ServePath::Full : ServePath::Shed, seq, emitter);
  if (admitted) queue_.release();
  if (obs::enabled())
    h_.inflight->set(static_cast<double>(queue_.in_flight()));

  breaker_record(response);
  h_.offered->inc();
  if (!admitted) {
    h_.shed->inc();
    // A rejected request never entered the pipeline: it contributes no
    // latency sample. A degraded-shed response is a served request.
    if (options_.shed_policy == ShedPolicy::RejectNewest) return response;
  }
  record_response(response);
  h_.wall_ms->add(response.latency_ms);
  return response;
}

std::vector<SuggestionResponse> InferenceService::suggest_batch_continuous(
    const std::vector<SuggestionRequest>& requests) {
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  auto start = std::chrono::steady_clock::now();
  const std::size_t n = requests.size();
  // Admission in arrival order, exactly like the request-level path:
  // breaker gate first (a short-circuited arrival never consumes a queue
  // slot), then the bounded queue.
  std::vector<CircuitBreaker::Admission> gate(
      n, CircuitBreaker::Admission::Allow);
  std::vector<char> admitted(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (breaker_) gate[i] = breaker_->admit();
    admitted[i] = gate[i] != CircuitBreaker::Admission::ShortCircuit &&
                          try_admit()
                      ? 1
                      : 0;
  }
  const std::uint64_t base_seq = trace_seq_.fetch_add(
      static_cast<std::uint64_t>(n), std::memory_order_relaxed);
  if (obs::enabled())
    h_.inflight->set(static_cast<double>(queue_.in_flight()));

  // Per-request trace plus the pre/post state; sized once so the
  // GenerateOptions' back-pointers into each GenPrep stay valid.
  struct Slot {
    obs::Trace local_trace;
    obs::Trace* sink = nullptr;
    std::uint64_t id = 0;
    std::optional<obs::TraceContext> trace;
    std::optional<obs::TraceContext::Scope> root;
    std::optional<obs::TraceContext::Scope> generate_span;
    GenPrep prep;
  };
  std::vector<Slot> slots(n);

  // Pre phase, strictly in arrival order: shed/memo/fault/tokenize/prefix
  // lookup — so fault credits and admission decisions land on the same
  // requests as sequential serving.
  for (std::size_t i = 0; i < n; ++i) {
    Slot& slot = slots[i];
    const SuggestionRequest& request = requests[i];
    slot.sink = request.trace ? request.trace : &slot.local_trace;
    slot.id = obs::trace_id(base_seq + static_cast<std::uint64_t>(i),
                            request.prompt);
    slot.trace.emplace(slot.sink, slot.id);
    slot.root = slot.trace->span("request");
    {
      auto admission_span = slot.trace->span("admission");
    }
    if (gate[i] == CircuitBreaker::Admission::ShortCircuit) {
      slot.prep.response = run_short_circuit(request, *slot.trace);
      slot.prep.done = true;
    } else if (!admitted[i]) {
      slot.prep.response = run_shed(request, *slot.trace);
      slot.prep.done = true;
    } else {
      pre_generate(request, *slot.trace, slot.prep);
    }
  }

  // One scheduler pass over every request that reached generation. The
  // scheduler replicates generate()'s token-level actions per sequence,
  // so each out[k] is byte-identical to the sequential path.
  std::vector<SeqRequest> seq_requests;
  std::vector<std::size_t> slot_of;
  for (std::size_t i = 0; i < n; ++i) {
    GenPrep& prep = slots[i].prep;
    if (prep.done) continue;
    slots[i].generate_span = slots[i].trace->span("generate");
    SeqRequest seq;
    seq.prompt = prep.ids;
    seq.max_new_tokens = prep.gen.max_new_tokens;
    seq.stop_token = prep.gen.stop_token;
    seq.temperature = prep.gen.temperature;
    seq.top_k = prep.gen.top_k;
    seq.sample_seed = prep.gen.sample_seed;
    seq.deadline = prep.gen.deadline;
    seq.status = &prep.status;
    seq.trace = &*slots[i].trace;
    seq.warm_cache = prep.has_warm ? &prep.warm : nullptr;
    seq.prompt_snapshot = prefix_cache_ ? &prep.snapshot : nullptr;
    seq.on_token = prep.gen.on_token;
    seq_requests.push_back(std::move(seq));
    slot_of.push_back(i);
  }
  std::vector<std::vector<std::int32_t>> outs;
  if (!seq_requests.empty()) {
    outs = scheduler_->run(seq_requests);
    // The scheduler bumps the wisdom_spec_* counters live through its
    // metric handles; derive the acceptance-rate gauge from the totals.
    const std::uint64_t proposed = h_.spec_proposed->value();
    if (proposed > 0)
      h_.spec_acceptance->set(
          static_cast<double>(h_.spec_accepted->value()) /
          static_cast<double>(proposed));
  }

  // Post phase, again in arrival order (snapshot/memo insert order matches
  // sequential serving).
  for (std::size_t k = 0; k < seq_requests.size(); ++k) {
    Slot& slot = slots[slot_of[k]];
    slot.generate_span.reset();
    post_generate(requests[slot_of[k]], *slot.trace, std::move(outs[k]),
                  slot.prep);
  }

  std::vector<SuggestionResponse> responses(n);
  for (std::size_t i = 0; i < n; ++i) {
    Slot& slot = slots[i];
    slot.root.reset();
    if (slot.trace->active()) {
      slot.prep.response.trace_id = requests[i].trace_id.empty()
                                        ? obs::trace_id_hex(slot.id)
                                        : requests[i].trace_id;
      slot.prep.response.server_timing_ms = slot.sink->stage_totals();
      observe_stages(*slot.sink);
    }
    responses[i] = std::move(slot.prep.response);
  }

  for (std::size_t i = 0; i < n; ++i)
    if (admitted[i]) queue_.release();
  if (obs::enabled())
    h_.inflight->set(static_cast<double>(queue_.in_flight()));
  double wall = elapsed_ms(start);

  for (std::size_t i = 0; i < n; ++i) {
    h_.offered->inc();
    if (gate[i] == CircuitBreaker::Admission::ShortCircuit) {
      record_response(responses[i]);
      continue;
    }
    breaker_record(responses[i]);
    if (!admitted[i]) {
      h_.shed->inc();
      if (options_.shed_policy == ShedPolicy::RejectNewest) continue;
    }
    record_response(responses[i]);
  }
  h_.wall_ms->add(wall);
  return responses;
}

std::vector<SuggestionResponse> InferenceService::suggest_batch(
    const std::vector<SuggestionRequest>& requests) {
  if (!enter_serving()) {
    std::vector<SuggestionResponse> refused(requests.size());
    for (auto& response : refused) response = drain_refusal();
    return refused;
  }
  // The continuous scheduler replicates greedy generate() token-for-token;
  // a beam-configured service serves batches on the thread-pool path,
  // where run_one routes each request through generate_beam.
  std::vector<SuggestionResponse> responses =
      scheduler_ && options_.beam_width <= 1
          ? suggest_batch_continuous(requests)
          : suggest_batch_pooled(requests);
  exit_serving();
  return responses;
}

std::vector<SuggestionResponse> InferenceService::suggest_batch_pooled(
    const std::vector<SuggestionRequest>& requests) {
  auto start = std::chrono::steady_clock::now();
  const std::size_t n = requests.size();
  // Admission in arrival order, before the fan-out: with capacity C on an
  // otherwise idle service exactly the first C requests are admitted —
  // deterministic reject-newest. Trace ids are sequenced the same way.
  std::vector<CircuitBreaker::Admission> gate(
      n, CircuitBreaker::Admission::Allow);
  std::vector<char> admitted(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (breaker_) gate[i] = breaker_->admit();
    admitted[i] = gate[i] != CircuitBreaker::Admission::ShortCircuit &&
                          try_admit()
                      ? 1
                      : 0;
  }
  const std::uint64_t base_seq = trace_seq_.fetch_add(
      static_cast<std::uint64_t>(n), std::memory_order_relaxed);
  if (obs::enabled())
    h_.inflight->set(static_cast<double>(queue_.in_flight()));

  std::vector<SuggestionResponse> responses(n);
  util::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(n),
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          std::size_t j = static_cast<std::size_t>(i);
          const ServePath path =
              gate[j] == CircuitBreaker::Admission::ShortCircuit
                  ? ServePath::ShortCircuit
                  : (admitted[j] != 0 ? ServePath::Full : ServePath::Shed);
          responses[j] = serve_traced(requests[j], path,
                                      base_seq + static_cast<std::uint64_t>(j));
        }
      });
  for (std::size_t i = 0; i < n; ++i)
    if (admitted[i]) queue_.release();
  if (obs::enabled())
    h_.inflight->set(static_cast<double>(queue_.in_flight()));
  double wall = elapsed_ms(start);

  for (std::size_t i = 0; i < n; ++i) {
    h_.offered->inc();
    if (gate[i] == CircuitBreaker::Admission::ShortCircuit) {
      record_response(responses[i]);
      continue;
    }
    breaker_record(responses[i]);
    if (!admitted[i]) {
      h_.shed->inc();
      if (options_.shed_policy == ShedPolicy::RejectNewest) continue;
    }
    record_response(responses[i]);
  }
  h_.wall_ms->add(wall);
  return responses;
}

PrefixCacheStats InferenceService::prefix_cache_stats() const {
  return prefix_cache_ ? prefix_cache_->stats() : PrefixCacheStats{};
}

ResponseCacheStats InferenceService::response_cache_stats() const {
  return response_cache_ ? response_cache_->stats() : ResponseCacheStats{};
}

void InferenceService::invalidate_caches() {
  if (prefix_cache_) prefix_cache_->clear();
  if (response_cache_) response_cache_->clear();
}

void InferenceService::record_accept() { h_.accepted->inc(); }

void InferenceService::record_reject() { h_.rejected->inc(); }

void InferenceService::refresh_stats_locked() const {
  stats_.offered = h_.offered->value();
  stats_.requests = h_.requests->value();
  stats_.shed = h_.shed->value();
  stats_.degraded = h_.degraded->value();
  stats_.deadline_expired = h_.deadline_expired->value();
  stats_.accepted = h_.accepted->value();
  stats_.rejected = h_.rejected->value();
  stats_.generated_tokens = h_.generated_tokens->value();
  stats_.short_circuited = h_.breaker_short_circuit->value();
  stats_.drain_rejected = h_.drain_rejected->value();
  stats_.total_latency_ms = h_.request_ms->sum();
  stats_.total_wall_ms = h_.wall_ms->value();
  stats_.latencies_ms = latencies_ms_;
}

const ServiceStats& InferenceService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  refresh_stats_locked();
  return stats_;
}

ServiceStats InferenceService::stats_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  refresh_stats_locked();
  return stats_;
}

}  // namespace wisdom::serve
