// Admission circuit breaker: stop offering doomed work to a failing
// backend, answer from the deterministic fallback instead, and probe the
// backend back to health.
//
// Under a failure storm (model errors, deadline misses, shedding) every
// admitted request burns a full decode budget to produce a degraded
// response anyway. The breaker watches a rolling window of request
// outcomes and, past a failure-rate threshold, OPENS: arrivals
// short-circuit straight to the fallback path with a typed
// ServiceError::CircuitOpen — no queue slot, no decode, immediate
// response. After a cooldown it HALF-OPENS: a bounded number of probe
// requests are let through to the real pipeline; all probes succeeding
// closes the breaker, any probe failing reopens it.
//
// Everything is counted in requests, never wall time: the window is the
// last `window` outcomes, the cooldown elapses after `cooldown` refused
// arrivals, probes are an exact count. That makes every state transition
// deterministic and unit-testable at exact boundaries — the same
// check-count discipline the deadline machinery uses.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace wisdom::serve {

enum class BreakerState : std::uint8_t { Closed = 0, Open = 1, HalfOpen = 2 };

const char* breaker_state_name(BreakerState state);

struct BreakerOptions {
  // Rolling outcome window length (requests).
  int window = 32;
  // Never open on fewer than this many outcomes in the window — a single
  // early failure must not trip a cold breaker.
  int min_samples = 8;
  // Open when failures/outcomes in the window reaches this fraction.
  double failure_threshold = 0.5;
  // Arrivals short-circuited while open before the breaker half-opens.
  int cooldown = 16;
  // Probes admitted in half-open; this many consecutive successes close
  // the breaker, any failure reopens it (and restarts the cooldown).
  int probes = 2;
};

// Borrowed metric handles (all optional) updated on transitions.
struct BreakerMetrics {
  obs::Gauge* state = nullptr;            // numeric BreakerState
  obs::Counter* opened = nullptr;         // Closed/HalfOpen -> Open
  obs::Counter* closed = nullptr;         // HalfOpen -> Closed
  obs::Counter* short_circuited = nullptr;
  obs::Counter* probes = nullptr;         // probe admissions
  obs::Counter* failures_recorded = nullptr;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options = {},
                          BreakerMetrics metrics = {});

  // Per-arrival admission decision. Allow = normal pipeline; Probe =
  // normal pipeline, but the outcome decides the half-open verdict;
  // ShortCircuit = answer from the fallback without touching the backend.
  enum class Admission : std::uint8_t { Allow, Probe, ShortCircuit };
  Admission admit();

  // Outcome of a request that was admitted (Allow or Probe). Closed:
  // pushed into the rolling window, possibly opening the breaker.
  // HalfOpen: decides the probe — failure reopens, the configured number
  // of successes closes. Open: ignored (a straggler admitted before the
  // trip; it already counted once).
  void record(bool failure);

  BreakerState state() const;

  struct Stats {
    BreakerState state = BreakerState::Closed;
    int window_outcomes = 0;  // outcomes currently in the rolling window
    int window_failures = 0;
    std::uint64_t opened = 0;
    std::uint64_t closed_from_half_open = 0;
    std::uint64_t short_circuited = 0;
    std::uint64_t probes_admitted = 0;
  };
  Stats stats() const;

 private:
  void transition_locked(BreakerState next);

  BreakerOptions options_;
  BreakerMetrics metrics_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::Closed;
  // Rolling window as a circular bit-history: outcomes_ entries valid,
  // head_ is the next write slot.
  std::vector<char> window_;
  int head_ = 0;
  int outcomes_ = 0;
  int failures_ = 0;
  int cooldown_left_ = 0;
  int probes_issued_ = 0;
  int probe_successes_ = 0;
  std::uint64_t opened_total_ = 0;
  std::uint64_t closed_total_ = 0;
  std::uint64_t short_circuit_total_ = 0;
  std::uint64_t probe_total_ = 0;
};

}  // namespace wisdom::serve
