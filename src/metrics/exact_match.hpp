// Exact Match after canonical formatting: both sides are normalized with
// the Ansible-style emitter before comparison, so differences in quoting,
// flow vs block style or trailing whitespace do not break a match, while
// any structural or value difference does. Unparseable predictions can only
// match by literal (trimmed) equality.
#pragma once

#include <string_view>

namespace wisdom::metrics {

bool exact_match(std::string_view prediction, std::string_view target);

}  // namespace wisdom::metrics
