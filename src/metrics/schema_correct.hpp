// Schema Correct: "designed to measure the correctness of the result, i.e.
// whether or not it satisfies the Ansible schema. It does not reflect the
// accuracy of the model, as it applies just to the predictions." A
// prediction is schema-correct when it parses as YAML and the strict linter
// reports no errors. The strictness mismatch the paper describes (a perfect
// Exact Match sample can score 0 here) falls out of the linter's rejection
// of historical forms such as k=v argument strings.
#pragma once

#include <string_view>

namespace wisdom::metrics {

bool schema_correct(std::string_view prediction);

}  // namespace wisdom::metrics
