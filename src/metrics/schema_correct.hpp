// Schema Correct: "designed to measure the correctness of the result, i.e.
// whether or not it satisfies the Ansible schema. It does not reflect the
// accuracy of the model, as it applies just to the predictions." A
// prediction is schema-correct when it parses as YAML and the diagnostics
// engine reports no errors. The strictness mismatch the paper describes (a
// perfect Exact Match sample can score 0 here) falls out of the engine's
// rejection of historical forms such as k=v argument strings.
#pragma once

#include <string_view>

#include "analysis/diagnostic.hpp"

namespace wisdom::metrics {

bool schema_correct(std::string_view prediction);

// The same predicate over an analysis the caller already ran (so scoring
// pipelines that want the per-rule breakdown analyze only once). An empty
// document is only an advisory warning to the engine but is never a
// schema-correct *answer*.
bool schema_correct(const wisdom::analysis::AnalysisResult& analysis);

}  // namespace wisdom::metrics
