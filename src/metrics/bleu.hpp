// BLEU for Ansible-YAML, as used in the paper ("the BLEU score's basis on
// n-gram coverage suggests it could be a useful metric" — sequences matter
// in YAML while some reordering is permitted). Standard modified n-gram
// precision up to 4-grams with brevity penalty; sentence-level scores use
// ORANGE add-one smoothing (Lin & Och 2004, the paper's second BLEU
// reference) so short near-misses are not zeroed by an empty 4-gram match.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wisdom::metrics {

inline constexpr std::size_t kBleuMaxOrder = 4;

// Sentence BLEU in [0, 1] with add-one smoothing for orders > 1.
double sentence_bleu(std::string_view candidate, std::string_view reference);

// Corpus BLEU accumulator: clipped match and total counts are pooled over
// the whole test set before the geometric mean, the standard corpus BLEU
// definition (no smoothing needed once counts are pooled).
class BleuAccumulator {
 public:
  void add(std::string_view candidate, std::string_view reference);

  // Corpus BLEU in [0, 1]; 0 when nothing was added.
  double score() const;
  std::size_t sample_count() const { return samples_; }

 private:
  std::int64_t matches_[kBleuMaxOrder] = {0, 0, 0, 0};
  std::int64_t totals_[kBleuMaxOrder] = {0, 0, 0, 0};
  std::int64_t candidate_length_ = 0;
  std::int64_t reference_length_ = 0;
  std::size_t samples_ = 0;
};

}  // namespace wisdom::metrics
