#include "metrics/semantic_correct.hpp"

#include "analysis/engine.hpp"
#include "metrics/schema_correct.hpp"

namespace wisdom::metrics {

bool semantic_correct(const wisdom::analysis::AnalysisResult& analysis) {
  // Schema correctness filters semantic rules out; here every error
  // counts, so semantic_correct implies (and strengthens) schema_correct.
  if (!schema_correct(analysis)) return false;
  return analysis.ok();
}

bool semantic_correct(std::string_view prediction) {
  return semantic_correct(wisdom::analysis::analyze(prediction));
}

}  // namespace wisdom::metrics
