#include "metrics/exact_match.hpp"

#include "util/strings.hpp"
#include "yaml/emit.hpp"

namespace wisdom::metrics {

namespace util = wisdom::util;
namespace yaml = wisdom::yaml;

bool exact_match(std::string_view prediction, std::string_view target) {
  auto norm_pred = yaml::normalize(prediction);
  auto norm_target = yaml::normalize(target);
  if (norm_pred && norm_target) return *norm_pred == *norm_target;
  return util::trim(prediction) == util::trim(target);
}

}  // namespace wisdom::metrics
