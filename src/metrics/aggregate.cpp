#include "metrics/aggregate.hpp"

#include "metrics/ansible_aware.hpp"
#include "metrics/exact_match.hpp"
#include "metrics/schema_correct.hpp"
#include "util/strings.hpp"

namespace wisdom::metrics {

namespace util = wisdom::util;

std::string MetricsReport::to_string() const {
  return "schema=" + util::fmt_fixed(schema_correct, 2) +
         " em=" + util::fmt_fixed(exact_match, 2) +
         " bleu=" + util::fmt_fixed(bleu, 2) +
         " aware=" + util::fmt_fixed(ansible_aware, 2) +
         " n=" + std::to_string(count);
}

void MetricsAccumulator::add(std::string_view prediction,
                             std::string_view target) {
  bleu_.add(prediction, target);
  if (schema_correct(prediction)) ++schema_ok_;
  if (exact_match(prediction, target)) ++exact_;
  aware_sum_ += ansible_aware_text(prediction, target);
  ++count_;
}

MetricsReport MetricsAccumulator::report() const {
  MetricsReport report;
  report.count = count_;
  if (count_ == 0) return report;
  double n = static_cast<double>(count_);
  report.schema_correct = 100.0 * static_cast<double>(schema_ok_) / n;
  report.exact_match = 100.0 * static_cast<double>(exact_) / n;
  report.bleu = 100.0 * bleu_.score();
  report.ansible_aware = 100.0 * aware_sum_ / n;
  return report;
}

}  // namespace wisdom::metrics
