#include "metrics/aggregate.hpp"

#include <algorithm>

#include "analysis/engine.hpp"
#include "metrics/ansible_aware.hpp"
#include "metrics/exact_match.hpp"
#include "metrics/schema_correct.hpp"
#include "metrics/semantic_correct.hpp"
#include "util/strings.hpp"

namespace wisdom::metrics {

namespace util = wisdom::util;

std::string MetricsReport::to_string() const {
  return "schema=" + util::fmt_fixed(schema_correct, 2) +
         " sem=" + util::fmt_fixed(semantic_correct, 2) +
         " em=" + util::fmt_fixed(exact_match, 2) +
         " bleu=" + util::fmt_fixed(bleu, 2) +
         " aware=" + util::fmt_fixed(ansible_aware, 2) +
         " n=" + std::to_string(count);
}

std::string MetricsReport::violations_to_string() const {
  std::string out;
  for (const auto& [rule, count] : rule_violations) {
    out += rule + ": " + std::to_string(count) + "\n";
  }
  return out;
}

void MetricsAccumulator::add(std::string_view prediction,
                             std::string_view target) {
  bleu_.add(prediction, target);
  analysis::AnalysisResult analyzed = analysis::analyze(prediction);
  if (schema_correct(analyzed)) ++schema_ok_;
  if (semantic_correct(analyzed)) ++semantic_ok_;
  for (const auto& d : analyzed.diagnostics) {
    auto it = std::find_if(rule_counts_.begin(), rule_counts_.end(),
                           [&](const auto& e) { return e.first == d.rule; });
    if (it == rule_counts_.end()) {
      rule_counts_.emplace_back(d.rule, 1);
    } else {
      ++it->second;
    }
  }
  if (exact_match(prediction, target)) ++exact_;
  aware_sum_ += ansible_aware_text(prediction, target);
  ++count_;
}

MetricsReport MetricsAccumulator::report() const {
  MetricsReport report;
  report.count = count_;
  report.rule_violations = rule_counts_;
  std::sort(report.rule_violations.begin(), report.rule_violations.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (count_ == 0) return report;
  double n = static_cast<double>(count_);
  report.schema_correct = 100.0 * static_cast<double>(schema_ok_) / n;
  report.semantic_correct = 100.0 * static_cast<double>(semantic_ok_) / n;
  report.exact_match = 100.0 * static_cast<double>(exact_) / n;
  report.bleu = 100.0 * bleu_.score();
  report.ansible_aware = 100.0 * aware_sum_ / n;
  return report;
}

}  // namespace wisdom::metrics
