#include "metrics/schema_correct.hpp"

#include "ansible/linter.hpp"

namespace wisdom::metrics {

bool schema_correct(std::string_view prediction) {
  return wisdom::ansible::lint_text(prediction).ok();
}

}  // namespace wisdom::metrics
