#include "metrics/schema_correct.hpp"

#include "analysis/engine.hpp"
#include "analysis/rules.hpp"

namespace wisdom::metrics {

bool schema_correct(const wisdom::analysis::AnalysisResult& analysis) {
  for (const auto& d : analysis.diagnostics) {
    if (d.rule == "empty-document") return false;
    if (d.severity != wisdom::analysis::Severity::Error) continue;
    // Error-severity *semantic* findings (dataflow/typecheck/taint) do not
    // change this metric: the paper's Schema Correct is about satisfying
    // the Ansible schema, and its numbers must stay comparable across
    // engine generations. They gate `semantic_correct` instead.
    const wisdom::analysis::RuleInfo* info =
        wisdom::analysis::find_rule(d.rule);
    if (info && info->semantic) continue;
    return false;
  }
  return true;
}

bool schema_correct(std::string_view prediction) {
  return schema_correct(wisdom::analysis::analyze(prediction));
}

}  // namespace wisdom::metrics
