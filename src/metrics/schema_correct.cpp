#include "metrics/schema_correct.hpp"

#include "analysis/engine.hpp"

namespace wisdom::metrics {

bool schema_correct(const wisdom::analysis::AnalysisResult& analysis) {
  if (!analysis.ok()) return false;
  for (const auto& d : analysis.diagnostics)
    if (d.rule == "empty-document") return false;
  return true;
}

bool schema_correct(std::string_view prediction) {
  return schema_correct(wisdom::analysis::analyze(prediction));
}

}  // namespace wisdom::metrics
