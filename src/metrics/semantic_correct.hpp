// Semantic Correct: the axis Schema Correct cannot see. A prediction is
// semantic-correct when it is schema-correct *and* the IR passes (reaching
// definitions, catalog type checking, taint) report no error-severity
// findings — variables defined before use, notify targets that exist,
// mutually-exclusive parameters not combined. This is the deployment-study
// notion of acceptability (arXiv 2402.17442): suggestions users keep are
// ones that are right, not merely well-formed.
#pragma once

#include <string_view>

#include "analysis/diagnostic.hpp"

namespace wisdom::metrics {

bool semantic_correct(std::string_view prediction);

// The same predicate over an analysis the caller already ran.
bool semantic_correct(const wisdom::analysis::AnalysisResult& analysis);

}  // namespace wisdom::metrics
