#include "metrics/ansible_aware.hpp"

#include <string>

#include "ansible/catalog.hpp"
#include "ansible/freeform.hpp"
#include "ansible/keywords.hpp"
#include "ansible/model.hpp"
#include "util/strings.hpp"
#include "yaml/parse.hpp"

namespace wisdom::metrics {

namespace ansible = wisdom::ansible;
namespace util = wisdom::util;
namespace yaml = wisdom::yaml;

namespace {

const ansible::ModuleCatalog& catalog() {
  return ansible::ModuleCatalog::instance();
}

// Scalar equality on resolved values, with a literal-text fallback so that
// e.g. the string "1" and the integer 1 (a quoting difference with no
// execution effect) compare equal.
bool scalar_equal(const yaml::Node& a, const yaml::Node& b) {
  if (a == b) return true;
  return util::trim(a.scalar_text()) == util::trim(b.scalar_text());
}

// Converts an old-style "k1=v1 k2=v2" argument string to a parameter dict;
// anything else passes through unchanged.
yaml::Node normalize_args(const yaml::Node& args) {
  if (args.is_str() && ansible::looks_like_kv_args(args.as_str())) {
    return ansible::parse_free_form(args.as_str()).params;
  }
  return args;
}

// Generic recursive value score, used for keyword values, module parameter
// dicts and nested structures.
double score_value(const yaml::Node& pred, const yaml::Node& target) {
  if (target.is_scalar()) {
    if (!pred.is_scalar()) return 0.0;
    return scalar_equal(pred, target) ? 1.0 : 0.0;
  }
  if (target.is_seq()) {
    if (!pred.is_seq()) return 0.0;
    if (target.size() == 0) return 1.0;  // nothing required, inserts ignored
    double sum = 0.0;
    for (std::size_t i = 0; i < target.size(); ++i) {
      if (i < pred.size())
        sum += score_value(pred.items()[i], target.items()[i]);
    }
    return sum / static_cast<double>(target.size());
  }
  // target is a mapping: average over target entries; missing keys score 0,
  // inserted prediction keys are ignored.
  if (!pred.is_map()) return 0.0;
  if (target.size() == 0) return 1.0;
  double sum = 0.0;
  for (const auto& [key, value] : target.entries()) {
    const yaml::Node* pv = pred.find(key);
    if (!pv) continue;  // key score 0, value score 0
    sum += 0.5 + 0.5 * score_value(*pv, value);  // avg(key=1, value)
  }
  return sum / static_cast<double>(target.size());
}

double score_task(const yaml::Node& pred_node, const yaml::Node& target_node);

// Scores the module key-value pair of a task.
double score_module_pair(const ansible::Task& pred,
                         const ansible::Task& target) {
  if (pred.module.empty()) return 0.0;
  std::string pred_fqcn = catalog().to_fqcn(pred.module);
  std::string target_fqcn = catalog().to_fqcn(target.module);

  double key_score = 0.0;
  if (pred_fqcn == target_fqcn) {
    key_score = 1.0;
  } else if (catalog().near_equivalent(pred.module, target.module)) {
    // "such module differences are given a partial key score which is
    // averaged with the score of their arguments"
    key_score = 0.5;
  } else {
    return 0.0;
  }
  double value_score =
      score_value(normalize_args(pred.args), normalize_args(target.args));
  return 0.5 * (key_score + value_score);
}

// Scores one task against the target task, per the paper's recipe.
double score_task(const yaml::Node& pred_node,
                  const yaml::Node& target_node) {
  if (!target_node.is_map()) return 0.0;
  if (!pred_node.is_map()) return 0.0;

  ansible::Task pred = ansible::Task::from_node(pred_node);
  ansible::Task target = ansible::Task::from_node(target_node);

  double sum = 0.0;
  std::size_t pairs = 0;

  if (!target.module.empty()) {
    sum += score_module_pair(pred, target);
    ++pairs;
  }
  for (const auto& [key, value] : target.keywords) {
    ++pairs;
    // Block bodies are task lists and recurse through task scoring.
    if (ansible::is_block_key(key)) {
      const yaml::Node* pv = pred_node.find(key);
      if (!pv || !pv->is_seq() || !value.is_seq()) continue;
      double body = 0.0;
      for (std::size_t i = 0; i < value.size(); ++i) {
        if (i < pv->size()) body += score_task(pv->items()[i], value.items()[i]);
      }
      if (value.size() > 0) body /= static_cast<double>(value.size());
      sum += 0.5 * (1.0 + body);
      continue;
    }
    const yaml::Node* pv = nullptr;
    for (const auto& [pk, pvv] : pred.keywords) {
      if (pk == key) {
        pv = &pvv;
        break;
      }
    }
    if (!pv) continue;  // missing keyword: 0
    sum += 0.5 * (1.0 + score_value(*pv, value));
  }
  if (pairs == 0) return 1.0;  // target carried only a name
  return sum / static_cast<double>(pairs);
}

double score_play(const yaml::Node& pred_node, const yaml::Node& target_node) {
  if (!target_node.is_map()) return 0.0;
  if (!pred_node.is_map()) return 0.0;

  double sum = 0.0;
  std::size_t pairs = 0;
  for (const auto& [key, value] : target_node.entries()) {
    if (key == "name") continue;  // ignored, like task names
    ++pairs;
    const yaml::Node* pv = pred_node.find(key);
    if (!pv) continue;
    if ((key == "tasks" || key == "pre_tasks" || key == "post_tasks" ||
         key == "handlers") &&
        value.is_seq()) {
      double body = 0.0;
      if (pv->is_seq()) {
        for (std::size_t i = 0; i < value.size(); ++i) {
          if (i < pv->size())
            body += score_task(pv->items()[i], value.items()[i]);
        }
        if (value.size() > 0) body /= static_cast<double>(value.size());
      }
      sum += 0.5 * (1.0 + body);
    } else {
      sum += 0.5 * (1.0 + score_value(*pv, value));
    }
  }
  if (pairs == 0) return 1.0;
  return sum / static_cast<double>(pairs);
}

}  // namespace

double ansible_aware(const yaml::Node& prediction, const yaml::Node& target) {
  if (target.is_map()) {
    // Single task. Accept a one-element sequence prediction (a model that
    // wrapped its task in a list) by unwrapping it.
    const yaml::Node* pred = &prediction;
    if (prediction.is_seq() && prediction.size() >= 1 &&
        prediction.items()[0].is_map()) {
      pred = &prediction.items()[0];
    }
    return score_task(*pred, target);
  }
  if (!target.is_seq()) {
    return score_value(prediction, target);
  }
  if (target.size() == 0) return 1.0;
  if (!prediction.is_seq()) return 0.0;

  bool playbook = ansible::looks_like_playbook(target);
  double sum = 0.0;
  for (std::size_t i = 0; i < target.size(); ++i) {
    if (i >= prediction.size()) continue;
    sum += playbook ? score_play(prediction.items()[i], target.items()[i])
                    : score_task(prediction.items()[i], target.items()[i]);
  }
  return sum / static_cast<double>(target.size());
}

double ansible_aware_text(std::string_view prediction,
                          std::string_view target) {
  auto target_doc = yaml::parse_document(target);
  if (!target_doc) return 0.0;
  auto pred_doc = yaml::parse_document(prediction);
  if (!pred_doc) return 0.0;
  return ansible_aware(*pred_doc, *target_doc);
}

}  // namespace wisdom::metrics
