// Aggregation of the four paper metrics over a test set, producing the
// row format of Tables IV-VI: Schema Correct / EM / BLEU / Ansible Aware,
// all scaled to [0, 100]. The accumulator also keeps the diagnostics
// engine's per-rule violation counts over all predictions, so a metrics run
// reports not just *how many* predictions are schema-incorrect but *why*.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/bleu.hpp"

namespace wisdom::metrics {

struct MetricsReport {
  double schema_correct = 0.0;
  // Schema-correct *and* clean under the semantic passes (dataflow /
  // typecheck / taint errors); always <= schema_correct.
  double semantic_correct = 0.0;
  double exact_match = 0.0;
  double bleu = 0.0;
  double ansible_aware = 0.0;
  std::size_t count = 0;
  // Diagnostics-engine rule id -> total occurrences across all predictions,
  // sorted by count descending then id (deterministic).
  std::vector<std::pair<std::string, std::size_t>> rule_violations;

  std::string to_string() const;
  // One "rule: count" line per entry of rule_violations ("" when clean).
  std::string violations_to_string() const;
};

class MetricsAccumulator {
 public:
  // Adds one (prediction, target) pair; computes all four metrics and the
  // per-rule diagnostic counts in a single analysis pass.
  void add(std::string_view prediction, std::string_view target);

  MetricsReport report() const;
  std::size_t sample_count() const { return count_; }

 private:
  BleuAccumulator bleu_;
  std::size_t schema_ok_ = 0;
  std::size_t semantic_ok_ = 0;
  std::size_t exact_ = 0;
  double aware_sum_ = 0.0;
  std::size_t count_ = 0;
  std::vector<std::pair<std::string, std::size_t>> rule_counts_;
};

}  // namespace wisdom::metrics
