// Aggregation of the four paper metrics over a test set, producing the
// row format of Tables IV-VI: Schema Correct / EM / BLEU / Ansible Aware,
// all scaled to [0, 100].
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "metrics/bleu.hpp"

namespace wisdom::metrics {

struct MetricsReport {
  double schema_correct = 0.0;
  double exact_match = 0.0;
  double bleu = 0.0;
  double ansible_aware = 0.0;
  std::size_t count = 0;

  std::string to_string() const;
};

class MetricsAccumulator {
 public:
  // Adds one (prediction, target) pair; computes all four metrics.
  void add(std::string_view prediction, std::string_view target);

  MetricsReport report() const;
  std::size_t sample_count() const { return count_; }

 private:
  BleuAccumulator bleu_;
  std::size_t schema_ok_ = 0;
  std::size_t exact_ = 0;
  double aware_sum_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace wisdom::metrics
