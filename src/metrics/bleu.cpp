#include "metrics/bleu.hpp"

#include <algorithm>
#include <cmath>

#include "text/ngram.hpp"
#include "text/tokenize.hpp"

namespace wisdom::metrics {

namespace text = wisdom::text;

namespace {

struct OrderStats {
  std::int64_t matches = 0;
  std::int64_t total = 0;
};

void accumulate_orders(std::span<const std::string> cand,
                       std::span<const std::string> ref,
                       OrderStats (&stats)[kBleuMaxOrder]) {
  for (std::size_t n = 1; n <= kBleuMaxOrder; ++n) {
    text::NgramCounts cand_counts = text::count_ngrams(cand, n);
    text::NgramCounts ref_counts = text::count_ngrams(ref, n);
    std::int64_t total = 0;
    for (const auto& [gram, count] : cand_counts) total += count;
    stats[n - 1].matches += text::clipped_matches(cand_counts, ref_counts);
    stats[n - 1].total += total;
  }
}

double brevity_penalty(std::int64_t cand_len, std::int64_t ref_len) {
  if (cand_len >= ref_len) return 1.0;
  if (cand_len == 0) return 0.0;
  return std::exp(1.0 - static_cast<double>(ref_len) /
                            static_cast<double>(cand_len));
}

}  // namespace

double sentence_bleu(std::string_view candidate, std::string_view reference) {
  std::vector<std::string> cand = text::bleu_tokenize(candidate);
  std::vector<std::string> ref = text::bleu_tokenize(reference);
  if (cand.empty() || ref.empty()) return cand.empty() && ref.empty() ? 1.0 : 0.0;

  OrderStats stats[kBleuMaxOrder];
  accumulate_orders(cand, ref, stats);

  double log_sum = 0.0;
  for (std::size_t n = 1; n <= kBleuMaxOrder; ++n) {
    double matches = static_cast<double>(stats[n - 1].matches);
    double total = static_cast<double>(stats[n - 1].total);
    if (n > 1) {
      // ORANGE add-one smoothing.
      matches += 1.0;
      total += 1.0;
    }
    if (total == 0.0) {
      // Candidate shorter than n tokens: treat the missing order as a hard
      // miss only when unsmoothed (n == 1 cannot be empty here).
      return 0.0;
    }
    if (matches == 0.0) return 0.0;
    log_sum += std::log(matches / total);
  }
  double precision = std::exp(log_sum / kBleuMaxOrder);
  return brevity_penalty(static_cast<std::int64_t>(cand.size()),
                         static_cast<std::int64_t>(ref.size())) *
         precision;
}

void BleuAccumulator::add(std::string_view candidate,
                          std::string_view reference) {
  std::vector<std::string> cand = text::bleu_tokenize(candidate);
  std::vector<std::string> ref = text::bleu_tokenize(reference);
  OrderStats stats[kBleuMaxOrder];
  accumulate_orders(cand, ref, stats);
  for (std::size_t n = 0; n < kBleuMaxOrder; ++n) {
    matches_[n] += stats[n].matches;
    totals_[n] += stats[n].total;
  }
  candidate_length_ += static_cast<std::int64_t>(cand.size());
  reference_length_ += static_cast<std::int64_t>(ref.size());
  ++samples_;
}

double BleuAccumulator::score() const {
  if (samples_ == 0) return 0.0;
  double log_sum = 0.0;
  for (std::size_t n = 0; n < kBleuMaxOrder; ++n) {
    if (totals_[n] == 0 || matches_[n] == 0) return 0.0;
    log_sum += std::log(static_cast<double>(matches_[n]) /
                        static_cast<double>(totals_[n]));
  }
  return brevity_penalty(candidate_length_, reference_length_) *
         std::exp(log_sum / kBleuMaxOrder);
}

}  // namespace wisdom::metrics
