// The Ansible Aware metric, implemented exactly as §Experiments/Evaluation
// Metrics describes it:
//
//   * A task is a mapping; its score is the average of the scores of the
//     top-level key-value pairs *found in the target* — keys missing from
//     the prediction score 0, keys inserted by the prediction are ignored
//     ("insertions are less costly than deletions as they can be easily
//     removed").
//   * The "name" key and its value are ignored (no effect on execution).
//   * Each pair's score is the average of its key score and value score.
//   * List / dict values are scored recursively by averaging their items /
//     entries.
//   * Module names are replaced by their FQCN before comparison
//     (copy -> ansible.builtin.copy).
//   * Old-style "k1=v1 k2=v2" parameter strings are converted to a dict
//     before comparison.
//   * Almost-equivalent modules (command/shell, copy/template,
//     package/apt/dnf/yum) receive a partial key score which is averaged
//     with the score of their arguments.
//   * For playbooks, the play's top-level pairs are averaged, with each
//     task scored as above.
//
// Scores are in [0, 1]; the evaluation harness reports them scaled to 100.
#pragma once

#include <string_view>

#include "yaml/node.hpp"

namespace wisdom::metrics {

// Score structured nodes (target defines which pairs count).
double ansible_aware(const yaml::Node& prediction, const yaml::Node& target);

// Parses both sides. An unparseable prediction scores 0; the target is
// expected to be valid (it comes from the dataset) — if it does not parse
// the sample scores 0 as well.
double ansible_aware_text(std::string_view prediction,
                          std::string_view target);

}  // namespace wisdom::metrics
