#include "ansible/linter.hpp"

#include <algorithm>
#include <tuple>

#include "ansible/catalog.hpp"
#include "ansible/freeform.hpp"
#include "ansible/keywords.hpp"
#include "ansible/model.hpp"
#include "util/strings.hpp"
#include "yaml/parse.hpp"

namespace wisdom::ansible {

namespace util = wisdom::util;

bool LintResult::ok() const { return error_count() == 0; }

std::size_t LintResult::error_count() const {
  std::size_t n = 0;
  for (const Violation& v : violations)
    if (v.severity == Severity::Error) ++n;
  return n;
}

std::string LintResult::to_string() const {
  std::vector<const Violation*> sorted;
  sorted.reserve(violations.size());
  for (const Violation& v : violations) sorted.push_back(&v);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Violation* a, const Violation* b) {
                     return std::tie(a->span.line, a->span.column, a->rule) <
                            std::tie(b->span.line, b->span.column, b->rule);
                   });
  std::string out;
  for (const Violation* v : sorted) {
    out += v->severity == Severity::Error ? "error" : "warning";
    out += " [" + v->rule + "]: " + v->message + "\n";
  }
  return out;
}

void LintResult::add(Severity severity, std::string rule,
                     std::string message) {
  violations.push_back({std::move(rule), std::move(message), severity, {}});
}

void LintResult::add(Severity severity, std::string rule, std::string message,
                     const yaml::Span& span) {
  violations.push_back({std::move(rule), std::move(message), severity, span});
}

void LintResult::merge(const LintResult& other) {
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
}

namespace {

// Jinja expressions are opaque to schema validation: "{{ anything }}" can
// produce any type at runtime, so a templated scalar satisfies any shape.
bool is_templated(const yaml::Node& node) {
  return node.is_str() && util::contains(node.as_str(), "{{");
}

bool accepts_bool(const yaml::Node& node) {
  if (node.is_bool()) return true;
  return is_templated(node);
}

bool accepts_int(const yaml::Node& node) {
  if (node.is_int()) return true;
  if (node.is_str() && util::is_integer(node.as_str())) return true;
  return is_templated(node);
}

bool accepts_scalar_str(const yaml::Node& node) {
  // Ansible stringifies scalars; only collections are a shape error.
  return node.is_scalar();
}

bool accepts_list(const yaml::Node& node) {
  if (node.is_seq()) {
    return true;
  }
  // Scalars coerce to single-element lists; jinja can expand to a list.
  return node.is_scalar();
}

bool accepts_str_or_list(const yaml::Node& node) {
  if (node.is_seq()) {
    for (const yaml::Node& item : node.items())
      if (!item.is_scalar()) return false;
    return true;
  }
  return node.is_scalar();
}

void check_keyword_value(const KeywordSpec& spec, const yaml::Node& value,
                         LintResult& result) {
  bool ok = true;
  switch (spec.value) {
    case KeywordValue::Str: ok = accepts_scalar_str(value); break;
    case KeywordValue::Bool: ok = accepts_bool(value); break;
    case KeywordValue::Int: ok = accepts_int(value); break;
    case KeywordValue::StrOrList: ok = accepts_str_or_list(value); break;
    case KeywordValue::List: ok = accepts_list(value); break;
    case KeywordValue::Dict:
      ok = value.is_map() || is_templated(value);
      break;
    case KeywordValue::Any: ok = true; break;
  }
  if (!ok) {
    result.add(Severity::Error, "keyword-type",
               "keyword '" + std::string(spec.name) +
                   "' has an invalid value shape",
               value.anchor_span());
  }
}

void check_param_value(const ModuleSpec& module, const ParamSpec& param,
                       const yaml::Node& value, LintResult& result) {
  if (is_templated(value)) return;
  bool ok = true;
  switch (param.type) {
    case ParamType::Str:
    case ParamType::Path:
      ok = value.is_scalar();
      break;
    case ParamType::Bool: ok = accepts_bool(value); break;
    case ParamType::Int: ok = accepts_int(value); break;
    case ParamType::List: ok = accepts_list(value); break;
    case ParamType::Dict: ok = value.is_map(); break;
    case ParamType::Choice: {
      ok = value.is_scalar();
      if (ok && value.is_str()) {
        ok = false;
        for (const std::string& choice : param.choices) {
          if (value.as_str() == choice) {
            ok = true;
            break;
          }
        }
      } else if (ok && value.is_bool()) {
        // `state: true` style booleans (seboolean) pass only when the
        // parameter is declared Bool; a Choice never accepts a boolean.
        ok = false;
      }
      break;
    }
  }
  if (!ok) {
    result.add(Severity::Error, "param-value",
               "module '" + module.fqcn + "' parameter '" + param.name +
                   "' has an invalid value",
               value.anchor_span());
  }
}

void check_module_args(const ModuleSpec& module, const yaml::Node& args,
                       const yaml::Node& task_node, LintResult& result) {
  // Merge `args:` keyword content with the module value when both exist.
  const yaml::Node* extra = task_node.find("args");

  if (args.is_str()) {
    if (module.free_form) {
      return;  // command/shell/meta/include_tasks string operand
    }
    if (looks_like_kv_args(args.as_str())) {
      // Historical form: valid Ansible, rejected by the strict schema —
      // exactly the mismatch the paper calls out for Schema Correct.
      result.add(Severity::Error, "old-style-args",
                 "module '" + module.fqcn +
                     "' uses the legacy k=v argument string",
                 args.span());
      return;
    }
    result.add(Severity::Error, "args-shape",
               "module '" + module.fqcn +
                   "' does not accept a free-form string",
               args.span());
    return;
  }
  if (args.is_null()) {
    // Acceptable only when no parameter is required or args: supplies them.
    for (const ParamSpec& p : module.params) {
      if (p.required && !(extra && extra->is_map() && extra->has(p.name))) {
        result.add(Severity::Error, "missing-required-param",
                   "module '" + module.fqcn + "' requires parameter '" +
                       p.name + "'",
                   args.anchor_span());
      }
    }
    return;
  }
  if (!args.is_map()) {
    result.add(Severity::Error, "args-shape",
               "module '" + module.fqcn + "' arguments must be a mapping",
               args.anchor_span());
    return;
  }

  for (const auto& [key, value] : args.entries()) {
    const ParamSpec* param = module.param(key);
    if (!param) {
      if (module.arbitrary_params) continue;  // set_fact/add_host
      if (module.free_form && (key == "cmd" || key == "_raw_params"))
        continue;
      result.add(Severity::Error, "unknown-param",
                 "module '" + module.fqcn + "' has no parameter '" + key +
                     "'",
                 value.anchor_span());
      continue;
    }
    check_param_value(module, *param, value, result);
  }
  for (const ParamSpec& p : module.params) {
    if (!p.required) continue;
    bool present = args.has(p.name) ||
                   (extra && extra->is_map() && extra->has(p.name));
    if (!present) {
      result.add(Severity::Error, "missing-required-param",
                 "module '" + module.fqcn + "' requires parameter '" +
                     p.name + "'",
                 args.anchor_span());
    }
  }
}

void lint_block(const yaml::Node& task, bool handler_context,
                LintResult& result);

void lint_one_task(const yaml::Node& task, bool handler_context,
                   LintResult& result) {
  if (!task.is_map()) {
    result.add(Severity::Error, "task-shape", "task must be a mapping",
               task.anchor_span());
    return;
  }
  if (task.size() == 0) {
    result.add(Severity::Error, "task-shape", "task mapping is empty",
               task.anchor_span());
    return;
  }
  if (is_block(task)) {
    lint_block(task, handler_context, result);
    return;
  }

  const ModuleCatalog& catalog = ModuleCatalog::instance();
  std::string module_key;
  for (const auto& [key, value] : task.entries()) {
    if (key == "name") {
      if (!value.is_scalar()) {
        result.add(Severity::Error, "name-shape",
                   "task name must be a scalar", value.anchor_span());
      }
      continue;
    }
    const KeywordSpec* keyword = find_task_keyword(key);
    if (keyword) {
      check_keyword_value(*keyword, value, result);
      continue;
    }
    if (!module_key.empty()) {
      result.add(Severity::Error, "multiple-modules",
                 "task has more than one module key ('" + module_key +
                     "' and '" + key + "')",
                 value.anchor_span());
      continue;
    }
    module_key = key;
    const ModuleSpec* module = catalog.resolve(key);
    if (!module) {
      result.add(Severity::Error, "unknown-module",
                 "unknown module or keyword '" + key + "'",
                 value.anchor_span());
      continue;
    }
    if (key.find('.') == std::string::npos) {
      // Short module names lint as warnings (fqcn rule of ansible-lint).
      result.add(Severity::Warning, "fqcn",
                 "module '" + key + "' should use its FQCN '" +
                     module->fqcn + "'",
                 value.anchor_span());
    }
    check_module_args(*module, value, task, result);
  }
  if (module_key.empty()) {
    result.add(Severity::Error, "module-missing",
               "task does not invoke a module", task.anchor_span());
  }
}

void lint_block(const yaml::Node& task, bool handler_context,
                LintResult& result) {
  for (const auto& [key, value] : task.entries()) {
    if (is_block_key(key)) {
      if (!value.is_seq() || value.size() == 0) {
        result.add(Severity::Error, "block-shape",
                   "'" + key + "' must be a non-empty task list",
                   value.anchor_span());
        continue;
      }
      for (const yaml::Node& child : value.items())
        lint_one_task(child, handler_context, result);
      continue;
    }
    if (key == "name") continue;
    const KeywordSpec* keyword = find_task_keyword(key);
    if (!keyword) {
      result.add(Severity::Error, "unknown-keyword",
                 "unknown block keyword '" + key + "'",
                 value.anchor_span());
      continue;
    }
    check_keyword_value(*keyword, value, result);
  }
}

}  // namespace

LintResult lint_task(const yaml::Node& task, bool handler_context) {
  LintResult result;
  lint_one_task(task, handler_context, result);
  return result;
}

LintResult lint_task_list(const yaml::Node& tasks) {
  LintResult result;
  if (!tasks.is_seq()) {
    result.add(Severity::Error, "tasks-shape",
               "task file must be a sequence of tasks", tasks.anchor_span());
    return result;
  }
  for (const yaml::Node& task : tasks.items())
    lint_one_task(task, /*handler_context=*/false, result);
  return result;
}

LintResult lint_playbook(const yaml::Node& playbook) {
  LintResult result;
  if (!playbook.is_seq() || playbook.size() == 0) {
    result.add(Severity::Error, "playbook-shape",
               "playbook must be a non-empty sequence of plays",
               playbook.anchor_span());
    return result;
  }
  for (const yaml::Node& play : playbook.items()) {
    if (!play.is_map()) {
      result.add(Severity::Error, "play-shape", "play must be a mapping",
                 play.anchor_span());
      continue;
    }
    bool has_hosts = false;
    bool has_body = false;
    for (const auto& [key, value] : play.entries()) {
      if (key == "name") {
        if (!value.is_scalar())
          result.add(Severity::Error, "name-shape",
                     "play name must be a scalar", value.anchor_span());
        continue;
      }
      const KeywordSpec* keyword = find_play_keyword(key);
      if (!keyword) {
        result.add(Severity::Error, "unknown-play-keyword",
                   "unknown play keyword '" + key + "'",
                   value.anchor_span());
        continue;
      }
      check_keyword_value(*keyword, value, result);
      if (key == "hosts") has_hosts = true;
      if (key == "tasks" || key == "pre_tasks" || key == "post_tasks" ||
          key == "roles" || key == "handlers") {
        has_body = true;
        if (value.is_seq() && key != "roles") {
          for (const yaml::Node& task : value.items())
            lint_one_task(task, key == "handlers", result);
        }
      }
    }
    if (!has_hosts) {
      result.add(Severity::Error, "hosts-missing",
                 "play does not declare 'hosts'", play.anchor_span());
    }
    if (!has_body) {
      result.add(Severity::Error, "play-empty",
                 "play has no tasks, roles or handlers", play.anchor_span());
    }
  }
  return result;
}

LintResult lint_text(std::string_view text) {
  LintResult result;
  if (util::trim(text).empty()) {
    // ansible-lint treats an empty file as advisory, not a schema error.
    result.add(Severity::Warning, "empty-document",
               "document is empty", yaml::Span{0, 0, 1, 1});
    return result;
  }
  yaml::ParseError err;
  auto doc = yaml::parse_document(text, &err);
  if (!doc) {
    yaml::Span span;
    span.line = err.line;
    span.column = 1;
    result.add(Severity::Error, "yaml-syntax", err.to_string(), span);
    return result;
  }
  if (doc->is_null()) {
    // "---" with no body parses to a null document: empty, not a playbook
    // shape error.
    result.add(Severity::Warning, "empty-document",
               "document is empty", doc->anchor_span().valid()
                                        ? doc->anchor_span()
                                        : yaml::Span{0, 0, 1, 1});
    return result;
  }
  if (doc->is_map()) return lint_task(*doc);
  if (looks_like_playbook(*doc)) return lint_playbook(*doc);
  return lint_task_list(*doc);
}

}  // namespace wisdom::ansible
