// Registry of Ansible play and task keywords with their expected value
// shapes. The paper's Ansible Aware metric distinguishes "the module key"
// from "the optional keywords [that] define conditions that influence the
// execution of the task (environment, elevated privileges, remote userid,
// error handling, conditionals, loops)" — this registry is how both the
// linter and the metric tell the two apart.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace wisdom::ansible {

// Accepted value shapes for a keyword. `Any` disables checking.
enum class KeywordValue {
  Str,
  Bool,
  Int,
  StrOrList,  // tags: either a string or a list of strings
  List,
  Dict,
  Any,
};

struct KeywordSpec {
  std::string_view name;
  KeywordValue value = KeywordValue::Any;
};

// Keywords valid on a task (name excluded; it is handled separately).
std::span<const KeywordSpec> task_keywords();
// Keywords valid on a play.
std::span<const KeywordSpec> play_keywords();
// Keys that make a task a block rather than a module invocation.
std::span<const std::string_view> block_keys();

const KeywordSpec* find_task_keyword(std::string_view name);
const KeywordSpec* find_play_keyword(std::string_view name);
bool is_block_key(std::string_view name);

}  // namespace wisdom::ansible
