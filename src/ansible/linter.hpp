// Strict Ansible schema validation, in the spirit of the ansible-lint
// schemas the paper used for its Schema Correct metric. The paper notes the
// schemas "are quite strict and do not accept some historical forms which
// are still allowed by Ansible itself" — this linter reproduces that: the
// old k=v argument string on a non-free-form module is an error here even
// though Ansible would run it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "yaml/node.hpp"

namespace wisdom::ansible {

enum class Severity { Warning, Error };

struct Violation {
  std::string rule;     // stable rule id, e.g. "unknown-module"
  std::string message;  // human-readable detail
  Severity severity = Severity::Error;
  // Source location of the offending key/value in the linted text; invalid
  // (line 0) when the node was built programmatically rather than parsed.
  yaml::Span span;
};

struct LintResult {
  std::vector<Violation> violations;

  // Schema-correct means no *errors*; warnings are advisory.
  bool ok() const;
  std::size_t error_count() const;
  // Renders violations sorted by (line, column, rule) so merged results
  // print deterministically; unlocated violations sort first.
  std::string to_string() const;

  void add(Severity severity, std::string rule, std::string message);
  void add(Severity severity, std::string rule, std::string message,
           const yaml::Span& span);
  void merge(const LintResult& other);
};

// Validates a single task mapping.
LintResult lint_task(const yaml::Node& task, bool handler_context = false);
// Validates a sequence of tasks (a role's tasks/main.yml body).
LintResult lint_task_list(const yaml::Node& tasks);
// Validates a playbook (sequence of plays).
LintResult lint_playbook(const yaml::Node& playbook);

// Parses `text` and dispatches on its shape (playbook / task list / task).
// A YAML parse failure is itself a lint error ("yaml-syntax").
LintResult lint_text(std::string_view text);

}  // namespace wisdom::ansible
