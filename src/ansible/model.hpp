// Structured view over parsed Ansible YAML.
//
// A Task is the unit the paper's models generate; a Play groups tasks under
// target hosts; a Playbook is a sequence of plays. Conversion from yaml::Node
// is lenient — it classifies keys (name / module / keywords) without
// validating them, so the Aware metric can score malformed predictions;
// strict validation lives in linter.hpp.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "yaml/node.hpp"

namespace wisdom::ansible {

struct Task {
  // The natural-language "name" value ("" when absent).
  std::string name;
  // The module key exactly as written (may be short or FQCN); empty when no
  // module key could be identified (malformed task or block).
  std::string module;
  // The module's argument node (map, free-form string, or null).
  yaml::Node args;
  // Remaining key/value pairs (when, loop, become, ...) in source order.
  std::vector<yaml::MapEntry> keywords;

  // Classifies the entries of a task mapping. Never fails: unknown shapes
  // land in `keywords` and `module` stays empty.
  static Task from_node(const yaml::Node& node);
  // Reassembles the canonical node (name first, module second, keywords in
  // recorded order) as the paper's formatting standardization produces.
  yaml::Node to_node() const;
};

struct Play {
  std::string name;
  // All non-task-list keywords in source order (hosts, become, vars, ...).
  std::vector<yaml::MapEntry> keywords;
  std::vector<Task> tasks;

  static Play from_node(const yaml::Node& node);
  yaml::Node to_node() const;
};

struct Playbook {
  std::vector<Play> plays;

  static std::optional<Playbook> from_node(const yaml::Node& node);
  yaml::Node to_node() const;
};

// True when the mapping is a block (has block/rescue/always) rather than a
// module task.
bool is_block(const yaml::Node& task_node);

// Heuristic used everywhere a raw node must be classified: a playbook is a
// sequence whose mapping items carry play keys (hosts/roles/tasks/...); a
// task list is a sequence of task mappings.
bool looks_like_playbook(const yaml::Node& node);

}  // namespace wisdom::ansible
