#include "ansible/catalog.hpp"

#include <unordered_map>

#include "util/strings.hpp"

namespace wisdom::ansible {

const ParamSpec* ModuleSpec::param(std::string_view name) const {
  for (const ParamSpec& p : params) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

namespace {

// Equivalence groups from the paper's Ansible Aware description
// ("command / shell, copy / template, package / apt, dnf, yum") plus the
// analogous service/systemd and include/import pairs.
enum EquivGroup : int {
  kNoGroup = -1,
  kExec = 0,
  kFileContent = 1,
  kPackage = 2,
  kService = 3,
  kTasksInclude = 4,
  kRoleInclude = 5,
};

using PT = ParamType;

ParamSpec p(std::string name, PT type = PT::Str, bool required = false,
            std::vector<std::string> choices = {}) {
  return ParamSpec{std::move(name), type, required, std::move(choices)};
}

ParamSpec state(std::vector<std::string> choices) {
  return p("state", PT::Choice, false, std::move(choices));
}

// Marks a parameter as credential-valued (see ParamSpec::secret).
ParamSpec secret(ParamSpec param) {
  param.secret = true;
  return param;
}

struct Builder {
  std::vector<ModuleSpec> mods;

  ModuleSpec& add(std::string fqcn, std::string category,
                  std::vector<ParamSpec> params, int group = kNoGroup) {
    ModuleSpec spec;
    spec.fqcn = std::move(fqcn);
    auto dot = spec.fqcn.rfind('.');
    spec.short_name =
        dot == std::string::npos ? spec.fqcn : spec.fqcn.substr(dot + 1);
    spec.category = std::move(category);
    spec.equivalence_group = group;
    spec.params = std::move(params);
    mods.push_back(std::move(spec));
    return mods.back();
  }
};

std::vector<ModuleSpec> build_catalog() {
  Builder b;

  // --- packaging ---------------------------------------------------------
  b.add("ansible.builtin.apt", "packaging",
        {p("name", PT::List), state({"present", "absent", "latest",
                                     "build-dep", "fixed"}),
         p("update_cache", PT::Bool), p("cache_valid_time", PT::Int),
         p("upgrade", PT::Choice, false, {"dist", "full", "safe", "yes"}),
         p("force", PT::Bool), p("install_recommends", PT::Bool),
         p("deb", PT::Path), p("default_release"), p("autoremove", PT::Bool),
         p("purge", PT::Bool)},
        kPackage);
  b.add("ansible.builtin.yum", "packaging",
        {p("name", PT::List, true),
         state({"present", "absent", "latest", "installed", "removed"}),
         p("enablerepo", PT::List), p("disablerepo", PT::List),
         p("update_cache", PT::Bool), p("security", PT::Bool),
         p("exclude", PT::List)},
        kPackage)
      .deprecated_by = "ansible.builtin.dnf";
  b.add("ansible.builtin.dnf", "packaging",
        {p("name", PT::List, true),
         state({"present", "absent", "latest", "installed", "removed"}),
         p("enablerepo", PT::List), p("disablerepo", PT::List),
         p("update_cache", PT::Bool), p("autoremove", PT::Bool)},
        kPackage);
  b.add("ansible.builtin.package", "packaging",
        {p("name", PT::List, true),
         state({"present", "absent", "latest"}), p("use")},
        kPackage);
  b.add("ansible.builtin.pip", "packaging",
        {p("name", PT::List),
         state({"present", "absent", "latest", "forcereinstall"}),
         p("requirements", PT::Path), p("virtualenv", PT::Path),
         p("executable", PT::Path), p("extra_args"), p("version")});
  b.add("ansible.builtin.apt_repository", "packaging",
        {p("repo", PT::Str, true), state({"present", "absent"}),
         p("filename"), p("update_cache", PT::Bool)});
  b.add("ansible.builtin.apt_key", "packaging",
        {p("url"), p("id"), p("keyserver"), state({"present", "absent"}),
         p("keyring", PT::Path)})
      .mutually_exclusive = {{"url", "keyserver"}};
  b.add("ansible.builtin.rpm_key", "packaging",
        {p("key", PT::Str, true), state({"present", "absent"}),
         p("fingerprint")});

  // --- files ---------------------------------------------------------------
  b.add("ansible.builtin.copy", "files",
        {p("src", PT::Path), p("dest", PT::Path, true), p("content"),
         p("owner"), p("group"), p("mode"), p("backup", PT::Bool),
         p("remote_src", PT::Bool), p("force", PT::Bool),
         p("directory_mode"), p("validate")},
        kFileContent)
      .mutually_exclusive = {{"src", "content"}};
  b.add("ansible.builtin.template", "files",
        {p("src", PT::Path, true), p("dest", PT::Path, true), p("owner"),
         p("group"), p("mode"), p("backup", PT::Bool), p("validate"),
         p("force", PT::Bool), p("lstrip_blocks", PT::Bool),
         p("trim_blocks", PT::Bool)},
        kFileContent);
  b.add("ansible.builtin.file", "files",
        {p("path", PT::Path, true),
         state({"file", "directory", "link", "hard", "touch", "absent"}),
         p("owner"), p("group"), p("mode"), p("src", PT::Path),
         p("recurse", PT::Bool), p("force", PT::Bool), p("follow", PT::Bool)});
  b.add("ansible.builtin.lineinfile", "files",
        {p("path", PT::Path, true), p("line"), p("regexp"),
         state({"present", "absent"}), p("insertafter"), p("insertbefore"),
         p("create", PT::Bool), p("backup", PT::Bool),
         p("backrefs", PT::Bool), p("owner"), p("group"), p("mode"),
         p("validate")})
      .mutually_exclusive = {{"insertafter", "insertbefore"}};
  b.add("ansible.builtin.blockinfile", "files",
        {p("path", PT::Path, true), p("block"), p("marker"),
         state({"present", "absent"}), p("insertafter"), p("insertbefore"),
         p("create", PT::Bool), p("backup", PT::Bool), p("owner"),
         p("group"), p("mode")})
      .mutually_exclusive = {{"insertafter", "insertbefore"}};
  b.add("ansible.builtin.replace", "files",
        {p("path", PT::Path, true), p("regexp", PT::Str, true), p("replace"),
         p("backup", PT::Bool), p("owner"), p("group"), p("mode"),
         p("validate")});
  b.add("ansible.builtin.stat", "files",
        {p("path", PT::Path, true), p("follow", PT::Bool),
         p("get_checksum", PT::Bool),
         p("checksum_algorithm", PT::Choice, false,
           {"md5", "sha1", "sha224", "sha256", "sha384", "sha512"}),
         p("get_mime", PT::Bool), p("get_attributes", PT::Bool)});
  b.add("ansible.builtin.fetch", "files",
        {p("src", PT::Path, true), p("dest", PT::Path, true),
         p("flat", PT::Bool), p("fail_on_missing", PT::Bool),
         p("validate_checksum", PT::Bool)});
  b.add("ansible.builtin.unarchive", "files",
        {p("src", PT::Path, true), p("dest", PT::Path, true),
         p("remote_src", PT::Bool), p("creates", PT::Path), p("owner"),
         p("group"), p("mode"), p("extra_opts", PT::List),
         p("exclude", PT::List), p("keep_newer", PT::Bool)});
  b.add("ansible.builtin.ini_file", "files",
        {p("path", PT::Path, true), p("section", PT::Str, true), p("option"),
         p("value"), state({"present", "absent"}), p("backup", PT::Bool),
         p("mode")});
  b.add("ansible.builtin.tempfile", "files",
        {state({"file", "directory"}), p("suffix"), p("prefix"),
         p("path", PT::Path)});
  b.add("ansible.builtin.slurp", "files", {p("src", PT::Path, true)});

  // --- net / web -----------------------------------------------------------
  b.add("ansible.builtin.get_url", "net",
        {p("url", PT::Str, true), p("dest", PT::Path, true), p("mode"),
         p("owner"), p("group"), p("checksum"), p("timeout", PT::Int),
         p("validate_certs", PT::Bool), p("force", PT::Bool),
         p("headers", PT::Dict), p("url_username"),
         secret(p("url_password"))})
      .required_together = {{"url_username", "url_password"}};
  b.add("ansible.builtin.uri", "net",
        {p("url", PT::Str, true),
         p("method", PT::Choice, false,
           {"GET", "POST", "PUT", "DELETE", "PATCH", "HEAD", "OPTIONS"}),
         p("body"), p("body_format", PT::Choice, false,
                      {"json", "form-urlencoded", "raw"}),
         p("status_code", PT::List), p("return_content", PT::Bool),
         p("headers", PT::Dict), p("timeout", PT::Int),
         p("validate_certs", PT::Bool), p("user"), secret(p("password")),
         p("force_basic_auth", PT::Bool), p("dest", PT::Path),
         p("creates", PT::Path)})
      .required_together = {{"user", "password"}};

  // --- commands ------------------------------------------------------------
  {
    auto& m = b.add("ansible.builtin.command", "commands",
                    {p("cmd"), p("argv", PT::List), p("chdir", PT::Path),
                     p("creates", PT::Path), p("removes", PT::Path),
                     p("stdin"), p("strip_empty_ends", PT::Bool)},
                    kExec);
    m.free_form = true;
    m.mutually_exclusive = {{"cmd", "argv"}};
  }
  {
    auto& m = b.add("ansible.builtin.shell", "commands",
                    {p("cmd"), p("chdir", PT::Path), p("creates", PT::Path),
                     p("removes", PT::Path), p("executable", PT::Path),
                     p("stdin")},
                    kExec);
    m.free_form = true;
  }
  {
    auto& m = b.add("ansible.builtin.raw", "commands",
                    {p("executable", PT::Path)});
    m.free_form = true;
  }
  {
    auto& m = b.add("ansible.builtin.script", "commands",
                    {p("cmd"), p("chdir", PT::Path), p("creates", PT::Path),
                     p("removes", PT::Path), p("executable", PT::Path)});
    m.free_form = true;
  }

  // --- system ---------------------------------------------------------------
  b.add("ansible.builtin.service", "system",
        {p("name", PT::Str, true),
         state({"started", "stopped", "restarted", "reloaded"}),
         p("enabled", PT::Bool), p("sleep", PT::Int), p("pattern"),
         p("arguments")},
        kService);
  b.add("ansible.builtin.systemd", "system",
        {p("name"), state({"started", "stopped", "restarted", "reloaded"}),
         p("enabled", PT::Bool), p("daemon_reload", PT::Bool),
         p("masked", PT::Bool),
         p("scope", PT::Choice, false, {"system", "user", "global"}),
         p("no_block", PT::Bool)},
        kService);
  b.add("ansible.builtin.cron", "system",
        {p("name", PT::Str, true), p("minute"), p("hour"), p("day"),
         p("month"), p("weekday"), p("job"), state({"present", "absent"}),
         p("user"),
         p("special_time", PT::Choice, false,
           {"reboot", "yearly", "annually", "monthly", "weekly", "daily",
            "hourly"}),
         p("disabled", PT::Bool), p("cron_file", PT::Path)});
  b.add("ansible.builtin.user", "system",
        {p("name", PT::Str, true), state({"present", "absent"}),
         p("uid", PT::Int), p("group"), p("groups", PT::List),
         p("append", PT::Bool), p("shell", PT::Path), p("home", PT::Path),
         p("create_home", PT::Bool), secret(p("password")), p("comment"),
         p("system", PT::Bool), p("remove", PT::Bool),
         p("generate_ssh_key", PT::Bool), p("ssh_key_bits", PT::Int),
         p("ssh_key_file", PT::Path),
         p("update_password", PT::Choice, false, {"always", "on_create"})});
  b.add("ansible.builtin.group", "system",
        {p("name", PT::Str, true), state({"present", "absent"}),
         p("gid", PT::Int), p("system", PT::Bool)});
  b.add("ansible.posix.authorized_key", "system",
        {p("user", PT::Str, true), p("key", PT::Str, true),
         state({"present", "absent"}), p("path", PT::Path),
         p("manage_dir", PT::Bool), p("exclusive", PT::Bool),
         p("key_options")});
  b.add("ansible.builtin.known_hosts", "system",
        {p("name", PT::Str, true), p("key"), p("path", PT::Path),
         state({"present", "absent"}), p("hash_host", PT::Bool)});
  b.add("ansible.builtin.hostname", "system",
        {p("name", PT::Str, true), p("use")});
  b.add("ansible.builtin.reboot", "system",
        {p("reboot_timeout", PT::Int), p("msg"),
         p("pre_reboot_delay", PT::Int), p("post_reboot_delay", PT::Int),
         p("test_command"), p("connect_timeout", PT::Int)});
  b.add("ansible.builtin.wait_for", "system",
        {p("host"), p("port", PT::Int), p("path", PT::Path),
         state({"started", "stopped", "present", "absent", "drained"}),
         p("timeout", PT::Int), p("delay", PT::Int), p("sleep", PT::Int),
         p("search_regex"), p("connect_timeout", PT::Int), p("msg")});
  b.add("ansible.builtin.wait_for_connection", "system",
        {p("timeout", PT::Int), p("delay", PT::Int), p("sleep", PT::Int),
         p("connect_timeout", PT::Int)});
  b.add("ansible.builtin.pause", "system",
        {p("seconds", PT::Int), p("minutes", PT::Int), p("prompt"),
         p("echo", PT::Bool)});
  b.add("ansible.builtin.iptables", "system",
        {p("chain"), p("jump"), p("protocol"), p("destination_port"),
         p("source"), state({"present", "absent"}),
         p("action", PT::Choice, false, {"append", "insert"}),
         p("comment"),
         p("table", PT::Choice, false,
           {"filter", "nat", "mangle", "raw", "security"})});
  b.add("ansible.posix.sysctl", "system",
        {p("name", PT::Str, true), p("value"), state({"present", "absent"}),
         p("reload", PT::Bool), p("sysctl_file", PT::Path),
         p("sysctl_set", PT::Bool)});
  b.add("ansible.posix.mount", "system",
        {p("path", PT::Path, true), p("src"), p("fstype"), p("opts"),
         state({"mounted", "unmounted", "present", "absent", "remounted"}),
         p("dump", PT::Int), p("passno", PT::Int)});
  b.add("ansible.posix.firewalld", "system",
        {p("service"), p("port"), p("zone"), p("permanent", PT::Bool),
         p("immediate", PT::Bool),
         state({"enabled", "disabled", "present", "absent"}),
         p("rich_rule"), p("interface"), p("masquerade", PT::Bool)});
  b.add("ansible.posix.seboolean", "system",
        {p("name", PT::Str, true), p("state", PT::Bool, true),
         p("persistent", PT::Bool)});
  b.add("ansible.posix.selinux", "system",
        {p("policy"),
         p("state", PT::Choice, true,
           {"enforcing", "permissive", "disabled"})});
  b.add("ansible.posix.synchronize", "system",
        {p("src", PT::Path, true), p("dest", PT::Path, true),
         p("mode", PT::Choice, false, {"push", "pull"}),
         p("delete", PT::Bool), p("recursive", PT::Bool),
         p("rsync_opts", PT::List), p("archive", PT::Bool)});
  b.add("community.general.ufw", "system",
        {p("rule", PT::Choice, false, {"allow", "deny", "limit", "reject"}),
         p("port"),
         p("proto", PT::Choice, false,
           {"tcp", "udp", "any", "esp", "ah", "gre"}),
         state({"enabled", "disabled", "reloaded", "reset"}),
         p("policy", PT::Choice, false, {"allow", "deny", "reject"}),
         p("direction", PT::Choice, false,
           {"in", "out", "incoming", "outgoing", "routed"}),
         p("from_ip"), p("to_ip"), p("comment"), p("delete", PT::Bool),
         p("log", PT::Bool)});
  b.add("community.general.timezone", "system",
        {p("name", PT::Str, true),
         p("hwclock", PT::Choice, false, {"local", "UTC"})});
  b.add("community.general.locale_gen", "system",
        {p("name", PT::Str, true), state({"present", "absent"})});

  // --- utilities -------------------------------------------------------------
  b.add("ansible.builtin.ping", "utilities", {p("data")});
  b.add("ansible.builtin.setup", "utilities",
        {p("filter", PT::List), p("gather_subset", PT::List),
         p("gather_timeout", PT::Int)});
  b.add("ansible.builtin.service_facts", "utilities", {});
  b.add("ansible.builtin.package_facts", "utilities",
        {p("manager", PT::List)});
  b.add("ansible.builtin.debug", "utilities",
        {p("msg"), p("var"), p("verbosity", PT::Int)})
      .mutually_exclusive = {{"msg", "var"}};
  b.add("ansible.builtin.fail", "utilities", {p("msg")});
  b.add("ansible.builtin.assert", "utilities",
        {p("that", PT::List, true), p("msg"), p("fail_msg"),
         p("success_msg"), p("quiet", PT::Bool)});
  {
    auto& m = b.add("ansible.builtin.set_fact", "utilities",
                    {p("cacheable", PT::Bool)});
    m.arbitrary_params = true;
  }
  b.add("ansible.builtin.include_vars", "utilities",
        {p("file", PT::Path), p("dir", PT::Path), p("name"),
         p("depth", PT::Int), p("files_matching"),
         p("ignore_files", PT::List)})
      .mutually_exclusive = {{"file", "dir"}};
  {
    auto& m = b.add("ansible.builtin.include_tasks", "utilities",
                    {p("file", PT::Path), p("apply", PT::Dict)},
                    kTasksInclude);
    m.free_form = true;  // `include_tasks: setup.yml`
  }
  {
    auto& m = b.add("ansible.builtin.import_tasks", "utilities",
                    {p("file", PT::Path)}, kTasksInclude);
    m.free_form = true;
  }
  b.add("ansible.builtin.include_role", "utilities",
        {p("name", PT::Str, true), p("tasks_from"), p("vars_from"),
         p("defaults_from"), p("apply", PT::Dict), p("public", PT::Bool)},
        kRoleInclude);
  b.add("ansible.builtin.import_role", "utilities",
        {p("name", PT::Str, true), p("tasks_from"), p("vars_from"),
         p("defaults_from")},
        kRoleInclude);
  {
    auto& m = b.add("ansible.builtin.meta", "utilities", {});
    m.free_form = true;  // `meta: flush_handlers`
  }
  {
    auto& m = b.add("ansible.builtin.add_host", "utilities",
                    {p("name", PT::Str, true), p("groups", PT::List)});
    m.arbitrary_params = true;
  }
  b.add("ansible.builtin.group_by", "utilities",
        {p("key", PT::Str, true), p("parents", PT::List)});

  // --- source control ---------------------------------------------------------
  b.add("ansible.builtin.git", "source_control",
        {p("repo", PT::Str, true), p("dest", PT::Path, true), p("version"),
         p("update", PT::Bool), p("force", PT::Bool), p("depth", PT::Int),
         p("clone", PT::Bool), p("bare", PT::Bool),
         p("accept_hostkey", PT::Bool), p("key_file", PT::Path),
         p("track_submodules", PT::Bool)});

  // --- language package managers ----------------------------------------------
  b.add("community.general.npm", "packaging",
        {p("name"), p("path", PT::Path), p("global", PT::Bool),
         state({"present", "absent", "latest"}), p("version"),
         p("production", PT::Bool), p("registry")});
  b.add("community.general.gem", "packaging",
        {p("name", PT::Str, true), state({"present", "absent", "latest"}),
         p("version"), p("user_install", PT::Bool),
         p("executable", PT::Path)});
  b.add("community.general.make", "commands",
        {p("chdir", PT::Path, true), p("target"), p("params", PT::Dict),
         p("jobs", PT::Int)});

  // --- containers / cloud -------------------------------------------------------
  b.add("community.docker.docker_container", "cloud",
        {p("name", PT::Str, true), p("image"),
         state({"started", "stopped", "absent", "present"}),
         p("ports", PT::List), p("volumes", PT::List), p("env", PT::Dict),
         p("restart_policy", PT::Choice, false,
           {"no", "on-failure", "always", "unless-stopped"}),
         p("detach", PT::Bool), p("command"), p("networks", PT::List),
         p("pull", PT::Bool), p("recreate", PT::Bool), p("memory")});
  b.add("community.docker.docker_image", "cloud",
        {p("name", PT::Str, true), p("tag"),
         p("source", PT::Choice, false, {"pull", "build", "local", "load"}),
         state({"present", "absent"}), p("force_source", PT::Bool),
         p("build", PT::Dict), p("push", PT::Bool)});
  b.add("kubernetes.core.k8s", "cloud",
        {state({"present", "absent", "patched"}), p("definition", PT::Dict),
         p("src", PT::Path), p("kind"), p("name"), p("namespace"),
         p("api_version"), p("wait", PT::Bool), p("wait_timeout", PT::Int),
         p("kubeconfig", PT::Path)});
  b.add("kubernetes.core.helm", "cloud",
        {p("name", PT::Str, true), p("chart_ref"), p("release_namespace"),
         state({"present", "absent"}), p("values", PT::Dict),
         p("create_namespace", PT::Bool), p("update_repo_cache", PT::Bool)});

  // --- databases ------------------------------------------------------------------
  b.add("community.mysql.mysql_db", "database",
        {p("name", PT::Str, true),
         state({"present", "absent", "dump", "import"}), p("login_user"),
         secret(p("login_password")), p("login_host"), p("target", PT::Path),
         p("encoding"), p("collation")});
  b.add("community.mysql.mysql_user", "database",
        {p("name", PT::Str, true), secret(p("password")), p("priv"),
         p("host"), state({"present", "absent"}), p("append_privs", PT::Bool),
         p("login_user"), secret(p("login_password"))});
  b.add("community.postgresql.postgresql_db", "database",
        {p("name", PT::Str, true),
         state({"present", "absent", "dump", "restore"}), p("owner"),
         p("encoding"), p("template"), p("login_user"),
         secret(p("login_password")), p("login_host")});
  b.add("community.postgresql.postgresql_user", "database",
        {p("name", PT::Str, true), secret(p("password")), p("db"), p("priv"),
         p("role_attr_flags"), state({"present", "absent"}),
         p("login_user"), secret(p("login_password"))});

  // --- network devices ---------------------------------------------------------------
  b.add("vyos.vyos.vyos_facts", "network",
        {p("gather_subset", PT::List),
         p("gather_network_resources", PT::List)});
  b.add("vyos.vyos.vyos_config", "network",
        {p("lines", PT::List), p("src", PT::Path), p("backup", PT::Bool),
         p("save", PT::Bool),
         p("match", PT::Choice, false, {"line", "none"}), p("comment")});
  b.add("cisco.ios.ios_facts", "network",
        {p("gather_subset", PT::List),
         p("gather_network_resources", PT::List)});
  b.add("cisco.ios.ios_config", "network",
        {p("lines", PT::List), p("parents", PT::List), p("src", PT::Path),
         p("backup", PT::Bool),
         p("save_when", PT::Choice, false,
           {"always", "never", "modified", "changed"}),
         p("match", PT::Choice, false, {"line", "strict", "exact", "none"}),
         p("replace", PT::Choice, false, {"line", "block"})});

  return b.mods;
}

}  // namespace

ModuleCatalog::ModuleCatalog() : modules_(build_catalog()) {}

const ModuleCatalog& ModuleCatalog::instance() {
  static const ModuleCatalog catalog;
  return catalog;
}

const ModuleSpec* ModuleCatalog::by_fqcn(std::string_view fqcn) const {
  for (const ModuleSpec& m : modules_) {
    if (m.fqcn == fqcn) return &m;
  }
  return nullptr;
}

const ModuleSpec* ModuleCatalog::by_short_name(std::string_view name) const {
  for (const ModuleSpec& m : modules_) {
    if (m.short_name == name) return &m;
  }
  return nullptr;
}

const ModuleSpec* ModuleCatalog::resolve(std::string_view name) const {
  if (name.find('.') != std::string_view::npos) return by_fqcn(name);
  return by_short_name(name);
}

std::string ModuleCatalog::to_fqcn(std::string_view name) const {
  const ModuleSpec* spec = resolve(name);
  return spec ? spec->fqcn : std::string(name);
}

bool ModuleCatalog::same_module(std::string_view a, std::string_view b) const {
  return to_fqcn(a) == to_fqcn(b);
}

bool ModuleCatalog::near_equivalent(std::string_view a,
                                    std::string_view b) const {
  const ModuleSpec* ma = resolve(a);
  const ModuleSpec* mb = resolve(b);
  if (!ma || !mb || ma == mb) return false;
  return ma->equivalence_group >= 0 &&
         ma->equivalence_group == mb->equivalence_group;
}

}  // namespace wisdom::ansible
