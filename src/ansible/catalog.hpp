// Ansible module catalog.
//
// The catalog is the single source of truth shared by three consumers:
//   * the synthetic corpus generator (which modules exist, what parameters
//     they take, which values are plausible),
//   * the schema linter behind the Schema Correct metric,
//   * the Ansible Aware metric (FQCN resolution and the module
//     near-equivalence classes: command/shell, copy/template,
//     package/apt/dnf/yum, ... — exactly the classes the paper lists).
//
// It covers the high-frequency builtin modules plus common collection
// modules (ansible.posix, community.*, vyos.vyos, cisco.ios) so that the
// synthetic corpus exhibits the same Zipfian module distribution and FQCN
// variety as the paper's Galaxy/GitHub data.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wisdom::ansible {

enum class ParamType { Str, Bool, Int, Path, List, Dict, Choice };

struct ParamSpec {
  std::string name;
  ParamType type = ParamType::Str;
  bool required = false;
  // Non-empty only for ParamType::Choice.
  std::vector<std::string> choices;
  // True when the value is a credential: Ansible would echo it into logs
  // and diffs unless the task sets `no_log: true` (the taint pass's
  // catalog-backed source list).
  bool secret = false;
};

struct ModuleSpec {
  std::string fqcn;        // e.g. "ansible.builtin.apt"
  std::string short_name;  // e.g. "apt"
  std::string category;    // packaging, files, system, commands, net, ...
  // Modules in the same non-negative group are "almost equivalent" for the
  // Ansible Aware metric; -1 means no group.
  int equivalence_group = -1;
  // command/shell/raw/script accept a free-form string argument; meta and
  // include/import_tasks accept a plain string operand the same way.
  bool free_form = false;
  // set_fact / add_host accept arbitrary user-chosen keys.
  bool arbitrary_params = false;
  // Non-empty when the module is deprecated: the FQCN of its replacement
  // (e.g. yum -> ansible.builtin.dnf on EL9+).
  std::string deprecated_by;
  std::vector<ParamSpec> params;
  // Parameter groups that must not be set together (each group lists names
  // of which at most one may appear), and groups that only make sense as a
  // unit — the type checker's cross-parameter rules.
  std::vector<std::vector<std::string>> mutually_exclusive;
  std::vector<std::vector<std::string>> required_together;

  const ParamSpec* param(std::string_view name) const;
  bool has_param(std::string_view name) const { return param(name) != nullptr; }
};

class ModuleCatalog {
 public:
  // The process-wide catalog (immutable after construction).
  static const ModuleCatalog& instance();

  std::span<const ModuleSpec> all() const { return modules_; }

  const ModuleSpec* by_fqcn(std::string_view fqcn) const;
  // Short names are unique in this catalog (as they are for builtins).
  const ModuleSpec* by_short_name(std::string_view name) const;
  // Accepts either spelling.
  const ModuleSpec* resolve(std::string_view name) const;

  // Resolves any module name to its fully qualified collection name; names
  // not in the catalog are returned unchanged (the Aware metric then
  // compares them literally).
  std::string to_fqcn(std::string_view name) const;

  // True when the two names resolve to the same module.
  bool same_module(std::string_view a, std::string_view b) const;
  // True when the two names resolve to distinct modules of the same
  // equivalence group (command/shell etc.).
  bool near_equivalent(std::string_view a, std::string_view b) const;

 private:
  ModuleCatalog();
  std::vector<ModuleSpec> modules_;
};

}  // namespace wisdom::ansible
