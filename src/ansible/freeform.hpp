// Parsing of the historical "k1=v1 k2=v2" module-argument syntax.
//
// The Ansible Aware metric normalizes this old form into a parameter dict
// before comparing ("convert the old k1=v1, k2=v2 syntax for module
// parameters into a dict"), and the linter needs to recognize it to type-
// check old-style tasks.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "yaml/node.hpp"

namespace wisdom::ansible {

struct FreeFormSplit {
  // Key=value pairs, in order, as a yaml mapping of resolved scalars.
  yaml::Node params = yaml::Node::map();
  // Leading words that are not k=v pairs (the free-form command text of
  // command/shell); empty when everything parsed as parameters.
  std::string free_text;
};

// Splits an old-style argument string. Values may be single- or double-
// quoted to protect spaces; k=v tokens after the first non-k=v word belong
// to the free text (mirroring Ansible's own shlex-based splitting:
// `shell: echo a=b` keeps `a=b` as command text).
FreeFormSplit parse_free_form(std::string_view text);

// True if the string looks like pure k=v arguments (at least one pair and
// no free text).
bool looks_like_kv_args(std::string_view text);

}  // namespace wisdom::ansible
