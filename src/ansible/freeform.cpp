#include "ansible/freeform.hpp"

#include <cctype>
#include <vector>

#include "util/strings.hpp"

namespace wisdom::ansible {

namespace util = wisdom::util;

namespace {

// A word is a k=v pair if it has '=' after a bare identifier-ish key.
// The '=' must not be the first character.
bool split_kv(std::string_view word, std::string& key, std::string& value) {
  std::size_t eq = word.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  for (std::size_t i = 0; i < eq; ++i) {
    char c = word[i];
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  key = std::string(word.substr(0, eq));
  value = std::string(word.substr(eq + 1));
  return true;
}

}  // namespace

FreeFormSplit parse_free_form(std::string_view text) {
  FreeFormSplit out;
  // Leading k=v pairs are parameters; as soon as a non-pair word appears,
  // the rest of the original string (from that word on) is free text.
  std::string key, value;
  std::string_view rest = util::trim(text);
  while (!rest.empty()) {
    // Find the next whitespace outside quotes to isolate the word.
    char quote = 0;
    std::size_t i = 0;
    for (; i < rest.size(); ++i) {
      char c = rest[i];
      if (quote != 0) {
        if (c == quote) quote = 0;
      } else if (c == '\'' || c == '"') {
        quote = c;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
    }
    std::string_view word = rest.substr(0, i);
    // Unquote for the k=v test (the '=' is never inside quotes for a pair).
    if (split_kv(word, key, value)) {
      // Strip surrounding quotes from the value.
      if (value.size() >= 2 &&
          (value.front() == '\'' || value.front() == '"') &&
          value.back() == value.front()) {
        value = value.substr(1, value.size() - 2);
        out.params.entries().emplace_back(key, yaml::Node::str(value));
      } else {
        out.params.entries().emplace_back(key, yaml::resolve_plain_scalar(value));
      }
      rest = util::trim_left(rest.substr(i));
    } else {
      out.free_text = std::string(rest);
      break;
    }
  }
  return out;
}

bool looks_like_kv_args(std::string_view text) {
  FreeFormSplit split = parse_free_form(text);
  return split.free_text.empty() && split.params.size() > 0;
}

}  // namespace wisdom::ansible
