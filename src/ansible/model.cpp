#include "ansible/model.hpp"

#include "ansible/catalog.hpp"
#include "ansible/keywords.hpp"

namespace wisdom::ansible {

namespace {

// A key is treated as the module key when it is not a known task keyword
// and either resolves in the catalog or (for unknown modules) looks like a
// module name (identifier or dotted path). The first such key wins.
bool could_be_module_key(std::string_view key) {
  if (key == "name" || find_task_keyword(key) || is_block_key(key))
    return false;
  if (key.empty()) return false;
  for (char c : key) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
              c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Task Task::from_node(const yaml::Node& node) {
  Task task;
  if (!node.is_map()) return task;
  for (const auto& [key, value] : node.entries()) {
    if (key == "name" && task.name.empty() && value.is_str()) {
      task.name = value.as_str();
      continue;
    }
    if (task.module.empty() && could_be_module_key(key)) {
      task.module = key;
      task.args = value;
      continue;
    }
    task.keywords.emplace_back(key, value);
  }
  return task;
}

yaml::Node Task::to_node() const {
  yaml::Node node = yaml::Node::map();
  if (!name.empty()) node.set("name", yaml::Node::str(name));
  if (!module.empty()) node.set(module, args);
  for (const auto& [key, value] : keywords)
    node.entries().emplace_back(key, value);
  return node;
}

Play Play::from_node(const yaml::Node& node) {
  Play play;
  if (!node.is_map()) return play;
  for (const auto& [key, value] : node.entries()) {
    if (key == "name" && play.name.empty() && value.is_str()) {
      play.name = value.as_str();
      continue;
    }
    if ((key == "tasks" || key == "pre_tasks" || key == "post_tasks" ||
         key == "handlers") &&
        value.is_seq()) {
      // All task-bearing sections are flattened into `tasks` for the
      // structured view; the raw node keeps the distinction.
      for (const yaml::Node& t : value.items())
        play.tasks.push_back(Task::from_node(t));
      if (key == "tasks") continue;
    }
    play.keywords.emplace_back(key, value);
  }
  return play;
}

yaml::Node Play::to_node() const {
  yaml::Node node = yaml::Node::map();
  if (!name.empty()) node.set("name", yaml::Node::str(name));
  for (const auto& [key, value] : keywords)
    node.entries().emplace_back(key, value);
  if (!tasks.empty()) {
    yaml::Node list = yaml::Node::seq();
    for (const Task& t : tasks) list.push_back(t.to_node());
    node.set("tasks", list);
  }
  return node;
}

std::optional<Playbook> Playbook::from_node(const yaml::Node& node) {
  if (!node.is_seq()) return std::nullopt;
  Playbook pb;
  for (const yaml::Node& item : node.items()) {
    if (!item.is_map()) return std::nullopt;
    pb.plays.push_back(Play::from_node(item));
  }
  return pb;
}

yaml::Node Playbook::to_node() const {
  yaml::Node node = yaml::Node::seq();
  for (const Play& p : plays) node.push_back(p.to_node());
  return node;
}

bool is_block(const yaml::Node& task_node) {
  if (!task_node.is_map()) return false;
  for (const auto& [key, value] : task_node.entries()) {
    if (is_block_key(key)) return true;
  }
  return false;
}

bool looks_like_playbook(const yaml::Node& node) {
  if (!node.is_seq() || node.size() == 0) return false;
  // A play is recognized by play-structure keys that never occur on tasks.
  static constexpr std::string_view kPlayOnly[] = {
      "hosts", "roles", "tasks", "pre_tasks", "post_tasks",
      "handlers", "vars_files", "gather_facts", "serial", "strategy"};
  for (const yaml::Node& item : node.items()) {
    if (!item.is_map()) return false;
    bool has_play_key = false;
    for (std::string_view key : kPlayOnly) {
      if (item.has(key)) {
        has_play_key = true;
        break;
      }
    }
    if (!has_play_key) return false;
  }
  return true;
}

}  // namespace wisdom::ansible
