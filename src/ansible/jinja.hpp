// Syntax validation for the Jinja2 expression subset Ansible uses.
//
// Ansible values lean on Jinja in two forms: bare expressions (`when:
// ansible_os_family == 'Debian'`, `until: result.rc == 0`) and template
// interpolations inside strings (`path: {{ base_dir }}/conf`). The strict
// linter treats templated values as satisfying any shape — this module
// adds the missing syntactic check (balanced {{ }}, a well-formed
// expression grammar with filters, tests, attribute/subscript access and
// calls), available as an opt-in deep-lint pass so the Schema Correct
// metric of the paper stays exactly as specified.
#pragma once

#include <string>
#include <string_view>

#include "ansible/linter.hpp"
#include "yaml/node.hpp"

namespace wisdom::ansible {

struct JinjaError {
  std::string message;
  std::size_t position = 0;  // byte offset into the validated text
};

// Validates a bare Jinja expression (the `when:` form).
bool validate_jinja_expression(std::string_view expression,
                               JinjaError* error = nullptr);

// Validates a string that may contain {{ ... }} interpolations: every
// interpolation must be balanced and contain a valid expression. {% ... %}
// statement blocks are accepted opaquely when balanced.
bool validate_template_string(std::string_view text,
                              JinjaError* error = nullptr);

// Deep-lint pass over a task mapping: checks `when` / `changed_when` /
// `failed_when` / `until` values as bare expressions and every string
// scalar as a template. Reports violations under the "jinja-syntax" rule.
LintResult lint_task_jinja(const yaml::Node& task);

}  // namespace wisdom::ansible
