#include "ansible/keywords.hpp"

#include <array>

namespace wisdom::ansible {

namespace {

using KV = KeywordValue;

constexpr std::array kTaskKeywords = {
    KeywordSpec{"when", KV::Any},  // string expression or list of them
    KeywordSpec{"loop", KV::Any},  // list or jinja string
    KeywordSpec{"with_items", KV::Any},
    KeywordSpec{"with_dict", KV::Any},
    KeywordSpec{"with_fileglob", KV::Any},
    KeywordSpec{"loop_control", KV::Dict},
    KeywordSpec{"register", KV::Str},
    KeywordSpec{"become", KV::Bool},
    KeywordSpec{"become_user", KV::Str},
    KeywordSpec{"become_method", KV::Str},
    KeywordSpec{"ignore_errors", KV::Bool},
    KeywordSpec{"changed_when", KV::Any},
    KeywordSpec{"failed_when", KV::Any},
    KeywordSpec{"until", KV::Str},
    KeywordSpec{"retries", KV::Int},
    KeywordSpec{"delay", KV::Int},
    KeywordSpec{"delegate_to", KV::Str},
    KeywordSpec{"delegate_facts", KV::Bool},
    KeywordSpec{"run_once", KV::Bool},
    KeywordSpec{"environment", KV::Any},  // dict or list of dicts
    KeywordSpec{"vars", KV::Dict},
    KeywordSpec{"tags", KV::StrOrList},
    KeywordSpec{"notify", KV::StrOrList},
    KeywordSpec{"no_log", KV::Bool},
    KeywordSpec{"check_mode", KV::Bool},
    KeywordSpec{"diff", KV::Bool},
    KeywordSpec{"args", KV::Dict},
    KeywordSpec{"any_errors_fatal", KV::Bool},
    KeywordSpec{"throttle", KV::Int},
    KeywordSpec{"timeout", KV::Int},
    KeywordSpec{"remote_user", KV::Str},
    KeywordSpec{"connection", KV::Str},
    KeywordSpec{"collections", KV::List},
    KeywordSpec{"listen", KV::StrOrList},  // handlers
    KeywordSpec{"first_available_file", KV::List},
};

constexpr std::array kPlayKeywords = {
    KeywordSpec{"hosts", KV::StrOrList},
    KeywordSpec{"connection", KV::Str},
    KeywordSpec{"gather_facts", KV::Bool},
    KeywordSpec{"become", KV::Bool},
    KeywordSpec{"become_user", KV::Str},
    KeywordSpec{"become_method", KV::Str},
    KeywordSpec{"vars", KV::Dict},
    KeywordSpec{"vars_files", KV::List},
    KeywordSpec{"vars_prompt", KV::List},
    KeywordSpec{"roles", KV::List},
    KeywordSpec{"tasks", KV::List},
    KeywordSpec{"pre_tasks", KV::List},
    KeywordSpec{"post_tasks", KV::List},
    KeywordSpec{"handlers", KV::List},
    KeywordSpec{"environment", KV::Any},
    KeywordSpec{"tags", KV::StrOrList},
    KeywordSpec{"serial", KV::Any},  // int, percentage string, or list
    KeywordSpec{"max_fail_percentage", KV::Int},
    KeywordSpec{"remote_user", KV::Str},
    KeywordSpec{"collections", KV::List},
    KeywordSpec{"any_errors_fatal", KV::Bool},
    KeywordSpec{"force_handlers", KV::Bool},
    KeywordSpec{"strategy", KV::Str},
    KeywordSpec{"order", KV::Str},
    KeywordSpec{"gather_subset", KV::List},
    KeywordSpec{"gather_timeout", KV::Int},
    KeywordSpec{"no_log", KV::Bool},
    KeywordSpec{"ignore_errors", KV::Bool},
    KeywordSpec{"ignore_unreachable", KV::Bool},
    KeywordSpec{"throttle", KV::Int},
    KeywordSpec{"timeout", KV::Int},
};

constexpr std::array<std::string_view, 3> kBlockKeys = {"block", "rescue",
                                                        "always"};

}  // namespace

std::span<const KeywordSpec> task_keywords() { return kTaskKeywords; }
std::span<const KeywordSpec> play_keywords() { return kPlayKeywords; }
std::span<const std::string_view> block_keys() { return kBlockKeys; }

const KeywordSpec* find_task_keyword(std::string_view name) {
  for (const KeywordSpec& k : kTaskKeywords) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

const KeywordSpec* find_play_keyword(std::string_view name) {
  for (const KeywordSpec& k : kPlayKeywords) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

bool is_block_key(std::string_view name) {
  for (std::string_view k : kBlockKeys) {
    if (k == name) return true;
  }
  return false;
}

}  // namespace wisdom::ansible
