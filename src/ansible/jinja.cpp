#include "ansible/jinja.hpp"

#include <cctype>
#include <vector>

#include "util/strings.hpp"

namespace wisdom::ansible {

namespace util = wisdom::util;

namespace {

enum class TokKind {
  End,
  Ident,
  Number,
  String,
  Op,      // == != <= >= < > + - * / % ~ =
  Pipe,    // |
  Dot,
  Comma,
  Colon,
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Error,
};

struct Token {
  TokKind kind = TokKind::End;
  std::string_view text;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    std::size_t start = pos_;
    if (pos_ >= text_.size()) return {TokKind::End, {}, start};
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_'))
        ++pos_;
      return {TokKind::Ident, text_.substr(start, pos_ - start), start};
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.'))
        ++pos_;
      return {TokKind::Number, text_.substr(start, pos_ - start), start};
    }
    if (c == '\'' || c == '"') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != c) {
        if (text_[pos_] == '\\') ++pos_;
        ++pos_;
      }
      if (pos_ >= text_.size())
        return {TokKind::Error, "unterminated string", start};
      ++pos_;
      return {TokKind::String, text_.substr(start, pos_ - start), start};
    }
    auto two = text_.substr(start, 2);
    if (two == "==" || two == "!=" || two == "<=" || two == ">=" ||
        two == "//" || two == "**") {
      pos_ += 2;
      return {TokKind::Op, two, start};
    }
    ++pos_;
    switch (c) {
      case '<': case '>': case '+': case '-': case '*': case '/':
      case '%': case '~': case '=':
        return {TokKind::Op, text_.substr(start, 1), start};
      case '|': return {TokKind::Pipe, "|", start};
      case '.': return {TokKind::Dot, ".", start};
      case ',': return {TokKind::Comma, ",", start};
      case ':': return {TokKind::Colon, ":", start};
      case '(': return {TokKind::LParen, "(", start};
      case ')': return {TokKind::RParen, ")", start};
      case '[': return {TokKind::LBracket, "[", start};
      case ']': return {TokKind::RBracket, "]", start};
      case '{': return {TokKind::LBrace, "{", start};
      case '}': return {TokKind::RBrace, "}", start};
      default:
        return {TokKind::Error, text_.substr(start, 1), start};
    }
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { advance(); }

  bool parse(JinjaError* error) {
    if (cur_.kind == TokKind::End) {
      set_error("empty expression", 0);
    } else {
      parse_or();
      if (!failed_ && cur_.kind != TokKind::End) {
        set_error("unexpected trailing token", cur_.pos);
      }
    }
    if (failed_ && error) *error = error_;
    return !failed_;
  }

 private:
  void advance() { cur_ = lexer_.next(); }

  void set_error(std::string message, std::size_t pos) {
    if (failed_) return;
    failed_ = true;
    error_ = {std::move(message), pos};
  }

  bool accept_ident(std::string_view word) {
    if (cur_.kind == TokKind::Ident && cur_.text == word) {
      advance();
      return true;
    }
    return false;
  }

  void parse_or() {
    parse_and();
    while (!failed_ && accept_ident("or")) parse_and();
  }

  void parse_and() {
    parse_not();
    while (!failed_ && accept_ident("and")) parse_not();
  }

  void parse_not() {
    if (accept_ident("not")) {
      parse_not();
      return;
    }
    parse_comparison();
  }

  void parse_comparison() {
    parse_arith();
    while (!failed_) {
      if (cur_.kind == TokKind::Op &&
          (cur_.text == "==" || cur_.text == "!=" || cur_.text == "<" ||
           cur_.text == ">" || cur_.text == "<=" || cur_.text == ">=")) {
        advance();
        parse_arith();
        continue;
      }
      if (cur_.kind == TokKind::Ident &&
          (cur_.text == "in" || cur_.text == "is")) {
        bool is_test = cur_.text == "is";
        advance();
        accept_ident("not");
        if (is_test) {
          // `is defined`, `is none`, `is match('x')` — a test name with
          // optional arguments.
          if (cur_.kind != TokKind::Ident) {
            set_error("expected test name after 'is'", cur_.pos);
            return;
          }
          advance();
          if (cur_.kind == TokKind::LParen) parse_call_args();
          continue;
        }
        parse_arith();
        continue;
      }
      if (cur_.kind == TokKind::Ident && cur_.text == "not") {
        // `x not in y`
        advance();
        if (!accept_ident("in")) {
          set_error("expected 'in' after 'not'", cur_.pos);
          return;
        }
        parse_arith();
        continue;
      }
      break;
    }
  }

  void parse_arith() {
    parse_filtered();
    while (!failed_ && cur_.kind == TokKind::Op &&
           (cur_.text == "+" || cur_.text == "-" || cur_.text == "*" ||
            cur_.text == "/" || cur_.text == "%" || cur_.text == "~" ||
            cur_.text == "//" || cur_.text == "**")) {
      advance();
      parse_filtered();
    }
  }

  void parse_filtered() {
    parse_primary();
    while (!failed_ && cur_.kind == TokKind::Pipe) {
      advance();
      if (cur_.kind != TokKind::Ident) {
        set_error("expected filter name after '|'", cur_.pos);
        return;
      }
      advance();
      if (cur_.kind == TokKind::LParen) parse_call_args();
    }
  }

  void parse_primary() {
    if (failed_) return;
    switch (cur_.kind) {
      case TokKind::Number:
      case TokKind::String:
        advance();
        break;
      case TokKind::Ident: {
        // unary keywords already handled; treat as name reference.
        advance();
        break;
      }
      case TokKind::Op:
        if (cur_.text == "-" || cur_.text == "+") {
          advance();
          parse_primary();
          break;
        }
        set_error("unexpected operator", cur_.pos);
        return;
      case TokKind::LParen:
        advance();
        parse_or();
        if (cur_.kind != TokKind::RParen) {
          set_error("expected ')'", cur_.pos);
          return;
        }
        advance();
        break;
      case TokKind::LBracket: {
        advance();
        if (cur_.kind != TokKind::RBracket) {
          parse_or();
          while (!failed_ && cur_.kind == TokKind::Comma) {
            advance();
            parse_or();
          }
        }
        if (!failed_ && cur_.kind != TokKind::RBracket) {
          set_error("expected ']'", cur_.pos);
          return;
        }
        if (!failed_) advance();
        break;
      }
      case TokKind::LBrace: {
        advance();
        if (cur_.kind != TokKind::RBrace) {
          for (;;) {
            parse_or();
            if (failed_) return;
            if (cur_.kind != TokKind::Colon) {
              set_error("expected ':' in dict literal", cur_.pos);
              return;
            }
            advance();
            parse_or();
            if (failed_) return;
            if (cur_.kind == TokKind::Comma) {
              advance();
              continue;
            }
            break;
          }
        }
        if (!failed_ && cur_.kind != TokKind::RBrace) {
          set_error("expected '}'", cur_.pos);
          return;
        }
        if (!failed_) advance();
        break;
      }
      case TokKind::Error:
        set_error("bad character in expression", cur_.pos);
        return;
      default:
        set_error("expected a value", cur_.pos);
        return;
    }
    parse_postfix();
  }

  void parse_postfix() {
    while (!failed_) {
      if (cur_.kind == TokKind::Dot) {
        advance();
        if (cur_.kind != TokKind::Ident && cur_.kind != TokKind::Number) {
          set_error("expected attribute name after '.'", cur_.pos);
          return;
        }
        advance();
        continue;
      }
      if (cur_.kind == TokKind::LBracket) {
        advance();
        parse_or();
        if (!failed_ && cur_.kind != TokKind::RBracket) {
          set_error("expected ']' after subscript", cur_.pos);
          return;
        }
        if (!failed_) advance();
        continue;
      }
      if (cur_.kind == TokKind::LParen) {
        parse_call_args();
        continue;
      }
      break;
    }
  }

  void parse_call_args() {
    // cur_ is LParen.
    advance();
    if (cur_.kind == TokKind::RParen) {
      advance();
      return;
    }
    for (;;) {
      // keyword argument `name=value`?
      parse_or();
      if (failed_) return;
      if (cur_.kind == TokKind::Op && cur_.text == "=") {
        advance();
        parse_or();
        if (failed_) return;
      }
      if (cur_.kind == TokKind::Comma) {
        advance();
        continue;
      }
      break;
    }
    if (cur_.kind != TokKind::RParen) {
      set_error("expected ')' in call", cur_.pos);
      return;
    }
    advance();
  }

  Lexer lexer_;
  Token cur_;
  bool failed_ = false;
  JinjaError error_;
};

void check_node(const yaml::Node& node, LintResult& result);

void check_scalar(const yaml::Node& node, LintResult& result) {
  if (!node.is_str()) return;
  JinjaError error;
  if (!validate_template_string(node.as_str(), &error)) {
    result.add(Severity::Error, "jinja-syntax",
               error.message + " in \"" + node.as_str() + "\"");
  }
}

void check_node(const yaml::Node& node, LintResult& result) {
  if (node.is_seq()) {
    for (const auto& item : node.items()) check_node(item, result);
  } else if (node.is_map()) {
    for (const auto& [key, value] : node.entries())
      check_node(value, result);
  } else {
    check_scalar(node, result);
  }
}

void check_expression_value(const yaml::Node& value, LintResult& result) {
  auto check_one = [&](const yaml::Node& node) {
    if (!node.is_str()) return;  // booleans are fine for when:
    JinjaError error;
    if (!validate_jinja_expression(node.as_str(), &error)) {
      result.add(Severity::Error, "jinja-syntax",
                 error.message + " in expression \"" + node.as_str() + "\"");
    }
  };
  if (value.is_seq()) {
    for (const auto& item : value.items()) check_one(item);
  } else {
    check_one(value);
  }
}

}  // namespace

bool validate_jinja_expression(std::string_view expression,
                               JinjaError* error) {
  return Parser(expression).parse(error);
}

bool validate_template_string(std::string_view text, JinjaError* error) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t open = text.find("{{", pos);
    std::size_t stmt = text.find("{%", pos);
    // Unbalanced closers before any opener.
    std::size_t close = text.find("}}", pos);
    std::size_t first_open = std::min(open, stmt);
    if (close != std::string_view::npos && close < first_open) {
      if (error) *error = {"'}}' without matching '{{'", close};
      return false;
    }
    if (first_open == std::string_view::npos) return true;
    if (first_open == stmt) {
      std::size_t end = text.find("%}", stmt + 2);
      if (end == std::string_view::npos) {
        if (error) *error = {"unterminated '{%' block", stmt};
        return false;
      }
      pos = end + 2;
      continue;
    }
    std::size_t end = text.find("}}", open + 2);
    if (end == std::string_view::npos) {
      if (error) *error = {"unterminated '{{' interpolation", open};
      return false;
    }
    std::string_view inner = text.substr(open + 2, end - open - 2);
    JinjaError inner_error;
    if (!validate_jinja_expression(util::trim(inner), &inner_error)) {
      if (error) {
        *error = {inner_error.message,
                  open + 2 + inner_error.position};
      }
      return false;
    }
    pos = end + 2;
  }
  return true;
}

LintResult lint_task_jinja(const yaml::Node& task) {
  LintResult result;
  if (!task.is_map()) return result;
  static constexpr std::string_view kExpressionKeywords[] = {
      "when", "changed_when", "failed_when", "until"};
  for (const auto& [key, value] : task.entries()) {
    bool is_expression = false;
    for (std::string_view kw : kExpressionKeywords) {
      if (key == kw) {
        is_expression = true;
        break;
      }
    }
    if (is_expression) {
      check_expression_value(value, result);
    } else {
      check_node(value, result);
    }
  }
  return result;
}

}  // namespace wisdom::ansible
