// Paged KV memory: a fixed-capacity arena of uniform KV blocks.
//
// A block holds `block_size` token rows of rotated keys and values for
// every layer at once (vLLM-style paged attention, scaled to this repo).
// Decodes hold per-sequence block tables instead of one monolithic
// [ctx x d_model] buffer per layer, which is what makes continuous
// batching affordable: admitting a sequence costs ceil(len / block_size)
// blocks rather than a full context window, and the prefix-cache trie
// shares blocks by reference count instead of deep-copying snapshots.
//
// Sharing is copy-on-write: clone()ing a paged KvCache bumps refcounts;
// the first append into a shared block copies it into a fresh exclusive
// one (KvBlockAllocator::make_exclusive). Shared blocks are never
// written, so readers need no locks — the mutex guards only the free
// list and refcounts. Payload values are bit-identical to the monolithic
// layout because blocks only change where rows live, never how they are
// computed.
//
// The region idiom: all storage is one contiguous allocation owned by
// the arena; blocks are handles (indices) into it, freed by pushing the
// index back on a LIFO free list. Blocks are uniform, so there is no
// external fragmentation — any free block satisfies any request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace wisdom::model {

struct KvBlockStats {
  int capacity = 0;       // total blocks in the arena
  int free_blocks = 0;    // currently on the free list
  int in_use = 0;         // capacity - free_blocks
  int peak_in_use = 0;    // high-water mark
  std::uint64_t allocations = 0;  // allocate() + COW copies
  std::uint64_t releases = 0;     // refs dropped to zero
  std::uint64_t cow_copies = 0;   // make_exclusive() copies
  std::uint64_t failed_allocations = 0;  // exhaustion events
};

class KvBlockAllocator {
 public:
  // capacity_blocks uniform blocks of block_size token rows, each row
  // d_model floats of keys plus d_model floats of values per layer.
  KvBlockAllocator(int capacity_blocks, int block_size, int n_layers,
                   int d_model);

  int capacity() const { return capacity_; }
  int block_size() const { return block_size_; }
  int n_layers() const { return n_layers_; }
  int row_width() const { return d_; }
  // Blocks needed to hold `tokens` rows (ceil division); the unit the
  // scheduler's admission control and KV-pressure checks budget in.
  int blocks_for_tokens(int tokens) const {
    return tokens <= 0 ? 0 : (tokens + block_size_ - 1) / block_size_;
  }
  // Payload bytes of one block (all layers, keys + values).
  std::size_t block_bytes() const {
    return block_stride_ * sizeof(float);
  }

  // Hands out a free block with refcount 1; -1 when the arena is
  // exhausted (callers fall back to monolithic caches — never fatal).
  std::int32_t allocate();
  // Shares `id`: one more owner.
  void add_ref(std::int32_t id);
  // Drops one owner; the block returns to the free list at zero.
  // Throws std::logic_error on a block that is not live (double free)
  // or an out-of-range id — the arena's corruption tripwire.
  void release(std::int32_t id);
  int ref_count(std::int32_t id) const;
  // Copy-on-write helper: returns `id` unchanged when exclusively
  // owned; otherwise copies the payload into a fresh block, drops one
  // reference on `id`, and returns the copy. Returns -1 (and leaves
  // `id`'s refcount untouched) when the arena is exhausted.
  std::int32_t make_exclusive(std::int32_t id);

  int free_blocks() const;
  KvBlockStats stats() const;

  // Row accessors. Lock-free: storage never moves after construction,
  // and a block's payload is only written by its exclusive owner.
  float* key_row(std::int32_t block, int layer, int row) {
    return storage_.data() + offset(block, layer, row);
  }
  const float* key_row(std::int32_t block, int layer, int row) const {
    return storage_.data() + offset(block, layer, row);
  }
  float* value_row(std::int32_t block, int layer, int row) {
    return storage_.data() + offset(block, layer, row) + value_offset_;
  }
  const float* value_row(std::int32_t block, int layer, int row) const {
    return storage_.data() + offset(block, layer, row) + value_offset_;
  }

 private:
  std::size_t offset(std::int32_t block, int layer, int row) const {
    return static_cast<std::size_t>(block) * block_stride_ +
           static_cast<std::size_t>(layer) * layer_stride_ +
           static_cast<std::size_t>(row) * d_;
  }
  void check_live(std::int32_t id, const char* op) const;  // mu_ held

  const int capacity_;
  const int block_size_;
  const int n_layers_;
  const int d_;
  // Block layout: [layer 0 keys | layer 0 values | layer 1 keys | ...],
  // each keys/values section block_size x d_model row-major.
  const std::size_t layer_stride_;   // floats per layer section pair
  const std::size_t value_offset_;   // keys -> values skip within a layer
  const std::size_t block_stride_;   // floats per block

  std::vector<float> storage_;
  mutable std::mutex mu_;
  std::vector<std::int32_t> free_;  // LIFO free list of block ids
  std::vector<int> refs_;           // 0 = free
  int peak_in_use_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t releases_ = 0;
  std::uint64_t cow_copies_ = 0;
  std::uint64_t failed_allocations_ = 0;
};

}  // namespace wisdom::model
