#include "model/transformer.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "model/kv_block.hpp"
#include "nn/ops.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace wisdom::model {

using nn::Vec;

namespace {

// Decode-path metrics, aggregated across every model instance in the
// process. Registered lazily on the first instrumented generate() call;
// updates are gated on obs::enabled().
struct DecodeMetrics {
  obs::Counter* generate_calls;
  obs::Counter* decoded_tokens;
  obs::Histogram* prefill_ms;
  obs::Histogram* token_ms;
};

DecodeMetrics& decode_metrics() {
  static DecodeMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::global();
    return DecodeMetrics{
        &registry.counter("wisdom_model_generate_total",
                          "generate()/generate_beam() invocations."),
        &registry.counter("wisdom_model_decoded_tokens_total",
                          "Decode steps taken (prefill + generation)."),
        &registry.histogram("wisdom_model_prefill_ms", {},
                            "Prompt-ingestion latency per generate call."),
        &registry.histogram("wisdom_model_decode_token_ms", {},
                            "Per-token decode-step latency."),
    };
  }();
  return metrics;
}

double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// dB[t x hd] += dC^T-style product for attention: dk[j] += sum_i ds[i][j]*q[i].
void accumulate_dk(const float* dscores, const float* q, float* dk, int t,
                   int hd) {
  for (int i = 0; i < t; ++i) {
    const float* ds_row = dscores + static_cast<std::size_t>(i) * t;
    const float* q_row = q + static_cast<std::size_t>(i) * hd;
    for (int j = 0; j <= i; ++j) {
      const float s = ds_row[j];
      if (s == 0.0f) continue;
      float* dk_row = dk + static_cast<std::size_t>(j) * hd;
      for (int c = 0; c < hd; ++c) dk_row[c] += s * q_row[c];
    }
  }
}

// Runs body(s0, s1) over the flattened (batch, head) index space, on the
// global pool when the per-call attention work clears the nn parallel
// threshold. Each (b, head) slot touches disjoint slices of the activation
// buffers, and every slot is computed exactly as in the sequential loop, so
// results are bit-identical at any thread count.
void for_each_head(int batch, int h, std::size_t madds,
                   const std::function<void(int, int)>& body) {
  const int slots = batch * h;
  if (slots > 1 && madds >= nn::parallel_threshold() &&
      !util::ThreadPool::in_worker()) {
    util::ThreadPool& pool = util::ThreadPool::global();
    if (pool.size() > 1) {
      pool.parallel_for(0, slots, [&](std::int64_t s0, std::int64_t s1) {
        body(static_cast<int>(s0), static_cast<int>(s1));
      });
      return;
    }
  }
  body(0, slots);
}

}  // namespace

Transformer::Transformer(const ModelConfig& config, std::uint64_t seed)
    : config_(config) {
  assert(config_.valid());
  util::Rng rng(seed);
  const int d = config_.d_model;
  const int ff = config_.d_ff;
  const int v = config_.vocab;
  const float std_embed = 0.02f;
  // Residual projections scaled by 1/sqrt(2*n_layer) (GPT-2 practice) keeps
  // the residual stream variance flat at init.
  const float std_resid =
      0.02f / std::sqrt(2.0f * static_cast<float>(config_.n_layer));

  wte_.resize(static_cast<std::size_t>(v) * d);
  nn::init_normal(wte_.w, rng, std_embed);
  head_.resize(static_cast<std::size_t>(d) * v);
  nn::init_normal(head_.w, rng, std_embed);
  lnf_g_.resize(d);
  nn::fill(lnf_g_.w, 1.0f);
  lnf_b_.resize(d);

  layers_.resize(static_cast<std::size_t>(config_.n_layer));
  for (Layer& layer : layers_) {
    layer.ln1_g.resize(d);
    nn::fill(layer.ln1_g.w, 1.0f);
    layer.ln1_b.resize(d);
    layer.wqkv.resize(static_cast<std::size_t>(d) * 3 * d);
    nn::init_normal(layer.wqkv.w, rng, std_embed);
    layer.bqkv.resize(3 * d);
    layer.wo.resize(static_cast<std::size_t>(d) * d);
    nn::init_normal(layer.wo.w, rng, std_resid);
    layer.bo.resize(d);
    layer.ln2_g.resize(d);
    nn::fill(layer.ln2_g.w, 1.0f);
    layer.ln2_b.resize(d);
    layer.wfc.resize(static_cast<std::size_t>(d) * ff);
    nn::init_normal(layer.wfc.w, rng, std_embed);
    layer.bfc.resize(ff);
    layer.wproj.resize(static_cast<std::size_t>(ff) * d);
    nn::init_normal(layer.wproj.w, rng, std_resid);
    layer.bproj.resize(d);
  }
  acts_.resize(layers_.size());
}

void Transformer::set_context_window(std::int32_t ctx) {
  assert(ctx >= 8);
  config_.ctx = ctx;
}

std::int64_t Transformer::param_count() const {
  std::int64_t total = 0;
  for (const nn::Param* p : parameters()) {
    total += static_cast<std::int64_t>(p->size());
  }
  return total;
}

std::vector<nn::Param*> Transformer::parameters() {
  std::vector<nn::Param*> out = {&wte_};
  for (Layer& l : layers_) {
    for (nn::Param* p : {&l.ln1_g, &l.ln1_b, &l.wqkv, &l.bqkv, &l.wo, &l.bo,
                         &l.ln2_g, &l.ln2_b, &l.wfc, &l.bfc, &l.wproj,
                         &l.bproj}) {
      out.push_back(p);
    }
  }
  out.push_back(&lnf_g_);
  out.push_back(&lnf_b_);
  out.push_back(&head_);
  return out;
}

std::vector<const nn::Param*> Transformer::parameters() const {
  auto mut = const_cast<Transformer*>(this)->parameters();
  return {mut.begin(), mut.end()};
}

void Transformer::zero_grad() {
  for (nn::Param* p : parameters()) p->zero_grad();
}

void Transformer::optim_step(nn::AdamW& opt, float lr, float grad_scale,
                             float clip_norm) {
  auto params = parameters();
  if (grad_scale != 1.0f) {
    for (nn::Param* p : params) {
      for (float& g : p->g) g *= grad_scale;
    }
  }
  if (clip_norm > 0.0f) nn::clip_grad_norm(params, clip_norm);
  opt.begin_step();
  for (nn::Param* p : params) {
    // No weight decay on layernorm gains/biases and other 1-D params.
    bool decay = p->size() > static_cast<std::size_t>(3 * config_.d_model);
    opt.step_param(*p, lr, decay);
  }
}

float Transformer::forward_backward(std::span<const std::int32_t> x,
                                    std::span<const std::int32_t> y,
                                    int batch, int t) {
  return run(x, y, batch, t, /*backward=*/true);
}

float Transformer::evaluate(std::span<const std::int32_t> x,
                            std::span<const std::int32_t> y, int batch,
                            int t) {
  return run(x, y, batch, t, /*backward=*/false);
}

float Transformer::run(std::span<const std::int32_t> x,
                       std::span<const std::int32_t> y, int batch, int t,
                       bool backward) {
  assert(t <= config_.ctx);
  const int d = config_.d_model;
  const int h = config_.n_head;
  const int hd = config_.head_dim();
  const int rot = config_.rotary_dim();
  const int ff = config_.d_ff;
  const int v = config_.vocab;
  const int rows = batch * t;
  assert(static_cast<int>(x.size()) == rows);
  assert(static_cast<int>(y.size()) == rows);
  const std::size_t rd = static_cast<std::size_t>(rows) * d;
  const float att_scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // --- forward -------------------------------------------------------------
  Vec residual(rd);
  nn::embedding(wte_.w.data(), x.data(), residual.data(), rows, d);

  // Attention work per (batch, head) slot: q·k^T plus probs·v.
  const std::size_t att_madds = 2 * static_cast<std::size_t>(batch) * h * t *
                                t * static_cast<std::size_t>(hd);

  for (std::size_t li = 0; li < layers_.size(); ++li) {
    Layer& L = layers_[li];
    LayerActs& A = acts_[li];
    A.input = residual;
    A.ln1_out.resize(rd);
    A.ln1_mean.resize(rows);
    A.ln1_rstd.resize(rows);
    nn::layernorm(A.input.data(), L.ln1_g.w.data(), L.ln1_b.w.data(),
                  A.ln1_out.data(), A.ln1_mean.data(), A.ln1_rstd.data(),
                  rows, d);
    A.qkv.resize(static_cast<std::size_t>(rows) * 3 * d);
    nn::matmul(A.ln1_out.data(), L.wqkv.w.data(), A.qkv.data(), rows, d,
               3 * d);
    nn::add_bias(A.qkv.data(), L.bqkv.w.data(), A.qkv.data(), rows, 3 * d);

    A.att_probs.assign(
        static_cast<std::size_t>(batch) * h * t * t, 0.0f);
    A.att_mix.assign(rd, 0.0f);

    for_each_head(batch, h, att_madds, [&](int s0, int s1) {
      Vec qh(static_cast<std::size_t>(t) * hd), kh(qh.size()),
          vh(qh.size()), oh(qh.size());
      Vec scores(static_cast<std::size_t>(t) * t);
      for (int s = s0; s < s1; ++s) {
        const int b = s / h;
        const int head = s % h;
        // Gather contiguous per-head q/k/v.
        for (int i = 0; i < t; ++i) {
          const float* row =
              A.qkv.data() + (static_cast<std::size_t>(b) * t + i) * 3 * d;
          std::memcpy(&qh[static_cast<std::size_t>(i) * hd],
                      row + head * hd, hd * sizeof(float));
          std::memcpy(&kh[static_cast<std::size_t>(i) * hd],
                      row + d + head * hd, hd * sizeof(float));
          std::memcpy(&vh[static_cast<std::size_t>(i) * hd],
                      row + 2 * d + head * hd, hd * sizeof(float));
        }
        nn::rotary(qh.data(), t, hd, rot, 0);
        nn::rotary(kh.data(), t, hd, rot, 0);
        // Write the rotated q/k back so the backward pass sees them.
        for (int i = 0; i < t; ++i) {
          float* row =
              A.qkv.data() + (static_cast<std::size_t>(b) * t + i) * 3 * d;
          std::memcpy(row + head * hd, &qh[static_cast<std::size_t>(i) * hd],
                      hd * sizeof(float));
          std::memcpy(row + d + head * hd,
                      &kh[static_cast<std::size_t>(i) * hd],
                      hd * sizeof(float));
        }
        // Causal attention.
        nn::matmul_bt(qh.data(), kh.data(), scores.data(), t, hd, t);
        for (int i = 0; i < t; ++i) {
          float* srow = scores.data() + static_cast<std::size_t>(i) * t;
          for (int j = 0; j <= i; ++j) srow[j] *= att_scale;
          for (int j = i + 1; j < t; ++j) srow[j] = -1e30f;
        }
        float* probs =
            A.att_probs.data() +
            (static_cast<std::size_t>(b) * h + head) * t * t;
        nn::softmax(scores.data(), probs, t, t);
        nn::matmul(probs, vh.data(), oh.data(), t, t, hd);
        for (int i = 0; i < t; ++i) {
          std::memcpy(A.att_mix.data() +
                          (static_cast<std::size_t>(b) * t + i) * d +
                          head * hd,
                      &oh[static_cast<std::size_t>(i) * hd],
                      hd * sizeof(float));
        }
      }
    });

    // Attention output projection + residual.
    Vec att_out(rd);
    nn::matmul(A.att_mix.data(), L.wo.w.data(), att_out.data(), rows, d, d);
    nn::add_bias(att_out.data(), L.bo.w.data(), att_out.data(), rows, d);
    A.mid.resize(rd);
    for (std::size_t i = 0; i < rd; ++i)
      A.mid[i] = A.input[i] + att_out[i];

    // MLP.
    A.ln2_out.resize(rd);
    A.ln2_mean.resize(rows);
    A.ln2_rstd.resize(rows);
    nn::layernorm(A.mid.data(), L.ln2_g.w.data(), L.ln2_b.w.data(),
                  A.ln2_out.data(), A.ln2_mean.data(), A.ln2_rstd.data(),
                  rows, d);
    A.fc_pre.resize(static_cast<std::size_t>(rows) * ff);
    nn::matmul(A.ln2_out.data(), L.wfc.w.data(), A.fc_pre.data(), rows, d,
               ff);
    nn::add_bias(A.fc_pre.data(), L.bfc.w.data(), A.fc_pre.data(), rows, ff);
    A.fc_act.resize(A.fc_pre.size());
    nn::gelu(A.fc_pre.data(), A.fc_act.data(),
             static_cast<int>(A.fc_pre.size()));
    Vec proj(rd);
    nn::matmul(A.fc_act.data(), L.wproj.w.data(), proj.data(), rows, ff, d);
    nn::add_bias(proj.data(), L.bproj.w.data(), proj.data(), rows, d);
    for (std::size_t i = 0; i < rd; ++i) residual[i] = A.mid[i] + proj[i];
  }

  final_in_ = residual;
  final_out_.resize(rd);
  final_mean_.resize(rows);
  final_rstd_.resize(rows);
  nn::layernorm(final_in_.data(), lnf_g_.w.data(), lnf_b_.w.data(),
                final_out_.data(), final_mean_.data(), final_rstd_.data(),
                rows, d);
  logits_.resize(static_cast<std::size_t>(rows) * v);
  nn::matmul(final_out_.data(), head_.w.data(), logits_.data(), rows, d, v);
  dlogits_.resize(logits_.size());
  float loss = nn::cross_entropy(logits_.data(), y.data(), rows, v,
                                 /*ignore_index=*/-1, dlogits_.data());
  if (!backward) return loss;

  // --- backward ------------------------------------------------------------
  Vec dfinal_out(rd, 0.0f);
  nn::matmul_backward(final_out_.data(), head_.w.data(), dlogits_.data(),
                      dfinal_out.data(), head_.g.data(), rows, d, v);
  Vec dres(rd, 0.0f);
  nn::layernorm_backward(final_in_.data(), lnf_g_.w.data(),
                         final_mean_.data(), final_rstd_.data(),
                         dfinal_out.data(), dres.data(), lnf_g_.g.data(),
                         lnf_b_.g.data(), rows, d);

  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& L = layers_[li];
    LayerActs& A = acts_[li];

    // residual_out = mid + proj; dres covers both branches.
    Vec dfc_act(static_cast<std::size_t>(rows) * ff, 0.0f);
    nn::matmul_backward(A.fc_act.data(), L.wproj.w.data(), dres.data(),
                        dfc_act.data(), L.wproj.g.data(), rows, ff, d);
    nn::add_bias_backward(dres.data(), L.bproj.g.data(), rows, d);
    Vec dfc_pre(dfc_act.size(), 0.0f);
    nn::gelu_backward(A.fc_pre.data(), dfc_act.data(), dfc_pre.data(),
                      static_cast<int>(dfc_pre.size()));
    Vec dln2(rd, 0.0f);
    nn::matmul_backward(A.ln2_out.data(), L.wfc.w.data(), dfc_pre.data(),
                        dln2.data(), L.wfc.g.data(), rows, d, ff);
    nn::add_bias_backward(dfc_pre.data(), L.bfc.g.data(), rows, ff);

    Vec dmid = dres;  // gradient through the second residual connection
    nn::layernorm_backward(A.mid.data(), L.ln2_g.w.data(), A.ln2_mean.data(),
                           A.ln2_rstd.data(), dln2.data(), dmid.data(),
                           L.ln2_g.g.data(), L.ln2_b.g.data(), rows, d);

    // mid = input + att_out.
    Vec datt_mix(rd, 0.0f);
    nn::matmul_backward(A.att_mix.data(), L.wo.w.data(), dmid.data(),
                        datt_mix.data(), L.wo.g.data(), rows, d, d);
    nn::add_bias_backward(dmid.data(), L.bo.g.data(), rows, d);

    Vec dqkv(static_cast<std::size_t>(rows) * 3 * d, 0.0f);
    for_each_head(batch, h, att_madds, [&](int s0, int s1) {
      Vec qh(static_cast<std::size_t>(t) * hd), kh(qh.size()), vh(qh.size());
      Vec dqh(qh.size()), dkh(qh.size()), dvh(qh.size()), doh(qh.size());
      Vec dprobs(static_cast<std::size_t>(t) * t), dscores(dprobs.size());
      for (int s = s0; s < s1; ++s) {
        const int b = s / h;
        const int head = s % h;
        for (int i = 0; i < t; ++i) {
          const float* row =
              A.qkv.data() + (static_cast<std::size_t>(b) * t + i) * 3 * d;
          std::memcpy(&qh[static_cast<std::size_t>(i) * hd],
                      row + head * hd, hd * sizeof(float));
          std::memcpy(&kh[static_cast<std::size_t>(i) * hd],
                      row + d + head * hd, hd * sizeof(float));
          std::memcpy(&vh[static_cast<std::size_t>(i) * hd],
                      row + 2 * d + head * hd, hd * sizeof(float));
          std::memcpy(&doh[static_cast<std::size_t>(i) * hd],
                      datt_mix.data() +
                          (static_cast<std::size_t>(b) * t + i) * d +
                          head * hd,
                      hd * sizeof(float));
        }
        const float* probs =
            A.att_probs.data() +
            (static_cast<std::size_t>(b) * h + head) * t * t;
        // oh = probs * vh
        std::fill(dprobs.begin(), dprobs.end(), 0.0f);
        std::fill(dvh.begin(), dvh.end(), 0.0f);
        nn::matmul_backward(probs, vh.data(), doh.data(), dprobs.data(),
                            dvh.data(), t, t, hd);
        std::fill(dscores.begin(), dscores.end(), 0.0f);
        nn::softmax_backward(probs, dprobs.data(), dscores.data(), t, t);
        // scores = (qh kh^T) * att_scale with causal mask.
        for (int i = 0; i < t; ++i) {
          float* row = dscores.data() + static_cast<std::size_t>(i) * t;
          for (int j = 0; j <= i; ++j) row[j] *= att_scale;
          for (int j = i + 1; j < t; ++j) row[j] = 0.0f;
        }
        nn::matmul(dscores.data(), kh.data(), dqh.data(), t, t, hd);
        std::fill(dkh.begin(), dkh.end(), 0.0f);
        accumulate_dk(dscores.data(), qh.data(), dkh.data(), t, hd);
        nn::rotary_backward(dqh.data(), t, hd, rot, 0);
        nn::rotary_backward(dkh.data(), t, hd, rot, 0);
        for (int i = 0; i < t; ++i) {
          float* row =
              dqkv.data() + (static_cast<std::size_t>(b) * t + i) * 3 * d;
          std::memcpy(row + head * hd, &dqh[static_cast<std::size_t>(i) * hd],
                      hd * sizeof(float));
          std::memcpy(row + d + head * hd,
                      &dkh[static_cast<std::size_t>(i) * hd],
                      hd * sizeof(float));
          std::memcpy(row + 2 * d + head * hd,
                      &dvh[static_cast<std::size_t>(i) * hd],
                      hd * sizeof(float));
        }
      }
    });

    Vec dln1(rd, 0.0f);
    nn::matmul_backward(A.ln1_out.data(), L.wqkv.w.data(), dqkv.data(),
                        dln1.data(), L.wqkv.g.data(), rows, d, 3 * d);
    nn::add_bias_backward(dqkv.data(), L.bqkv.g.data(), rows, 3 * d);

    Vec dinput = dmid;  // gradient through the first residual connection
    nn::layernorm_backward(A.input.data(), L.ln1_g.w.data(),
                           A.ln1_mean.data(), A.ln1_rstd.data(), dln1.data(),
                           dinput.data(), L.ln1_g.g.data(),
                           L.ln1_b.g.data(), rows, d);
    dres = std::move(dinput);
  }
  nn::embedding_backward(x.data(), dres.data(), wte_.g.data(), rows, d);
  return loss;
}

namespace {

void release_blocks(Transformer::KvCache& cache) {
  if (!cache.arena) return;
  for (std::int32_t id : cache.block_table) cache.arena->release(id);
  cache.block_table.clear();
}

}  // namespace

Transformer::KvCache::KvCache(const KvCache& other)
    : keys(other.keys),
      values(other.values),
      logits(other.logits),
      length(other.length),
      row_width(other.row_width),
      capacity(other.capacity),
      arena(other.arena),
      block_table(other.block_table) {
  if (arena)
    for (std::int32_t id : block_table) arena->add_ref(id);
}

Transformer::KvCache::KvCache(KvCache&& other) noexcept
    : keys(std::move(other.keys)),
      values(std::move(other.values)),
      logits(std::move(other.logits)),
      length(other.length),
      row_width(other.row_width),
      capacity(other.capacity),
      arena(other.arena),
      block_table(std::move(other.block_table)) {
  other.arena = nullptr;
  other.block_table.clear();
  other.length = 0;
}

Transformer::KvCache& Transformer::KvCache::operator=(const KvCache& other) {
  if (this == &other) return *this;
  KvCache copy(other);
  *this = std::move(copy);
  return *this;
}

Transformer::KvCache& Transformer::KvCache::operator=(
    KvCache&& other) noexcept {
  if (this == &other) return *this;
  release_blocks(*this);
  keys = std::move(other.keys);
  values = std::move(other.values);
  logits = std::move(other.logits);
  length = other.length;
  row_width = other.row_width;
  capacity = other.capacity;
  arena = other.arena;
  block_table = std::move(other.block_table);
  other.arena = nullptr;
  other.block_table.clear();
  other.length = 0;
  return *this;
}

Transformer::KvCache::~KvCache() { release_blocks(*this); }

Transformer::KvCache Transformer::KvCache::clone(int new_length) const {
  KvCache out;
  const int n = new_length < 0 ? length : std::min(new_length, length);
  out.length = std::max(0, n);
  out.row_width = row_width;
  out.capacity = capacity;
  if (paged()) {
    out.arena = arena;
    const int bs = arena->block_size();
    const int nblocks = (out.length + bs - 1) / bs;
    out.block_table.assign(block_table.begin(),
                           block_table.begin() + nblocks);
    for (std::int32_t id : out.block_table) arena->add_ref(id);
  } else {
    const std::size_t rows = static_cast<std::size_t>(out.length) *
                             static_cast<std::size_t>(row_width);
    out.keys.reserve(keys.size());
    out.values.reserve(values.size());
    for (const Vec& k : keys)
      out.keys.emplace_back(k.begin(),
                            k.begin() + static_cast<std::ptrdiff_t>(rows));
    for (const Vec& v : values)
      out.values.emplace_back(v.begin(),
                              v.begin() + static_cast<std::ptrdiff_t>(rows));
  }
  if (out.length == length) out.logits = logits;
  return out;
}

void Transformer::KvCache::truncate(int new_length) {
  if (new_length >= length) return;
  length = std::max(0, new_length);
  if (paged()) {
    const int bs = arena->block_size();
    const int keep = (length + bs - 1) / bs;
    while (static_cast<int>(block_table.size()) > keep) {
      arena->release(block_table.back());
      block_table.pop_back();
    }
  }
  // The logits belong to the position that no longer is the last one.
  logits.clear();
  logits.shrink_to_fit();
}

std::size_t Transformer::KvCache::byte_size() const {
  std::size_t bytes = logits.capacity() * sizeof(float);
  if (paged()) {
    bytes += block_table.size() * arena->block_bytes();
    bytes += block_table.capacity() * sizeof(std::int32_t);
  }
  for (const Vec& k : keys) bytes += k.capacity() * sizeof(float);
  for (const Vec& v : values) bytes += v.capacity() * sizeof(float);
  return bytes;
}

void Transformer::KvCache::materialize() {
  if (!paged()) return;
  const int layers = arena->n_layers();
  const int d = row_width;
  const int bs = arena->block_size();
  const std::size_t per_layer =
      static_cast<std::size_t>(capacity) * static_cast<std::size_t>(d);
  keys.assign(static_cast<std::size_t>(layers), Vec(per_layer, 0.0f));
  values.assign(static_cast<std::size_t>(layers), Vec(per_layer, 0.0f));
  for (int li = 0; li < layers; ++li) {
    for (std::size_t b = 0; b < block_table.size(); ++b) {
      const int row0 = static_cast<int>(b) * bs;
      const int rows = std::min(bs, length - row0);
      if (rows <= 0) break;
      std::memcpy(keys[static_cast<std::size_t>(li)].data() +
                      static_cast<std::size_t>(row0) * d,
                  arena->key_row(block_table[b], li, 0),
                  static_cast<std::size_t>(rows) * d * sizeof(float));
      std::memcpy(values[static_cast<std::size_t>(li)].data() +
                      static_cast<std::size_t>(row0) * d,
                  arena->value_row(block_table[b], li, 0),
                  static_cast<std::size_t>(rows) * d * sizeof(float));
    }
  }
  release_blocks(*this);
  arena = nullptr;
}

Transformer::KvCache Transformer::make_cache() const {
  KvCache cache;
  const std::size_t per_layer =
      static_cast<std::size_t>(config_.ctx) * config_.d_model;
  cache.keys.assign(layers_.size(), Vec(per_layer, 0.0f));
  cache.values.assign(layers_.size(), Vec(per_layer, 0.0f));
  cache.row_width = config_.d_model;
  cache.capacity = config_.ctx;
  return cache;
}

Transformer::KvCache Transformer::make_paged_cache(
    KvBlockAllocator* arena) const {
  if (!arena) return make_cache();
  assert(arena->n_layers() == static_cast<int>(layers_.size()));
  assert(arena->row_width() == config_.d_model);
  KvCache cache;
  cache.arena = arena;
  cache.row_width = config_.d_model;
  cache.capacity = config_.ctx;
  return cache;
}

namespace {

// One contiguous run of KV rows: `rows` rows of keys at `k` and values at
// `v`, row stride = d_model. A monolithic cache is a single run; a paged
// cache contributes one run per block (the last possibly partial). The
// attention loops walk runs in logical row order, so the per-row
// arithmetic — and therefore every accumulated float — is identical in
// both layouts.
struct KvRun {
  const float* k;
  const float* v;
  int rows;
};

// Appends the runs covering rows [0, count) of layer `li`.
void collect_runs(const Transformer::KvCache& cache, int li, int count,
                  std::vector<KvRun>& runs) {
  runs.clear();
  if (!cache.paged()) {
    runs.push_back({cache.keys[static_cast<std::size_t>(li)].data(),
                    cache.values[static_cast<std::size_t>(li)].data(),
                    count});
    return;
  }
  const int bs = cache.arena->block_size();
  for (std::size_t b = 0; b * bs < static_cast<std::size_t>(count); ++b) {
    const int rows = std::min(bs, count - static_cast<int>(b) * bs);
    runs.push_back({cache.arena->key_row(cache.block_table[b], li, 0),
                    cache.arena->value_row(cache.block_table[b], li, 0),
                    rows});
  }
}

// Makes row `pos` of `cache` writable: grows a compacted monolithic clone
// back to the full window, allocates or copy-on-writes the paged block
// covering `pos`. On arena exhaustion the cache falls back to monolithic
// (materialize) — decoding never fails, it just stops being paged.
void prepare_append(Transformer::KvCache& cache, int pos, int ctx) {
  if (!cache.paged()) {
    const std::size_t full_rows = static_cast<std::size_t>(ctx) *
                                  static_cast<std::size_t>(cache.row_width);
    for (std::size_t li = 0; li < cache.keys.size(); ++li) {
      if (cache.keys[li].size() < full_rows)
        cache.keys[li].resize(full_rows, 0.0f);
      if (cache.values[li].size() < full_rows)
        cache.values[li].resize(full_rows, 0.0f);
    }
    return;
  }
  KvBlockAllocator* arena = cache.arena;
  const int bs = arena->block_size();
  const std::size_t b = static_cast<std::size_t>(pos / bs);
  if (b < cache.block_table.size()) {
    // Appending into the last block; copy-on-write if it is shared (a
    // prefix-cache snapshot or beam sibling also references it).
    const std::int32_t exclusive =
        arena->make_exclusive(cache.block_table[b]);
    if (exclusive < 0) {
      cache.materialize();
      prepare_append(cache, pos, ctx);
      return;
    }
    cache.block_table[b] = exclusive;
  } else {
    const std::int32_t id = arena->allocate();
    if (id < 0) {
      cache.materialize();
      prepare_append(cache, pos, ctx);
      return;
    }
    cache.block_table.push_back(id);
  }
}

float* key_append_row(Transformer::KvCache& cache, int li, int pos) {
  if (!cache.paged())
    return cache.keys[static_cast<std::size_t>(li)].data() +
           static_cast<std::size_t>(pos) * cache.row_width;
  const int bs = cache.arena->block_size();
  return cache.arena->key_row(
      cache.block_table[static_cast<std::size_t>(pos / bs)], li, pos % bs);
}

float* value_append_row(Transformer::KvCache& cache, int li, int pos) {
  if (!cache.paged())
    return cache.values[static_cast<std::size_t>(li)].data() +
           static_cast<std::size_t>(pos) * cache.row_width;
  const int bs = cache.arena->block_size();
  return cache.arena->value_row(
      cache.block_table[static_cast<std::size_t>(pos / bs)], li, pos % bs);
}

}  // namespace

std::span<const float> Transformer::decode_step(KvCache& cache,
                                                std::int32_t token) const {
  KvCache* caches[1] = {&cache};
  const std::int32_t tokens[1] = {token};
  decode_step_batch(std::span<KvCache* const>(caches, 1),
                    std::span<const std::int32_t>(tokens, 1));
  return cache.logits;
}

void Transformer::decode_step_batch(
    std::span<KvCache* const> caches,
    std::span<const std::int32_t> tokens) const {
  assert(tokens.size() == caches.size());
  const std::size_t n = caches.size();
  if (n == 0) return;
  std::vector<SpanFeed> feeds(n);
  for (std::size_t s = 0; s < n; ++s)
    feeds[s] = SpanFeed{caches[s], tokens.subspan(s, 1)};
  verify_step_batch(feeds);
}

void Transformer::verify_step_batch(std::span<const SpanFeed> feeds,
                                    std::vector<float>* row_logits) const {
  const int d = config_.d_model;
  const int h = config_.n_head;
  const int hd = config_.head_dim();
  const int rot = config_.rotary_dim();
  const int ff = config_.d_ff;
  const int v = config_.vocab;
  const float att_scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // Flatten the feeds into rows: row r appends token row_token[r] to
  // feeds[row_feed[r]].cache at position row_pos[r]. Runs keep their feed
  // order, so row-major row_logits line up with the drafted chains.
  std::vector<int> row_feed, row_pos, base(feeds.size());
  std::vector<std::int32_t> row_token;
  for (std::size_t s = 0; s < feeds.size(); ++s) {
    KvCache& cache = *feeds[s].cache;
    base[s] = cache.length;
    assert(cache.length + static_cast<int>(feeds[s].tokens.size()) <=
           config_.ctx);
    for (std::size_t j = 0; j < feeds[s].tokens.size(); ++j) {
      const int p = cache.length + static_cast<int>(j);
      assert(feeds[s].tokens[j] >= 0 && feeds[s].tokens[j] < config_.vocab);
      row_feed.push_back(static_cast<int>(s));
      row_pos.push_back(p);
      row_token.push_back(feeds[s].tokens[j]);
      prepare_append(cache, p, config_.ctx);
    }
  }
  const int n = static_cast<int>(row_token.size());
  if (n == 0) return;

  const std::size_t nd = static_cast<std::size_t>(n) * d;
  Vec x(nd);
  for (int r = 0; r < n; ++r)
    std::memcpy(x.data() + static_cast<std::size_t>(r) * d,
                wte_.w.data() +
                    static_cast<std::size_t>(
                        row_token[static_cast<std::size_t>(r)]) *
                        d,
                d * sizeof(float));
  Vec a1(nd), qkv(static_cast<std::size_t>(n) * 3 * d), mix(nd), tmp(nd),
      a2(nd), fc(static_cast<std::size_t>(n) * ff), mean(n), rstd(n);

  // Attention work this step: q·K^T plus probs·V per (row, head).
  std::size_t att_madds = 0;
  for (int r = 0; r < n; ++r)
    att_madds +=
        2ull * static_cast<std::size_t>(h) *
        static_cast<std::size_t>(row_pos[static_cast<std::size_t>(r)] + 1) *
        static_cast<std::size_t>(hd);

  std::vector<std::vector<KvRun>> runs(feeds.size());

  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& L = layers_[li];
    // Batched rows: every kernel below computes each row exactly as the
    // single-row step would (row-independent kernels), and a row's causal
    // attention reads exactly the K/V rows a sequential feed of its run
    // would have written, in the same order — so the fused pass is
    // bit-identical to sequential decode_steps.
    nn::layernorm(x.data(), L.ln1_g.w.data(), L.ln1_b.w.data(), a1.data(),
                  mean.data(), rstd.data(), n, d);
    nn::matmul(a1.data(), L.wqkv.w.data(), qkv.data(), n, d, 3 * d);
    nn::add_bias(qkv.data(), L.bqkv.w.data(), qkv.data(), n, 3 * d);
    for (int r = 0; r < n; ++r) {
      float* row = qkv.data() + static_cast<std::size_t>(r) * 3 * d;
      const int p = row_pos[static_cast<std::size_t>(r)];
      KvCache& cache = *feeds[static_cast<std::size_t>(
                                  row_feed[static_cast<std::size_t>(r)])]
                            .cache;
      // Rotate q and k at this row's position.
      for (int head = 0; head < h; ++head) {
        nn::rotary(row + head * hd, 1, hd, rot, p);
        nn::rotary(row + d + head * hd, 1, hd, rot, p);
      }
      // Append rotated k and v.
      std::memcpy(key_append_row(cache, static_cast<int>(li), p), row + d,
                  d * sizeof(float));
      std::memcpy(value_append_row(cache, static_cast<int>(li), p),
                  row + 2 * d, d * sizeof(float));
    }
    // All of this layer's rows are appended; each attention row below caps
    // its walk at its own causal horizon (earlier rows of the same run
    // included, later ones not).
    for (std::size_t s = 0; s < feeds.size(); ++s)
      collect_runs(*feeds[s].cache, static_cast<int>(li),
                   base[s] + static_cast<int>(feeds[s].tokens.size()),
                   runs[s]);

    for_each_head(n, h, att_madds, [&](int s0, int s1) {
      Vec att(static_cast<std::size_t>(config_.ctx));
      for (int slot = s0; slot < s1; ++slot) {
        const int r = slot / h;
        const int head = slot % h;
        const std::size_t s =
            static_cast<std::size_t>(row_feed[static_cast<std::size_t>(r)]);
        const float* q =
            qkv.data() + static_cast<std::size_t>(r) * 3 * d + head * hd;
        const int count = row_pos[static_cast<std::size_t>(r)] + 1;
        int j = 0;
        for (const KvRun& run : runs[s]) {
          const int rows = std::min(run.rows, count - j);
          for (int rr = 0; rr < rows; ++rr) {
            const float* krow =
                run.k + static_cast<std::size_t>(rr) * d + head * hd;
            float acc = 0.0f;
            for (int c = 0; c < hd; ++c) acc += q[c] * krow[c];
            att[static_cast<std::size_t>(j++)] = acc * att_scale;
          }
          if (j >= count) break;
        }
        nn::softmax(att.data(), att.data(), 1, count);
        float* out = mix.data() + static_cast<std::size_t>(r) * d + head * hd;
        std::fill(out, out + hd, 0.0f);
        j = 0;
        for (const KvRun& run : runs[s]) {
          const int rows = std::min(run.rows, count - j);
          for (int rr = 0; rr < rows; ++rr) {
            const float w = att[static_cast<std::size_t>(j++)];
            const float* vrow =
                run.v + static_cast<std::size_t>(rr) * d + head * hd;
            for (int c = 0; c < hd; ++c) out[c] += w * vrow[c];
          }
          if (j >= count) break;
        }
      }
    });

    nn::matmul(mix.data(), L.wo.w.data(), tmp.data(), n, d, d);
    nn::add_bias(tmp.data(), L.bo.w.data(), tmp.data(), n, d);
    for (std::size_t i = 0; i < nd; ++i) x[i] += tmp[i];

    nn::layernorm(x.data(), L.ln2_g.w.data(), L.ln2_b.w.data(), a2.data(),
                  mean.data(), rstd.data(), n, d);
    nn::matmul(a2.data(), L.wfc.w.data(), fc.data(), n, d, ff);
    nn::add_bias(fc.data(), L.bfc.w.data(), fc.data(), n, ff);
    nn::gelu(fc.data(), fc.data(), n * ff);
    nn::matmul(fc.data(), L.wproj.w.data(), tmp.data(), n, ff, d);
    nn::add_bias(tmp.data(), L.bproj.w.data(), tmp.data(), n, d);
    for (std::size_t i = 0; i < nd; ++i) x[i] += tmp[i];
  }
  nn::layernorm(x.data(), lnf_g_.w.data(), lnf_b_.w.data(), a1.data(),
                mean.data(), rstd.data(), n, d);
  Vec logits_all(static_cast<std::size_t>(n) * v);
  nn::matmul(a1.data(), head_.w.data(), logits_all.data(), n, d, v);
  if (row_logits)
    row_logits->assign(logits_all.begin(), logits_all.end());
  for (int r = 0; r < n; ++r) {
    const std::size_t s =
        static_cast<std::size_t>(row_feed[static_cast<std::size_t>(r)]);
    KvCache& cache = *feeds[s].cache;
    // The run's last row becomes the cache's next-token logits.
    if (static_cast<std::size_t>(r + 1) == row_token.size() ||
        static_cast<std::size_t>(
            row_feed[static_cast<std::size_t>(r + 1)]) != s)
      cache.logits.assign(
          logits_all.begin() + static_cast<std::ptrdiff_t>(r) * v,
          logits_all.begin() + static_cast<std::ptrdiff_t>(r + 1) * v);
    cache.length = row_pos[static_cast<std::size_t>(r)] + 1;
  }
}

std::span<const std::int32_t> Transformer::kept_prompt(
    std::span<const std::int32_t> prompt, int max_new_tokens) const {
  // Left-truncate the prompt so prompt + generation fits the window, but
  // never reserve more than half the window for generation — a prompt
  // crushed to a few tokens would leave nothing to condition on.
  const int reserve = std::min(max_new_tokens, config_.ctx / 2);
  const int budget = std::max(1, config_.ctx - reserve);
  if (static_cast<int>(prompt.size()) > budget)
    return prompt.subspan(prompt.size() - static_cast<std::size_t>(budget));
  return prompt;
}

std::vector<std::int32_t> Transformer::generate(
    std::span<const std::int32_t> prompt,
    const GenerateOptions& options) const {
  std::span<const std::int32_t> kept =
      kept_prompt(prompt, options.max_new_tokens);

  GenerateStatus local_status;
  GenerateStatus& status = options.status ? *options.status : local_status;
  status = GenerateStatus{};

  obs::TraceContext inert_trace;
  obs::TraceContext& trace =
      options.trace ? *options.trace : inert_trace;
  const bool observe = obs::enabled();
  if (observe) decode_metrics().generate_calls->inc();

  // Warm start: the caller's cache already holds a prefix of the kept
  // prompt, so prefill resumes after it. The cached rows are exactly the
  // rows a cold prefill would write (decode_step is deterministic in the
  // token sequence), so warm and cold generation are bit-identical.
  KvCache local_cache;
  KvCache* cache_ptr = options.warm_cache;
  if (cache_ptr) {
    assert(cache_ptr->length <= static_cast<int>(kept.size()));
    assert(cache_ptr->length < static_cast<int>(kept.size()) ||
           !cache_ptr->logits.empty());
  } else {
    local_cache = make_cache();
    cache_ptr = &local_cache;
  }
  KvCache& cache = *cache_ptr;
  const std::size_t skip = static_cast<std::size_t>(cache.length);
  status.prefill_tokens_reused = cache.length;

  std::span<const float> logits;
  if (skip == kept.size() && skip > 0) logits = cache.logits;
  std::vector<std::int32_t> out;
  {
    auto prefill_span = trace.span("prefill");
    auto prefill_start = observe ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    for (std::size_t i = skip; i < kept.size(); ++i) {
      if (options.deadline.expired()) {
        status.deadline_expired = true;
        return out;  // nothing decoded yet: empty partial result
      }
      logits = decode_step(cache, kept[i]);
      ++status.steps_taken;
    }
    if (observe) {
      decode_metrics().prefill_ms->observe(elapsed_ms_since(prefill_start));
      decode_metrics().decoded_tokens->inc(
          static_cast<std::uint64_t>(status.steps_taken));
    }
  }
  if (kept.empty()) return out;
  if (options.prompt_snapshot)
    *options.prompt_snapshot = cache.clone(static_cast<int>(kept.size()));
  util::Rng rng(options.sample_seed);
  for (int i = 0; i < options.max_new_tokens && cache.length < config_.ctx;
       ++i) {
    if (options.deadline.expired()) {
      status.deadline_expired = true;
      break;
    }
    auto decode_span = trace.span("decode");
    std::int32_t next =
        options.temperature > 0.0f
            ? sample_token(logits, options.temperature, options.top_k, rng)
            : argmax_token(logits);
    if (next == options.stop_token) break;
    out.push_back(next);
    if (options.on_token) options.on_token(next);
    if (cache.length < config_.ctx) {
      auto token_start = observe ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
      logits = decode_step(cache, next);
      ++status.steps_taken;
      if (observe) {
        decode_metrics().token_ms->observe(elapsed_ms_since(token_start));
        decode_metrics().decoded_tokens->inc();
      }
    }
  }
  return out;
}

namespace {

// Row log-softmax into `out` (size vocab).
void log_softmax(std::span<const float> logits, std::vector<float>& out) {
  out.resize(logits.size());
  float mx = logits[0];
  for (float v : logits) mx = std::max(mx, v);
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i)
    sum += std::exp(static_cast<double>(logits[i] - mx));
  const float log_z = mx + static_cast<float>(std::log(sum));
  for (std::size_t i = 0; i < logits.size(); ++i) out[i] = logits[i] - log_z;
}

}  // namespace

std::vector<std::int32_t> Transformer::generate_beam(
    std::span<const std::int32_t> prompt, const BeamOptions& options) const {
  const int width = std::max(1, options.beam_width);
  std::span<const std::int32_t> kept =
      kept_prompt(prompt, options.max_new_tokens);
  if (kept.empty()) return {};

  struct Beam {
    KvCache cache;
    std::vector<std::int32_t> tokens;
    float score = 0.0f;
    std::vector<float> logprobs;  // of the next-token distribution
  };
  auto normalized = [&](float score, std::size_t length) {
    if (length == 0) return score;
    return score / std::pow(static_cast<float>(length),
                            options.length_penalty);
  };

  GenerateStatus local_status;
  GenerateStatus& status = options.status ? *options.status : local_status;
  status = GenerateStatus{};

  obs::TraceContext inert_trace;
  obs::TraceContext& trace =
      options.trace ? *options.trace : inert_trace;
  const bool observe = obs::enabled();
  if (observe) decode_metrics().generate_calls->inc();

  // Seed beam: the prompt fed once, resuming past any warm-cached prefix
  // (same contract as GenerateOptions::warm_cache; the warm cache is
  // cloned so the caller's copy stays usable).
  Beam seed;
  if (options.warm_cache) {
    assert(options.warm_cache->length <= static_cast<int>(kept.size()));
    assert(options.warm_cache->length < static_cast<int>(kept.size()) ||
           !options.warm_cache->logits.empty());
    seed.cache = options.warm_cache->clone();
  } else {
    seed.cache = make_cache();
  }
  const std::size_t skip = static_cast<std::size_t>(seed.cache.length);
  status.prefill_tokens_reused = seed.cache.length;
  std::span<const float> logits;
  if (skip == kept.size() && skip > 0) logits = seed.cache.logits;
  {
    auto prefill_span = trace.span("prefill");
    auto prefill_start = observe ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    for (std::size_t i = skip; i < kept.size(); ++i) {
      if (options.deadline.expired()) {
        status.deadline_expired = true;
        return {};  // prefill never finished: no hypothesis exists yet
      }
      logits = decode_step(seed.cache, kept[i]);
      ++status.steps_taken;
    }
    if (observe) {
      decode_metrics().prefill_ms->observe(elapsed_ms_since(prefill_start));
      decode_metrics().decoded_tokens->inc(
          static_cast<std::uint64_t>(status.steps_taken));
    }
  }
  if (options.prompt_snapshot)
    *options.prompt_snapshot = seed.cache.clone(static_cast<int>(kept.size()));
  log_softmax(logits, seed.logprobs);

  std::vector<Beam> beams;
  beams.push_back(std::move(seed));
  std::vector<std::int32_t> best_finished;
  float best_finished_score = -std::numeric_limits<float>::infinity();

  for (int step = 0; step < options.max_new_tokens && !beams.empty();
       ++step) {
    if (options.deadline.expired()) {
      status.deadline_expired = true;
      break;  // fall through to best-finished / best-live selection
    }
    ++status.steps_taken;
    auto step_span = trace.span("beam_step");
    // Gather candidate expansions from every live beam.
    struct Candidate {
      std::size_t beam;
      std::int32_t token;
      float score;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(beams.size() * static_cast<std::size_t>(width) * 2);
    for (std::size_t b = 0; b < beams.size(); ++b) {
      // Only the top `width` tokens of a beam can survive the global cut.
      std::vector<std::int32_t> order(
          static_cast<std::size_t>(config_.vocab));
      for (std::int32_t j = 0; j < config_.vocab; ++j)
        order[static_cast<std::size_t>(j)] = j;
      std::size_t keep_n =
          std::min<std::size_t>(static_cast<std::size_t>(width),
                                order.size());
      std::partial_sort(
          order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep_n),
          order.end(), [&](std::int32_t x, std::int32_t y) {
            return beams[b].logprobs[static_cast<std::size_t>(x)] >
                   beams[b].logprobs[static_cast<std::size_t>(y)];
          });
      for (std::size_t i = 0; i < keep_n; ++i) {
        candidates.push_back(
            {b, order[i],
             beams[b].score +
                 beams[b].logprobs[static_cast<std::size_t>(order[i])]});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.score > b.score;
              });

    std::vector<Beam> next;
    for (const Candidate& c : candidates) {
      if (static_cast<int>(next.size()) >= width) break;
      const Beam& parent = beams[c.beam];
      if (c.token == options.stop_token) {
        float score = normalized(c.score, parent.tokens.size() + 1);
        if (score > best_finished_score) {
          best_finished_score = score;
          best_finished = parent.tokens;
        }
        continue;
      }
      if (parent.cache.length >= config_.ctx) {
        // Out of window: treat as finished without the stop token.
        float score = normalized(c.score, parent.tokens.size() + 1);
        if (score > best_finished_score) {
          best_finished_score = score;
          best_finished = parent.tokens;
          best_finished.push_back(c.token);
        }
        continue;
      }
      Beam child;
      child.cache = parent.cache;  // copy (small at this scale)
      child.tokens = parent.tokens;
      child.tokens.push_back(c.token);
      child.score = c.score;
      std::span<const float> child_logits =
          decode_step(child.cache, c.token);
      log_softmax(child_logits, child.logprobs);
      next.push_back(std::move(child));
    }
    beams = std::move(next);
    // Early-stop heuristic (standard practice): once the best finished
    // hypothesis outscores every live beam's current normalized score,
    // further expansion is very unlikely to win.
    if (!beams.empty()) {
      float best_live = -std::numeric_limits<float>::infinity();
      for (const Beam& b : beams)
        best_live = std::max(best_live,
                             normalized(b.score, b.tokens.size()));
      if (best_finished_score > best_live &&
          best_finished_score > -std::numeric_limits<float>::infinity())
        break;
    }
  }
  if (!best_finished.empty() ||
      best_finished_score > -std::numeric_limits<float>::infinity()) {
    return best_finished;
  }
  // No beam finished: return the best live hypothesis.
  const Beam* best = nullptr;
  for (const Beam& b : beams) {
    if (!best || normalized(b.score, b.tokens.size()) >
                     normalized(best->score, best->tokens.size()))
      best = &b;
  }
  return best ? best->tokens : std::vector<std::int32_t>{};
}

std::int32_t Transformer::argmax_token(std::span<const float> logits) const {
  std::int32_t best = 0;
  for (std::int32_t j = 1; j < config_.vocab; ++j) {
    if (logits[static_cast<std::size_t>(j)] >
        logits[static_cast<std::size_t>(best)])
      best = j;
  }
  return best;
}

std::int32_t Transformer::sample_token(std::span<const float> logits,
                                       float temperature, int top_k,
                                       util::Rng& rng) const {
  // Rank candidates, keep the top-k (or all), temperature-scale, sample.
  std::vector<std::int32_t> order(static_cast<std::size_t>(config_.vocab));
  for (std::int32_t j = 0; j < config_.vocab; ++j)
    order[static_cast<std::size_t>(j)] = j;
  std::size_t keep = top_k > 0 ? std::min<std::size_t>(
                                     static_cast<std::size_t>(top_k),
                                     order.size())
                               : order.size();
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(keep),
                    order.end(), [&](std::int32_t a, std::int32_t b) {
                      return logits[static_cast<std::size_t>(a)] >
                             logits[static_cast<std::size_t>(b)];
                    });
  order.resize(keep);

  const float max_logit = logits[static_cast<std::size_t>(order[0])];
  std::vector<double> weights(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    weights[i] = std::exp(
        (logits[static_cast<std::size_t>(order[i])] - max_logit) /
        temperature);
  }
  return order[rng.weighted(weights)];
}

}  // namespace wisdom::model
