// Speculative decoding: a small draft config proposes k tokens from its
// own KV cache, the served model verifies them in one fused
// verify_step_batch pass, and mismatch falls back to the verifier's own
// token with draft-cache truncation/resync.
//
// Verification is greedy-only: a drafted token is accepted iff it equals
// the verifier's argmax at that position, and the fused verify pass is
// bit-identical to sequential decode_step calls (row-independent kernels,
// causal attention). Every emitted token is therefore exactly the token
// sequential greedy decode would emit — speculation changes latency, never
// output — which is what lets the golden/fuzz/cache-parity harness gate
// the feature byte-for-byte.
//
// Deadline parity: sequential generate() consumes exactly one
// Deadline::expired() call per prompt token and one per committed token,
// in order. The speculative path preserves that count and order exactly
// (mismatched drafts consume no check: the verifier token's commit is
// deferred to the next round, where its check runs), so check-counted
// deadlines (util::Deadline::after_checks) cut generation at the same
// token either way. Wall-clock deadlines see slightly coarser granularity
// (checks for a fused chunk run up front).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/transformer.hpp"

namespace wisdom::model {

class KvBlockAllocator;

// Counters accumulated across generate_speculative calls (the caller
// aggregates into wisdom_spec_* metric families).
struct SpeculativeStats {
  std::int64_t proposed = 0;      // draft tokens fed to the verifier
  std::int64_t accepted = 0;      // draft tokens committed verbatim
  std::int64_t rejected = 0;      // draft tokens discarded
  std::int64_t verify_steps = 0;  // fused verify passes
  std::int64_t draft_steps = 0;   // tokens fed through the draft model
  std::int64_t committed = 0;     // tokens emitted
};

struct SpeculativeOptions {
  // Draft model (borrowed; must outlive the call). Must share the
  // verifier's vocab and have a context window at least as large.
  const Transformer* draft = nullptr;
  // Tokens drafted per verify round (>= 1).
  int k = 4;
  // When set, the draft's KV cache is paged out of this arena (its
  // geometry must match the *draft* model); otherwise monolithic.
  KvBlockAllocator* draft_arena = nullptr;
  SpeculativeStats* stats = nullptr;  // optional accumulator
};

// Whether generate_speculative would actually speculate for this request:
// a draft is configured, decoding is greedy (temperature 0 — sampled
// decode cannot be verified bit-exactly), and the configs are compatible.
bool speculation_applicable(const Transformer& model,
                            const SpeculativeOptions& spec,
                            const Transformer::GenerateOptions& options);

// Drop-in replacement for model.generate(): same options contract
// (deadline/status/trace/warm_cache/prompt_snapshot/on_token — on_token
// still fires once per committed token, in order, so streaming only ever
// sees verified-stable tokens), byte-identical output. Falls back to
// model.generate() when speculation is not applicable. The trace records
// "prefill" plus per-round "draft" and "verify" spans instead of
// per-token "decode" spans.
std::vector<std::int32_t> generate_speculative(
    const Transformer& model, std::span<const std::int32_t> prompt,
    const Transformer::GenerateOptions& options,
    const SpeculativeOptions& spec);

}  // namespace wisdom::model
