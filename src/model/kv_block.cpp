#include "model/kv_block.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>

namespace wisdom::model {

KvBlockAllocator::KvBlockAllocator(int capacity_blocks, int block_size,
                                   int n_layers, int d_model)
    : capacity_(capacity_blocks),
      block_size_(block_size),
      n_layers_(n_layers),
      d_(d_model),
      layer_stride_(2 * static_cast<std::size_t>(block_size) * d_model),
      value_offset_(static_cast<std::size_t>(block_size) * d_model),
      block_stride_(static_cast<std::size_t>(n_layers) * layer_stride_) {
  assert(capacity_ > 0 && block_size_ > 0 && n_layers_ > 0 && d_ > 0);
  storage_.assign(static_cast<std::size_t>(capacity_) * block_stride_, 0.0f);
  refs_.assign(static_cast<std::size_t>(capacity_), 0);
  free_.reserve(static_cast<std::size_t>(capacity_));
  // LIFO: block 0 is handed out first.
  for (int id = capacity_ - 1; id >= 0; --id) free_.push_back(id);
}

void KvBlockAllocator::check_live(std::int32_t id, const char* op) const {
  if (id < 0 || id >= capacity_)
    throw std::logic_error(std::string("KvBlockAllocator::") + op +
                           ": block id " + std::to_string(id) +
                           " out of range");
  if (refs_[static_cast<std::size_t>(id)] <= 0)
    throw std::logic_error(std::string("KvBlockAllocator::") + op +
                           ": block " + std::to_string(id) +
                           " is not live (double free?)");
}

std::int32_t KvBlockAllocator::allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    ++failed_allocations_;
    return -1;
  }
  const std::int32_t id = free_.back();
  free_.pop_back();
  refs_[static_cast<std::size_t>(id)] = 1;
  ++allocations_;
  const int in_use = capacity_ - static_cast<int>(free_.size());
  if (in_use > peak_in_use_) peak_in_use_ = in_use;
  return id;
}

void KvBlockAllocator::add_ref(std::int32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  check_live(id, "add_ref");
  ++refs_[static_cast<std::size_t>(id)];
}

void KvBlockAllocator::release(std::int32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  check_live(id, "release");
  if (--refs_[static_cast<std::size_t>(id)] == 0) {
    free_.push_back(id);
    ++releases_;
  }
}

int KvBlockAllocator::ref_count(std::int32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= capacity_) return 0;
  return refs_[static_cast<std::size_t>(id)];
}

std::int32_t KvBlockAllocator::make_exclusive(std::int32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  check_live(id, "make_exclusive");
  if (refs_[static_cast<std::size_t>(id)] == 1) return id;
  if (free_.empty()) {
    ++failed_allocations_;
    return -1;
  }
  const std::int32_t copy = free_.back();
  free_.pop_back();
  refs_[static_cast<std::size_t>(copy)] = 1;
  ++allocations_;
  ++cow_copies_;
  const int in_use = capacity_ - static_cast<int>(free_.size());
  if (in_use > peak_in_use_) peak_in_use_ = in_use;
  std::memcpy(storage_.data() + static_cast<std::size_t>(copy) * block_stride_,
              storage_.data() + static_cast<std::size_t>(id) * block_stride_,
              block_stride_ * sizeof(float));
  --refs_[static_cast<std::size_t>(id)];
  return copy;
}

int KvBlockAllocator::free_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(free_.size());
}

KvBlockStats KvBlockAllocator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  KvBlockStats s;
  s.capacity = capacity_;
  s.free_blocks = static_cast<int>(free_.size());
  s.in_use = capacity_ - s.free_blocks;
  s.peak_in_use = peak_in_use_;
  s.allocations = allocations_;
  s.releases = releases_;
  s.cow_copies = cow_copies_;
  s.failed_allocations = failed_allocations_;
  return s;
}

}  // namespace wisdom::model
