// Model configuration family.
//
// The paper uses CodeGen checkpoints at 350M, 2.7B and 6B parameters plus
// Codex-Davinci-002 at 175B. Training those requires a GPU cluster; the
// reproduction maps each onto a scaled-down decoder-only config (same
// architecture: pre-LN residual blocks, multi-head causal attention with
// rotary position embeddings, GELU MLP) chosen so that the *relative*
// compute ordering of the family is preserved on one CPU core. The paper's
// context windows 512/1024/2048 map to 48/96/192 simulated tokens — our
// BPE over synthetic Ansible averages ~2.5 bytes/token, so 96 tokens cover
// a multi-task context just as 1024 covers one in the real data.
#pragma once

#include <cstdint>
#include <string>

namespace wisdom::model {

struct ModelConfig {
  std::int32_t vocab = 320;
  std::int32_t ctx = 96;       // context window (tokens)
  std::int32_t d_model = 48;
  std::int32_t n_head = 4;
  std::int32_t n_layer = 2;
  std::int32_t d_ff = 192;     // 4 * d_model

  std::int32_t head_dim() const { return d_model / n_head; }
  // Rotary over the full head dimension (CodeGen applies it to a prefix;
  // with small heads the full dimension is the faithful choice).
  std::int32_t rotary_dim() const { return head_dim() & ~1; }
  std::int64_t param_count() const;
  bool valid() const;
};

// Paper-size labels used in the result tables.
enum class SizeClass {
  S350M,   // "350M"  — the deployed Wisdom size
  M2_7B,   // "2.7B"
  L6B,     // "6B"
  XL175B,  // "175B"  — the Codex-Davinci-002 analog
};

// Canonical scaled-down config for each size label.
ModelConfig config_for(SizeClass size, std::int32_t vocab, std::int32_t ctx);

// Label as printed in the tables ("350M", "2.7B", ...).
std::string size_label(SizeClass size);

}  // namespace wisdom::model
