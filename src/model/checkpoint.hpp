// Checkpoint save/load: model config + every parameter tensor, plus the
// tokenizer blob so a checkpoint is self-contained (the paper's workflow of
// resuming from a released CodeGen checkpoint and extending its pre-training
// maps onto load -> continue training here).
//
// Format v2 (the only version this build reads or writes):
//
//   u32 magic "WISM" | u32 version=2 | u64 fnv1a64(payload) | payload
//   payload = 6x u32 config | string tokenizer | u64 count | count f32 vecs
//
// The content checksum means a truncated or bit-flipped file loads as a
// typed error instead of silently materializing a garbage model; files
// written before the version field existed are rejected with a clear
// "regenerate" message rather than misparsed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "model/transformer.hpp"
#include "text/bpe.hpp"

namespace wisdom::model {

inline constexpr std::uint32_t kCheckpointVersion = 2;

// Why a load failed; Ok iff a model was produced.
enum class LoadStatus {
  Ok,
  FileNotFound,        // file wrappers only
  BadMagic,            // not a Wisdom checkpoint at all
  UnsupportedVersion,  // pre-versioned (v1) or future format
  ChecksumMismatch,    // truncated or corrupted content
  BadHeader,           // header fields unreadable or config invalid
  BadTensors,          // parameter count/shape disagrees with the config
  TrailingBytes,       // well-formed prefix followed by garbage
};

// Short stable identifier for a status (log/error-message friendly).
const char* load_status_name(LoadStatus status);

struct LoadResult {
  std::optional<Transformer> model;
  LoadStatus status = LoadStatus::Ok;
  std::string message;    // human-readable failure detail; empty on Ok
  std::string tokenizer;  // serialized tokenizer blob (may be empty)

  bool ok() const { return model.has_value(); }
};

// Serializes the model (and optionally its tokenizer blob) to bytes.
std::string save_checkpoint(const Transformer& model,
                            const std::string& tokenizer_blob);

// Restores a model with a typed failure reason.
LoadResult load_checkpoint_ex(std::string_view data);
LoadResult load_checkpoint_file_ex(const std::string& path);

// Legacy wrappers collapsing the reason into nullopt. The tokenizer blob is
// returned through `tokenizer_blob` when non-null.
std::optional<Transformer> load_checkpoint(std::string_view data,
                                           std::string* tokenizer_blob);

// Convenience file wrappers.
bool save_checkpoint_file(const std::string& path, const Transformer& model,
                          const std::string& tokenizer_blob);
std::optional<Transformer> load_checkpoint_file(const std::string& path,
                                                std::string* tokenizer_blob);

}  // namespace wisdom::model
