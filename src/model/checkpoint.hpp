// Checkpoint save/load: model config + every parameter tensor, plus the
// tokenizer blob so a checkpoint is self-contained (the paper's workflow of
// resuming from a released CodeGen checkpoint and extending its pre-training
// maps onto load -> continue training here).
#pragma once

#include <optional>
#include <string>

#include "model/transformer.hpp"
#include "text/bpe.hpp"

namespace wisdom::model {

struct Checkpoint {
  ModelConfig config;
  std::string weights;    // serialized parameter data
  std::string tokenizer;  // serialized BPE tokenizer
};

// Serializes the model (and optionally its tokenizer blob) to bytes.
std::string save_checkpoint(const Transformer& model,
                            const std::string& tokenizer_blob);

// Restores a model; nullopt on a malformed blob. The tokenizer blob is
// returned through `tokenizer_blob` when non-null.
std::optional<Transformer> load_checkpoint(std::string_view data,
                                           std::string* tokenizer_blob);

// Convenience file wrappers.
bool save_checkpoint_file(const std::string& path, const Transformer& model,
                          const std::string& tokenizer_blob);
std::optional<Transformer> load_checkpoint_file(const std::string& path,
                                                std::string* tokenizer_blob);

}  // namespace wisdom::model
