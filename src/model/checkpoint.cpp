#include "model/checkpoint.hpp"

#include "util/hashing.hpp"
#include "util/io.hpp"

namespace wisdom::model {

namespace util = wisdom::util;

namespace {

constexpr std::uint32_t kMagic = 0x5749534D;  // "WISM"
// magic + version + checksum.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;

LoadResult fail(LoadStatus status, std::string message) {
  LoadResult result;
  result.status = status;
  result.message = std::move(message);
  return result;
}

}  // namespace

const char* load_status_name(LoadStatus status) {
  switch (status) {
    case LoadStatus::Ok: return "ok";
    case LoadStatus::FileNotFound: return "file-not-found";
    case LoadStatus::BadMagic: return "bad-magic";
    case LoadStatus::UnsupportedVersion: return "unsupported-version";
    case LoadStatus::ChecksumMismatch: return "checksum-mismatch";
    case LoadStatus::BadHeader: return "bad-header";
    case LoadStatus::BadTensors: return "bad-tensors";
    case LoadStatus::TrailingBytes: return "trailing-bytes";
  }
  return "unknown";
}

std::string save_checkpoint(const Transformer& model,
                            const std::string& tokenizer_blob) {
  std::string payload;
  const ModelConfig& cfg = model.config();
  util::put_u32(payload, static_cast<std::uint32_t>(cfg.vocab));
  util::put_u32(payload, static_cast<std::uint32_t>(cfg.ctx));
  util::put_u32(payload, static_cast<std::uint32_t>(cfg.d_model));
  util::put_u32(payload, static_cast<std::uint32_t>(cfg.n_head));
  util::put_u32(payload, static_cast<std::uint32_t>(cfg.n_layer));
  util::put_u32(payload, static_cast<std::uint32_t>(cfg.d_ff));
  util::put_string(payload, tokenizer_blob);
  auto params = model.parameters();
  util::put_u64(payload, params.size());
  for (const nn::Param* p : params) util::put_f32_vec(payload, p->w);

  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  util::put_u32(out, kMagic);
  util::put_u32(out, kCheckpointVersion);
  util::put_u64(out, util::fnv1a64(payload));
  out += payload;
  return out;
}

LoadResult load_checkpoint_ex(std::string_view data) {
  if (data.size() < kHeaderBytes)
    return fail(LoadStatus::BadMagic,
                "blob too short to hold a checkpoint header (" +
                    std::to_string(data.size()) + " bytes)");
  util::ByteReader header(data.substr(0, kHeaderBytes));
  if (header.get_u32() != kMagic)
    return fail(LoadStatus::BadMagic, "not a Wisdom checkpoint (bad magic)");
  const std::uint32_t version = header.get_u32();
  if (version != kCheckpointVersion)
    return fail(
        LoadStatus::UnsupportedVersion,
        "checkpoint format version " + std::to_string(version) +
            " is not supported (expected " +
            std::to_string(kCheckpointVersion) +
            "); pre-versioned checkpoints must be regenerated with "
            "save_checkpoint");
  const std::uint64_t stored_checksum = header.get_u64();

  std::string_view payload = data.substr(kHeaderBytes);
  if (util::fnv1a64(payload) != stored_checksum)
    return fail(LoadStatus::ChecksumMismatch,
                "content checksum mismatch: checkpoint is truncated or "
                "corrupted");

  util::ByteReader reader(payload);
  ModelConfig cfg;
  cfg.vocab = static_cast<std::int32_t>(reader.get_u32());
  cfg.ctx = static_cast<std::int32_t>(reader.get_u32());
  cfg.d_model = static_cast<std::int32_t>(reader.get_u32());
  cfg.n_head = static_cast<std::int32_t>(reader.get_u32());
  cfg.n_layer = static_cast<std::int32_t>(reader.get_u32());
  cfg.d_ff = static_cast<std::int32_t>(reader.get_u32());
  std::string blob = reader.get_string();
  if (!reader.ok())
    return fail(LoadStatus::BadHeader, "config header unreadable");
  if (!cfg.valid())
    return fail(LoadStatus::BadHeader,
                "config fields out of range (vocab=" +
                    std::to_string(cfg.vocab) +
                    ", d_model=" + std::to_string(cfg.d_model) + ")");

  Transformer model(cfg, /*seed=*/0);
  auto params = model.parameters();
  std::uint64_t count = reader.get_u64();
  if (count != params.size())
    return fail(LoadStatus::BadTensors,
                "parameter tensor count " + std::to_string(count) +
                    " does not match the config's " +
                    std::to_string(params.size()));
  for (std::size_t i = 0; i < params.size(); ++i) {
    nn::Vec w = reader.get_f32_vec();
    if (!reader.ok() || w.size() != params[i]->w.size())
      return fail(LoadStatus::BadTensors,
                  "parameter tensor " + std::to_string(i) +
                      " truncated or of unexpected shape");
    params[i]->w = std::move(w);
  }
  if (!reader.at_end())
    return fail(LoadStatus::TrailingBytes,
                "checkpoint has trailing bytes after the last tensor");

  LoadResult result;
  result.model = std::move(model);
  result.tokenizer = std::move(blob);
  return result;
}

LoadResult load_checkpoint_file_ex(const std::string& path) {
  auto data = util::read_file(path);
  if (!data)
    return fail(LoadStatus::FileNotFound, "cannot open '" + path + "'");
  return load_checkpoint_ex(*data);
}

std::optional<Transformer> load_checkpoint(std::string_view data,
                                           std::string* tokenizer_blob) {
  LoadResult result = load_checkpoint_ex(data);
  if (!result.ok()) return std::nullopt;
  if (tokenizer_blob) *tokenizer_blob = std::move(result.tokenizer);
  return std::move(result.model);
}

bool save_checkpoint_file(const std::string& path, const Transformer& model,
                          const std::string& tokenizer_blob) {
  return util::write_file(path, save_checkpoint(model, tokenizer_blob));
}

std::optional<Transformer> load_checkpoint_file(const std::string& path,
                                                std::string* tokenizer_blob) {
  LoadResult result = load_checkpoint_file_ex(path);
  if (!result.ok()) return std::nullopt;
  if (tokenizer_blob) *tokenizer_blob = std::move(result.tokenizer);
  return std::move(result.model);
}

}  // namespace wisdom::model
