#include "model/checkpoint.hpp"

#include "util/io.hpp"

namespace wisdom::model {

namespace util = wisdom::util;

namespace {
constexpr std::uint32_t kMagic = 0x5749534D;  // "WISM"
}

std::string save_checkpoint(const Transformer& model,
                            const std::string& tokenizer_blob) {
  std::string out;
  util::put_u32(out, kMagic);
  const ModelConfig& cfg = model.config();
  util::put_u32(out, static_cast<std::uint32_t>(cfg.vocab));
  util::put_u32(out, static_cast<std::uint32_t>(cfg.ctx));
  util::put_u32(out, static_cast<std::uint32_t>(cfg.d_model));
  util::put_u32(out, static_cast<std::uint32_t>(cfg.n_head));
  util::put_u32(out, static_cast<std::uint32_t>(cfg.n_layer));
  util::put_u32(out, static_cast<std::uint32_t>(cfg.d_ff));
  util::put_string(out, tokenizer_blob);
  auto params = model.parameters();
  util::put_u64(out, params.size());
  for (const nn::Param* p : params) util::put_f32_vec(out, p->w);
  return out;
}

std::optional<Transformer> load_checkpoint(std::string_view data,
                                           std::string* tokenizer_blob) {
  util::ByteReader reader(data);
  if (reader.get_u32() != kMagic) return std::nullopt;
  ModelConfig cfg;
  cfg.vocab = static_cast<std::int32_t>(reader.get_u32());
  cfg.ctx = static_cast<std::int32_t>(reader.get_u32());
  cfg.d_model = static_cast<std::int32_t>(reader.get_u32());
  cfg.n_head = static_cast<std::int32_t>(reader.get_u32());
  cfg.n_layer = static_cast<std::int32_t>(reader.get_u32());
  cfg.d_ff = static_cast<std::int32_t>(reader.get_u32());
  std::string blob = reader.get_string();
  if (!reader.ok() || !cfg.valid()) return std::nullopt;
  if (tokenizer_blob) *tokenizer_blob = std::move(blob);

  Transformer model(cfg, /*seed=*/0);
  auto params = model.parameters();
  std::uint64_t count = reader.get_u64();
  if (count != params.size()) return std::nullopt;
  for (nn::Param* p : params) {
    nn::Vec w = reader.get_f32_vec();
    if (!reader.ok() || w.size() != p->w.size()) return std::nullopt;
    p->w = std::move(w);
  }
  if (!reader.at_end()) return std::nullopt;
  return model;
}

bool save_checkpoint_file(const std::string& path, const Transformer& model,
                          const std::string& tokenizer_blob) {
  return util::write_file(path, save_checkpoint(model, tokenizer_blob));
}

std::optional<Transformer> load_checkpoint_file(const std::string& path,
                                                std::string* tokenizer_blob) {
  auto data = util::read_file(path);
  if (!data) return std::nullopt;
  return load_checkpoint(*data, tokenizer_blob);
}

}  // namespace wisdom::model
