// Decoder-only transformer with hand-written backpropagation.
//
// Architecture (CodeGen-style): token embedding, N pre-LN residual blocks
// of {causal multi-head self-attention with rotary position embeddings,
// GELU MLP}, final layernorm and an untied LM head. No dropout (the tiny
// models underfit, not overfit, at this scale). Gradients accumulate
// across forward_backward calls until zero_grad(), which is what gives the
// paper's effective batch size of 32 via gradient accumulation.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "model/config.hpp"
#include "nn/adamw.hpp"
#include "nn/tensor.hpp"
#include "obs/trace.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"

namespace wisdom::model {

class KvBlockAllocator;

class Transformer {
 public:
  Transformer(const ModelConfig& config, std::uint64_t seed);

  const ModelConfig& config() const { return config_; }
  std::int64_t param_count() const;

  // Changes the runtime context window. Weights are position-independent
  // (rotary embeddings), so the same checkpoint can train or decode at any
  // window size — which is how the context-window ablation (512/1024/2048
  // in Table V) reuses one pre-trained model.
  void set_context_window(std::int32_t ctx);

  // Runs a training micro-batch: inputs x[B*T], next-token targets
  // y[B*T] (ignore_index = -1 for padding). Returns the mean loss and
  // accumulates gradients. T must be <= ctx.
  float forward_backward(std::span<const std::int32_t> x,
                         std::span<const std::int32_t> y, int batch, int t);

  // Forward-only mean loss (validation).
  float evaluate(std::span<const std::int32_t> x,
                 std::span<const std::int32_t> y, int batch, int t);

  void zero_grad();
  // Scales accumulated gradients (1/num_micro_batches), clips to
  // `clip_norm` if positive, and applies one AdamW step at `lr`.
  void optim_step(nn::AdamW& opt, float lr, float grad_scale,
                  float clip_norm = 1.0f);

  // --- greedy decoding with a KV cache ------------------------------------
  struct KvCache {
    // Monolithic backing — per layer: rotated keys and values,
    // [ctx x d_model] each (or fewer rows for a compacted clone;
    // decode_step grows them back on demand). Empty when paged.
    std::vector<nn::Vec> keys;
    std::vector<nn::Vec> values;
    // Next-token logits of the last decode_step. Living in the cache (not
    // the model) keeps decoding re-entrant: batched serving runs many
    // caches against one shared model concurrently.
    nn::Vec logits;
    int length = 0;
    // Geometry stamped by make_cache(): row width (d_model) and capacity
    // (context window), so clone()/byte_size() need no model reference.
    int row_width = 0;
    int capacity = 0;
    // Paged backing: when `arena` is set the KV rows live in fixed-size
    // blocks owned by the arena (borrowed; must outlive the cache) and
    // `block_table` maps logical block index -> arena block id. Copies
    // share blocks by refcount; decode_step copies-on-write before
    // appending into a shared block. Values are bit-identical to the
    // monolithic layout — only row placement differs.
    KvBlockAllocator* arena = nullptr;
    std::vector<std::int32_t> block_table;

    KvCache() = default;
    KvCache(const KvCache& other);
    KvCache(KvCache&& other) noexcept;
    KvCache& operator=(const KvCache& other);
    KvCache& operator=(KvCache&& other) noexcept;
    ~KvCache();

    bool paged() const { return arena != nullptr; }
    // Copy truncated to the first `new_length` tokens (default: all) — the
    // form the prefix cache stores. Monolithic: a deep copy with
    // keys/values compacted to exactly that many rows. Paged: shares the
    // covering blocks (refcounted, O(blocks) — no payload copy). The
    // logits survive only a full-length clone (they describe the last
    // decoded position).
    KvCache clone(int new_length = -1) const;
    // Forgets every token past `new_length` and drops the logits (they
    // belong to the old last position); a paged cache also releases the
    // blocks past the kept span. No-op when already shorter.
    void truncate(int new_length);
    // Heap bytes held: keys/values/logits for a monolithic cache, the
    // arena blocks referenced (full blocks, shared or not) for a paged
    // one.
    std::size_t byte_size() const;
    // Converts a paged cache to an equivalent monolithic one (copying the
    // live rows out of the arena and releasing the blocks). Decoding
    // falls back to this when the arena is exhausted, so paged decodes
    // degrade gracefully instead of failing. No-op when not paged.
    void materialize();
  };
  KvCache make_cache() const;
  // A cache whose KV rows live in `arena` blocks, allocated lazily as the
  // sequence grows. The arena geometry must match the model (layers,
  // d_model); it must outlive the cache.
  KvCache make_paged_cache(KvBlockAllocator* arena) const;
  // Appends `token` at the cache's current position and returns the logits
  // for the next position (valid until the next call on the same cache).
  // Cache length must be < ctx. Thread-safe across distinct caches.
  std::span<const float> decode_step(KvCache& cache, std::int32_t token) const;
  // One iteration-level batched step: appends tokens[i] to caches[i] for
  // every sequence in one fused forward pass (batched layernorm/matmul
  // rows, per-sequence attention against each cache). Every kernel is
  // row-independent, so each cache's logits are bit-identical to a
  // sequential decode_step(caches[i], tokens[i]) — at any WISDOM_THREADS.
  // Caches must be distinct; each length must be < ctx.
  void decode_step_batch(std::span<KvCache* const> caches,
                         std::span<const std::int32_t> tokens) const;

  // A run of tokens to append to one cache in a fused multi-position pass.
  struct SpanFeed {
    KvCache* cache = nullptr;
    std::span<const std::int32_t> tokens;
  };
  // The speculative-verify forward: appends feeds[i].tokens (in order) to
  // feeds[i].cache for every feed in ONE fused pass, computing logits at
  // every fed position. Causal attention within a run reads the K/V rows
  // the same pass just appended, in logical row order, so each position's
  // logits are bit-identical to feeding its run through sequential
  // decode_step calls — at any WISDOM_THREADS. decode_step_batch is the
  // all-runs-length-1 special case and delegates here.
  //
  // When `row_logits` is non-null it receives the per-position logits,
  // row-major over the flattened feed order (sum of run lengths x vocab) —
  // what a verifier needs to check a drafted chain token by token. Each
  // cache's own `logits` member ends up holding its run's last row.
  // Caches must be distinct; each run must fit (length + run size <= ctx)
  // and may be empty (contributing no rows).
  void verify_step_batch(std::span<const SpanFeed> feeds,
                         std::vector<float>* row_logits = nullptr) const;

  // Filled by generate()/generate_beam() when a caller passes a status
  // pointer: whether decoding ran to completion or was cut short by its
  // deadline (the returned tokens are then the partial result).
  struct GenerateStatus {
    bool deadline_expired = false;
    // Tokens actually decoded (prompt prefill + generation) before the cut.
    // Prompt tokens served from a warm cache are not decoded and do not
    // count here.
    int steps_taken = 0;
    // Prompt tokens whose prefill was skipped thanks to a warm cache.
    int prefill_tokens_reused = 0;
  };

  // The prompt suffix generate()/generate_beam() would actually feed the
  // model: left-truncated so prompt + generation fits the context window,
  // reserving at most half the window for generation. Callers that key a
  // prefix cache must key on exactly this span.
  std::span<const std::int32_t> kept_prompt(
      std::span<const std::int32_t> prompt, int max_new_tokens) const;

  struct GenerateOptions {
    int max_new_tokens = 64;
    std::int32_t stop_token = -1;  // stop when emitted (not included)
    // Decoding strategy. The paper evaluates with greedy decoding and notes
    // "we would expect some improvement by using random sampling"; set
    // temperature > 0 for top-k temperature sampling.
    float temperature = 0.0f;  // 0 = greedy
    int top_k = 0;             // 0 = full distribution
    std::uint64_t sample_seed = 1;
    // Cooperative cancellation: checked once per decode step (prompt
    // ingestion included). On expiry, generation stops and the tokens
    // decoded so far are returned.
    util::Deadline deadline;
    GenerateStatus* status = nullptr;  // optional out-param
    // Optional request trace: records a "prefill" span covering prompt
    // ingestion and one "decode" span per generated token. Inert when
    // null (or when the context itself is inactive).
    obs::TraceContext* trace = nullptr;
    // Prefix-cache reuse. When non-null, decoding uses *warm_cache as its
    // working cache; it must already hold the KV rows for the first
    // warm_cache->length tokens of the kept (post-left-truncation) prompt
    // and — when it covers the whole kept prompt — the logits of the last
    // token. Prefill then resumes after the covered span. Mutated in
    // place; the reused rows produce bit-identical logits because they are
    // exactly the rows a cold prefill would have written.
    KvCache* warm_cache = nullptr;
    // When non-null, receives a compacted clone of the cache taken right
    // after prefill (the kept prompt's KV rows + last-token logits) — the
    // snapshot a prefix cache inserts. Left untouched when prefill was cut
    // short by the deadline or the kept prompt is empty.
    KvCache* prompt_snapshot = nullptr;
    // Per-token emission hook: called once per generated token, in order,
    // immediately after the token is committed to the output (and before
    // its decode_step runs) — the same point the per-token "decode" trace
    // span marks. Never called for the stop token (it is not part of the
    // output) or for prefill steps. The callback runs on the decoding
    // thread and must not re-enter the model.
    std::function<void(std::int32_t)> on_token;
  };
  // Greedy generation. The prompt is left-truncated to fit the context
  // window with room for at least one generated token — the paper: "when
  // the input is larger than the context window, it is left-truncated".
  std::vector<std::int32_t> generate(std::span<const std::int32_t> prompt,
                                     const GenerateOptions& options) const;

  // Beam-search decoding (the paper's other suggested improvement over
  // greedy). Returns the highest-scoring finished hypothesis; scores are
  // summed token log-probabilities with optional length normalization
  // (score / length^length_penalty).
  struct BeamOptions {
    int beam_width = 4;
    int max_new_tokens = 64;
    std::int32_t stop_token = -1;
    float length_penalty = 0.6f;
    // Checked once per prefill token and once per beam step; on expiry the
    // best hypothesis found so far is returned.
    util::Deadline deadline;
    GenerateStatus* status = nullptr;  // optional out-param
    // Optional request trace: "prefill" plus one "beam_step" span per
    // expansion round.
    obs::TraceContext* trace = nullptr;
    // Prefix-cache reuse and snapshot capture, with the same contract as
    // GenerateOptions. The warm cache seeds the root beam (cloned, so the
    // caller's copy is left usable) and the snapshot is taken after the
    // root prefill completes.
    const KvCache* warm_cache = nullptr;
    KvCache* prompt_snapshot = nullptr;
  };
  std::vector<std::int32_t> generate_beam(std::span<const std::int32_t> prompt,
                                          const BeamOptions& options) const;

  // All learnable parameters, in a stable order (checkpoint format).
  std::vector<nn::Param*> parameters();
  std::int32_t argmax_token(std::span<const float> logits) const;
  std::int32_t sample_token(std::span<const float> logits, float temperature,
                            int top_k, util::Rng& rng) const;
  std::vector<const nn::Param*> parameters() const;

 private:
  struct Layer {
    nn::Param ln1_g, ln1_b;
    nn::Param wqkv, bqkv;  // [d, 3d], [3d]
    nn::Param wo, bo;      // [d, d], [d]
    nn::Param ln2_g, ln2_b;
    nn::Param wfc, bfc;    // [d, ff], [ff]
    nn::Param wproj, bproj;  // [ff, d], [d]
  };

  // Per-layer activation cache for one forward/backward round.
  struct LayerActs {
    nn::Vec input;       // residual stream entering the block [R x d]
    nn::Vec ln1_out, ln1_mean, ln1_rstd;
    nn::Vec qkv;         // post-rotary [R x 3d]
    nn::Vec att_probs;   // [B x H x T x T]
    nn::Vec att_mix;     // heads-merged attention output [R x d]
    nn::Vec mid;         // residual stream after attention [R x d]
    nn::Vec ln2_out, ln2_mean, ln2_rstd;
    nn::Vec fc_pre;      // pre-GELU [R x ff]
    nn::Vec fc_act;      // post-GELU [R x ff]
  };

  float run(std::span<const std::int32_t> x, std::span<const std::int32_t> y,
            int batch, int t, bool backward);

  ModelConfig config_;
  nn::Param wte_;
  std::vector<Layer> layers_;
  nn::Param lnf_g_, lnf_b_;
  nn::Param head_;  // [d, vocab]

  // Workspaces reused across calls.
  std::vector<LayerActs> acts_;
  nn::Vec final_in_, final_out_, final_mean_, final_rstd_;
  nn::Vec logits_, dlogits_;
};

}  // namespace wisdom::model
