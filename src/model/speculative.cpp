#include "model/speculative.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace.hpp"

namespace wisdom::model {
namespace {

using KvCache = Transformer::KvCache;
using SpanFeed = Transformer::SpanFeed;

// Rows per fused feed — bounds the forward-pass workspace, not semantics.
constexpr int kFeedChunk = 32;

// Feeds `tokens` into `cache` in fused chunks, running sequential
// generate()'s per-token deadline checks (one expired() per token, same
// order) up front for each chunk. Returns the number of tokens fed; on
// expiry the tokens whose checks passed are still fed, matching the state
// a sequential prefill leaves behind.
int checked_feed(const Transformer& model, KvCache& cache,
                 std::span<const std::int32_t> tokens,
                 const util::Deadline& deadline, bool* expired) {
  int fed = 0;
  const int total = static_cast<int>(tokens.size());
  while (fed < total && !*expired) {
    const int chunk = std::min(kFeedChunk, total - fed);
    int ok = 0;
    for (; ok < chunk; ++ok) {
      if (deadline.expired()) {
        *expired = true;
        break;
      }
    }
    if (ok > 0) {
      const SpanFeed feed{&cache, tokens.subspan(static_cast<std::size_t>(fed),
                                                 static_cast<std::size_t>(ok))};
      model.verify_step_batch(std::span<const SpanFeed>(&feed, 1));
      fed += ok;
    }
  }
  return fed;
}

// Unchecked fused feed (draft catch-up — draft work consumes no deadline
// checks, or check-count parity with sequential decode would break).
void plain_feed(const Transformer& model, KvCache& cache,
                std::span<const std::int32_t> tokens) {
  int fed = 0;
  const int total = static_cast<int>(tokens.size());
  while (fed < total) {
    const int chunk = std::min(kFeedChunk, total - fed);
    const SpanFeed feed{&cache, tokens.subspan(static_cast<std::size_t>(fed),
                                               static_cast<std::size_t>(chunk))};
    model.verify_step_batch(std::span<const SpanFeed>(&feed, 1));
    fed += chunk;
  }
}

}  // namespace

bool speculation_applicable(const Transformer& model,
                            const SpeculativeOptions& spec,
                            const Transformer::GenerateOptions& options) {
  return spec.draft != nullptr && spec.k > 0 &&
         options.temperature <= 0.0f &&
         spec.draft->config().vocab == model.config().vocab &&
         spec.draft->config().ctx >= model.config().ctx;
}

std::vector<std::int32_t> generate_speculative(
    const Transformer& model, std::span<const std::int32_t> prompt,
    const Transformer::GenerateOptions& options,
    const SpeculativeOptions& spec) {
  if (!speculation_applicable(model, spec, options))
    return model.generate(prompt, options);

  const Transformer& draft_model = *spec.draft;
  const int ctx = model.config().ctx;
  const int vocab = model.config().vocab;
  const int max_new = options.max_new_tokens;
  const int k = spec.k;
  std::span<const std::int32_t> kept = model.kept_prompt(prompt, max_new);

  Transformer::GenerateStatus local_status;
  Transformer::GenerateStatus& status =
      options.status ? *options.status : local_status;
  status = Transformer::GenerateStatus{};

  obs::TraceContext inert_trace;
  obs::TraceContext& trace = options.trace ? *options.trace : inert_trace;

  // Working cache: same warm-start contract as generate().
  KvCache local_cache;
  KvCache* cache_ptr = options.warm_cache;
  if (cache_ptr) {
    assert(cache_ptr->length <= static_cast<int>(kept.size()));
    assert(cache_ptr->length < static_cast<int>(kept.size()) ||
           !cache_ptr->logits.empty());
  } else {
    local_cache = model.make_cache();
    cache_ptr = &local_cache;
  }
  KvCache& cache = *cache_ptr;
  const int skip = cache.length;
  status.prefill_tokens_reused = skip;

  std::vector<std::int32_t> out;
  {
    auto prefill_span = trace.span("prefill");
    bool expired = false;
    const int fed = checked_feed(
        model, cache, kept.subspan(static_cast<std::size_t>(skip)),
        options.deadline, &expired);
    status.steps_taken += fed;
    if (expired) {
      status.deadline_expired = true;
      return out;  // nothing decoded yet: empty partial result
    }
  }
  if (kept.empty()) return out;
  if (options.prompt_snapshot)
    *options.prompt_snapshot = cache.clone(static_cast<int>(kept.size()));

  // Draft cache holds a fed prefix of the committed sequence kept ++ out.
  KvCache draft_cache = spec.draft_arena
                            ? draft_model.make_paged_cache(spec.draft_arena)
                            : draft_model.make_cache();
  int draft_fed = 0;  // committed tokens currently fed into draft_cache

  std::vector<std::int32_t> candidates, pending;
  std::vector<float> row_logits;
  bool finished = false;

  while (!finished && static_cast<int>(out.size()) < max_new &&
         cache.length < ctx) {
    if (options.deadline.expired()) {
      status.deadline_expired = true;
      break;
    }
    // The round's anchor token: the verifier's own next token, committed
    // exactly as sequential decode would (argmax -> stop check -> emit).
    const std::int32_t c0 = model.argmax_token(cache.logits);
    if (c0 == options.stop_token) break;
    out.push_back(c0);
    if (options.on_token) options.on_token(c0);

    // --- draft: catch up on committed tokens, then guess up to k more.
    candidates.clear();
    candidates.push_back(c0);
    int guess_fed = 0;
    {
      auto draft_span = trace.span("draft");
      const int target = static_cast<int>(kept.size() + out.size());
      pending.clear();
      for (int i = draft_fed; i < target; ++i)
        pending.push_back(i < static_cast<int>(kept.size())
                              ? kept[static_cast<std::size_t>(i)]
                              : out[static_cast<std::size_t>(i) -
                                    kept.size()]);
      plain_feed(draft_model, draft_cache, pending);
      draft_fed = target;
      if (spec.stats)
        spec.stats->draft_steps += static_cast<std::int64_t>(pending.size());
      for (int j = 1; j <= k; ++j) {
        const std::int32_t g = draft_model.argmax_token(draft_cache.logits);
        candidates.push_back(g);
        if (g == options.stop_token) break;
        if (draft_cache.length >= draft_model.config().ctx) break;
        if (j < k) {
          draft_model.decode_step(draft_cache, g);
          ++guess_fed;
          if (spec.stats) ++spec.stats->draft_steps;
        }
      }
    }

    // --- verify: one fused pass over c0 + the drafted chain, clamped so
    // every fed row is a row sequential decode would also have fed.
    {
      auto verify_span = trace.span("verify");
      const int L0 = cache.length;
      const int feed_n =
          std::min({static_cast<int>(candidates.size()),
                    1 + (max_new - static_cast<int>(out.size())), ctx - L0});
      const SpanFeed feed{
          &cache, std::span<const std::int32_t>(
                      candidates.data(), static_cast<std::size_t>(feed_n))};
      model.verify_step_batch(std::span<const SpanFeed>(&feed, 1),
                              &row_logits);
      if (spec.stats) {
        ++spec.stats->verify_steps;
        spec.stats->proposed += feed_n - 1;
      }
      int accepted_round = 0;
      int kept_rows = feed_n;
      for (int j = 1; j < feed_n; ++j) {
        // Logits after feeding candidates[0..j-1]: sequential's state when
        // it would pick token number j of this round.
        std::span<const float> row(
            row_logits.data() + static_cast<std::size_t>(j - 1) * vocab,
            static_cast<std::size_t>(vocab));
        const std::int32_t true_t = model.argmax_token(row);
        if (true_t != candidates[static_cast<std::size_t>(j)]) {
          // Verifier disagrees: drop the speculated suffix and restore the
          // pre-divergence logits. true_t's commit is deferred to the next
          // round, where the restored logits re-derive it — so its
          // deadline check runs there, and this row consumes none.
          cache.truncate(L0 + j);
          cache.logits.assign(row.begin(), row.end());
          kept_rows = j;
          break;
        }
        if (options.deadline.expired()) {
          status.deadline_expired = true;
          cache.truncate(L0 + j);
          cache.logits.assign(row.begin(), row.end());
          kept_rows = j;
          finished = true;
          break;
        }
        if (true_t == options.stop_token) {
          cache.truncate(L0 + j);
          cache.logits.assign(row.begin(), row.end());
          kept_rows = j;
          finished = true;
          break;
        }
        out.push_back(true_t);
        if (options.on_token) options.on_token(true_t);
        ++accepted_round;
      }
      status.steps_taken += kept_rows;
      if (spec.stats) {
        spec.stats->accepted += accepted_round;
        spec.stats->rejected += (feed_n - 1) - accepted_round;
      }
      // Resync the draft to the committed prefix: accepted guesses stay
      // fed, everything past them is forgotten (truncate drops the draft
      // logits; the next catch-up feed regenerates them).
      const int draft_keep = draft_fed + std::min(guess_fed, accepted_round);
      draft_cache.truncate(draft_keep);
      draft_fed = draft_keep;
    }
  }
  if (spec.stats)
    spec.stats->committed += static_cast<std::int64_t>(out.size());
  return out;
}

}  // namespace wisdom::model
