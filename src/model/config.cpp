#include "model/config.hpp"

namespace wisdom::model {

std::int64_t ModelConfig::param_count() const {
  std::int64_t d = d_model;
  std::int64_t per_layer = 0;
  per_layer += 2 * d;          // ln1 gain/bias
  per_layer += d * 3 * d + 3 * d;  // qkv
  per_layer += d * d + d;      // attention out
  per_layer += 2 * d;          // ln2
  per_layer += d * d_ff + d_ff;  // fc
  per_layer += static_cast<std::int64_t>(d_ff) * d + d;  // proj
  std::int64_t total = n_layer * per_layer;
  total += static_cast<std::int64_t>(vocab) * d;  // wte
  total += 2 * d;                                 // final ln
  total += static_cast<std::int64_t>(d) * vocab;  // lm head
  return total;
}

bool ModelConfig::valid() const {
  return vocab > 0 && ctx > 0 && d_model > 0 && n_head > 0 && n_layer > 0 &&
         d_ff > 0 && d_model % n_head == 0 && head_dim() >= 2;
}

ModelConfig config_for(SizeClass size, std::int32_t vocab, std::int32_t ctx) {
  ModelConfig cfg;
  cfg.vocab = vocab;
  cfg.ctx = ctx;
  switch (size) {
    case SizeClass::S350M:
      cfg.d_model = 48;
      cfg.n_head = 4;
      cfg.n_layer = 2;
      break;
    case SizeClass::M2_7B:
      cfg.d_model = 64;
      cfg.n_head = 4;
      cfg.n_layer = 3;
      break;
    case SizeClass::L6B:
      cfg.d_model = 80;
      cfg.n_head = 4;
      cfg.n_layer = 4;
      break;
    case SizeClass::XL175B:
      cfg.d_model = 96;
      cfg.n_head = 4;
      cfg.n_layer = 3;
      break;
  }
  cfg.d_ff = 4 * cfg.d_model;
  return cfg;
}

std::string size_label(SizeClass size) {
  switch (size) {
    case SizeClass::S350M: return "350M";
    case SizeClass::M2_7B: return "2.7B";
    case SizeClass::L6B: return "6B";
    case SizeClass::XL175B: return "175B";
  }
  return "?";
}

}  // namespace wisdom::model
