#include "util/hashing.hpp"

namespace wisdom::util {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  seed ^= value + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

}  // namespace wisdom::util
