// File I/O helpers for checkpoints and corpus export.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wisdom::util {

// Whole-file read; nullopt if the file cannot be opened.
std::optional<std::string> read_file(const std::string& path);

// Whole-file write; returns false on failure.
bool write_file(const std::string& path, std::string_view content);

// Binary serialization primitives used by the model checkpoint format.
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f32(std::string& out, float v);
void put_string(std::string& out, std::string_view s);
void put_f32_vec(std::string& out, const std::vector<float>& v);

// Cursor-based reader; `ok()` turns false on any out-of-bounds read and all
// subsequent reads return zero values, so callers can check once at the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint32_t get_u32();
  std::uint64_t get_u64();
  float get_f32();
  std::string get_string();
  std::vector<float> get_f32_vec();

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  bool take(std::size_t n, const char** out);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace wisdom::util
