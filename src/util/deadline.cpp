#include "util/deadline.hpp"

#include <limits>

namespace wisdom::util {

Deadline Deadline::at(std::chrono::steady_clock::time_point when) {
  Deadline d;
  d.kind_ = Kind::Time;
  d.at_ = when;
  return d;
}

Deadline Deadline::after_ms(double ms) {
  return at(std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(ms < 0.0 ? 0.0
                                                                   : ms)));
}

Deadline Deadline::after_checks(std::int64_t checks) {
  Deadline d;
  d.kind_ = Kind::Checks;
  d.checks_left_ =
      std::make_shared<std::atomic<std::int64_t>>(checks < 0 ? 0 : checks);
  return d;
}

bool Deadline::expired() const {
  if (token_.cancelled()) return true;
  switch (kind_) {
    case Kind::None:
      return false;
    case Kind::Time:
      return std::chrono::steady_clock::now() >= at_;
    case Kind::Checks:
      // fetch_sub so concurrent checkers (batched prefill lanes) each
      // consume budget exactly once; the floor at zero keeps repeated
      // calls on an expired deadline from wrapping.
      if (checks_left_->load(std::memory_order_relaxed) <= 0) return true;
      return checks_left_->fetch_sub(1, std::memory_order_relaxed) <= 0;
  }
  return false;
}

double Deadline::remaining_ms() const {
  if (token_.cancelled()) return 0.0;
  switch (kind_) {
    case Kind::None:
      return std::numeric_limits<double>::infinity();
    case Kind::Time: {
      double ms = std::chrono::duration<double, std::milli>(
                      at_ - std::chrono::steady_clock::now())
                      .count();
      return ms < 0.0 ? 0.0 : ms;
    }
    case Kind::Checks:
      return checks_left_->load(std::memory_order_relaxed) > 0
                 ? std::numeric_limits<double>::infinity()
                 : 0.0;
  }
  return 0.0;
}

}  // namespace wisdom::util
