#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace wisdom::util {

namespace {

thread_local bool t_in_worker = false;

// Pool metrics live in the global registry. Registered eagerly at pool
// construction so the families appear in every exposition dump; updates
// are gated on obs::enabled() (the queue-depth gauge and the per-chunk
// latency histogram read a clock / take atomics on the kernel hot path).
struct PoolMetrics {
  obs::Counter* tasks;
  obs::Gauge* queue_depth;
  obs::Histogram* task_ms;
};

PoolMetrics& pool_metrics() {
  static PoolMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::global();
    return PoolMetrics{
        &registry.counter("wisdom_pool_tasks_total",
                          "Chunks executed by parallel_for (worker lanes "
                          "and the calling thread)."),
        &registry.gauge("wisdom_pool_queue_depth",
                        "Queued chunks awaiting a worker, sampled at "
                        "enqueue time."),
        &registry.histogram("wisdom_pool_task_ms", {},
                            "Per-chunk execution latency."),
    };
  }();
  return metrics;
}

double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::mutex& global_mu() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

int ThreadPool::env_threads() {
  if (const char* env = std::getenv("WISDOM_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024)
      return static_cast<int>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::in_worker() { return t_in_worker; }

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_mu());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(env_threads());
  return *slot;
}

void ThreadPool::set_global_threads(int threads) {
  std::lock_guard<std::mutex> lock(global_mu());
  auto& slot = global_slot();
  slot.reset();  // join the old workers before starting new ones
  slot = std::make_unique<ThreadPool>(threads);
}

ThreadPool::ThreadPool(int threads) {
  if constexpr (obs::kCompiledIn) pool_metrics();  // register the families
  if (threads <= 0) threads = env_threads();
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (size() <= 1 || n == 1 || t_in_worker) {
    body(begin, end);
    return;
  }

  const std::int64_t chunks = std::min<std::int64_t>(size(), n);
  const std::int64_t base = n / chunks;
  const std::int64_t rem = n % chunks;
  auto chunk_begin = [&](std::int64_t c) {
    return begin + c * base + std::min(c, rem);
  };

  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    std::int64_t remaining;
    std::exception_ptr error;
  } sync;
  sync.remaining = chunks - 1;

  const bool observe = obs::enabled();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::int64_t c = 1; c < chunks; ++c) {
      const std::int64_t b = chunk_begin(c);
      const std::int64_t e = chunk_begin(c + 1);
      queue_.emplace_back([&sync, &body, b, e, observe] {
        std::exception_ptr err;
        auto task_start = observe ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
        try {
          body(b, e);
        } catch (...) {
          err = std::current_exception();
        }
        if (observe)
          pool_metrics().task_ms->observe(elapsed_ms_since(task_start));
        std::lock_guard<std::mutex> task_lock(sync.mu);
        if (err && !sync.error) sync.error = err;
        if (--sync.remaining == 0) sync.cv.notify_one();
      });
    }
    if (observe)
      pool_metrics().queue_depth->set(static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  if (observe) pool_metrics().tasks->inc(static_cast<std::uint64_t>(chunks));

  // The caller runs the first chunk; its exception still waits for the
  // workers (they reference stack state) before propagating.
  std::exception_ptr local;
  auto caller_start = observe ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
  try {
    body(chunk_begin(0), chunk_begin(1));
  } catch (...) {
    local = std::current_exception();
  }
  if (observe)
    pool_metrics().task_ms->observe(elapsed_ms_since(caller_start));
  {
    std::unique_lock<std::mutex> lock(sync.mu);
    sync.cv.wait(lock, [&sync] { return sync.remaining == 0; });
  }
  if (sync.error) std::rethrow_exception(sync.error);
  if (local) std::rethrow_exception(local);
}

}  // namespace wisdom::util
