#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <memory>

namespace wisdom::util {

namespace {

thread_local bool t_in_worker = false;

std::mutex& global_mu() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

int ThreadPool::env_threads() {
  if (const char* env = std::getenv("WISDOM_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024)
      return static_cast<int>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::in_worker() { return t_in_worker; }

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_mu());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(env_threads());
  return *slot;
}

void ThreadPool::set_global_threads(int threads) {
  std::lock_guard<std::mutex> lock(global_mu());
  auto& slot = global_slot();
  slot.reset();  // join the old workers before starting new ones
  slot = std::make_unique<ThreadPool>(threads);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = env_threads();
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (size() <= 1 || n == 1 || t_in_worker) {
    body(begin, end);
    return;
  }

  const std::int64_t chunks = std::min<std::int64_t>(size(), n);
  const std::int64_t base = n / chunks;
  const std::int64_t rem = n % chunks;
  auto chunk_begin = [&](std::int64_t c) {
    return begin + c * base + std::min(c, rem);
  };

  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    std::int64_t remaining;
    std::exception_ptr error;
  } sync;
  sync.remaining = chunks - 1;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::int64_t c = 1; c < chunks; ++c) {
      const std::int64_t b = chunk_begin(c);
      const std::int64_t e = chunk_begin(c + 1);
      queue_.emplace_back([&sync, &body, b, e] {
        std::exception_ptr err;
        try {
          body(b, e);
        } catch (...) {
          err = std::current_exception();
        }
        std::lock_guard<std::mutex> task_lock(sync.mu);
        if (err && !sync.error) sync.error = err;
        if (--sync.remaining == 0) sync.cv.notify_one();
      });
    }
  }
  cv_.notify_all();

  // The caller runs the first chunk; its exception still waits for the
  // workers (they reference stack state) before propagating.
  std::exception_ptr local;
  try {
    body(chunk_begin(0), chunk_begin(1));
  } catch (...) {
    local = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(sync.mu);
    sync.cv.wait(lock, [&sync] { return sync.remaining == 0; });
  }
  if (sync.error) std::rethrow_exception(sync.error);
  if (local) std::rethrow_exception(local);
}

}  // namespace wisdom::util
