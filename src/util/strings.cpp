#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace wisdom::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      std::string_view line = text.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      out.emplace_back(line);
      start = i + 1;
    }
  }
  if (start < text.size()) {
    std::string_view line = text.substr(start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    out.emplace_back(line);
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim_left(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
    ++i;
  return text.substr(i);
}

std::string_view trim_right(std::string_view text) {
  std::size_t n = text.size();
  while (n > 0 && std::isspace(static_cast<unsigned char>(text[n - 1]))) --n;
  return text.substr(0, n);
}

std::string_view trim(std::string_view text) {
  return trim_left(trim_right(text));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  for (;;) {
    std::size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) break;
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  out.append(text.substr(pos));
  return out;
}

std::size_t indent_width(std::string_view line) {
  std::size_t i = 0;
  while (i < line.size() && line[i] == ' ') ++i;
  return i;
}

std::string repeat(std::string_view unit, std::size_t n) {
  std::string out;
  out.reserve(unit.size() * n);
  for (std::size_t i = 0; i < n; ++i) out.append(unit);
  return out;
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

bool is_integer(std::string_view text) {
  if (text.empty()) return false;
  std::size_t i = (text[0] == '-' || text[0] == '+') ? 1 : 0;
  if (i == text.size()) return false;
  for (; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
  }
  return true;
}

}  // namespace wisdom::util
