#include "util/table.hpp"

#include <algorithm>
#include <cctype>

namespace wisdom::util {

namespace {
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit = false;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'x') {
      return false;
    }
  }
  return digit;
}
}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back({std::move(cells), false});
}

void Table::add_rule() { rows_.push_back({{}, true}); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.rule) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      width[c] = std::max(width[c], row.cells[c].size());
  }

  auto pad = [](const std::string& s, std::size_t w, bool right) {
    std::string out;
    if (right) out.append(w - s.size(), ' ');
    out += s;
    if (!right) out.append(w - s.size(), ' ');
    return out;
  };

  std::string rule = "+";
  for (std::size_t w : width) rule += std::string(w + 2, '-') + "+";
  rule += "\n";

  std::string out = rule;
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out += " " + pad(headers_[c], width[c], false) + " |";
  out += "\n" + rule;
  for (const Row& row : rows_) {
    if (row.rule) {
      out += rule;
      continue;
    }
    out += "|";
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      out += " " + pad(row.cells[c], width[c], looks_numeric(row.cells[c])) +
             " |";
    out += "\n";
  }
  out += rule;
  return out;
}

}  // namespace wisdom::util
