// Deterministic pseudo-random number generation for the Wisdom reproduction.
//
// Every stochastic component in the library (corpus synthesis, dataset
// splits, weight initialization, data shuffling) draws from an explicitly
// seeded Rng so that tests and benchmark tables are bit-reproducible across
// runs. We use xoshiro256** seeded through SplitMix64, the standard
// recommendation of the xoshiro authors, rather than std::mt19937, whose
// distributions are not guaranteed to be identical across standard-library
// implementations.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string_view>
#include <vector>

namespace wisdom::util {

// SplitMix64 step; used both as a seeding expander and as a cheap hash mixer.
std::uint64_t splitmix64(std::uint64_t& state);

// xoshiro256** with convenience helpers for sampling.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Derive an independent stream, e.g. one per data source or per module.
  // The label participates in seeding so streams with different labels are
  // decorrelated even with the same parent seed.
  Rng fork(std::string_view label) const;

  std::uint64_t next_u64();

  // Uniform in [0, n). Requires n > 0.
  std::uint64_t uniform(std::uint64_t n);
  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Uniform in [0, 1).
  double uniform_real();
  // Standard normal via Box-Muller.
  double normal();
  // Bernoulli with probability p of returning true.
  bool chance(double p);

  // Pick an element uniformly from a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[static_cast<std::size_t>(uniform(items.size()))];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(uniform(items.size()))];
  }

  // Index sampled according to non-negative weights (at least one positive).
  std::size_t weighted(std::span<const double> weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  // Zipf-like rank sampler over [0, n): heavy head, long tail. Exponent s
  // controls the skew; the Ansible module usage distribution in real corpora
  // is strongly Zipfian, which the synthetic corpus mirrors.
  std::size_t zipf(std::size_t n, double s = 1.1);

 private:
  std::uint64_t s_[4];
};

}  // namespace wisdom::util
