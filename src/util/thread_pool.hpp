// Fixed-size thread pool driving every parallel kernel in the library.
//
// Design constraints, in order:
//   1. Determinism. parallel_for splits an index range into at most size()
//      contiguous chunks with a fixed partition, so a kernel that writes
//      disjoint output rows per chunk produces bit-identical results at any
//      thread count (including 1). No work stealing, no atomics on data.
//   2. Nestability. A parallel_for issued from inside a pool worker runs
//      inline and sequentially on that worker — batched serving fans
//      requests out across the pool and the per-request kernels then must
//      not re-enter it (that would deadlock a fixed-size pool).
//   3. Exception safety. The first exception thrown by any chunk is
//      rethrown to the caller after all chunks finish; the pool stays
//      usable afterwards.
//
// The calling thread participates as one lane: a pool of N threads has
// N - 1 workers plus the caller, so WISDOM_THREADS=1 means zero worker
// threads and fully inline execution.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wisdom::util {

class ThreadPool {
 public:
  // threads <= 0 selects the environment default: WISDOM_THREADS if set,
  // otherwise std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of concurrent lanes (workers + the calling thread), >= 1.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs body(chunk_begin, chunk_end) over a deterministic partition of
  // [begin, end) into at most size() contiguous chunks and blocks until
  // every chunk is done. The caller executes the first chunk itself.
  // Called from a pool worker, runs body(begin, end) inline instead.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>&
                        body);

  // True on threads owned by a ThreadPool (any instance).
  static bool in_worker();

  // Process-wide pool shared by the nn/model/serve layers. Built lazily
  // from env_threads() on first use.
  static ThreadPool& global();
  // Replaces the global pool with one of `threads` lanes (<= 0 restores
  // the environment default). Must not be called while work is in flight.
  static void set_global_threads(int threads);
  // WISDOM_THREADS if set and valid, else hardware_concurrency(), >= 1.
  static int env_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace wisdom::util
