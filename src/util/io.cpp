#include "util/io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

namespace wisdom::util {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_f32(std::string& out, float v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_string(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  out.append(s);
}

void put_f32_vec(std::string& out, const std::vector<float>& v) {
  put_u64(out, v.size());
  out.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(float));
}

bool ByteReader::take(std::size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint32_t ByteReader::get_u32() {
  const char* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t ByteReader::get_u64() {
  const char* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

float ByteReader::get_f32() {
  const char* p = nullptr;
  if (!take(4, &p)) return 0.0f;
  float v;
  std::memcpy(&v, p, 4);
  return v;
}

std::string ByteReader::get_string() {
  std::uint64_t n = get_u64();
  const char* p = nullptr;
  if (!take(static_cast<std::size_t>(n), &p)) return {};
  return std::string(p, static_cast<std::size_t>(n));
}

std::vector<float> ByteReader::get_f32_vec() {
  std::uint64_t n = get_u64();
  const char* p = nullptr;
  if (!take(static_cast<std::size_t>(n) * sizeof(float), &p)) return {};
  std::vector<float> v(static_cast<std::size_t>(n));
  std::memcpy(v.data(), p, v.size() * sizeof(float));
  return v;
}

}  // namespace wisdom::util
