#include "util/rng.hpp"

#include <cassert>
#include <cmath>

#include "util/hashing.hpp"

namespace wisdom::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::string_view label) const {
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 17);
  mix ^= fnv1a64(label);
  return Rng(mix);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_real() {
  // 53 bits of mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
  double u1 = uniform_real();
  double u2 = uniform_real();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
}

bool Rng::chance(double p) { return uniform_real() < p; }

std::size_t Rng::weighted(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = uniform_real() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  assert(n > 0);
  // Inverse-CDF on the harmonic weights would be exact but O(n) per draw; a
  // power-transform of a uniform draw gives the same head-heavy, long-tailed
  // rank shape in O(1), which matters when synthesizing millions of tasks.
  double u = uniform_real();
  double r = std::pow(u, 2.0 * s);
  std::size_t idx = static_cast<std::size_t>(r * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return idx;
}

}  // namespace wisdom::util
