// Non-cryptographic hashing used for exact-match deduplication of the
// synthesized corpora (the paper deduplicates "using a simple exact match
// criterion") and for deterministic stream forking.
#pragma once

#include <cstdint>
#include <string_view>

namespace wisdom::util {

// 64-bit FNV-1a over bytes.
std::uint64_t fnv1a64(std::string_view bytes);

// Stable combiner (boost-style) for composing hashes.
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

}  // namespace wisdom::util
