// Minimal leveled logging. Benchmarks set the level to Info to narrate
// training progress; tests default to Warn to keep ctest output readable.
#pragma once

#include <string_view>

namespace wisdom::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, std::string_view message);

inline void log_debug(std::string_view m) { log(LogLevel::Debug, m); }
inline void log_info(std::string_view m) { log(LogLevel::Info, m); }
inline void log_warn(std::string_view m) { log(LogLevel::Warn, m); }
inline void log_error(std::string_view m) { log(LogLevel::Error, m); }

}  // namespace wisdom::util
