// Small string helpers shared across the YAML parser, the Ansible model and
// the data pipeline. All functions are pure and allocation behaviour is
// documented where it matters for the parser hot path.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wisdom::util {

// Split on a single character; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

// Split on any run of whitespace; drops empty fields.
std::vector<std::string> split_ws(std::string_view text);

// Split into lines; both "\n" and trailing-newline-less inputs are handled.
std::vector<std::string> split_lines(std::string_view text);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string_view trim(std::string_view text);
std::string_view trim_left(std::string_view text);
std::string_view trim_right(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
bool contains(std::string_view text, std::string_view needle);

std::string to_lower(std::string_view text);
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

// Number of leading spaces. Tabs are not counted: YAML forbids tabs in
// indentation and the parser reports them as errors before calling this.
std::size_t indent_width(std::string_view line);

// Repeat a string n times.
std::string repeat(std::string_view unit, std::size_t n);

// Format a double with fixed decimals (benchmark tables).
std::string fmt_fixed(double value, int decimals);

// True if the text parses completely as a decimal integer.
bool is_integer(std::string_view text);

}  // namespace wisdom::util
