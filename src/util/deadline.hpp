// Deadline and cooperative-cancellation primitives for the serving path.
//
// A Deadline bounds a unit of work three ways:
//   * time-based (after_ms / at): expires when the wall clock passes the
//     point — the production serving budget,
//   * check-count-based (after_checks): expires after a fixed number of
//     expired() calls — a deterministic stand-in for "the decode is too
//     slow" that lets tests and the fault injector exercise every expiry
//     path without sleeping or depending on machine speed,
//   * infinite (default): never expires.
//
// Any deadline can additionally carry a CancelToken; cancellation trips
// expired() immediately regardless of the limit kind. Deadlines are cheap
// to copy; copies of a check-limited deadline share one budget (the checks
// model one request's total cooperative-check allowance, wherever the
// checks happen).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace wisdom::util {

// Read side of a cancellation flag. Default-constructed tokens are inert
// (never cancelled).
class CancelToken {
 public:
  CancelToken() = default;

  bool cancellable() const { return flag_ != nullptr; }
  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

// Write side: the owner (e.g. the editor plugin when the user keeps
// typing) flips the flag; every token handed out observes it.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }
  CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class Deadline {
 public:
  Deadline() = default;  // infinite

  static Deadline infinite() { return Deadline(); }
  static Deadline at(std::chrono::steady_clock::time_point when);
  // Expires once `ms` milliseconds have elapsed from now; ms <= 0 is
  // already expired.
  static Deadline after_ms(double ms);
  // Expires after `checks` calls to expired() have returned false (the
  // call after the budget is spent returns true). checks <= 0 is already
  // expired. Deterministic: independent of wall time.
  static Deadline after_checks(std::int64_t checks);

  // Attaches a cancellation token; cancellation overrides any limit.
  void set_token(CancelToken token) { token_ = std::move(token); }
  const CancelToken& token() const { return token_; }

  bool has_limit() const {
    return kind_ != Kind::None || token_.cancellable();
  }

  // The cooperative check. Call once per unit of work (per decoded token);
  // each call on a check-limited deadline consumes one unit of budget.
  bool expired() const;

  // Milliseconds until a time-based deadline expires (>= 0); +infinity for
  // untimed deadlines with budget left, 0 when already expired.
  double remaining_ms() const;

 private:
  enum class Kind { None, Time, Checks };

  Kind kind_ = Kind::None;
  std::chrono::steady_clock::time_point at_{};
  std::shared_ptr<std::atomic<std::int64_t>> checks_left_;
  CancelToken token_;
};

}  // namespace wisdom::util
