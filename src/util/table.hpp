// Console table renderer used by the benchmark binaries to print rows in the
// same layout as the paper's tables (Tables I-VI).
#pragma once

#include <string>
#include <vector>

namespace wisdom::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Horizontal separator between logical sections (the paper's tables group
  // CodeGen / Codex / Wisdom rows with rules).
  void add_rule();

  // Render with column auto-sizing; numeric-looking cells right-aligned.
  std::string to_string() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace wisdom::util
