// Playbook intermediate representation.
//
// `build_ir` lowers a parsed document (single task, task list, or playbook)
// into a flat arena of tasks with explicit structure: play membership,
// block/rescue/always nesting, handler subscriptions, per-task variable
// definitions and uses, and a control-flow edge list. Every IR node keeps
// the `yaml::Span`s of the source it came from, so the semantic passes
// (dataflow, typecheck, taint) emit diagnostics anchored exactly like the
// base linter's — and auto-fix edits that splice into the original bytes.
//
// The IR is deliberately lossless about *where* things are and lossy about
// everything the passes do not need; it is also the substrate the ROADMAP's
// grammar-constrained decoding item will consume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "ansible/catalog.hpp"
#include "yaml/node.hpp"

namespace wisdom::analysis {

inline constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);

// A finding produced by a semantic pass, routed through the engine's
// config-aware emitter (which applies severity overrides / disable sets).
struct Finding {
  std::string_view rule;
  std::string message;
  yaml::Span span;
  std::vector<TextEdit> edits;
};

// A fix computed during traversal, matched to an *existing* diagnostic
// afterwards by (rule, span.begin) — the base linter produces the
// diagnostic, the traversal knows the edit.
struct FixCandidate {
  std::string_view rule;
  std::size_t anchor = 0;  // span.begin of the diagnostic it repairs
  std::vector<TextEdit> edits;
};

enum class DefKind : std::uint8_t { Register, SetFact, TaskVars, PlayVars };

struct VarDef {
  std::string name;
  DefKind kind = DefKind::Register;
  yaml::Span span;  // the defining key/value
};

struct VarUse {
  std::string name;       // root identifier the expression dereferences
  yaml::Span span;        // the string the reference appears in
  bool in_name = false;   // inside the task's `name:` (always displayed)
};

// Which list of its parent block a task lives in.
enum class BlockSection : std::uint8_t { None = 0, Block, Rescue, Always };

struct IrTask {
  std::size_t id = 0;
  const yaml::Node* node = nullptr;
  yaml::Span span;

  std::string name;    // "" when unnamed
  std::string module;  // module key as written; "" for blocks / keyword-only
  const yaml::Node* args = nullptr;     // module argument node
  const yaml::Node* args_kw = nullptr;  // the `args:` keyword mapping, if any
  const ansible::ModuleSpec* spec = nullptr;  // catalog entry; may be null

  bool is_block = false;
  std::vector<std::size_t> block, rescue, always;  // child task ids
  std::size_t parent = kNoTask;
  BlockSection section = BlockSection::None;  // which parent list holds us

  bool is_handler = false;
  std::vector<std::string> listen;  // handler subscription topics

  bool has_loop = false;
  std::string loop_var = "item";  // loop_control.loop_var override applied
  std::string register_name;      // "" when the task does not register
  yaml::Span register_span;       // span of the register value

  bool no_log = false;          // `no_log: true` is set
  bool has_no_log_key = false;  // a `no_log:` key exists (any value)
  bool has_when = false;
  yaml::Span when_span;              // span of the `when:` value
  bool when_constant_false = false;  // `when: false` (possibly in a list)
  bool ends_play = false;            // `meta: end_play` (end_host is per-host)

  std::vector<VarDef> defs;
  std::vector<VarUse> uses;
  // notify targets with the span of each name.
  std::vector<std::pair<std::string, yaml::Span>> notify;
};

struct IrPlay {
  const yaml::Node* node = nullptr;  // null for the synthetic wrapper play
  yaml::Span span;
  std::vector<VarDef> vars;            // play-level `vars:` definitions
  std::vector<std::size_t> tasks;      // top-level ids, pre/tasks/post order
  std::vector<std::size_t> handlers;   // top-level handler ids
};

enum class EdgeKind : std::uint8_t { Seq, Block, Rescue, Always, Notify };

struct CfgEdge {
  std::size_t from = kNoTask;
  std::size_t to = kNoTask;
  EdgeKind kind = EdgeKind::Seq;
};

struct PlaybookIr {
  std::vector<IrTask> tasks;  // arena; ids index into it
  std::vector<IrPlay> plays;
  std::vector<CfgEdge> edges;
  bool is_playbook = false;  // document was a play sequence (real plays)

  // Leaf (non-block) tasks a play may execute, in execution order; block
  // nodes are included pre-order so their `when`/`vars` scope is visible
  // before their children.
  std::vector<std::size_t> execution_order(const IrPlay& play) const;

  // The handler of `play` whose name or listen topic matches `notify_name`;
  // kNoTask when none does.
  std::size_t resolve_handler(const IrPlay& play,
                              std::string_view notify_name) const;

  // The chain of (block id, section) pairs enclosing `id`, outermost first.
  // Two tasks on the same chain run under the same failure branch, so a
  // redefinition between them is a genuine overwrite rather than a
  // block-vs-rescue alternative.
  std::vector<std::pair<std::size_t, BlockSection>> branch_path(
      std::size_t id) const;
};

// Lowers a parsed document into IR. Accepts the same document shapes the
// engine analyzes: a single task mapping, a task list, or a playbook; a
// synthetic play wraps the first two so every task has a play context.
PlaybookIr build_ir(const yaml::Node& doc);

// Root identifiers a Jinja expression dereferences: `result.rc != 0` yields
// {result}; filters (`x | default(1)`), tests (`x is defined`), attribute
// accesses and calls are not roots. Quoted strings are skipped.
void expr_roots(std::string_view text, std::vector<std::string>& out);

// Roots referenced by the {{ ... }} interpolations of a template string.
void template_roots(std::string_view text, std::vector<std::string>& out);

}  // namespace wisdom::analysis
