// Core types of the diagnostics engine.
//
// A Diagnostic is a lint violation upgraded to a real static-analysis
// finding: a stable rule id, a severity, a human-readable message, a source
// span pointing at the offending key/value, and — when the rule is
// mechanically repairable — the span-anchored text edits that fix it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ansible/linter.hpp"
#include "yaml/node.hpp"

namespace wisdom::analysis {

using Severity = wisdom::ansible::Severity;

// A replacement of the half-open byte range [begin, end) of the analyzed
// text with `replacement`. Insertions have begin == end.
struct TextEdit {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string replacement;
};

struct Diagnostic {
  std::string rule;     // stable rule id, e.g. "boolean-literal"
  std::string message;  // human-readable detail
  Severity severity = Severity::Error;
  yaml::Span span;      // where in the analyzed text; invalid = unlocated
  // Non-empty when this diagnostic is auto-fixable: applying the edits to
  // the analyzed text resolves it.
  std::vector<TextEdit> edits;

  bool fixable() const { return !edits.empty(); }
};

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;
  // True when the document parsed to a YAML node (rules beyond yaml-syntax
  // had a chance to run).
  bool parsed = false;

  std::size_t error_count() const;
  std::size_t warning_count() const;
  std::size_t fixable_count() const;
  // Schema-correct means no *errors*; warnings are advisory.
  bool ok() const { return error_count() == 0; }

  // Diagnostics ordered by (line, column, rule) for deterministic output;
  // unlocated diagnostics sort first.
  std::vector<const Diagnostic*> sorted() const;
};

}  // namespace wisdom::analysis
