#include "analysis/format.hpp"

#include <algorithm>
#include <cstddef>

#include "analysis/rules.hpp"
#include "util/strings.hpp"

namespace wisdom::analysis {

namespace {

std::string_view severity_name(Severity severity) {
  return severity == Severity::Error ? "error" : "warning";
}

// The text of 1-based line `line` of `source` (no trailing newline).
std::string_view source_line(std::string_view source, std::size_t line) {
  std::size_t start = 0;
  for (std::size_t n = 1; n < line; ++n) {
    std::size_t next = source.find('\n', start);
    if (next == std::string_view::npos) return {};
    start = next + 1;
  }
  std::size_t end = source.find('\n', start);
  if (end == std::string_view::npos) end = source.size();
  return source.substr(start, end - start);
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string format_one_line(const Diagnostic& d, std::string_view file_label) {
  std::string out;
  out += file_label;
  if (d.span.valid()) {
    out += ":" + std::to_string(d.span.line) + ":" +
           std::to_string(d.span.column);
  }
  out += ": ";
  out += severity_name(d.severity);
  out += " [" + d.rule + "]: " + d.message;
  return out;
}

std::string format_text(std::string_view source, const AnalysisResult& result,
                        std::string_view file_label) {
  std::string out;
  for (const Diagnostic* d : result.sorted()) {
    out += format_one_line(*d, file_label);
    out += '\n';
    if (!d->span.valid()) continue;
    std::string_view line = source_line(source, d->span.line);
    if (line.empty() && d->span.length() == 0) continue;
    out += "    ";
    out += line;
    out += '\n';
    // Caret under the span, clamped to the excerpted line.
    std::size_t col = d->span.column > 0 ? d->span.column - 1 : 0;
    if (col > line.size()) col = line.size();
    std::size_t width = std::max<std::size_t>(d->span.length(), 1);
    width = std::min(width, line.size() - col + 1);
    width = std::max<std::size_t>(width, 1);
    out += "    ";
    out.append(col, ' ');
    out += '^';
    out.append(width - 1, '~');
    out += '\n';
  }
  std::size_t errors = result.error_count();
  std::size_t warnings = result.warning_count();
  out += std::to_string(errors) + (errors == 1 ? " error, " : " errors, ") +
         std::to_string(warnings) +
         (warnings == 1 ? " warning\n" : " warnings\n");
  return out;
}

std::string format_json(const AnalysisResult& result) {
  std::string out = "{\"ok\":";
  out += result.ok() ? "true" : "false";
  out += ",\"parsed\":";
  out += result.parsed ? "true" : "false";
  out += ",\"errors\":" + std::to_string(result.error_count());
  out += ",\"warnings\":" + std::to_string(result.warning_count());
  out += ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic* d : result.sorted()) {
    if (!first) out += ',';
    first = false;
    out += "{\"rule\":";
    append_json_string(out, d->rule);
    out += ",\"severity\":";
    append_json_string(out, severity_name(d->severity));
    out += ",\"message\":";
    append_json_string(out, d->message);
    out += ",\"line\":" + std::to_string(d->span.line);
    out += ",\"column\":" + std::to_string(d->span.column);
    out += ",\"begin\":" + std::to_string(d->span.begin);
    out += ",\"end\":" + std::to_string(d->span.end);
    out += ",\"fixable\":";
    out += d->fixable() ? "true" : "false";
    out += '}';
  }
  out += "]}";
  return out;
}

std::string format_sarif(const std::vector<SarifArtifact>& artifacts) {
  const auto rules = all_rules();
  std::string out;
  out +=
      "{\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"wisdom_lint\",\"informationUri\":"
      "\"https://github.com/ansible/ansible-wisdom\",\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i != 0) out += ',';
    const RuleInfo& rule = rules[i];
    out += "{\"id\":";
    append_json_string(out, rule.id);
    out += ",\"shortDescription\":{\"text\":";
    append_json_string(out, rule.summary);
    out += "},\"defaultConfiguration\":{\"level\":";
    append_json_string(out, severity_name(rule.default_severity));
    out += "},\"properties\":{\"fixable\":";
    out += rule.fixable ? "true" : "false";
    out += ",\"semantic\":";
    out += rule.semantic ? "true" : "false";
    out += "}}";
  }
  out += "]}},\"results\":[";
  bool first = true;
  for (const SarifArtifact& artifact : artifacts) {
    if (artifact.result == nullptr) continue;
    for (const Diagnostic* d : artifact.result->sorted()) {
      if (!first) out += ',';
      first = false;
      out += "{\"ruleId\":";
      append_json_string(out, d->rule);
      // ruleIndex ties the result to the driver.rules entry; -1 (omitted)
      // would be legal but viewers use the index for severity metadata.
      for (std::size_t i = 0; i < rules.size(); ++i) {
        if (rules[i].id == d->rule) {
          out += ",\"ruleIndex\":" + std::to_string(i);
          break;
        }
      }
      out += ",\"level\":";
      append_json_string(out, severity_name(d->severity));
      out += ",\"message\":{\"text\":";
      append_json_string(out, d->message);
      out += "},\"locations\":[{\"physicalLocation\":{"
             "\"artifactLocation\":{\"uri\":";
      append_json_string(out, artifact.uri);
      out += '}';
      if (d->span.valid()) {
        out += ",\"region\":{\"startLine\":" + std::to_string(d->span.line) +
               ",\"startColumn\":" + std::to_string(d->span.column) + '}';
      }
      out += "}}]}";
    }
  }
  out += "]}]}";
  return out;
}

}  // namespace wisdom::analysis
