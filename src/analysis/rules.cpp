#include "analysis/rules.hpp"

#include <algorithm>
#include <array>

namespace wisdom::analysis {

namespace {

constexpr Severity kErr = Severity::Error;
constexpr Severity kWarn = Severity::Warning;

// Sorted by id (asserted by the registry test).
constexpr std::array<RuleInfo, 39> kRules{{
    {"args-shape", kErr, false,
     "module arguments must be a mapping (or free-form string)"},
    {"block-shape", kErr, false, "block/rescue/always must hold task lists"},
    {"boolean-literal", kWarn, true,
     "non-canonical boolean spelling (yes/on/True) - use true/false"},
    {"deprecated-module", kWarn, false,
     "module is deprecated; its replacement is named in the catalog"},
    {"duplicate-key", kErr, false, "mapping repeats a key"},
    {"empty-document", kWarn, false, "document has no content"},
    {"fqcn", kWarn, true,
     "short module name - use the fully qualified collection name"},
    {"hosts-missing", kErr, false, "play does not declare 'hosts'"},
    {"jinja-syntax", kWarn, false,
     "malformed Jinja expression or template interpolation"},
    {"keyword-type", kErr, false, "keyword value has the wrong shape"},
    {"missing-required-param", kErr, false,
     "module is missing a required parameter"},
    {"module-missing", kErr, false, "task does not invoke a module"},
    {"multiple-modules", kErr, false, "task has more than one module key"},
    {"name-missing", kWarn, false, "task has no 'name:'"},
    {"name-shape", kErr, false, "name must be a scalar"},
    {"no-log-missing", kWarn, true,
     "credential-valued parameter without 'no_log: true'", true},
    {"octal-mode", kWarn, true,
     "numeric file mode loses its leading zero - quote it"},
    {"old-style-args", kErr, true,
     "legacy k=v argument string on a non-free-form module"},
    {"param-mutually-exclusive", kErr, false,
     "module parameters that exclude each other are both set", true},
    {"param-required-together", kWarn, false,
     "module parameter is missing its companion parameter", true},
    {"param-value", kErr, true, "module parameter has an invalid value"},
    {"play-empty", kErr, false, "play has no tasks, roles or handlers"},
    {"play-shape", kErr, false, "play must be a mapping"},
    {"playbook-shape", kErr, false,
     "playbook must be a non-empty sequence of plays"},
    {"register-overwritten", kWarn, false,
     "registered variable is overwritten before it is ever read", true},
    {"secret-in-name", kWarn, false,
     "task name interpolates a secret-shaped variable", true},
    {"secret-logging", kWarn, true,
     "secret-shaped value flows into logged output without no_log", true},
    {"task-shape", kErr, false, "task must be a non-empty mapping"},
    {"tasks-shape", kErr, false, "task file must be a sequence of tasks"},
    {"undefined-handler", kErr, false,
     "notify target matches no handler in the play", true},
    {"undefined-variable", kWarn, false,
     "variable used before any definition reaches it", true},
    {"unknown-keyword", kErr, false, "unknown block keyword"},
    {"unknown-module", kErr, false, "unknown module or keyword"},
    {"unknown-param", kErr, true, "module has no such parameter"},
    {"unknown-play-keyword", kErr, false, "unknown play keyword"},
    {"unreachable-task", kWarn, false,
     "task can never execute (constant-false when or after end_play)", true},
    {"unused-handler", kWarn, false, "handler is never notified", true},
    {"unused-register", kWarn, false,
     "registered variable is never used", true},
    {"yaml-syntax", kErr, false, "document is not parseable YAML"},
}};

}  // namespace

std::span<const RuleInfo> all_rules() { return kRules; }

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& rule : kRules) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

bool RuleConfig::is_enabled(std::string_view id) const {
  return std::find(disabled.begin(), disabled.end(), id) == disabled.end();
}

std::optional<Severity> RuleConfig::override_for(std::string_view id) const {
  for (const auto& [rule, severity] : severity_overrides) {
    if (rule == id) return severity;
  }
  return std::nullopt;
}

std::vector<std::string> RuleConfig::unknown_ids() const {
  std::vector<std::string> unknown;
  for (const std::string& id : disabled) {
    if (!find_rule(id)) unknown.push_back(id);
  }
  for (const auto& [id, severity] : severity_overrides) {
    (void)severity;
    if (!find_rule(id)) unknown.push_back(id);
  }
  return unknown;
}

}  // namespace wisdom::analysis
