// Secret-taint analysis over the playbook IR.
//
// Taint sources are (a) variables whose names look like credentials
// (vault_*, *password*, *token*, *_key*, ...), (b) module parameters the
// catalog marks `secret`, and (c) `lookup(...)` calls whose literal
// arguments name a credential. Taint propagates through `register` and
// `set_fact` along the same forward walk the dataflow pass uses. Findings:
//
//   secret-logging   a tainted value reaches a logged sink (debug/fail/
//                    assert message output) on a task without no_log
//                    [auto-fix: insert `no_log: true`]
//   no-log-missing   a catalog-secret parameter is set without no_log
//                    [auto-fix: insert `no_log: true`]
//   secret-in-name   a task name interpolates a tainted variable — task
//                    names are always displayed, no_log does not help
#pragma once

#include <string_view>
#include <vector>

#include "analysis/ir.hpp"

namespace wisdom::analysis {

// True when a variable name is credential-shaped (the taint source
// predicate; exposed for tests).
bool secret_shaped_name(std::string_view name);

std::vector<Finding> taint_pass(const PlaybookIr& ir);

}  // namespace wisdom::analysis
