// Catalog-backed module parameter type checking over the playbook IR.
//
// The base linter already reports wrong-type (`param-value`), unknown
// (`unknown-param`) and missing-required parameters; this pass adds the
// cross-parameter rules the catalog now carries — `param-mutually-exclusive`
// and `param-required-together` — and computes the mechanical fixes for the
// base rules where one exists:
//
//   param-value    quoted booleans ("yes", "True") -> canonical true/false;
//                  a near-miss Choice value -> the unique closest choice
//   unknown-param  a typo'd name -> the unique close catalog parameter
#pragma once

#include <vector>

#include "analysis/ir.hpp"

namespace wisdom::analysis {

struct TypecheckOutput {
  std::vector<Finding> findings;
  std::vector<FixCandidate> fixes;  // for diagnostics the base linter emits
};

TypecheckOutput typecheck_pass(const PlaybookIr& ir);

}  // namespace wisdom::analysis
