// Reaching-definitions dataflow over the playbook IR.
//
// One forward walk over the document's execution order (plays in sequence,
// tasks flattened through block/rescue/always, handlers after their play)
// computes def-use chains for `register` / `set_fact` / play `vars` — facts
// persist across plays, task `vars` stay task-scoped — and derives:
//
//   undefined-variable   a use before any definition can reach it (only for
//                        names the document defines *somewhere*; inventory
//                        and fact variables are out of scope by design)
//   unused-register      a registered variable never read anywhere
//   register-overwritten a register shadowed before it is ever read, on the
//                        same unconditional branch path
//   unreachable-task     `when: false`, or a task after `meta: end_play`
//   undefined-handler    `notify` naming no handler of a play that has some
//   unused-handler       a handler no task ever notifies
#pragma once

#include <vector>

#include "analysis/ir.hpp"

namespace wisdom::analysis {

std::vector<Finding> dataflow_pass(const PlaybookIr& ir);

}  // namespace wisdom::analysis
