#include "analysis/dataflow.hpp"

#include <map>
#include <set>
#include <string>

namespace wisdom::analysis {

namespace {

// The tightest span to hang a whole-task finding on: the `name:` value,
// else the first key, else the task's own span.
yaml::Span task_anchor(const IrTask& t) {
  if (t.node && t.node->is_map() && !t.node->entries().empty()) {
    if (const yaml::Node* name = t.node->find("name");
        name && name->span().valid())
      return name->span();
    const yaml::Span& first = t.node->entries().front().second.key_span();
    if (first.valid()) return first;
  }
  return t.span;
}

struct PendingRegister {
  std::size_t task = kNoTask;
  yaml::Span span;
};

}  // namespace

std::vector<Finding> dataflow_pass(const PlaybookIr& ir) {
  std::vector<Finding> out;

  // Persistent definitions the document makes *somewhere*: only names in
  // this set are candidates for undefined-variable, so inventory vars and
  // gathered facts (defined outside the document) never false-positive.
  std::set<std::string> defined_somewhere;
  for (const IrPlay& play : ir.plays)
    for (const VarDef& d : play.vars) defined_somewhere.insert(d.name);
  for (const IrTask& t : ir.tasks)
    for (const VarDef& d : t.defs)
      if (d.kind == DefKind::Register || d.kind == DefKind::SetFact)
        defined_somewhere.insert(d.name);

  std::set<std::string> used_anywhere;
  for (const IrTask& t : ir.tasks)
    for (const VarUse& u : t.uses) used_anywhere.insert(u.name);

  // Forward walk. Registered vars and facts persist across plays.
  std::set<std::string> defined;
  std::map<std::string, PendingRegister> pending;  // registers never read

  for (const IrPlay& play : ir.plays) {
    for (const VarDef& d : play.vars) defined.insert(d.name);

    std::vector<std::size_t> order = ir.execution_order(play);
    std::vector<std::size_t> handler_order;
    {
      IrPlay handlers;
      handlers.tasks = play.handlers;
      handler_order = ir.execution_order(handlers);
    }

    bool play_ended = false;
    auto walk = [&](std::size_t id, bool handler_phase) {
      const IrTask& t = ir.tasks[id];

      if (!handler_phase) {
        if (play_ended) {
          out.push_back(Finding{
              "unreachable-task",
              "task is unreachable: an earlier 'meta: end_play' always ends "
              "the play first",
              task_anchor(t),
              {}});
        }
        if (t.when_constant_false) {
          out.push_back(Finding{
              "unreachable-task",
              "task can never run: its 'when' condition is always false",
              t.when_span.valid() ? t.when_span : task_anchor(t),
              {}});
        }
      }

      // The task's own register/vars are visible inside it (retry loops
      // read their own register from `until`).
      std::set<std::string> own;
      for (const VarDef& d : t.defs) own.insert(d.name);

      for (const VarUse& u : t.uses) {
        pending.erase(u.name);
        if (t.has_loop && u.name == t.loop_var) continue;
        if (u.name == "item") {
          if (!t.has_loop) {
            out.push_back(Finding{
                "undefined-variable",
                "loop variable 'item' is used but the task has no "
                "loop/with_* keyword",
                u.span,
                {}});
          } else {
            out.push_back(Finding{
                "undefined-variable",
                "loop variable 'item' is used but loop_control renames the "
                "loop variable to '" + t.loop_var + "'",
                u.span,
                {}});
          }
          continue;
        }
        if (defined.count(u.name) || own.count(u.name)) continue;
        if (defined_somewhere.count(u.name)) {
          out.push_back(Finding{
              "undefined-variable",
              "variable '" + u.name +
                  "' is used before the task that defines it",
              u.span,
              {}});
        }
      }

      for (const VarDef& d : t.defs) {
        if (d.kind == DefKind::Register) {
          auto it = pending.find(d.name);
          if (it != pending.end()) {
            const IrTask& prev = ir.tasks[it->second.task];
            // Only a certain overwrite is worth flagging: both writes
            // unconditional and on the same block/rescue branch.
            if (!prev.has_when && !t.has_when &&
                ir.branch_path(prev.id) == ir.branch_path(t.id)) {
              out.push_back(Finding{
                  "register-overwritten",
                  "register '" + d.name +
                      "' is overwritten by a later task before it is read",
                  it->second.span,
                  {}});
            }
          }
          pending[d.name] = PendingRegister{t.id, d.span};
          defined.insert(d.name);
        } else if (d.kind == DefKind::SetFact) {
          pending.erase(d.name);
          defined.insert(d.name);
        }
        // TaskVars stay task-scoped: visible through `own` only.
      }

      if (!handler_phase && t.ends_play && !t.has_when &&
          t.parent == kNoTask) {
        play_ended = true;
      }
    };
    for (std::size_t id : order) walk(id, /*handler_phase=*/false);
    for (std::size_t id : handler_order) walk(id, /*handler_phase=*/true);

    // Handler resolution needs a real play with a handlers section; bare
    // task lists legitimately notify handlers that live elsewhere.
    if (ir.is_playbook && !play.handlers.empty()) {
      std::set<std::size_t> notified;
      for (std::size_t id : order) {
        for (const auto& [target, span] : ir.tasks[id].notify) {
          std::size_t handler = ir.resolve_handler(play, target);
          if (handler == kNoTask) {
            out.push_back(Finding{
                "undefined-handler",
                "notify target '" + target +
                    "' matches no handler in this play",
                span,
                {}});
          } else {
            notified.insert(handler);
          }
        }
      }
      // Handlers may chain-notify each other.
      for (std::size_t id : handler_order) {
        for (const auto& [target, span] : ir.tasks[id].notify) {
          (void)span;
          std::size_t handler = ir.resolve_handler(play, target);
          if (handler != kNoTask) notified.insert(handler);
        }
      }
      for (std::size_t id : handler_order) {
        const IrTask& h = ir.tasks[id];
        if (h.is_block) continue;
        bool reached = notified.count(id) != 0;
        for (std::size_t up = h.parent; !reached && up != kNoTask;
             up = ir.tasks[up].parent) {
          reached = notified.count(up) != 0;
        }
        if (!reached) {
          out.push_back(Finding{
              "unused-handler",
              h.name.empty()
                  ? std::string("handler is never notified")
                  : "handler '" + h.name + "' is never notified",
              task_anchor(h),
              {}});
        }
      }
    }
  }

  // A register nothing ever reads. Names starting with '_' opt out, the
  // same convention ansible-lint's var-naming rules use for throwaways.
  for (const IrTask& t : ir.tasks) {
    for (const VarDef& d : t.defs) {
      if (d.kind != DefKind::Register) continue;
      if (!d.name.empty() && d.name[0] == '_') continue;
      if (used_anywhere.count(d.name)) continue;
      out.push_back(Finding{
          "unused-register",
          "registered variable '" + d.name + "' is never used",
          d.span,
          {}});
    }
  }

  return out;
}

}  // namespace wisdom::analysis
