// Rendering of analysis results for humans (caret diagnostics in the style
// of compiler output) and machines (JSON, consumed by the serve wire format
// and the lint CLI's --json mode; SARIF 2.1.0 for code-scanning UIs).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.hpp"

namespace wisdom::analysis {

// Compiler-style text rendering against the analyzed source:
//
//   stdin:3:5: error [unknown-param]: module '...' has no parameter 'stat'
//       stat: present
//       ^~~~
//
// Diagnostics print in (line, column, rule) order. `source` must be the
// exact text the result was produced from; `file_label` prefixes each
// location ("stdin" above).
std::string format_text(std::string_view source, const AnalysisResult& result,
                        std::string_view file_label = "input");

// Machine rendering: {"ok":bool,"errors":N,"warnings":N,"diagnostics":[...]}
// with one object per diagnostic (rule, severity, message, line, column,
// begin, end, fixable). Deterministic field and diagnostic order.
std::string format_json(const AnalysisResult& result);

// Renders one diagnostic's location+message line (no source excerpt).
std::string format_one_line(const Diagnostic& diagnostic,
                            std::string_view file_label = "input");

// One analyzed artifact for SARIF rendering: the URI results point at and
// the analysis of that artifact (not owned; must outlive the call).
struct SarifArtifact {
  std::string uri;
  const AnalysisResult* result = nullptr;
};

// SARIF 2.1.0 rendering: a single run whose tool.driver.rules carries the
// full rule registry (id, summary, default level, fixable) in registry
// order, and whose results cover every diagnostic of every artifact, in
// artifact order then (line, column, rule) order. Spans become
// physicalLocation regions (startLine/startColumn, 1-based); diagnostics
// without a location omit the region. Deterministic byte-for-byte output,
// suitable for golden-file comparison in CI.
std::string format_sarif(const std::vector<SarifArtifact>& artifacts);

}  // namespace wisdom::analysis
