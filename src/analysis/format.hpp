// Rendering of analysis results for humans (caret diagnostics in the style
// of compiler output) and machines (JSON, consumed by the serve wire format
// and the lint CLI's --json mode).
#pragma once

#include <string>
#include <string_view>

#include "analysis/diagnostic.hpp"

namespace wisdom::analysis {

// Compiler-style text rendering against the analyzed source:
//
//   stdin:3:5: error [unknown-param]: module '...' has no parameter 'stat'
//       stat: present
//       ^~~~
//
// Diagnostics print in (line, column, rule) order. `source` must be the
// exact text the result was produced from; `file_label` prefixes each
// location ("stdin" above).
std::string format_text(std::string_view source, const AnalysisResult& result,
                        std::string_view file_label = "input");

// Machine rendering: {"ok":bool,"errors":N,"warnings":N,"diagnostics":[...]}
// with one object per diagnostic (rule, severity, message, line, column,
// begin, end, fixable). Deterministic field and diagnostic order.
std::string format_json(const AnalysisResult& result);

// Renders one diagnostic's location+message line (no source excerpt).
std::string format_one_line(const Diagnostic& diagnostic,
                            std::string_view file_label = "input");

}  // namespace wisdom::analysis
