#include "analysis/taint.hpp"

#include <cctype>
#include <set>
#include <string>

#include "util/strings.hpp"

namespace wisdom::analysis {

namespace util = wisdom::util;
namespace ans = wisdom::ansible;

namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

// Sink parameters whose values Ansible prints to the controller output.
bool is_log_sink_param(const ans::ModuleSpec& spec, std::string_view param) {
  if (spec.short_name == "debug") return param == "msg" || param == "var";
  if (spec.short_name == "fail") return param == "msg";
  if (spec.short_name == "assert") {
    return param == "msg" || param == "fail_msg" || param == "success_msg";
  }
  return false;
}

// A `lookup('env', 'DB_PASSWORD')`-style call with a credential-shaped
// literal argument.
bool has_secret_lookup(std::string_view text) {
  std::size_t pos = 0;
  while ((pos = text.find("lookup(", pos)) != std::string_view::npos) {
    std::size_t close = text.find(')', pos);
    std::string_view call = text.substr(
        pos, close == std::string_view::npos ? text.size() - pos
                                             : close - pos);
    std::size_t i = 0;
    while (i < call.size()) {
      char quote = call[i];
      if (quote != '\'' && quote != '"') {
        ++i;
        continue;
      }
      std::size_t end = call.find(quote, i + 1);
      if (end == std::string_view::npos) break;
      if (secret_shaped_name(call.substr(i + 1, end - i - 1))) return true;
      i = end + 1;
    }
    pos += 7;
  }
  return false;
}

TextEdit no_log_edit(const IrTask& t) {
  std::size_t indent = t.span.column > 0 ? t.span.column - 1 : 0;
  return TextEdit{t.span.end, t.span.end,
                  "\n" + std::string(indent, ' ') + "no_log: true"};
}

// The no_log fix is only mechanical when the task has no `no_log:` key yet
// (never insert a duplicate next to an explicit `no_log: false`).
std::vector<TextEdit> no_log_fix(const IrTask& t) {
  if (t.has_no_log_key || !t.span.valid()) return {};
  return {no_log_edit(t)};
}

struct TaintWalk {
  const PlaybookIr& ir;
  std::vector<Finding>& out;
  std::set<std::string> tainted;  // persists across plays, like facts

  bool tainted_name(std::string_view name) const {
    return secret_shaped_name(name) || tainted.count(std::string(name)) != 0;
  }

  void visit(const IrTask& t) {
    bool inputs_tainted = false;
    for (const VarUse& u : t.uses) {
      if (!tainted_name(u.name)) continue;
      inputs_tainted = true;
      if (u.in_name) {
        out.push_back(Finding{
            "secret-in-name",
            "task name interpolates secret-shaped variable '" + u.name +
                "'; names are always displayed, even under no_log",
            u.span,
            {}});
      }
    }

    bool has_secret_param = false;
    if (!t.is_block && t.spec) {
      check_module(t, &has_secret_param);
    }

    // Propagate: a register or fact computed from tainted inputs (or from
    // a secret parameter's module) is itself tainted.
    for (const VarDef& d : t.defs) {
      bool source = secret_shaped_name(d.name);
      if (d.kind == DefKind::Register) {
        if (source || inputs_tainted || has_secret_param)
          tainted.insert(d.name);
      } else if (d.kind == DefKind::SetFact) {
        if (source || inputs_tainted) tainted.insert(d.name);
      }
    }
  }

  void check_module(const IrTask& t, bool* has_secret_param) {
    std::vector<const yaml::Node*> maps;
    if (t.args && t.args->is_map()) maps.push_back(t.args);
    if (t.args_kw) maps.push_back(t.args_kw);
    for (const yaml::Node* args : maps) {
      for (const auto& [key, value] : args->entries()) {
        const ans::ParamSpec* param = t.spec->param(key);
        if (param && param->secret && !value.is_null()) {
          *has_secret_param = true;
          if (!t.no_log) {
            out.push_back(Finding{
                "no-log-missing",
                "module '" + t.spec->fqcn + "' parameter '" + param->name +
                    "' is a credential; set 'no_log: true' on the task",
                value.anchor_span(), no_log_fix(t)});
          }
        }
        if (!is_log_sink_param(*t.spec, key) || !value.is_str()) continue;
        // A sink value: flag tainted roots and secret lookups.
        std::vector<std::string> roots;
        if (t.spec->short_name == "debug" && key == "var" &&
            !util::contains(value.as_str(), "{{")) {
          expr_roots(value.as_str(), roots);
        } else {
          template_roots(value.as_str(), roots);
        }
        std::string offender;
        for (const std::string& root : roots) {
          if (tainted_name(root)) {
            offender = root;
            break;
          }
        }
        bool lookup_leak = offender.empty() && has_secret_lookup(value.as_str());
        if (offender.empty() && !lookup_leak) continue;
        if (t.no_log) continue;
        out.push_back(Finding{
            "secret-logging",
            offender.empty()
                ? "a lookup of a credential flows into '" + key +
                      "', which is logged; set 'no_log: true'"
                : "secret-shaped variable '" + offender + "' flows into '" +
                      key + "', which is logged; set 'no_log: true'",
            value.anchor_span().valid() ? value.anchor_span() : t.span,
            no_log_fix(t)});
      }
    }
  }
};

}  // namespace

bool secret_shaped_name(std::string_view name) {
  std::string lowered = to_lower(name);
  if (util::starts_with(lowered, "vault_")) return true;
  static constexpr std::string_view kMarkers[] = {
      "password", "passwd",  "secret",      "api_key",    "apikey",
      "token",    "credential", "access_key", "private_key",
  };
  for (std::string_view marker : kMarkers)
    if (util::contains(lowered, marker)) return true;
  return false;
}

std::vector<Finding> taint_pass(const PlaybookIr& ir) {
  std::vector<Finding> out;
  TaintWalk walk{ir, out, {}};
  for (const IrPlay& play : ir.plays) {
    for (const VarDef& d : play.vars)
      if (secret_shaped_name(d.name)) walk.tainted.insert(d.name);
    for (std::size_t id : ir.execution_order(play))
      walk.visit(ir.tasks[id]);
    IrPlay handlers;
    handlers.tasks = play.handlers;
    for (std::size_t id : ir.execution_order(handlers))
      walk.visit(ir.tasks[id]);
  }
  return out;
}

}  // namespace wisdom::analysis
