#include "analysis/diagnostic.hpp"

#include <algorithm>
#include <tuple>

namespace wisdom::analysis {

std::size_t AnalysisResult::error_count() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::Error) ++n;
  return n;
}

std::size_t AnalysisResult::warning_count() const {
  return diagnostics.size() - error_count();
}

std::size_t AnalysisResult::fixable_count() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.fixable()) ++n;
  return n;
}

std::vector<const Diagnostic*> AnalysisResult::sorted() const {
  std::vector<const Diagnostic*> out;
  out.reserve(diagnostics.size());
  for (const Diagnostic& d : diagnostics) out.push_back(&d);
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return std::tie(a->span.line, a->span.column, a->rule) <
                            std::tie(b->span.line, b->span.column, b->rule);
                   });
  return out;
}

}  // namespace wisdom::analysis
