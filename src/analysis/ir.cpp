#include "analysis/ir.hpp"

#include <algorithm>
#include <cctype>

#include "ansible/keywords.hpp"
#include "ansible/model.hpp"
#include "util/strings.hpp"

namespace wisdom::analysis {

namespace util = wisdom::util;
namespace ans = wisdom::ansible;

namespace {

bool is_expr_keyword_token(std::string_view token) {
  static constexpr std::string_view kKeywords[] = {
      "and", "or",   "not",  "in",    "is",    "if",   "else",
      "true", "false", "True", "False", "none", "None", "null",
  };
  for (std::string_view k : kKeywords)
    if (token == k) return true;
  return false;
}

}  // namespace

void expr_roots(std::string_view text, std::vector<std::string>& out) {
  std::string prev_token;
  char prev_sig = 0;  // last significant (non-space) char before the token
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      while (i < text.size() && text[i] != quote) ++i;
      prev_sig = quote;
      prev_token.clear();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_'))
        ++j;
      std::string token(text.substr(i, j - i));
      bool is_call = j < text.size() && text[j] == '(';
      if (prev_sig != '.' && prev_token != "|" && prev_token != "is" &&
          !is_call && !is_expr_keyword_token(token)) {
        if (std::find(out.begin(), out.end(), token) == out.end())
          out.push_back(token);
      }
      prev_token = std::move(token);
      prev_sig = 'a';
      i = j - 1;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) {
      prev_sig = c;
      prev_token.assign(1, c);
    }
  }
}

void template_roots(std::string_view text, std::vector<std::string>& out) {
  std::size_t pos = 0;
  while ((pos = text.find("{{", pos)) != std::string_view::npos) {
    std::size_t end = text.find("}}", pos + 2);
    if (end == std::string_view::npos) return;  // unbalanced: jinja-syntax
    expr_roots(text.substr(pos + 2, end - pos - 2), out);
    pos = end + 2;
  }
}

namespace {

bool is_expression_keyword(std::string_view key) {
  return key == "when" || key == "changed_when" || key == "failed_when" ||
         key == "until";
}

const yaml::Span& use_span(const yaml::Node& node) {
  return node.span().valid() ? node.span() : node.anchor_span();
}

void add_uses_from_string(const yaml::Node& node, bool expr_context,
                          bool in_name, IrTask& task) {
  std::vector<std::string> roots;
  if (expr_context && !util::contains(node.as_str(), "{{")) {
    expr_roots(node.as_str(), roots);
  } else {
    template_roots(node.as_str(), roots);
  }
  for (std::string& root : roots)
    task.uses.push_back(VarUse{std::move(root), use_span(node), in_name});
}

// Template-interpolation uses of every string in the subtree; values of
// expression keywords parse as bare Jinja expressions instead.
void collect_uses(const yaml::Node& node, bool expr_context, IrTask& task) {
  if (node.is_str()) {
    add_uses_from_string(node, expr_context, /*in_name=*/false, task);
    return;
  }
  if (node.is_map()) {
    for (const auto& [key, value] : node.entries())
      collect_uses(value, is_expression_keyword(key), task);
  } else if (node.is_seq()) {
    for (const yaml::Node& item : node.items())
      collect_uses(item, expr_context, task);
  }
}

// `when: false`, `when: "false"` or a condition list containing one.
bool is_constant_false(const yaml::Node& value) {
  if (value.is_bool()) return !value.as_bool();
  if (value.is_str()) {
    std::string_view text = util::trim(value.as_str());
    return text == "false" || text == "False";
  }
  if (value.is_seq()) {
    for (const yaml::Node& item : value.items())
      if (is_constant_false(item)) return true;
  }
  return false;
}

void collect_names(const yaml::Node& value, std::vector<std::string>& out) {
  if (value.is_str()) {
    out.push_back(value.as_str());
  } else if (value.is_seq()) {
    for (const yaml::Node& item : value.items())
      if (item.is_str()) out.push_back(item.as_str());
  }
}

struct Builder {
  PlaybookIr ir;
  const ans::ModuleCatalog& catalog = ans::ModuleCatalog::instance();

  // Lowers one task/block mapping (recursing into block lists) and returns
  // its arena id; kNoTask for non-mapping items.
  std::size_t add_task(const yaml::Node& node, std::size_t parent,
                       BlockSection section, bool is_handler) {
    if (!node.is_map()) return kNoTask;
    std::size_t id = ir.tasks.size();
    ir.tasks.push_back(IrTask{});
    {
      IrTask& t = ir.tasks.back();
      t.id = id;
      t.node = &node;
      t.span = node.span();
      t.parent = parent;
      t.section = section;
      t.is_handler = is_handler;
      t.is_block = ans::is_block(node);
      classify(node, t);
    }
    if (ir.tasks[id].is_block) {
      add_children(node, "block", id, BlockSection::Block, is_handler);
      add_children(node, "rescue", id, BlockSection::Rescue, is_handler);
      add_children(node, "always", id, BlockSection::Always, is_handler);
    }
    return id;
  }

  void add_children(const yaml::Node& node, std::string_view key,
                    std::size_t parent, BlockSection section,
                    bool is_handler) {
    const yaml::Node* list = node.find(key);
    if (!list || !list->is_seq()) return;
    std::vector<std::size_t> ids;
    for (const yaml::Node& item : list->items()) {
      std::size_t child = add_task(item, parent, section, is_handler);
      if (child != kNoTask) ids.push_back(child);
    }
    for (std::size_t i = 0; i + 1 < ids.size(); ++i)
      ir.edges.push_back(CfgEdge{ids[i], ids[i + 1], EdgeKind::Seq});
    EdgeKind kind = section == BlockSection::Block    ? EdgeKind::Block
                    : section == BlockSection::Rescue ? EdgeKind::Rescue
                                                      : EdgeKind::Always;
    if (!ids.empty()) ir.edges.push_back(CfgEdge{parent, ids.front(), kind});
    IrTask& block = ir.tasks[parent];
    auto& slot = section == BlockSection::Block    ? block.block
                 : section == BlockSection::Rescue ? block.rescue
                                                   : block.always;
    slot = std::move(ids);
  }

  // Fills the scalar fields, defs and uses of one task mapping. Blocks get
  // everything except a module; their child lists are handled separately.
  void classify(const yaml::Node& node, IrTask& t) {
    for (const auto& [key, value] : node.entries()) {
      if (key == "name") {
        if (value.is_str()) {
          t.name = value.as_str();
          add_uses_from_string(value, /*expr_context=*/false,
                               /*in_name=*/true, t);
        }
        continue;
      }
      if (t.is_block && ans::is_block_key(key)) continue;
      if (key == "register") {
        if (value.is_str()) {
          t.register_name = value.as_str();
          t.register_span = use_span(value);
          t.defs.push_back(
              VarDef{t.register_name, DefKind::Register, t.register_span});
        }
        continue;
      }
      if (key == "loop" || util::starts_with(key, "with_")) {
        t.has_loop = true;
        collect_uses(value, /*expr_context=*/false, t);
        continue;
      }
      if (key == "loop_control") {
        if (value.is_map()) {
          const yaml::Node* lv = value.find("loop_var");
          if (lv && lv->is_str()) t.loop_var = lv->as_str();
        }
        continue;
      }
      if (key == "vars") {
        if (value.is_map()) {
          for (const auto& [vname, vvalue] : value.entries()) {
            t.defs.push_back(
                VarDef{vname, DefKind::TaskVars, vvalue.anchor_span()});
            collect_uses(vvalue, /*expr_context=*/false, t);
          }
        }
        continue;
      }
      if (key == "no_log") {
        t.has_no_log_key = true;
        if (value.is_bool() && value.as_bool()) t.no_log = true;
        continue;
      }
      if (key == "when") {
        t.has_when = true;
        t.when_span = use_span(value);
        t.when_constant_false = is_constant_false(value);
        collect_uses(value, /*expr_context=*/true, t);
        continue;
      }
      if (is_expression_keyword(key)) {  // changed_when/failed_when/until
        collect_uses(value, /*expr_context=*/true, t);
        continue;
      }
      if (key == "notify") {
        if (value.is_str()) {
          t.notify.emplace_back(value.as_str(), use_span(value));
        } else if (value.is_seq()) {
          for (const yaml::Node& item : value.items())
            if (item.is_str())
              t.notify.emplace_back(item.as_str(), use_span(item));
        }
        continue;
      }
      if (key == "listen") {
        collect_names(value, t.listen);
        continue;
      }
      if (key == "args") {
        if (value.is_map()) t.args_kw = &value;
        collect_uses(value, /*expr_context=*/false, t);
        continue;
      }
      if (!t.is_block && !ans::find_task_keyword(key) && t.module.empty()) {
        t.module = key;
        t.args = &value;
        t.spec = catalog.resolve(key);
        collect_module(value, t);
        continue;
      }
      collect_uses(value, /*expr_context=*/false, t);
    }
  }

  void collect_module(const yaml::Node& args, IrTask& t) {
    bool is_set_fact = t.spec && t.spec->short_name == "set_fact";
    bool is_debug = t.spec && t.spec->short_name == "debug";
    if (t.spec && t.spec->short_name == "meta" && args.is_str()) {
      // end_host only ends the play for one host; other hosts continue, so
      // only end_play makes the tail provably dead.
      t.ends_play = util::trim(args.as_str()) == "end_play";
    }
    if (args.is_map()) {
      for (const auto& [key, value] : args.entries()) {
        if (is_set_fact && key != "cacheable") {
          t.defs.push_back(
              VarDef{key, DefKind::SetFact, value.anchor_span()});
        }
        if (is_debug && key == "var" && value.is_str()) {
          // `debug: var: result` takes a bare expression, not a template.
          add_uses_from_string(value, /*expr_context=*/true,
                               /*in_name=*/false, t);
          continue;
        }
        collect_uses(value, /*expr_context=*/false, t);
      }
      return;
    }
    collect_uses(args, /*expr_context=*/false, t);
  }

  void add_play(const yaml::Node* play_node, const yaml::Node* single_task,
                const std::vector<const yaml::Node*>& task_items) {
    IrPlay play;
    play.node = play_node;
    if (play_node) {
      play.span = play_node->span();
      if (const yaml::Node* vars = play_node->find("vars");
          vars && vars->is_map()) {
        for (const auto& [vname, vvalue] : vars->entries())
          play.vars.push_back(
              VarDef{vname, DefKind::PlayVars, vvalue.anchor_span()});
      }
      static constexpr std::string_view kTaskLists[] = {"pre_tasks", "tasks",
                                                        "post_tasks"};
      for (std::string_view key : kTaskLists) {
        const yaml::Node* list = play_node->find(key);
        if (!list || !list->is_seq()) continue;
        for (const yaml::Node& item : list->items()) {
          std::size_t id = add_task(item, kNoTask, BlockSection::None,
                                    /*is_handler=*/false);
          if (id != kNoTask) play.tasks.push_back(id);
        }
      }
      if (const yaml::Node* list = play_node->find("handlers");
          list && list->is_seq()) {
        for (const yaml::Node& item : list->items()) {
          std::size_t id = add_task(item, kNoTask, BlockSection::None,
                                    /*is_handler=*/true);
          if (id != kNoTask) play.handlers.push_back(id);
        }
      }
    } else if (single_task) {
      std::size_t id = add_task(*single_task, kNoTask, BlockSection::None,
                                /*is_handler=*/false);
      if (id != kNoTask) play.tasks.push_back(id);
    } else {
      for (const yaml::Node* item : task_items) {
        std::size_t id = add_task(*item, kNoTask, BlockSection::None,
                                  /*is_handler=*/false);
        if (id != kNoTask) play.tasks.push_back(id);
      }
    }
    for (std::size_t i = 0; i + 1 < play.tasks.size(); ++i)
      ir.edges.push_back(
          CfgEdge{play.tasks[i], play.tasks[i + 1], EdgeKind::Seq});
    for (std::size_t i = 0; i + 1 < play.handlers.size(); ++i)
      ir.edges.push_back(
          CfgEdge{play.handlers[i], play.handlers[i + 1], EdgeKind::Seq});
    ir.plays.push_back(std::move(play));
  }

  void add_notify_edges() {
    for (const IrPlay& play : ir.plays) {
      for (std::size_t id : ir.execution_order(play)) {
        for (const auto& [target, span] : ir.tasks[id].notify) {
          (void)span;
          std::size_t handler = ir.resolve_handler(play, target);
          if (handler != kNoTask)
            ir.edges.push_back(CfgEdge{id, handler, EdgeKind::Notify});
        }
      }
    }
  }
};

}  // namespace

std::vector<std::size_t> PlaybookIr::execution_order(
    const IrPlay& play) const {
  std::vector<std::size_t> order;
  // Pre-order so a block node's when/vars scope precedes its children.
  auto visit = [&](auto&& self, std::size_t id) -> void {
    order.push_back(id);
    const IrTask& t = tasks[id];
    for (std::size_t child : t.block) self(self, child);
    for (std::size_t child : t.rescue) self(self, child);
    for (std::size_t child : t.always) self(self, child);
  };
  for (std::size_t id : play.tasks) visit(visit, id);
  return order;
}

std::size_t PlaybookIr::resolve_handler(const IrPlay& play,
                                        std::string_view notify_name) const {
  // Handlers can be blocks; any node of the subtree may match by name or
  // listen topic.
  std::vector<std::size_t> stack(play.handlers.rbegin(),
                                 play.handlers.rend());
  while (!stack.empty()) {
    std::size_t id = stack.back();
    stack.pop_back();
    const IrTask& h = tasks[id];
    if (!h.name.empty() && h.name == notify_name) return id;
    for (const std::string& topic : h.listen)
      if (topic == notify_name) return id;
    for (std::size_t child : h.always) stack.push_back(child);
    for (std::size_t child : h.rescue) stack.push_back(child);
    for (std::size_t child : h.block) stack.push_back(child);
  }
  return kNoTask;
}

std::vector<std::pair<std::size_t, BlockSection>> PlaybookIr::branch_path(
    std::size_t id) const {
  std::vector<std::pair<std::size_t, BlockSection>> path;
  std::size_t current = id;
  while (tasks[current].parent != kNoTask) {
    path.emplace_back(tasks[current].parent, tasks[current].section);
    current = tasks[current].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

PlaybookIr build_ir(const yaml::Node& doc) {
  Builder b;
  if (doc.is_map()) {
    b.add_play(nullptr, &doc, {});
  } else if (doc.is_seq() && ans::looks_like_playbook(doc)) {
    b.ir.is_playbook = true;
    for (const yaml::Node& play : doc.items()) {
      if (play.is_map()) b.add_play(&play, nullptr, {});
    }
  } else if (doc.is_seq()) {
    std::vector<const yaml::Node*> items;
    for (const yaml::Node& item : doc.items()) items.push_back(&item);
    b.add_play(nullptr, nullptr, items);
  }
  b.add_notify_edges();
  return std::move(b.ir);
}

}  // namespace wisdom::analysis
