// Rule registry: every diagnostic the engine can produce, with its stable
// id, default severity, fixability and a one-line summary. The registry is
// what makes per-rule configuration (disable sets, severity overrides)
// checkable — configuring an unknown rule id is detectable, and the CLI /
// README rule table is generated from it.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/diagnostic.hpp"

namespace wisdom::analysis {

struct RuleInfo {
  std::string_view id;
  Severity default_severity = Severity::Error;
  bool fixable = false;
  std::string_view summary;
  // Semantic rules come from the IR passes (dataflow/typecheck/taint) and
  // judge meaning rather than schema shape: they feed `semantic_correct`
  // and are excluded from the paper's Schema Correct metric so its numbers
  // stay comparable across engine generations.
  bool semantic = false;
};

// All known rules, sorted by id.
std::span<const RuleInfo> all_rules();
// Lookup by id; nullptr when unknown.
const RuleInfo* find_rule(std::string_view id);

// Per-analysis rule configuration. Default-constructed config runs every
// rule at its default severity.
struct RuleConfig {
  // Rule ids to skip entirely.
  std::vector<std::string> disabled;
  // Rule id -> severity replacing the default.
  std::vector<std::pair<std::string, Severity>> severity_overrides;

  bool is_enabled(std::string_view id) const;
  std::optional<Severity> override_for(std::string_view id) const;
  // Ids in `disabled` / `severity_overrides` that are not in the registry
  // (typos in user configuration).
  std::vector<std::string> unknown_ids() const;
};

}  // namespace wisdom::analysis
