#include "analysis/engine.hpp"

#include <algorithm>
#include <set>

#include "analysis/dataflow.hpp"
#include "analysis/ir.hpp"
#include "analysis/taint.hpp"
#include "analysis/typecheck.hpp"
#include "ansible/catalog.hpp"
#include "ansible/freeform.hpp"
#include "ansible/jinja.hpp"
#include "ansible/model.hpp"
#include "util/strings.hpp"
#include "yaml/emit.hpp"
#include "yaml/parse.hpp"

namespace wisdom::analysis {

namespace util = wisdom::util;
namespace ans = wisdom::ansible;

namespace {

// Config-aware diagnostic sink: drops disabled rules, applies severity
// overrides, falls back to the registry's default severity.
class Emitter {
 public:
  Emitter(const RuleConfig& config, AnalysisResult& result)
      : config_(config), result_(result) {}

  void add(std::string_view rule, std::string message,
           const yaml::Span& span, std::vector<TextEdit> edits = {}) {
    if (!config_.is_enabled(rule)) return;
    Severity severity = Severity::Error;
    if (const RuleInfo* info = find_rule(rule)) {
      severity = info->default_severity;
    }
    if (auto override = config_.override_for(rule)) severity = *override;
    result_.diagnostics.push_back(Diagnostic{
        std::string(rule), std::move(message), severity, span,
        std::move(edits)});
  }

  void add_violation(const ans::Violation& v) {
    if (!config_.is_enabled(v.rule)) return;
    Severity severity = v.severity;
    if (auto override = config_.override_for(v.rule)) severity = *override;
    result_.diagnostics.push_back(
        Diagnostic{v.rule, v.message, severity, v.span, {}});
  }

 private:
  const RuleConfig& config_;
  AnalysisResult& result_;
};

// --- generic node walks ---------------------------------------------------

void check_duplicate_keys(const yaml::Node& node, Emitter& em) {
  if (node.is_map()) {
    std::set<std::string_view> seen;
    for (const auto& [key, value] : node.entries()) {
      if (!seen.insert(key).second) {
        em.add("duplicate-key", "mapping repeats key '" + key + "'",
               value.anchor_span());
      }
      check_duplicate_keys(value, em);
    }
  } else if (node.is_seq()) {
    for (const yaml::Node& item : node.items())
      check_duplicate_keys(item, em);
  }
}

// Non-canonical boolean spellings (`yes`, `On`, `TRUE`) and unquoted
// integer file modes (`mode: 644` is the octal-permission footgun).
void check_literals(const yaml::Node& node, Emitter& em) {
  if (node.is_bool() && node.span().valid()) {
    std::string raw = node.scalar_text();
    std::string canonical = node.as_bool() ? "true" : "false";
    if (raw != canonical) {
      em.add("boolean-literal",
             "boolean '" + raw + "' should be spelled '" + canonical + "'",
             node.span(),
             {TextEdit{node.span().begin, node.span().end, canonical}});
    }
    return;
  }
  if (node.is_map()) {
    for (const auto& [key, value] : node.entries()) {
      if (key == "mode" && value.is_int() && value.span().valid()) {
        std::string digits = std::to_string(value.as_int());
        std::string quoted = "'" +
                             (digits.size() == 3 ? "0" + digits : digits) +
                             "'";
        em.add("octal-mode",
               "file mode '" + digits +
                   "' loses its leading zero; use " + quoted,
               value.span(),
               {TextEdit{value.span().begin, value.span().end, quoted}});
      }
      check_literals(value, em);
    }
  } else if (node.is_seq()) {
    for (const yaml::Node& item : node.items()) check_literals(item, em);
  }
}

// Every string scalar must be a well-formed Jinja template (balanced
// {{ }} / {% %} with parseable expressions inside).
void check_templates(const yaml::Node& node, Emitter& em) {
  if (node.is_str() && node.span().valid()) {
    ans::JinjaError jerr;
    if (!ans::validate_template_string(node.as_str(), &jerr)) {
      em.add("jinja-syntax", "bad template: " + jerr.message, node.span());
    }
    return;
  }
  if (node.is_map()) {
    for (const auto& [key, value] : node.entries())
      check_templates(value, em);
  } else if (node.is_seq()) {
    for (const yaml::Node& item : node.items()) check_templates(item, em);
  }
}

// --- per-task rules -------------------------------------------------------

bool is_expression_keyword(std::string_view key) {
  return key == "when" || key == "changed_when" || key == "failed_when" ||
         key == "until";
}

void check_expression(const yaml::Node& value, Emitter& em) {
  if (value.is_seq()) {
    for (const yaml::Node& item : value.items()) check_expression(item, em);
    return;
  }
  if (!value.is_str()) return;  // booleans and null are fine
  const std::string& expr = value.as_str();
  if (util::contains(expr, "{{")) return;  // templated: template rules apply
  ans::JinjaError jerr;
  if (!ans::validate_jinja_expression(expr, &jerr)) {
    em.add("jinja-syntax", "bad expression: " + jerr.message,
           value.span().valid() ? value.span() : value.anchor_span());
  }
}

std::string render_param_scalar(const yaml::Node& value) {
  std::string text = value.scalar_text();
  if (value.is_str() && yaml::scalar_needs_quotes(text))
    return yaml::quote_scalar(text);
  return text;
}

// Per-task schema-adjacent rules that need the source text: name-missing,
// deprecated-module, the fqcn / old-style-args fix candidates, and Jinja
// validation of conditional expressions. Variable def-use rules live in
// dataflow_pass; parameter rules in typecheck_pass.
void check_ir_tasks(std::string_view source, const PlaybookIr& ir,
                    Emitter& em, std::vector<FixCandidate>& fixes) {
  for (const IrTask& t : ir.tasks) {
    if (!t.node || t.node->size() == 0) continue;

    // Conditional expressions must parse as Jinja (blocks carry them too).
    for (const auto& [key, value] : t.node->entries()) {
      if (is_expression_keyword(key)) check_expression(value, em);
    }

    if (t.is_block) continue;

    if (!t.node->has("name")) {
      em.add("name-missing", "task has no 'name:'", t.node->anchor_span());
    }

    if (t.module.empty() || !t.args) continue;
    const ans::ModuleSpec* module = t.spec;
    const yaml::Span& key_span = t.args->key_span();
    if (module && !module->deprecated_by.empty()) {
      em.add("deprecated-module",
             "module '" + t.module + "' is deprecated; use '" +
                 module->deprecated_by + "'",
             t.args->anchor_span());
    }
    if (module && key_span.valid() &&
        t.module.find('.') == std::string::npos) {
      fixes.push_back(FixCandidate{
          "fqcn", key_span.begin,
          {TextEdit{key_span.begin, key_span.end, module->fqcn}}});
    }
    if (module && !module->free_form && t.args->is_str() &&
        ans::looks_like_kv_args(t.args->as_str()) &&
        t.args->span().valid() && key_span.valid()) {
      ans::FreeFormSplit split = ans::parse_free_form(t.args->as_str());
      const yaml::Span& value_span = t.args->span();
      // Eat the spaces between ':' and the k=v string so the expansion
      // becomes "module:\n  key: value" with no trailing blanks.
      std::size_t begin = value_span.begin;
      while (begin > 0 && begin - 1 < source.size() &&
             source[begin - 1] == ' ')
        --begin;
      std::string indent(key_span.column - 1 + 2, ' ');
      std::string replacement;
      for (const auto& [pkey, pvalue] : split.params.entries()) {
        replacement += "\n" + indent + pkey + ": " +
                       render_param_scalar(pvalue);
      }
      if (!replacement.empty()) {
        fixes.push_back(FixCandidate{
            "old-style-args", value_span.begin,
            {TextEdit{begin, value_span.end, std::move(replacement)}}});
      }
    }
  }
}

}  // namespace

AnalysisResult analyze(std::string_view text, const RuleConfig& config) {
  AnalysisResult result;
  Emitter em(config, result);

  if (util::trim(text).empty()) {
    em.add("empty-document", "document is empty", yaml::Span{0, 0, 1, 1});
    return result;
  }
  yaml::ParseError err;
  auto doc = yaml::parse_document(text, &err);
  if (!doc) {
    yaml::Span span;
    span.line = err.line;
    span.column = 1;
    em.add("yaml-syntax", err.to_string(), span);
    return result;
  }
  result.parsed = true;
  if (doc->is_null()) {
    em.add("empty-document", "document is empty",
           doc->span().valid() ? doc->span() : yaml::Span{0, 0, 1, 1});
    return result;
  }

  // The strict schema linter supplies the base rules, spans included.
  ans::LintResult base;
  if (doc->is_map()) {
    base = ans::lint_task(*doc);
  } else if (ans::looks_like_playbook(*doc)) {
    base = ans::lint_playbook(*doc);
  } else {
    base = ans::lint_task_list(*doc);
  }
  for (const ans::Violation& v : base.violations) em.add_violation(v);

  // Engine-native rules and fix candidates.
  std::vector<FixCandidate> fixes;
  check_duplicate_keys(*doc, em);
  check_literals(*doc, em);
  check_templates(*doc, em);

  // The semantic layer: lower to IR once, run every pass over it.
  PlaybookIr ir = build_ir(*doc);
  check_ir_tasks(text, ir, em, fixes);
  for (Finding& f : dataflow_pass(ir)) {
    em.add(f.rule, std::move(f.message), f.span, std::move(f.edits));
  }
  TypecheckOutput typecheck = typecheck_pass(ir);
  for (Finding& f : typecheck.findings) {
    em.add(f.rule, std::move(f.message), f.span, std::move(f.edits));
  }
  for (FixCandidate& f : typecheck.fixes) fixes.push_back(std::move(f));
  for (Finding& f : taint_pass(ir)) {
    em.add(f.rule, std::move(f.message), f.span, std::move(f.edits));
  }

  // Attach computed edits to the diagnostics they repair.
  for (Diagnostic& d : result.diagnostics) {
    if (!d.edits.empty() || !d.span.valid()) continue;
    for (FixCandidate& candidate : fixes) {
      if (candidate.rule == d.rule && candidate.anchor == d.span.begin) {
        d.edits = candidate.edits;
        break;
      }
    }
  }
  return result;
}

FixOutcome apply_fixes(std::string_view text, const AnalysisResult& result) {
  FixOutcome outcome;

  // One group per fixable diagnostic, processed in byte order so overlap
  // resolution is deterministic regardless of diagnostic order.
  std::vector<const Diagnostic*> groups;
  for (const Diagnostic& d : result.diagnostics)
    if (d.fixable()) groups.push_back(&d);
  std::stable_sort(groups.begin(), groups.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return a->edits.front().begin < b->edits.front().begin;
                   });

  std::vector<const TextEdit*> accepted;
  auto overlaps = [&](const TextEdit& e) {
    for (const TextEdit* a : accepted) {
      if (e.begin < a->end && a->begin < e.end) return true;
      // Two identical zero-length insertions collide too.
      if (e.begin == e.end && a->begin == a->end && e.begin == a->begin)
        return true;
    }
    return false;
  };
  for (const Diagnostic* d : groups) {
    bool conflict = false;
    for (const TextEdit& e : d->edits) {
      if (e.end > text.size() || e.begin > e.end || overlaps(e)) {
        conflict = true;
        break;
      }
    }
    if (conflict) {
      ++outcome.dropped;
      continue;
    }
    for (const TextEdit& e : d->edits) accepted.push_back(&e);
    ++outcome.applied;
  }

  std::sort(accepted.begin(), accepted.end(),
            [](const TextEdit* a, const TextEdit* b) {
              return a->begin > b->begin;
            });
  outcome.text.assign(text);
  for (const TextEdit* e : accepted) {
    outcome.text.replace(e->begin, e->end - e->begin, e->replacement);
  }
  return outcome;
}

RepairResult repair(std::string_view text, const RuleConfig& config,
                    std::size_t max_iterations) {
  RepairResult out;
  out.text.assign(text);
  AnalysisResult current = analyze(out.text, config);
  for (std::size_t i = 0; i < max_iterations; ++i) {
    if (current.fixable_count() == 0) break;
    FixOutcome fixed = apply_fixes(out.text, current);
    if (!fixed.changed() || fixed.text == out.text) break;
    out.text = std::move(fixed.text);
    out.changed = true;
    ++out.iterations;
    current = analyze(out.text, config);
  }
  out.converged = current.fixable_count() == 0;
  out.final_result = std::move(current);
  return out;
}

}  // namespace wisdom::analysis
