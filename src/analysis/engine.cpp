#include "analysis/engine.hpp"

#include <algorithm>
#include <cctype>
#include <set>

#include "ansible/catalog.hpp"
#include "ansible/freeform.hpp"
#include "ansible/jinja.hpp"
#include "ansible/keywords.hpp"
#include "ansible/model.hpp"
#include "util/strings.hpp"
#include "yaml/emit.hpp"
#include "yaml/parse.hpp"

namespace wisdom::analysis {

namespace util = wisdom::util;
namespace ans = wisdom::ansible;

namespace {

// A fix computed during traversal, matched to a diagnostic afterwards by
// (rule, span.begin) — the base linter produces the diagnostic, the
// traversal knows the edit.
struct FixCandidate {
  std::string_view rule;
  std::size_t anchor = 0;  // span.begin of the diagnostic it repairs
  std::vector<TextEdit> edits;
};

// Config-aware diagnostic sink: drops disabled rules, applies severity
// overrides, falls back to the registry's default severity.
class Emitter {
 public:
  Emitter(const RuleConfig& config, AnalysisResult& result)
      : config_(config), result_(result) {}

  void add(std::string_view rule, std::string message,
           const yaml::Span& span, std::vector<TextEdit> edits = {}) {
    if (!config_.is_enabled(rule)) return;
    Severity severity = Severity::Error;
    if (const RuleInfo* info = find_rule(rule)) {
      severity = info->default_severity;
    }
    if (auto override = config_.override_for(rule)) severity = *override;
    result_.diagnostics.push_back(Diagnostic{
        std::string(rule), std::move(message), severity, span,
        std::move(edits)});
  }

  void add_violation(const ans::Violation& v) {
    if (!config_.is_enabled(v.rule)) return;
    Severity severity = v.severity;
    if (auto override = config_.override_for(v.rule)) severity = *override;
    result_.diagnostics.push_back(
        Diagnostic{v.rule, v.message, severity, v.span, {}});
  }

 private:
  const RuleConfig& config_;
  AnalysisResult& result_;
};

// --- variable reference extraction ---------------------------------------

bool is_expr_keyword_token(std::string_view token) {
  static constexpr std::string_view kKeywords[] = {
      "and", "or",   "not",  "in",    "is",    "if",   "else",
      "true", "false", "True", "False", "none", "None", "null",
  };
  for (std::string_view k : kKeywords)
    if (token == k) return true;
  return false;
}

// Root identifiers a Jinja expression dereferences: `result.rc != 0` yields
// {result}; filters (`x | default(1)`), tests (`x is defined`), attribute
// accesses and calls are not roots. Quoted strings are skipped.
void expr_roots(std::string_view text, std::vector<std::string>& out) {
  std::string prev_token;
  char prev_sig = 0;  // last significant (non-space) char before the token
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      while (i < text.size() && text[i] != quote) ++i;
      prev_sig = quote;
      prev_token.clear();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_'))
        ++j;
      std::string token(text.substr(i, j - i));
      bool is_call = j < text.size() && text[j] == '(';
      if (prev_sig != '.' && prev_token != "|" && prev_token != "is" &&
          !is_call && !is_expr_keyword_token(token)) {
        if (std::find(out.begin(), out.end(), token) == out.end())
          out.push_back(token);
      }
      prev_token = std::move(token);
      prev_sig = 'a';
      i = j - 1;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) {
      prev_sig = c;
      prev_token.assign(1, c);
    }
  }
}

// Roots referenced by the {{ ... }} interpolations of a template string.
void template_roots(std::string_view text, std::vector<std::string>& out) {
  std::size_t pos = 0;
  while ((pos = text.find("{{", pos)) != std::string_view::npos) {
    std::size_t end = text.find("}}", pos + 2);
    if (end == std::string_view::npos) return;  // unbalanced: jinja-syntax
    expr_roots(text.substr(pos + 2, end - pos - 2), out);
    pos = end + 2;
  }
}

// --- generic node walks ---------------------------------------------------

void check_duplicate_keys(const yaml::Node& node, Emitter& em) {
  if (node.is_map()) {
    std::set<std::string_view> seen;
    for (const auto& [key, value] : node.entries()) {
      if (!seen.insert(key).second) {
        em.add("duplicate-key", "mapping repeats key '" + key + "'",
               value.anchor_span());
      }
      check_duplicate_keys(value, em);
    }
  } else if (node.is_seq()) {
    for (const yaml::Node& item : node.items())
      check_duplicate_keys(item, em);
  }
}

// Non-canonical boolean spellings (`yes`, `On`, `TRUE`) and unquoted
// integer file modes (`mode: 644` is the octal-permission footgun).
void check_literals(const yaml::Node& node, Emitter& em) {
  if (node.is_bool() && node.span().valid()) {
    std::string raw = node.scalar_text();
    std::string canonical = node.as_bool() ? "true" : "false";
    if (raw != canonical) {
      em.add("boolean-literal",
             "boolean '" + raw + "' should be spelled '" + canonical + "'",
             node.span(),
             {TextEdit{node.span().begin, node.span().end, canonical}});
    }
    return;
  }
  if (node.is_map()) {
    for (const auto& [key, value] : node.entries()) {
      if (key == "mode" && value.is_int() && value.span().valid()) {
        std::string digits = std::to_string(value.as_int());
        std::string quoted = "'" +
                             (digits.size() == 3 ? "0" + digits : digits) +
                             "'";
        em.add("octal-mode",
               "file mode '" + digits +
                   "' loses its leading zero; use " + quoted,
               value.span(),
               {TextEdit{value.span().begin, value.span().end, quoted}});
      }
      check_literals(value, em);
    }
  } else if (node.is_seq()) {
    for (const yaml::Node& item : node.items()) check_literals(item, em);
  }
}

// Every string scalar must be a well-formed Jinja template (balanced
// {{ }} / {% %} with parseable expressions inside).
void check_templates(const yaml::Node& node, Emitter& em) {
  if (node.is_str() && node.span().valid()) {
    ans::JinjaError jerr;
    if (!ans::validate_template_string(node.as_str(), &jerr)) {
      em.add("jinja-syntax", "bad template: " + jerr.message, node.span());
    }
    return;
  }
  if (node.is_map()) {
    for (const auto& [key, value] : node.entries())
      check_templates(value, em);
  } else if (node.is_seq()) {
    for (const yaml::Node& item : node.items()) check_templates(item, em);
  }
}

// --- task enumeration -----------------------------------------------------

void collect_tasks(const yaml::Node& node,
                   std::vector<const yaml::Node*>& out) {
  if (!node.is_map()) return;
  if (ans::is_block(node)) {
    for (const auto& [key, value] : node.entries()) {
      if (ans::is_block_key(key) && value.is_seq()) {
        for (const yaml::Node& child : value.items())
          collect_tasks(child, out);
      }
    }
    return;
  }
  out.push_back(&node);
}

// Document-ordered module tasks of a task / task list / playbook document.
std::vector<const yaml::Node*> document_tasks(const yaml::Node& doc) {
  std::vector<const yaml::Node*> tasks;
  if (doc.is_map()) {
    collect_tasks(doc, tasks);
    return tasks;
  }
  if (!doc.is_seq()) return tasks;
  if (ans::looks_like_playbook(doc)) {
    static constexpr std::string_view kTaskLists[] = {
        "pre_tasks", "tasks", "post_tasks", "handlers"};
    for (const yaml::Node& play : doc.items()) {
      if (!play.is_map()) continue;
      for (std::string_view key : kTaskLists) {
        const yaml::Node* list = play.find(key);
        if (list && list->is_seq()) {
          for (const yaml::Node& item : list->items())
            collect_tasks(item, tasks);
        }
      }
    }
    return tasks;
  }
  for (const yaml::Node& item : doc.items()) collect_tasks(item, tasks);
  return tasks;
}

// --- per-task rules -------------------------------------------------------

struct TaskView {
  const yaml::Node* node = nullptr;
  std::string module_key;          // as written; empty when none found
  const yaml::Node* args = nullptr;
  bool has_loop = false;
  std::string register_name;
};

TaskView classify_task(const yaml::Node& task) {
  TaskView view;
  view.node = &task;
  for (const auto& [key, value] : task.entries()) {
    if (key == "name") continue;
    if (key == "loop" || util::starts_with(key, "with_")) {
      view.has_loop = true;
      continue;
    }
    if (key == "register" && value.is_str()) {
      view.register_name = value.as_str();
      continue;
    }
    if (ans::find_task_keyword(key)) continue;
    if (view.module_key.empty()) {
      view.module_key = key;
      view.args = &value;
    }
  }
  return view;
}

bool is_expression_keyword(std::string_view key) {
  return key == "when" || key == "changed_when" || key == "failed_when" ||
         key == "until";
}

void check_expression(const yaml::Node& value, Emitter& em) {
  if (value.is_seq()) {
    for (const yaml::Node& item : value.items()) check_expression(item, em);
    return;
  }
  if (!value.is_str()) return;  // booleans and null are fine
  const std::string& expr = value.as_str();
  if (util::contains(expr, "{{")) return;  // templated: template rules apply
  ans::JinjaError jerr;
  if (!ans::validate_jinja_expression(expr, &jerr)) {
    em.add("jinja-syntax", "bad expression: " + jerr.message,
           value.span().valid() ? value.span() : value.anchor_span());
  }
}

// Collects (root, span) variable references of the task subtree: template
// interpolations of every string plus bare conditional expressions.
void collect_variable_uses(
    const yaml::Node& node, bool in_expression,
    std::vector<std::pair<std::string, yaml::Span>>& uses) {
  if (node.is_str()) {
    std::vector<std::string> roots;
    if (in_expression && !util::contains(node.as_str(), "{{")) {
      expr_roots(node.as_str(), roots);
    } else {
      template_roots(node.as_str(), roots);
    }
    for (std::string& root : roots)
      uses.emplace_back(std::move(root), node.span().valid()
                                             ? node.span()
                                             : node.anchor_span());
    return;
  }
  if (node.is_map()) {
    for (const auto& [key, value] : node.entries())
      collect_variable_uses(value, is_expression_keyword(key), uses);
  } else if (node.is_seq()) {
    for (const yaml::Node& item : node.items())
      collect_variable_uses(item, in_expression, uses);
  }
}

std::string render_param_scalar(const yaml::Node& value) {
  std::string text = value.scalar_text();
  if (value.is_str() && yaml::scalar_needs_quotes(text))
    return yaml::quote_scalar(text);
  return text;
}

void analyze_tasks(std::string_view source, const yaml::Node& doc,
                   Emitter& em, std::vector<FixCandidate>& fixes) {
  const ans::ModuleCatalog& catalog = ans::ModuleCatalog::instance();
  std::vector<const yaml::Node*> tasks = document_tasks(doc);

  // Names some task registers; references to these are checkable.
  std::set<std::string> all_registered;
  for (const yaml::Node* task : tasks) {
    TaskView view = classify_task(*task);
    if (!view.register_name.empty()) all_registered.insert(view.register_name);
  }

  std::set<std::string> registered;
  for (const yaml::Node* task : tasks) {
    if (!task->is_map() || task->size() == 0) continue;
    TaskView view = classify_task(*task);

    if (!task->has("name")) {
      em.add("name-missing", "task has no 'name:'", task->anchor_span());
    }

    if (!view.module_key.empty() && view.args) {
      const ans::ModuleSpec* module = catalog.resolve(view.module_key);
      const yaml::Span& key_span = view.args->key_span();
      if (module && !module->deprecated_by.empty()) {
        em.add("deprecated-module",
               "module '" + view.module_key + "' is deprecated; use '" +
                   module->deprecated_by + "'",
               view.args->anchor_span());
      }
      if (module && key_span.valid() &&
          view.module_key.find('.') == std::string::npos) {
        fixes.push_back(FixCandidate{
            "fqcn", key_span.begin,
            {TextEdit{key_span.begin, key_span.end, module->fqcn}}});
      }
      if (module && !module->free_form && view.args->is_str() &&
          ans::looks_like_kv_args(view.args->as_str()) &&
          view.args->span().valid() && key_span.valid()) {
        ans::FreeFormSplit split = ans::parse_free_form(view.args->as_str());
        const yaml::Span& value_span = view.args->span();
        // Eat the spaces between ':' and the k=v string so the expansion
        // becomes "module:\n  key: value" with no trailing blanks.
        std::size_t begin = value_span.begin;
        while (begin > 0 && begin - 1 < source.size() &&
               source[begin - 1] == ' ')
          --begin;
        std::string indent(key_span.column - 1 + 2, ' ');
        std::string replacement;
        for (const auto& [pkey, pvalue] : split.params.entries()) {
          replacement += "\n" + indent + pkey + ": " +
                         render_param_scalar(pvalue);
        }
        if (!replacement.empty()) {
          fixes.push_back(FixCandidate{
              "old-style-args", value_span.begin,
              {TextEdit{begin, value_span.end, std::move(replacement)}}});
        }
      }
    }

    // Conditional expressions must parse as Jinja.
    for (const auto& [key, value] : task->entries()) {
      if (is_expression_keyword(key)) check_expression(value, em);
    }

    // Loop / register variable references.
    if (!view.register_name.empty()) registered.insert(view.register_name);
    std::vector<std::pair<std::string, yaml::Span>> uses;
    collect_variable_uses(*task, false, uses);
    for (const auto& [root, span] : uses) {
      if (root == "item") {
        if (!view.has_loop) {
          em.add("undefined-variable",
                 "loop variable 'item' is used but the task has no "
                 "loop/with_* keyword",
                 span);
        }
        continue;
      }
      if (all_registered.count(root) && !registered.count(root)) {
        em.add("undefined-variable",
               "variable '" + root +
                   "' is used before the task that registers it",
               span);
      }
    }
  }
}

}  // namespace

AnalysisResult analyze(std::string_view text, const RuleConfig& config) {
  AnalysisResult result;
  Emitter em(config, result);

  if (util::trim(text).empty()) {
    em.add("empty-document", "document is empty", yaml::Span{0, 0, 1, 1});
    return result;
  }
  yaml::ParseError err;
  auto doc = yaml::parse_document(text, &err);
  if (!doc) {
    yaml::Span span;
    span.line = err.line;
    span.column = 1;
    em.add("yaml-syntax", err.to_string(), span);
    return result;
  }
  result.parsed = true;
  if (doc->is_null()) {
    em.add("empty-document", "document is empty",
           doc->span().valid() ? doc->span() : yaml::Span{0, 0, 1, 1});
    return result;
  }

  // The strict schema linter supplies the base rules, spans included.
  ans::LintResult base;
  if (doc->is_map()) {
    base = ans::lint_task(*doc);
  } else if (ans::looks_like_playbook(*doc)) {
    base = ans::lint_playbook(*doc);
  } else {
    base = ans::lint_task_list(*doc);
  }
  for (const ans::Violation& v : base.violations) em.add_violation(v);

  // Engine-native rules and fix candidates.
  std::vector<FixCandidate> fixes;
  check_duplicate_keys(*doc, em);
  check_literals(*doc, em);
  check_templates(*doc, em);
  analyze_tasks(text, *doc, em, fixes);

  // Attach computed edits to the diagnostics they repair.
  for (Diagnostic& d : result.diagnostics) {
    if (!d.edits.empty() || !d.span.valid()) continue;
    for (FixCandidate& candidate : fixes) {
      if (candidate.rule == d.rule && candidate.anchor == d.span.begin) {
        d.edits = candidate.edits;
        break;
      }
    }
  }
  return result;
}

FixOutcome apply_fixes(std::string_view text, const AnalysisResult& result) {
  FixOutcome outcome;

  // One group per fixable diagnostic, processed in byte order so overlap
  // resolution is deterministic regardless of diagnostic order.
  std::vector<const Diagnostic*> groups;
  for (const Diagnostic& d : result.diagnostics)
    if (d.fixable()) groups.push_back(&d);
  std::stable_sort(groups.begin(), groups.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return a->edits.front().begin < b->edits.front().begin;
                   });

  std::vector<const TextEdit*> accepted;
  auto overlaps = [&](const TextEdit& e) {
    for (const TextEdit* a : accepted) {
      if (e.begin < a->end && a->begin < e.end) return true;
      // Two identical zero-length insertions collide too.
      if (e.begin == e.end && a->begin == a->end && e.begin == a->begin)
        return true;
    }
    return false;
  };
  for (const Diagnostic* d : groups) {
    bool conflict = false;
    for (const TextEdit& e : d->edits) {
      if (e.end > text.size() || e.begin > e.end || overlaps(e)) {
        conflict = true;
        break;
      }
    }
    if (conflict) {
      ++outcome.dropped;
      continue;
    }
    for (const TextEdit& e : d->edits) accepted.push_back(&e);
    ++outcome.applied;
  }

  std::sort(accepted.begin(), accepted.end(),
            [](const TextEdit* a, const TextEdit* b) {
              return a->begin > b->begin;
            });
  outcome.text.assign(text);
  for (const TextEdit* e : accepted) {
    outcome.text.replace(e->begin, e->end - e->begin, e->replacement);
  }
  return outcome;
}

RepairResult repair(std::string_view text, const RuleConfig& config,
                    std::size_t max_iterations) {
  RepairResult out;
  out.text.assign(text);
  AnalysisResult current = analyze(out.text, config);
  for (std::size_t i = 0; i < max_iterations; ++i) {
    if (current.fixable_count() == 0) break;
    FixOutcome fixed = apply_fixes(out.text, current);
    if (!fixed.changed() || fixed.text == out.text) break;
    out.text = std::move(fixed.text);
    out.changed = true;
    ++out.iterations;
    current = analyze(out.text, config);
  }
  out.converged = current.fixable_count() == 0;
  out.final_result = std::move(current);
  return out;
}

}  // namespace wisdom::analysis
