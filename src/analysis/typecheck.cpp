#include "analysis/typecheck.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "util/strings.hpp"
#include "yaml/emit.hpp"

namespace wisdom::analysis {

namespace util = wisdom::util;
namespace ans = wisdom::ansible;

namespace {

bool is_templated(const yaml::Node& node) {
  return node.is_str() && util::contains(node.as_str(), "{{");
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      std::size_t next_diag = row[j];
      std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = next_diag;
    }
  }
  return row[b.size()];
}

// Short names tolerate one typo, longer ones two; anything looser starts
// renaming parameters the author plausibly meant as written.
std::size_t typo_budget(std::string_view written) {
  return written.size() >= 6 ? 2 : 1;
}

// The unique candidate within the typo budget of `written`; "" when none
// or when the minimum is ambiguous.
std::string closest_unique(std::string_view written,
                           const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_distance = typo_budget(written) + 1;
  bool ambiguous = false;
  for (const std::string& candidate : candidates) {
    std::size_t d = edit_distance(written, candidate);
    if (d < best_distance) {
      best = candidate;
      best_distance = d;
      ambiguous = false;
    } else if (d == best_distance) {
      ambiguous = true;
    }
  }
  return ambiguous ? std::string() : best;
}

bool is_bool_spelling(std::string_view lowered, bool* value) {
  static constexpr std::string_view kTrue[] = {"true", "yes", "on", "y"};
  static constexpr std::string_view kFalse[] = {"false", "no", "off", "n"};
  for (std::string_view t : kTrue) {
    if (lowered == t) {
      *value = true;
      return true;
    }
  }
  for (std::string_view f : kFalse) {
    if (lowered == f) {
      *value = false;
      return true;
    }
  }
  return false;
}

void add_param_value_fix(const ans::ParamSpec& param, const yaml::Node& value,
                         std::vector<FixCandidate>& fixes) {
  // The base linter anchors param-value at the key span and only fires on
  // non-templated values; mirror both so the candidate matches.
  if (is_templated(value) || !value.is_str() || !value.span().valid())
    return;
  std::size_t anchor = value.anchor_span().begin;
  if (param.type == ans::ParamType::Bool) {
    bool truth = false;
    if (!is_bool_spelling(to_lower(value.as_str()), &truth)) return;
    fixes.push_back(FixCandidate{
        "param-value", anchor,
        {TextEdit{value.span().begin, value.span().end,
                  truth ? "true" : "false"}}});
    return;
  }
  if (param.type == ans::ParamType::Choice) {
    std::string lowered = to_lower(value.as_str());
    std::string replacement;
    for (const std::string& choice : param.choices) {
      if (to_lower(choice) == lowered) {
        replacement = choice;  // case mismatch only
        break;
      }
    }
    if (replacement.empty())
      replacement = closest_unique(value.as_str(), param.choices);
    if (replacement.empty()) return;
    if (yaml::scalar_needs_quotes(replacement))
      replacement = yaml::quote_scalar(replacement);
    fixes.push_back(FixCandidate{
        "param-value", anchor,
        {TextEdit{value.span().begin, value.span().end,
                  std::move(replacement)}}});
  }
}

void check_task(const IrTask& t, TypecheckOutput& out) {
  const ans::ModuleSpec* spec = t.spec;
  if (!spec) return;

  // Merge the module mapping with the `args:` keyword, as Ansible does.
  std::vector<const yaml::Node*> maps;
  if (t.args && t.args->is_map()) maps.push_back(t.args);
  if (t.args_kw) maps.push_back(t.args_kw);
  if (maps.empty()) return;

  std::vector<std::string> param_names;
  for (const ans::ParamSpec& param : spec->params)
    param_names.push_back(param.name);

  for (const yaml::Node* args : maps) {
    for (const auto& [key, value] : args->entries()) {
      const ans::ParamSpec* param = spec->param(key);
      if (param) {
        add_param_value_fix(*param, value, out.fixes);
        continue;
      }
      if (spec->arbitrary_params) continue;
      if (spec->free_form && (key == "cmd" || key == "_raw_params")) continue;
      // Rename a typo'd key to the unique close parameter — unless that
      // parameter is already set (the rename would create a duplicate).
      std::string target = closest_unique(key, param_names);
      if (target.empty() || args->has(target)) continue;
      const yaml::Span& key_span = value.key_span();
      if (!key_span.valid()) continue;
      out.fixes.push_back(FixCandidate{
          "unknown-param", value.anchor_span().begin,
          {TextEdit{key_span.begin, key_span.end, std::move(target)}}});
    }
  }

  // Presence (and the span of the latest-present name) per parameter, for
  // the cross-parameter groups.
  auto present = [&](std::string_view name) -> const yaml::Node* {
    for (const yaml::Node* args : maps) {
      if (const yaml::Node* value = args->find(name)) return value;
    }
    return nullptr;
  };

  for (const auto& group : spec->mutually_exclusive) {
    std::vector<std::pair<std::string_view, const yaml::Node*>> set;
    for (const std::string& name : group) {
      if (const yaml::Node* value = present(name)) set.emplace_back(name, value);
    }
    if (set.size() < 2) continue;
    std::string listed;
    for (const auto& [name, value] : set) {
      (void)value;
      if (!listed.empty()) listed += "' and '";
      listed += name;
    }
    out.findings.push_back(Finding{
        "param-mutually-exclusive",
        "module '" + spec->fqcn + "' parameters '" + listed +
            "' are mutually exclusive",
        set.back().second->anchor_span(),
        {}});
  }

  for (const auto& group : spec->required_together) {
    std::vector<std::string_view> missing;
    const yaml::Node* anchor = nullptr;
    for (const std::string& name : group) {
      if (const yaml::Node* value = present(name)) {
        if (!anchor) anchor = value;
      } else {
        missing.push_back(name);
      }
    }
    if (!anchor || missing.empty()) continue;
    std::string listed;
    for (std::string_view name : missing) {
      if (!listed.empty()) listed += "', '";
      listed += name;
    }
    out.findings.push_back(Finding{
        "param-required-together",
        "module '" + spec->fqcn + "' parameter group requires '" + listed +
            "' to be set as well",
        anchor->anchor_span(),
        {}});
  }
}

}  // namespace

TypecheckOutput typecheck_pass(const PlaybookIr& ir) {
  TypecheckOutput out;
  for (const IrTask& t : ir.tasks) {
    if (t.is_block || t.module.empty()) continue;
    check_task(t, out);
  }
  return out;
}

}  // namespace wisdom::analysis
