// The diagnostics engine: analyze -> (optionally) fix -> re-analyze.
//
// `analyze` wraps the strict schema linter (every violation becomes a
// located diagnostic) and adds the deeper rules the schema alone cannot
// express: deprecated modules, duplicate keys, Jinja syntax, undefined
// loop/register variables, literal normalization, missing task names. For
// the mechanically repairable rules it also computes span-anchored edits.
//
// `apply_fixes` applies every fixable diagnostic's edits in one pass (edits
// sorted by position, overlapping edits dropped deterministically), and
// `repair` iterates analyze+apply until no fixable diagnostic remains, so
// callers can prove convergence rather than assume it.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "analysis/diagnostic.hpp"
#include "analysis/rules.hpp"

namespace wisdom::analysis {

// Lints `text` (playbook / task list / single task, dispatched on shape)
// and returns located diagnostics with fix edits attached.
AnalysisResult analyze(std::string_view text, const RuleConfig& config = {});

struct FixOutcome {
  std::string text;          // input with all applicable edits applied
  std::size_t applied = 0;   // diagnostics whose edits were applied
  std::size_t dropped = 0;   // fixable diagnostics dropped due to overlap
  bool changed() const { return applied > 0; }
};

// Applies the edits of every fixable diagnostic in `result` to `text`.
// Edits are applied back-to-front so positions stay valid; when two
// diagnostics' edits overlap, the later one (by byte position) is dropped.
FixOutcome apply_fixes(std::string_view text, const AnalysisResult& result);

struct RepairResult {
  std::string text;            // repaired document (== input when no fixes)
  std::size_t iterations = 0;  // analyze+fix passes that changed the text
  bool changed = false;
  // True when the final text has no fixable diagnostics left (the fix
  // loop reached a fixed point rather than the iteration cap).
  bool converged = false;
  AnalysisResult final_result;  // analysis of `text`
};

// Iterates analyze + apply_fixes until convergence or `max_iterations`.
RepairResult repair(std::string_view text, const RuleConfig& config = {},
                    std::size_t max_iterations = 4);

}  // namespace wisdom::analysis
