// Data-pipeline tool: builds the synthetic corpora for all four Table I
// sources, deduplicates them, lints them against the strict Ansible schema,
// extracts fine-tuning samples, and (optionally) exports everything to a
// directory for inspection.
//
// Usage:
//   ./build/examples/dataset_tool             # statistics only
//   ./build/examples/dataset_tool /tmp/out    # also write files
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include "ansible/linter.hpp"
#include "data/dataset.hpp"
#include "data/dedup.hpp"
#include "data/sources.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace wisdom;

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "";
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
  }

  const std::uint64_t seed = 2023;
  util::Table table({"Source", "Type", "Files", "Dedup kept", "Bytes",
                     "Schema-correct files"});
  for (const auto& spec : data::table1_sources()) {
    auto files = data::build_source(spec, seed);
    data::DedupStats stats;
    files = data::dedup_files(std::move(files), &stats);
    std::size_t bytes = 0;
    std::size_t clean = 0;
    for (const auto& file : files) {
      bytes += file.text.size();
      if (!file.ansible || ansible::lint_text(file.text).ok()) ++clean;
    }
    table.add_row({spec.label, spec.yaml_type, std::to_string(stats.input),
                   std::to_string(stats.kept), std::to_string(bytes),
                   std::to_string(clean)});

    if (!out_dir.empty()) {
      std::string sub = out_dir + "/" + util::to_lower(spec.label) + "_" +
                        util::to_lower(spec.yaml_type);
      sub = util::replace_all(sub, " + ", "_");
      std::filesystem::create_directories(sub);
      for (std::size_t i = 0; i < files.size(); ++i) {
        util::write_file(sub + "/file_" + std::to_string(i) + ".yml",
                         files[i].text);
      }
    }
  }
  std::printf("=== corpus statistics ===\n%s\n", table.to_string().c_str());

  // Fine-tuning extraction.
  auto galaxy = data::galaxy_corpus(seed ^ 0xF2);
  auto files = data::dedup_files(std::move(galaxy.files));
  auto samples = data::extract_corpus_samples(files);
  std::map<data::GenerationType, int> counts;
  std::map<data::GenerationType, std::size_t> context_bytes;
  for (const auto& s : samples) {
    counts[s.type]++;
    context_bytes[s.type] += s.context.size();
  }
  util::Table types({"Generation Type", "Samples", "Avg context bytes"});
  for (const auto& [type, count] : counts) {
    types.add_row({data::generation_type_label(type), std::to_string(count),
                   std::to_string(context_bytes[type] /
                                  static_cast<std::size_t>(count))});
  }
  std::printf("=== fine-tuning samples ===\n%s", types.to_string().c_str());

  if (!out_dir.empty()) {
    std::string sample_dir = out_dir + "/ft_samples";
    std::filesystem::create_directories(sample_dir);
    for (std::size_t i = 0; i < std::min<std::size_t>(samples.size(), 200);
         ++i) {
      const auto& s = samples[i];
      std::string text = "# type: ";
      text += data::generation_type_label(s.type);
      text += "\n# --- model input ---\n" + s.model_input() +
              "# --- gold completion ---\n" + s.target_body;
      util::write_file(sample_dir + "/sample_" + std::to_string(i) + ".txt",
                       text);
    }
    std::printf("\nwrote corpora and %zu sample files under %s\n",
                std::min<std::size_t>(samples.size(), 200), out_dir.c_str());
  }
  return 0;
}
