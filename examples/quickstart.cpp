// Quickstart: the smallest end-to-end tour of the library.
//
//   1. Synthesize an Ansible corpus (the Galaxy stand-in).
//   2. Train a BPE tokenizer and a small decoder-only transformer on the
//      fine-tuning samples.
//   3. Ask the model to generate a task from a natural-language prompt and
//      score the result with the paper's four metrics.
//
// Runs in about two minutes on one CPU core:
//   ./build/examples/quickstart
#include <cstdio>

#include <string>

#include "core/evaluate.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "model/checkpoint.hpp"
#include "data/dataset.hpp"
#include "data/packing.hpp"
#include "metrics/aggregate.hpp"
#include "util/log.hpp"

using namespace wisdom;

int main() {
  util::set_log_level(util::LogLevel::Info);

  // 1. Data: synthesize the Galaxy corpus, extract fine-tuning samples in
  //    the paper's four generation types, split 80/10/10.
  core::PipelineConfig config;
  config.pretrain_epochs = 2;
  core::Pipeline pipeline(config);
  const text::BpeTokenizer& tokenizer = pipeline.tokenizer();
  const data::DatasetSplits& splits = pipeline.galaxy_splits();
  std::printf("dataset: %zu train / %zu valid / %zu test samples\n",
              splits.train.size(), splits.valid.size(), splits.test.size());

  // 2. Model: train a small Wisdom model directly on the fine-tuning
  //    samples (skipping pre-training keeps the quickstart fast; see
  //    examples/reproduce_wisdom.cpp for the full two-stage recipe).
  model::ModelConfig mc = model::config_for(
      model::SizeClass::S350M,
      static_cast<std::int32_t>(tokenizer.vocab_size()),
      config.context_window);
  model::Transformer model(mc, /*seed=*/1);
  std::printf("model: %lld parameters, ctx %d\n",
              static_cast<long long>(model.param_count()), mc.ctx);

  std::vector<std::string> texts;
  for (const data::FtSample& sample : splits.train)
    texts.push_back(data::format_training_text(
        sample, data::PromptFormat::NameCompletion));
  data::TokenBatchSet train_set =
      data::pack_samples(tokenizer, texts, mc.ctx);

  core::TrainConfig tc;
  tc.epochs = 10;
  tc.lr = 2.5e-3f;
  tc.on_epoch = [](int epoch, float loss, float) {
    std::printf("  epoch %d  train loss %.3f\n", epoch, loss);
  };
  core::train_model(model, train_set, nullptr, tc);

  // 2b. Persist the trained model and verify the reload: checkpoints are
  //     versioned and checksummed, so a bad file reports a typed reason
  //     instead of silently materializing a garbage model.
  const std::string ckpt_path = "quickstart_model.ckpt";
  model::save_checkpoint_file(ckpt_path, model, tokenizer.serialize());
  model::LoadResult loaded = model::load_checkpoint_file_ex(ckpt_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "checkpoint reload failed [%s]: %s\n",
                 model::load_status_name(loaded.status),
                 loaded.message.c_str());
    return 1;
  }
  std::printf("checkpoint: saved and reloaded %s (format v%u)\n",
              ckpt_path.c_str(), model::kCheckpointVersion);

  // 3. Generate from a natural-language prompt and evaluate.
  data::FtSample demo;
  demo.type = data::GenerationType::NlToTask;
  demo.prompt = "Install nginx";
  demo.input_line = "- name: Install nginx\n";
  demo.target_body =
      "  ansible.builtin.apt:\n    name: nginx\n    state: present\n";

  core::EvalOptions eval;
  std::string prediction =
      core::predict_snippet(model, tokenizer, demo, eval);
  std::printf("\nprompt: %s\nprediction:\n%s\n", demo.prompt.c_str(),
              prediction.c_str());

  metrics::MetricsAccumulator acc;
  acc.add(prediction, demo.full_target());
  std::printf("metrics vs gold: %s\n", acc.report().to_string().c_str());

  // Aggregate quality on a slice of the held-out test set.
  eval.max_samples = 100;
  auto report = core::evaluate_model(model, tokenizer, splits.test, eval);
  std::printf("test slice: %s\n", report.to_string().c_str());
  return 0;
}
