// Execution-based evaluation on the simulated managed node.
//
// The paper's metrics compare generated YAML against gold *text*; this
// example demonstrates the complementary evaluation the paper rules out on
// real infrastructure: run both snippets on identical simulated hosts and
// compare the resulting states. Two texts that differ (apt vs dnf, k=v vs
// dict args, extra name fields) can still be execution-equivalent.
//
//   ./build/examples/execution_eval
#include <cstdio>

#include "exec/equivalence.hpp"
#include "exec/executor.hpp"

using namespace wisdom;

namespace {

const char* kPlaybook =
    "- name: Provision web server\n"
    "  hosts: webservers\n"
    "  tasks:\n"
    "    - name: Install nginx\n"
    "      ansible.builtin.apt:\n"
    "        name: nginx\n"
    "        state: present\n"
    "    - name: Write config\n"
    "      ansible.builtin.template:\n"
    "        src: templates/nginx.conf.j2\n"
    "        dest: /etc/nginx/nginx.conf\n"
    "        mode: '0644'\n"
    "    - name: Open HTTPS\n"
    "      community.general.ufw:\n"
    "        rule: allow\n"
    "        port: '443'\n"
    "    - name: Start nginx\n"
    "      ansible.builtin.service:\n"
    "        name: nginx\n"
    "        state: started\n"
    "        enabled: true\n";

const char* label(exec::Equivalence e) {
  switch (e) {
    case exec::Equivalence::Equivalent: return "EQUIVALENT";
    case exec::Equivalence::Different: return "DIFFERENT";
    case exec::Equivalence::PredFailed: return "PREDICTION FAILED";
    case exec::Equivalence::Unscorable: return "UNSCORABLE";
  }
  return "?";
}

void compare(const char* title, const char* pred, const char* gold) {
  std::printf("%-55s -> %s\n", title,
              label(exec::execution_equivalence(pred, gold)));
}

}  // namespace

int main() {
  // 1. Run a playbook against the baseline host and show the state drift.
  exec::HostState host = exec::baseline_host();
  std::printf("--- baseline host ---\n%s\n", host.to_string().c_str());
  exec::TaskResult result = exec::execute_text(kPlaybook, host);
  std::printf("--- after playbook (status: %s) ---\n%s\n",
              result.status == exec::TaskStatus::Changed ? "changed" : "ok",
              host.to_string().c_str());

  // 2. Equivalence judgments on variant predictions.
  const char* gold =
      "- name: Install nginx\n"
      "  ansible.builtin.apt:\n"
      "    name: nginx\n"
      "    state: present\n";
  compare("identical task", gold, gold);
  compare("different name field (cosmetic)",
          "- name: Ensure the web server package\n"
          "  ansible.builtin.apt:\n"
          "    name: nginx\n"
          "    state: present\n",
          gold);
  compare("equivalent module (dnf for apt)",
          "- ansible.builtin.dnf:\n    name: nginx\n    state: present\n",
          gold);
  compare("legacy k=v arguments",
          "- ansible.builtin.apt: name=nginx state=present\n", gold);
  compare("wrong package",
          "- ansible.builtin.apt:\n    name: redis\n    state: present\n",
          gold);
  compare("wrong state (absent)",
          "- ansible.builtin.apt:\n    name: nginx\n    state: absent\n",
          gold);
  compare("unparseable prediction", "key: 'broken\n", gold);
  compare("unsimulated module in gold", gold,
          "- kubernetes.core.k8s:\n    state: present\n");
  return 0;
}
