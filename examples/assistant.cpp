// The VS Code plugin workflow from the paper's Demo/Plugin section, as an
// interactive terminal session: the "editor" holds a growing playbook, the
// user types "- name: <intent>" lines, the inference service suggests the
// task body, and the user accepts (tab) or rejects (escape).
//
// Usage:
//   ./build/examples/assistant                 # scripted demo session
//   ./build/examples/assistant "Install nginx" "Start nginx"  # your prompts
//
// The model is the fine-tuned Wisdom-Ansible-Multi; its checkpoint is
// cached under build/wisdom_cache after the first run (or reused from the
// benchmark runs).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "util/log.hpp"

using namespace wisdom;

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::Info);
  core::Pipeline pipeline(bench::default_pipeline_config(argv[0]));
  const text::BpeTokenizer& tokenizer = pipeline.tokenizer();

  std::fprintf(stderr,
               "loading / training the Wisdom-Ansible-Multi model (cached "
               "after first run)...\n");
  core::Pipeline::FinetuneOptions opts;
  model::Transformer model = pipeline.finetuned(
      core::PretrainMix::WisdomAnsibleMulti, model::SizeClass::S350M, opts);

  // The growing editor buffer is the prefix cache's best case: every
  // request re-sends the whole playbook so far, and the cached KV rows for
  // that shared head are reused instead of re-prefilled. The response memo
  // covers the user retyping an identical intent.
  serve::ServiceOptions service_options;
  service_options.prefix_cache_enabled = true;
  service_options.response_cache_enabled = true;
  // Task bodies fit well inside 24 tokens; a smaller generation reserve
  // widens the kept-prompt window (ctx - reserve), which is what lets the
  // growing buffer stay aligned with the cached prefixes instead of being
  // left-truncated away from them.
  service_options.max_new_tokens = 24;
  serve::InferenceService service(model, tokenizer, service_options);

  std::vector<std::string> prompts;
  for (int i = 1; i < argc; ++i) prompts.emplace_back(argv[i]);
  if (prompts.empty()) {
    prompts = {"Install nginx", "Write /etc/nginx/nginx.conf from template",
               "Start nginx", "Allow port 443 with ufw"};
  }

  // The growing "editor buffer": a playbook header, tasks appended as the
  // user accepts suggestions.
  std::string buffer =
      "- name: Provision web servers\n"
      "  hosts: webservers\n"
      "  become: true\n"
      "  tasks:\n";
  std::printf("--- editor ---\n%s", buffer.c_str());

  obs::Trace last_trace;
  for (const std::string& prompt : prompts) {
    serve::SuggestionRequest request;
    request.context = buffer;
    request.prompt = prompt;
    request.indent = 4;
    last_trace = obs::Trace{};
    request.trace = &last_trace;
    serve::SuggestionResponse response = service.suggest(request);
    std::printf("\nuser types:   - name: %s\n", prompt.c_str());
    if (!response.ok) {
      std::printf("(no suggestion)\n");
      service.record_reject();
      continue;
    }
    std::printf("suggestion (%.1f ms, %d tokens, schema %s):\n%s",
                response.latency_ms, response.generated_tokens,
                response.schema_correct ? "ok" : "VIOLATION",
                response.snippet.c_str());
    // Accept schema-correct suggestions (the plugin user's tab key).
    if (response.schema_correct) {
      service.record_accept();
      buffer += response.snippet;
    } else {
      service.record_reject();
    }
  }

  std::printf("\n--- final playbook ---\n%s", buffer.c_str());
  const serve::ServiceStats& stats = service.stats();
  std::printf(
      "\n--- session stats ---\nrequests: %llu  accepted: %llu  rejected: "
      "%llu  acceptance: %.0f%%  mean latency: %.1f ms\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.rejected),
      100.0 * stats.acceptance_rate(), stats.mean_latency_ms());
  const serve::PrefixCacheStats prefix = service.prefix_cache_stats();
  const serve::ResponseCacheStats memo = service.response_cache_stats();
  std::printf(
      "prefix cache: %llu/%llu hits (%.0f%%), %llu prefill tokens saved, "
      "%llu entries (%llu KiB)\nresponse memo: %llu/%llu hits, %llu "
      "entries\n",
      static_cast<unsigned long long>(prefix.hits),
      static_cast<unsigned long long>(prefix.lookups),
      100.0 * prefix.hit_rate(),
      static_cast<unsigned long long>(prefix.tokens_reused),
      static_cast<unsigned long long>(prefix.entries),
      static_cast<unsigned long long>(prefix.bytes / 1024),
      static_cast<unsigned long long>(memo.hits),
      static_cast<unsigned long long>(memo.lookups),
      static_cast<unsigned long long>(memo.entries));
  if (!last_trace.empty()) {
    std::printf("\n--- last request trace (%s) ---\n%s",
                obs::trace_id_hex(last_trace.id).c_str(),
                last_trace.timeline().c_str());
  }
  std::printf("\n--- service metrics ---\n%s",
              service.metrics().expose_prometheus().c_str());
  return 0;
}
