// The full two-stage Wisdom recipe for a single model, end to end:
//
//   1. pre-train the CodeGen-Multi analog on the Pile+BigQuery mix,
//   2. extend its pre-training with the Ansible YAML corpus
//      (-> Wisdom-Ansible-Multi, the paper's best model),
//   3. fine-tune on the Galaxy samples with validation-BLEU checkpoint
//      selection,
//   4. evaluate few-shot vs fine-tuned on the held-out test split,
//
// printing the same metric quartet as the paper's tables at each stage.
// Checkpoints are cached under build/wisdom_cache; the first run takes a
// few minutes, later runs seconds.
//
//   ./build/examples/reproduce_wisdom
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/evaluate.hpp"
#include "core/pipeline.hpp"
#include "model/checkpoint.hpp"
#include "util/log.hpp"

using namespace wisdom;

namespace {
void show(const char* stage, const metrics::MetricsReport& report) {
  std::printf("%-28s schema=%6.2f  em=%6.2f  bleu=%6.2f  aware=%6.2f\n",
              stage, report.schema_correct, report.exact_match, report.bleu,
              report.ansible_aware);
}
}  // namespace

int main(int, char** argv) {
  util::set_log_level(util::LogLevel::Info);
  core::Pipeline pipeline(bench::default_pipeline_config(argv[0]));
  const text::BpeTokenizer& tokenizer = pipeline.tokenizer();
  const data::DatasetSplits& splits = pipeline.galaxy_splits();

  core::EvalOptions eval;

  // Stage 1: the general-purpose checkpoint (CodeGen-Multi analog).
  std::fprintf(stderr, "stage 1: pre-training CodeGen-Multi analog...\n");
  model::Transformer codegen =
      pipeline.pretrained(core::PretrainMix::CodeGenMulti);
  eval.ansible_prefix = true;  // helps the non-YAML baselines (paper §Exp)
  show("CodeGen-Multi few-shot",
       core::evaluate_model(codegen, tokenizer, splits.test, eval));

  // Stage 2: extend pre-training with Ansible YAML.
  std::fprintf(stderr,
               "stage 2: extending pre-training with Ansible YAML...\n");
  model::Transformer wisdom =
      pipeline.pretrained(core::PretrainMix::WisdomAnsibleMulti);
  eval.ansible_prefix = false;
  show("Wisdom-Ansible-Multi few-shot",
       core::evaluate_model(wisdom, tokenizer, splits.test, eval));

  // Stage 3: fine-tune on Galaxy.
  std::fprintf(stderr, "stage 3: fine-tuning on Galaxy...\n");
  core::Pipeline::FinetuneOptions opts;
  model::Transformer finetuned = pipeline.finetuned(
      core::PretrainMix::WisdomAnsibleMulti, model::SizeClass::S350M, opts);
  show("Wisdom-Ansible-Multi FT",
       core::evaluate_model(finetuned, tokenizer, splits.test, eval));

  // Persist the paper's shipped artifact (the fine-tuned 350M model) and
  // verify the reload; a corrupt or pre-versioned file reports a typed
  // reason instead of loading as garbage.
  const std::string ckpt_path =
      bench::default_pipeline_config(argv[0]).cache_dir +
      "/wisdom_ansible_multi_ft.ckpt";
  model::save_checkpoint_file(ckpt_path, finetuned, tokenizer.serialize());
  model::LoadResult reloaded = model::load_checkpoint_file_ex(ckpt_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "checkpoint reload failed [%s]: %s\n",
                 model::load_status_name(reloaded.status),
                 reloaded.message.c_str());
    return 1;
  }
  std::fprintf(stderr, "released checkpoint verified: %s (format v%u)\n",
               ckpt_path.c_str(), model::kCheckpointVersion);

  // Stage 4: a concrete generation, end to end.
  const data::FtSample& sample = splits.test.front();
  std::printf("\n--- sample (%s) ---\nmodel input:\n%s\ngold:\n%s\n",
              data::generation_type_label(sample.type),
              sample.model_input().c_str(), sample.full_target().c_str());
  std::printf("prediction:\n%s\n",
              core::predict_snippet(finetuned, tokenizer, sample, eval)
                  .c_str());
  return 0;
}
