// The /v1 HTTP serving daemon: the paper's REST interface, for real, over
// the epoll front end in src/net/. Serves POST /v1/suggest, POST
// /v1/suggest/stream (SSE), GET /v1/metrics, GET /v1/healthz, and POST
// /v1/admin/drain (loopback-only) against the full serving stack —
// admission queue, circuit breaker, continuous batching, caches, lint
// gate — configured from the command line.
//
// Usage:
//   ./build/examples/wisdom_serve --port 8080            # full 350M model
//   ./build/examples/wisdom_serve --tiny --port 8080     # seconds-to-start
//       micro model (CI / smoke tests; same serving stack, toy suggestions)
//
// SIGINT/SIGTERM drain gracefully: healthz flips to 503, in-flight
// requests (streams included) run to completion, the final metrics flush
// is printed, and the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "data/packing.hpp"
#include "net/server.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "text/bpe.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

using namespace wisdom;

namespace {

// Signal flag polled by the main thread's wait loop.
volatile std::sig_atomic_t g_shutdown = 0;
void on_signal(int) { g_shutdown = 1; }

// The tests' micro-model recipe: a ~2s training run over apt-install
// samples, enough for the serving stack to produce schema-correct
// suggestions without the minutes-long 350M pipeline. CI's http-e2e job
// runs against this.
struct TinyModel {
  text::BpeTokenizer tokenizer;
  model::Transformer model;

  TinyModel()
      : tokenizer(text::BpeTokenizer::train(
            "- name: Install nginx\n"
            "  ansible.builtin.apt:\n"
            "    name: nginx\n"
            "    state: present\n",
            300)),
        model(config(), 21) {
    std::vector<std::string> texts;
    const char* pkgs[] = {"nginx", "redis", "git", "curl", "vim",
                          "htop", "jq", "wget"};
    for (int rep = 0; rep < 12; ++rep) {
      for (const char* pkg : pkgs) {
        texts.push_back(std::string("- name: Install ") + pkg +
                        "\n  ansible.builtin.apt:\n    name: " + pkg +
                        "\n    state: present\n");
      }
    }
    auto set = data::pack_samples(tokenizer, texts, 48);
    core::TrainConfig tc;
    tc.epochs = 30;
    tc.micro_batch = 4;
    tc.grad_accum = 1;
    tc.lr = 3e-3f;
    core::train_model(model, set, nullptr, tc);
  }

  model::ModelConfig config() const {
    model::ModelConfig cfg;
    cfg.vocab = static_cast<int>(tokenizer.vocab_size());
    cfg.ctx = 48;
    cfg.d_model = 24;
    cfg.n_head = 2;
    cfg.n_layer = 2;
    cfg.d_ff = 48;
    return cfg;
  }
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host H                bind address (default 127.0.0.1)\n"
      "  --port N                bind port (default 8080; 0 = ephemeral)\n"
      "  --workers N             HTTP worker threads (default 4)\n"
      "  --threads N             compute thread-pool size (default: cores)\n"
      "  --tiny                  train the seconds-to-start micro model\n"
      "  --admin-any-peer        allow /v1/admin/drain from any peer\n"
      "service options:\n"
      "  --max-new-tokens N      decode budget per request (default 56)\n"
      "  --beam-width N          >1 decodes with beam search (default 1)\n"
      "  --beam-length-penalty P beam length normalization (default 0.6)\n"
      "  --deadline-ms MS        per-request decode deadline (default off)\n"
      "  --queue-capacity N      admission queue bound (default off)\n"
      "  --shed-policy P         reject | degrade (default reject)\n"
      "  --no-fallback           disable the deterministic fallback\n"
      "  --lint-policy P         off | annotate | repair | reject\n"
      "  --prefix-cache          enable the prefix KV cache\n"
      "  --response-cache        enable the response memo\n"
      "  --no-continuous-batching  request-level thread-pool batching\n"
      "  --max-batch N           scheduler in-flight cap (default 8)\n"
      "  --kv-block-size N       paged-KV block size (default 16)\n"
      "  --breaker               enable the admission circuit breaker\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::Info);

  net::ServerOptions server_options;
  server_options.port = 8080;
  server_options.worker_threads = 4;
  serve::ServiceOptions service_options;
  bool tiny = false;
  int threads = 0;

  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host") server_options.host = next_value(i);
    else if (arg == "--port")
      server_options.port = static_cast<std::uint16_t>(std::atoi(next_value(i)));
    else if (arg == "--workers")
      server_options.worker_threads = std::atoi(next_value(i));
    else if (arg == "--threads") threads = std::atoi(next_value(i));
    else if (arg == "--tiny") tiny = true;
    else if (arg == "--admin-any-peer")
      server_options.admin_loopback_only = false;
    else if (arg == "--max-new-tokens")
      service_options.max_new_tokens = std::atoi(next_value(i));
    else if (arg == "--beam-width")
      service_options.beam_width = std::atoi(next_value(i));
    else if (arg == "--beam-length-penalty")
      service_options.beam_length_penalty =
          static_cast<float>(std::atof(next_value(i)));
    else if (arg == "--deadline-ms")
      service_options.deadline_ms = std::atof(next_value(i));
    else if (arg == "--queue-capacity")
      service_options.queue_capacity = std::atoi(next_value(i));
    else if (arg == "--shed-policy") {
      std::string policy = next_value(i);
      if (policy == "reject")
        service_options.shed_policy = serve::ShedPolicy::RejectNewest;
      else if (policy == "degrade")
        service_options.shed_policy = serve::ShedPolicy::DegradeNewest;
      else return usage(argv[0]);
    } else if (arg == "--no-fallback")
      service_options.fallback_enabled = false;
    else if (arg == "--lint-policy") {
      std::string policy = next_value(i);
      if (policy == "off") service_options.lint_policy = serve::LintPolicy::Off;
      else if (policy == "annotate")
        service_options.lint_policy = serve::LintPolicy::Annotate;
      else if (policy == "repair")
        service_options.lint_policy = serve::LintPolicy::Repair;
      else if (policy == "reject")
        service_options.lint_policy = serve::LintPolicy::RejectDegraded;
      else return usage(argv[0]);
    } else if (arg == "--prefix-cache")
      service_options.prefix_cache_enabled = true;
    else if (arg == "--response-cache")
      service_options.response_cache_enabled = true;
    else if (arg == "--no-continuous-batching")
      service_options.continuous_batching = false;
    else if (arg == "--max-batch")
      service_options.max_batch_sequences = std::atoi(next_value(i));
    else if (arg == "--kv-block-size")
      service_options.kv_block_size = std::atoi(next_value(i));
    else if (arg == "--breaker") service_options.breaker_enabled = true;
    else return usage(argv[0]);
  }

  if (threads > 0) util::ThreadPool::set_global_threads(threads);

  // Model selection: the micro model trains in seconds; the 350M model
  // loads from the checkpoint cache (or trains on first run).
  std::unique_ptr<TinyModel> tiny_model;
  std::unique_ptr<core::Pipeline> pipeline;
  std::optional<model::Transformer> full_model;
  const model::Transformer* model = nullptr;
  const text::BpeTokenizer* tokenizer = nullptr;
  if (tiny) {
    std::fprintf(stderr, "training the tiny model (~seconds)...\n");
    tiny_model = std::make_unique<TinyModel>();
    model = &tiny_model->model;
    tokenizer = &tiny_model->tokenizer;
  } else {
    std::fprintf(stderr,
                 "loading / training Wisdom-Ansible-Multi (cached after "
                 "first run)...\n");
    pipeline =
        std::make_unique<core::Pipeline>(bench::default_pipeline_config(argv[0]));
    tokenizer = &pipeline->tokenizer();
    core::Pipeline::FinetuneOptions opts;
    full_model.emplace(pipeline->finetuned(
        core::PretrainMix::WisdomAnsibleMulti, model::SizeClass::S350M, opts));
    model = &*full_model;
  }

  serve::InferenceService service(*model, *tokenizer, service_options);
  net::HttpServer server(service, server_options);
  if (!server.start()) {
    std::fprintf(stderr, "failed to bind %s:%u\n", server_options.host.c_str(),
                 static_cast<unsigned>(server_options.port));
    return 1;
  }
  std::printf("wisdom_serve listening on http://%s:%u/v1 (%s model)\n",
              server_options.host.c_str(),
              static_cast<unsigned>(server.port()),
              tiny ? "tiny" : "350M");
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_shutdown == 0) {
    timespec nap{0, 100 * 1000 * 1000};
    nanosleep(&nap, nullptr);
    if (service.state() != serve::InferenceService::State::Accepting) {
      // An HTTP-initiated drain (/v1/admin/drain) is also a shutdown: wait
      // for it to finish and exit.
      break;
    }
  }

  std::fprintf(stderr, "draining...\n");
  std::string final_metrics = service.drain();
  server.stop();
  std::printf("--- final metrics ---\n%s", final_metrics.c_str());
  return 0;
}
