// wisdom_lint: the diagnostics engine as a command-line linter.
//
//   wisdom_lint playbook.yml tasks.yml     lint files (caret diagnostics)
//   wisdom_lint < playbook.yml             lint stdin
//   wisdom_lint --format json file.yml     machine-readable output
//   wisdom_lint --format sarif *.yml       SARIF 2.1.0 (one log, all files)
//   wisdom_lint --fix file.yml             apply auto-fixes in place
//   wisdom_lint --list-rules               print the rule registry
//
// Exit codes: 0 = no errors (warnings allowed), 1 = at least one
// error-severity diagnostic, 2 = usage or I/O failure. CI runs this over
// the fixture playbooks and the bench predictions dump as a lint gate.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/engine.hpp"
#include "analysis/format.hpp"
#include "analysis/rules.hpp"

namespace analysis = wisdom::analysis;

namespace {

enum class OutputFormat { Text, Json, Sarif };

struct CliOptions {
  OutputFormat format = OutputFormat::Text;
  bool fix = false;
  bool list_rules = false;
  analysis::RuleConfig config;
  std::vector<std::string> files;  // empty or "-" = stdin
};

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: wisdom_lint [options] [file ...]\n"
               "Lints Ansible YAML (playbook, task list, or single task);\n"
               "reads stdin when no file is given.\n"
               "  --format=FMT      output format: text (default), json (one "
               "object per input),\n"
               "                    or sarif (one SARIF 2.1.0 log covering "
               "all inputs)\n"
               "  --json            alias for --format=json\n"
               "  --fix             apply auto-fixes (in place for files, to "
               "stdout for stdin)\n"
               "  --list-rules      print the rule registry and exit\n"
               "  --disable=a,b     disable rules by id\n"
               "  --severity=r=LVL  override a rule's severity (error|warning)"
               "\n"
               "exit: 0 clean, 1 errors found, 2 usage/read failure\n");
}

bool parse_args(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json") {
      options->format = OutputFormat::Json;
    } else if (arg.rfind("--format=", 0) == 0 ||
               (arg == "--format" && i + 1 < argc)) {
      std::string_view name =
          arg == "--format" ? std::string_view(argv[++i]) : arg.substr(9);
      if (name == "text") options->format = OutputFormat::Text;
      else if (name == "json") options->format = OutputFormat::Json;
      else if (name == "sarif") options->format = OutputFormat::Sarif;
      else return false;
    } else if (arg == "--fix") {
      options->fix = true;
    } else if (arg == "--list-rules") {
      options->list_rules = true;
    } else if (arg.rfind("--disable=", 0) == 0) {
      std::string_view ids = arg.substr(10);
      while (!ids.empty()) {
        std::size_t comma = ids.find(',');
        std::string_view id = ids.substr(0, comma);
        if (!id.empty()) options->config.disabled.emplace_back(id);
        if (comma == std::string_view::npos) break;
        ids.remove_prefix(comma + 1);
      }
    } else if (arg.rfind("--severity=", 0) == 0) {
      std::string_view spec = arg.substr(11);
      std::size_t eq = spec.find('=');
      if (eq == std::string_view::npos) return false;
      std::string_view level = spec.substr(eq + 1);
      analysis::Severity severity;
      if (level == "error") severity = analysis::Severity::Error;
      else if (level == "warning") severity = analysis::Severity::Warning;
      else return false;
      options->config.severity_overrides.emplace_back(
          std::string(spec.substr(0, eq)), severity);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      std::exit(0);
    } else if (arg.rfind("--", 0) == 0 && arg.size() > 2) {
      return false;
    } else {
      options->files.emplace_back(arg);
    }
  }
  return true;
}

void list_rules() {
  std::printf("%-24s %-8s %-5s %s\n", "id", "severity", "fix", "summary");
  for (const analysis::RuleInfo& rule : analysis::all_rules()) {
    std::printf("%-24.*s %-8s %-5s %.*s\n",
                static_cast<int>(rule.id.size()), rule.id.data(),
                rule.default_severity == analysis::Severity::Error
                    ? "error"
                    : "warning",
                rule.fixable ? "yes" : "no",
                static_cast<int>(rule.summary.size()), rule.summary.data());
  }
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// Lints (and under --fix repairs) one input; returns the analysis used
// for reporting. `final_text` receives the post-fix text.
analysis::AnalysisResult process(const std::string& text,
                                 const CliOptions& options,
                                 std::string* final_text) {
  if (!options.fix) {
    *final_text = text;
    return analysis::analyze(text, options.config);
  }
  analysis::RepairResult repaired = analysis::repair(text, options.config);
  *final_text = repaired.text;
  return std::move(repaired.final_result);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, &options)) {
    print_usage(stderr);
    return 2;
  }
  if (options.list_rules) {
    list_rules();
    return 0;
  }
  for (const std::string& id : options.config.unknown_ids()) {
    std::fprintf(stderr, "wisdom_lint: unknown rule id '%s'\n", id.c_str());
    return 2;
  }

  bool any_errors = false;
  bool io_failure = false;
  std::vector<std::string> files = options.files;
  if (files.empty()) files.emplace_back("-");
  // SARIF emits one log over all inputs after the loop, so the per-file
  // results must outlive their iterations.
  std::vector<std::pair<std::string, analysis::AnalysisResult>> sarif_runs;
  for (const std::string& path : files) {
    const bool is_stdin = path == "-";
    std::string text;
    if (is_stdin) {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      text = buffer.str();
    } else if (!read_file(path, &text)) {
      std::fprintf(stderr, "wisdom_lint: cannot read %s\n", path.c_str());
      io_failure = true;
      continue;
    }

    std::string final_text;
    analysis::AnalysisResult result = process(text, options, &final_text);
    if (result.error_count() > 0) any_errors = true;

    const std::string label = is_stdin ? "stdin" : path;
    switch (options.format) {
      case OutputFormat::Json:
        std::printf("%s\n", analysis::format_json(result).c_str());
        break;
      case OutputFormat::Sarif:
        sarif_runs.emplace_back(label, std::move(result));
        break;
      case OutputFormat::Text:
        std::fputs(analysis::format_text(final_text, result, label).c_str(),
                   stdout);
        break;
    }
    if (options.fix && final_text != text) {
      if (is_stdin) {
        std::fputs(final_text.c_str(), stdout);
      } else {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out || !(out << final_text)) {
          std::fprintf(stderr, "wisdom_lint: cannot write %s\n", path.c_str());
          io_failure = true;
        }
      }
    }
  }
  if (options.format == OutputFormat::Sarif) {
    std::vector<analysis::SarifArtifact> artifacts;
    artifacts.reserve(sarif_runs.size());
    for (const auto& [label, result] : sarif_runs)
      artifacts.push_back({label, &result});
    std::printf("%s\n", analysis::format_sarif(artifacts).c_str());
  }
  if (io_failure) return 2;
  return any_errors ? 1 : 0;
}
