// Load client for the /v1 HTTP front end: opens hundreds-to-thousands of
// concurrent keep-alive connections from one epoll loop, pumps
// POST /v1/suggest (or /v1/suggest/stream with --stream) requests through
// them, and reports latency percentiles plus the shed/degraded breakdown
// the overload-resilience stack produces under pressure.
//
// Exit status is nonzero when any connection or HTTP protocol error
// occurred — CI drives the server at several times its admission capacity
// and asserts clean protocol behaviour (429s are expected and fine;
// malformed responses and dropped connections are not).
//
// Usage:
//   ./build/examples/wisdom_load --port 8080 --connections 500 --requests 5000
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "serve/wire.hpp"

using namespace wisdom;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 8080;
  int connections = 500;
  int requests = 2000;
  double deadline_ms = 0.0;
  bool stream = false;
  std::string prompt = "Install nginx";
  std::string context;
  int indent = 0;
};

struct Stats {
  int sent = 0;
  int completed = 0;
  int connect_errors = 0;
  int protocol_errors = 0;
  int disconnects = 0;
  int shed_429 = 0;
  int degraded = 0;
  int stream_chunks = 0;
  std::map<int, int> by_status;
  std::vector<double> latencies_ms;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

// One keep-alive connection driving sequential requests.
struct Conn {
  int fd = -1;
  bool connected = false;
  std::string outbuf;
  std::size_t out_off = 0;
  std::string inbuf;
  bool in_flight = false;
  std::chrono::steady_clock::time_point sent_at;
};

class LoadDriver {
 public:
  LoadDriver(const Options& options) : options_(options) {
    request_body_ = [&] {
      serve::SuggestionRequest request;
      request.context = options_.context;
      request.prompt = options_.prompt;
      request.indent = options_.indent;
      request.deadline_ms = options_.deadline_ms;
      return serve::to_json(request);
    }();
    const char* target =
        options_.stream ? "/v1/suggest/stream" : "/v1/suggest";
    request_bytes_ = "POST " + std::string(target) +
                     " HTTP/1.1\r\nHost: " + options_.host +
                     "\r\nContent-Type: application/json\r\nContent-Length: " +
                     std::to_string(request_body_.size()) +
                     "\r\nConnection: keep-alive\r\n\r\n" + request_body_;
  }

  Stats run() {
    for (int i = 0; i < options_.connections && stats_.sent < options_.requests;
         ++i)
      open_connection();
    if (!conns_.empty()) loop_.run();
    std::sort(stats_.latencies_ms.begin(), stats_.latencies_ms.end());
    return stats_;
  }

 private:
  void open_connection() {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      ++stats_.connect_errors;
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    ::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      ++stats_.connect_errors;
      ::close(fd);
      return;
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->connected = rc == 0;
    conns_[fd] = conn;
    loop_.add(fd, EPOLLIN | EPOLLOUT, [this, fd](std::uint32_t events) {
      on_event(fd, events);
    });
    if (conn->connected) send_next(conn);
  }

  void close_conn(const std::shared_ptr<Conn>& conn, bool failed) {
    if (conn->fd < 0) return;
    if (failed) {
      if (conn->in_flight) ++stats_.disconnects;
    }
    loop_.remove(conn->fd);
    ::close(conn->fd);
    conns_.erase(conn->fd);
    conn->fd = -1;
    maybe_finish();
  }

  void maybe_finish() {
    // Done when every requested call has completed (or failed) and no
    // connection still has one in flight.
    bool any_in_flight = false;
    for (auto& [fd, conn] : conns_)
      if (conn->in_flight) any_in_flight = true;
    if (!any_in_flight &&
        (stats_.sent >= options_.requests || conns_.empty()))
      loop_.stop();
  }

  void send_next(const std::shared_ptr<Conn>& conn) {
    if (stats_.sent >= options_.requests) {
      close_conn(conn, false);
      return;
    }
    ++stats_.sent;
    conn->in_flight = true;
    conn->sent_at = std::chrono::steady_clock::now();
    conn->outbuf = request_bytes_;
    conn->out_off = 0;
    flush(conn);
  }

  void flush(const std::shared_ptr<Conn>& conn) {
    while (conn->out_off < conn->outbuf.size()) {
      ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_off,
                         conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      close_conn(conn, true);
      return;
    }
  }

  void on_event(int fd, std::uint32_t events) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    std::shared_ptr<Conn> conn = it->second;
    if (events & (EPOLLHUP | EPOLLERR)) {
      if (!conn->connected) ++stats_.connect_errors;
      close_conn(conn, true);
      return;
    }
    if (events & EPOLLOUT) {
      if (!conn->connected) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          ++stats_.connect_errors;
          close_conn(conn, true);
          return;
        }
        conn->connected = true;
        send_next(conn);
      } else {
        flush(conn);
      }
    }
    if ((events & EPOLLIN) == 0) return;
    char buffer[16384];
    while (conn->fd >= 0) {
      ssize_t n = ::read(conn->fd, buffer, sizeof(buffer));
      if (n > 0) {
        conn->inbuf.append(buffer, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_conn(conn, true);
      return;
    }
    if (conn->fd >= 0) consume_responses(conn);
  }

  // Parses complete responses out of conn->inbuf; each completed response
  // records a sample and triggers the next request on this connection.
  void consume_responses(const std::shared_ptr<Conn>& conn) {
    while (conn->in_flight) {
      std::size_t head_end = conn->inbuf.find("\r\n\r\n");
      if (head_end == std::string::npos) return;
      std::string_view head(conn->inbuf.data(), head_end);
      int status = 0;
      if (head.size() < 12 || head.substr(0, 9) != "HTTP/1.1 " ||
          std::sscanf(conn->inbuf.c_str() + 9, "%d", &status) != 1) {
        ++stats_.protocol_errors;
        close_conn(conn, true);
        return;
      }
      bool chunked = head.find("Transfer-Encoding: chunked") !=
                     std::string_view::npos;
      std::size_t body_len = 0;
      std::size_t content_length_at = head.find("Content-Length: ");
      if (content_length_at != std::string_view::npos)
        body_len = static_cast<std::size_t>(std::strtoull(
            conn->inbuf.c_str() + content_length_at + 16, nullptr, 10));
      std::string body;
      std::size_t consumed = head_end + 4;
      if (chunked) {
        // Walk chunk frames until the terminal zero chunk; incomplete →
        // wait for more bytes.
        std::size_t at = consumed;
        bool done = false;
        while (true) {
          std::size_t line_end = conn->inbuf.find("\r\n", at);
          if (line_end == std::string::npos) return;
          std::size_t size =
              std::strtoull(conn->inbuf.c_str() + at, nullptr, 16);
          std::size_t payload_at = line_end + 2;
          if (conn->inbuf.size() < payload_at + size + 2) return;
          if (size == 0) {
            consumed = payload_at + 2;  // the terminal chunk's CRLF
            done = true;
            break;
          }
          body.append(conn->inbuf, payload_at, size);
          ++stats_.stream_chunks;
          at = payload_at + size + 2;
        }
        if (!done) return;
      } else {
        if (conn->inbuf.size() < consumed + body_len) return;
        body.assign(conn->inbuf, consumed, body_len);
        consumed += body_len;
      }
      conn->inbuf.erase(0, consumed);

      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - conn->sent_at)
                      .count();
      ++stats_.completed;
      ++stats_.by_status[status];
      if (status == 429) ++stats_.shed_429;
      if (body.find("\"degraded\": true") != std::string::npos)
        ++stats_.degraded;
      if (status == 200) stats_.latencies_ms.push_back(ms);
      conn->in_flight = false;
      if (stats_.sent >= options_.requests) {
        close_conn(conn, false);
        return;
      }
      send_next(conn);
    }
  }

  Options options_;
  net::EventLoop loop_;
  std::string request_body_;
  std::string request_bytes_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  Stats stats_;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port N] [--connections N] "
               "[--requests N] [--deadline-ms MS] [--stream] [--prompt P] "
               "[--context C] [--indent N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) std::exit(usage(argv[0]));
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host") options.host = next_value(i);
    else if (arg == "--port")
      options.port = static_cast<std::uint16_t>(std::atoi(next_value(i)));
    else if (arg == "--connections")
      options.connections = std::atoi(next_value(i));
    else if (arg == "--requests") options.requests = std::atoi(next_value(i));
    else if (arg == "--deadline-ms")
      options.deadline_ms = std::atof(next_value(i));
    else if (arg == "--stream") options.stream = true;
    else if (arg == "--prompt") options.prompt = next_value(i);
    else if (arg == "--context") options.context = next_value(i);
    else if (arg == "--indent") options.indent = std::atoi(next_value(i));
    else return usage(argv[0]);
  }

  auto start = std::chrono::steady_clock::now();
  LoadDriver driver(options);
  Stats stats = driver.run();
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  std::printf("connections: %d  requests sent: %d  completed: %d  wall: %.2fs "
              "(%.0f req/s)\n",
              options.connections, stats.sent, stats.completed, wall_s,
              wall_s > 0 ? stats.completed / wall_s : 0.0);
  std::printf("status:");
  for (const auto& [status, count] : stats.by_status)
    std::printf("  %d: %d", status, count);
  std::printf("\nshed (429): %d  degraded: %d  stream chunks: %d\n",
              stats.shed_429, stats.degraded, stats.stream_chunks);
  std::printf("errors: connect %d  protocol %d  disconnects %d\n",
              stats.connect_errors, stats.protocol_errors, stats.disconnects);
  if (!stats.latencies_ms.empty()) {
    std::printf("latency ms (200s): p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n",
                percentile(stats.latencies_ms, 50.0),
                percentile(stats.latencies_ms, 95.0),
                percentile(stats.latencies_ms, 99.0),
                stats.latencies_ms.back());
  }
  bool clean = stats.connect_errors == 0 && stats.protocol_errors == 0 &&
               stats.disconnects == 0 && stats.completed == stats.sent;
  std::printf("%s\n", clean ? "CLEAN" : "ERRORS");
  return clean ? 0 : 1;
}
